#!/usr/bin/env python
"""Cache study: reproduce and explain the paper's Section 4.2 anomaly.

Traces MODGEMM and DGEFMM through the (geometry-scaled) 16 KB
direct-mapped cache of the paper's ATOM experiment, prints the Figure 9
miss-ratio table with its dramatic drop at the 513-analogue, and then
derives *why* from the quadrant-conflict arithmetic.

Run:  python examples/cache_study.py           (scaled, ~1 minute)
      python examples/cache_study.py --full    (paper sizes, several minutes)
"""

import sys

from repro.experiments import fig9_cache


def main() -> None:
    scale = 1 if "--full" in sys.argv else 4
    print(f"simulating Figure 9 at scale 1/{scale} ...")
    result = fig9_cache.run(scale=scale)
    print(result.to_text())

    print("\nWhy the drop happens (Section 4.2):\n")
    print("Before the drop —")
    print(fig9_cache.explain(505))
    print("\nAfter the drop —")
    print(fig9_cache.explain(513))
    print(
        "\nDynamic tile selection (Section 3.4) is what moves the padded "
        "size off the power of two: 513 pads to 528 with tile 33 instead "
        "of 1024 with tile 32, so the quadrant bases stop being congruent "
        "modulo the cache size and the conflict misses vanish."
    )

    # The paper diagnosed the drop with CProf; our three-C classification
    # (repro.cachesim.classify) makes the same diagnosis quantitative.
    from repro.experiments import ext_miss_classification

    print("\nThree-C decomposition across the window (CProf reproduction):")
    print(ext_miss_classification.run(scale=16).to_text(with_chart=False))

    # ... and the paper's closing future work — eliminating those conflict
    # misses — is implemented as conflict-aware tile selection:
    from repro.experiments import ext_conflict_aware

    print("\nConflict-aware selection (the future work, realised):")
    print(ext_conflict_aware.run(scale=scale if scale > 1 else 4)
          .to_text(with_chart=False))


if __name__ == "__main__":
    main()
