#!/usr/bin/env python
"""Tuning explorer: re-derive the host-tuned truncation parameters.

The paper tunes each implementation's truncation point empirically per
machine.  This script sweeps candidate tile ranges for MODGEMM and
truncation points for DGEFMM/DGEMMW on *your* host and prints the
winners — the values `repro.experiments.tuning` should hold for this
machine.

Run:  python examples/tuning_explorer.py [n]      (default n = 600)
"""

import sys
import time

import numpy as np

from repro.baselines.dgefmm import dgefmm
from repro.baselines.dgemmw import dgemmw
from repro.core.modgemm import modgemm
from repro.core.truncation import TruncationPolicy


def best_of(fn, reps: int = 3) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def show_profile(n: int) -> None:
    """Where does a modgemm call spend its time on this host?"""
    from repro.analysis.profiling import hotspot_table, profile_call

    rng = np.random.default_rng(9)
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))
    for label, policy in (
        ("paper range [16,64]", TruncationPolicy.dynamic(16, 64)),
        ("host range [64,256]", TruncationPolicy.dynamic(64, 256)),
    ):
        hot = profile_call(lambda: modgemm(a, b, policy=policy), top=8)
        print(f"\nhotspots, {label}, n={n}:")
        print(hotspot_table(hot))


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    if "--profile" in sys.argv:
        show_profile(int(args[0]) if args else 513)
        return
    n = int(args[0]) if args else 600
    rng = np.random.default_rng(4)
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))

    print(f"MODGEMM tile-range sweep at n={n}:")
    ranges = [(16, 64), (32, 128), (48, 128), (64, 256), (96, 384), (128, 512)]
    results = []
    for lo, hi in ranges:
        t = best_of(lambda: modgemm(a, b, policy=TruncationPolicy.dynamic(lo, hi)))
        results.append(((lo, hi), t))
        print(f"  [{lo:3d}, {hi:3d}] : {t * 1e3:8.1f} ms")
    best_range, _ = min(results, key=lambda x: x[1])
    print(f"  -> best range {best_range}")

    for name, fn in (("DGEFMM", dgefmm), ("DGEMMW", dgemmw)):
        print(f"\n{name} truncation sweep at n={n}:")
        results = []
        for trunc in (32, 64, 96, 128, 192, 256):
            t = best_of(lambda: fn(a, b, policy=trunc))
            results.append((trunc, t))
            print(f"  {trunc:4d} : {t * 1e3:8.1f} ms")
        best_trunc, _ = min(results, key=lambda x: x[1])
        print(f"  -> best truncation {best_trunc}")

    print(
        "\n(The paper's 16..64 range reflects 1998 L1 caches and C-loop "
        "leaf kernels; on a numpy substrate the per-leaf dispatch overhead "
        "moves the sweet spot upward.  The cache-simulation experiments "
        "keep the paper's range — there the substrate is the simulated "
        "1998 machine.)"
    )


if __name__ == "__main__":
    main()
