#!/usr/bin/env python
"""Tour of the cache-simulation substrate as a standalone library.

The `repro.cachesim` package is useful beyond this paper: configurable
direct-mapped / set-associative simulators, multi-level hierarchies,
streaming trace sinks, three-C miss classification, and per-structure
attribution.  This example walks through each on a small hand-built
workload, ending with the paper's quadrant-conflict pattern observed
through all of them at once.

Run:  python examples/simulator_tour.py
"""

import numpy as np

from repro.cachesim import (
    ALPHA_MIATA,
    CacheConfig,
    CacheHierarchy,
    DirectMappedCache,
    LRUCache,
    RegionMap,
    TimingModel,
    classify_misses,
)


def tour_basic() -> None:
    cfg = CacheConfig(1024, 32, assoc=1, name="toy-L1")
    print(f"{cfg.name}: {cfg.size_bytes} B, {cfg.n_sets} sets of {cfg.block_bytes} B")

    # A sequential scan: one miss per block (4 doubles).
    dm = DirectMappedCache(cfg)
    dm.access(np.arange(0, 8192, 8, dtype=np.int64))
    print(f"sequential scan miss ratio: {dm.stats.miss_ratio:.2f} (expect 0.25)")

    # The same trace through a 2-way cache of equal capacity.
    lru = LRUCache(CacheConfig(1024, 32, assoc=2))
    lru.access(np.arange(0, 8192, 8, dtype=np.int64))
    print(f"2-way cache, same trace:    {lru.stats.miss_ratio:.2f}")


def tour_conflicts() -> None:
    # The paper's Section 4.2 pattern in miniature: two buffers exactly one
    # cache-size apart, accessed alternately.
    cfg = CacheConfig(1024, 32, assoc=1)
    trace = np.empty(2000, dtype=np.int64)
    trace[0::2] = np.arange(1000, dtype=np.int64) % 128 * 8          # buffer A
    trace[1::2] = 1024 + np.arange(1000, dtype=np.int64) % 128 * 8   # buffer B

    mc = classify_misses(trace, cfg)
    print(
        f"\nquadrant-conflict pattern: miss ratio {mc.miss_ratio:.2f}, "
        f"of which {mc.conflict_share * 100:.0f}% conflict misses"
    )

    # Attribute the misses to the two buffers CProf-style.
    dm = DirectMappedCache(cfg)
    miss_mask = dm.access(trace)
    regions = RegionMap()
    regions.add("buffer-A", 0, 1024)
    regions.add("buffer-B", 1024, 1024)
    for name, (accesses, misses) in regions.attribute(trace, miss_mask).items():
        print(f"  {name}: {misses}/{accesses} misses")


def tour_hierarchy_and_model() -> None:
    # The Alpha Miata's real 1998 hierarchy, plus its linear time model.
    print(f"\n{ALPHA_MIATA.name} hierarchy:")
    model = TimingModel(ALPHA_MIATA)
    h = model.hierarchy()
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 1 << 22, size=200_000) * 8
    h.access(trace)
    for lv, stats in zip(ALPHA_MIATA.levels, h.stats):
        print(
            f"  {lv.name:3s} ({lv.size_bytes // 1024:5d} KB, {lv.assoc}-way): "
            f"{stats.misses}/{stats.accesses} misses"
        )
    run = model.run_trace(flops=10**6, accesses=trace.size, hierarchy=h)
    print(f"modelled time for 1 Mflop over this trace: {run.seconds * 1e3:.2f} ms "
          f"({run.mflops:.0f} MFLOPS)")


def tour_hierarchy() -> None:
    # Streaming: state persists across chunks, so traces of any length fit.
    h = CacheHierarchy([CacheConfig(1024, 32, 1), CacheConfig(16 * 1024, 32, 1)])
    for chunk in range(10):
        h.access((np.arange(512, dtype=np.int64) * 8) + chunk * 64)
    print(f"\nstreamed 10 chunks: L1 {h.miss_ratio(0):.3f}, L2 {h.miss_ratio(1):.3f}")


if __name__ == "__main__":
    tour_basic()
    tour_conflicts()
    tour_hierarchy_and_model()
    tour_hierarchy()
