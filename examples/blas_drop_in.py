#!/usr/bin/env python
"""BLAS drop-in: the full dgemm contract across all three implementations.

The paper's Section 2.1 interface — ``C <- alpha * op(A) . op(B) + beta*C``
— works identically on MODGEMM and the two baselines (DGEFMM, DGEMMW), so
any of them can replace a dgemm call.  This example exercises transposes,
scaling, and in-place accumulation, then times the three implementations
head-to-head the way Figures 5/6 do.

Run:  python examples/blas_drop_in.py
"""

import time

import numpy as np

from repro import dgefmm, dgemmw, modgemm


def demo_contract() -> None:
    rng = np.random.default_rng(1)
    m, k, n = 300, 200, 250
    a = rng.standard_normal((k, m))   # stored transposed
    b = rng.standard_normal((n, k))   # stored transposed
    c = rng.standard_normal((m, n))
    alpha, beta = 2.5, -0.5
    reference = alpha * (a.T @ b.T) + beta * c

    for name, fn in (("modgemm", modgemm), ("dgefmm", dgefmm), ("dgemmw", dgemmw)):
        out = fn(a, b, c=c.copy(), alpha=alpha, beta=beta, op_a="t", op_b="t")
        err = np.max(np.abs(out - reference))
        print(f"{name:8s} C <- {alpha}*A^T.B^T + {beta}*C   max |err| = {err:.2e}")


def demo_head_to_head(n: int = 700) -> None:
    rng = np.random.default_rng(2)
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))

    def best_of(fn, reps: int = 3) -> float:
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    from repro.core.truncation import TruncationPolicy

    host_policy = TruncationPolicy.dynamic(64, 256)
    t_mod = best_of(lambda: modgemm(a, b, policy=host_policy))
    t_dge = best_of(lambda: dgefmm(a, b, policy=128))
    t_gw = best_of(lambda: dgemmw(a, b, policy=128))
    t_np = best_of(lambda: a @ b)
    print(f"\nhead-to-head at n={n} (best of 3):")
    print(f"  modgemm : {t_mod * 1e3:8.1f} ms   ({t_mod / t_dge:5.2f} x dgefmm)")
    print(f"  dgefmm  : {t_dge * 1e3:8.1f} ms   (1.00 x, the paper's baseline)")
    print(f"  dgemmw  : {t_gw * 1e3:8.1f} ms   ({t_gw / t_dge:5.2f} x dgefmm)")
    print(f"  numpy   : {t_np * 1e3:8.1f} ms   (host BLAS, conventional O(n^3))")


if __name__ == "__main__":
    demo_contract()
    demo_head_to_head()
