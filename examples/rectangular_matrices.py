#!/usr/bin/env python
"""Rectangular operands: the Section 3.5 machinery in action.

Shows (1) per-dimension tile selection sharing a common recursion depth,
(2) the paper's 1024 x 256 example, and (3) a highly rectangular product
that requires the wide/lean panel decomposition of Figure 4.

Run:  python examples/rectangular_matrices.py
"""

import numpy as np

import repro
from repro.core.rectangular import classify, plan_panels


def main() -> None:
    rng = np.random.default_rng(3)

    # 1. Moderately rectangular: one recursion depth, per-dimension tiles.
    m, k, n = 300, 180, 240
    plan = repro.select_common_tiling((m, k, n))
    print(f"GEMM {m}x{k} . {k}x{n}:")
    for dim, t in zip("mkn", plan):
        print(
            f"  {dim} = {t.n:4d} -> tile {t.tile:2d}, depth {t.depth}, "
            f"padded {t.padded} (pad {t.pad})"
        )

    # 2. The paper's example.
    plan2 = repro.select_common_tiling((1024, 256))
    print(
        f"\npaper's 1024 x 256 example: common depth {plan2[0].depth}, "
        f"tiles {plan2[0].tile} and {plan2[1].tile} "
        "(jointly feasible, no splitting needed)"
    )

    # 3. A genuinely extreme product: panel decomposition kicks in.
    m, k, n = 1200, 64, 900
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    print(f"\nextreme GEMM {m}x{k} . {k}x{n}:")
    print(f"  A is {classify(m, k).value}, B is {classify(k, n).value}")
    assert repro.select_common_tiling((m, k, n)) is None
    panels = plan_panels(m, k, n)
    shapes = {(p.m1 - p.m0, p.k1 - p.k0, p.n1 - p.n0) for p in panels}
    print(f"  no common recursion depth -> {len(panels)} well-behaved panels")
    print(f"  panel shapes: {sorted(shapes)}")

    timings = repro.PhaseTimings()
    c = repro.modgemm(a, b, timings=timings)
    err = np.max(np.abs(c - a @ b)) / np.max(np.abs(a @ b))
    print(f"  result max relative error vs numpy: {err:.2e}")
    print(f"  ({timings.panels} panel products executed)")


if __name__ == "__main__":
    main()
