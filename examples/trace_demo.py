#!/usr/bin/env python
"""Trace a parallel 513x513 multiply and inspect the event stream.

Runs a session with the structured tracer enabled, multiplies the paper's
favourite pathological size three times on the task scheduler, validates
the dumped trace document against the versioned schema, and prints a
per-kind histogram plus a per-worker timeline summary (the attributable
decomposition behind ``worker_utilization``).

Run:  PYTHONPATH=src python examples/trace_demo.py
"""

import collections
import json

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(0)
    n = 513
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    session = repro.GemmSession(trace=True, max_workers=4)
    with session:
        for _ in range(3):
            c = session.multiply(a, b, schedule="tasks:1")
        assert np.allclose(c, a @ b)

        # The dump is plain JSON with a versioned, validated shape.
        doc = session.trace.dump()
        repro.validate_trace(doc)
        json.dumps(doc)  # round-trippable by construction
        print(
            f"traced {n} x {n} multiply x3: {len(doc['events'])} events "
            f"captured ({doc['dropped']} dropped), schema "
            f"{doc['schema']} v{doc['version']}"
        )

        # Histogram: where the events came from.
        by_kind = collections.Counter(ev["kind"] for ev in doc["events"])
        for kind, count in by_kind.most_common():
            print(f"  {kind:>13}: {count}")

        # Timeline: per-worker spans, steals, busy/idle split.
        for thread, tl in sorted(session.trace.timeline().items()):
            stolen = sum(1 for sp in tl["spans"] if sp["stolen"])
            print(
                f"  worker thread {thread}: {len(tl['spans'])} spans "
                f"({stolen} stolen), busy {tl['busy'] * 1e3:.1f} ms, "
                f"idle {tl['idle'] * 1e3:.1f} ms, {len(tl['gaps'])} gaps"
            )


if __name__ == "__main__":
    main()
