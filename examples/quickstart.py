#!/usr/bin/env python
"""Quickstart: multiply two matrices with MODGEMM.

Demonstrates the one-call API, what the dynamic truncation-point search
decided behind the scenes, and the phase breakdown (conversion vs compute)
the paper's Figure 7 studies.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

def main() -> None:
    rng = np.random.default_rng(0)
    n = 513  # the paper's favourite pathological size
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    # One call, BLAS dgemm semantics, numpy arrays in and out.
    timings = repro.PhaseTimings()
    c = repro.modgemm(a, b, timings=timings)

    err = np.max(np.abs(c - a @ b)) / np.max(np.abs(a @ b))
    print(f"multiplied {n} x {n}: max relative error vs numpy = {err:.2e}")

    # What the planner chose (Section 3.4): tile 33, depth 4, padded 528 —
    # instead of padding 513 all the way to 1024 as fixed T=32 would.
    tiling = repro.select_tiling(n)
    print(
        f"dynamic truncation picked tile {tiling.tile}, depth {tiling.depth} "
        f"-> padded size {tiling.padded} (pad {tiling.pad} per dimension)"
    )
    fixed = repro.TruncationPolicy.fixed(32).plan(n, n, n)[0]
    print(f"a fixed tile of 32 would have padded to {fixed.padded}")

    # Phase breakdown (Figure 7): conversion is a few percent of the total.
    print(
        f"time: {timings.total * 1e3:.1f} ms total, of which "
        f"{timings.convert_fraction * 100:.1f}% layout conversion"
    )

    # Keep operands in Morton order to amortise conversion (Figure 8).
    plan = repro.select_common_tiling((n, n, n))
    tm, tk, tn = plan
    a_mm = repro.MortonMatrix.from_dense(a, tilings=(tm, tk))
    b_mm = repro.MortonMatrix.from_dense(b, tilings=(tk, tn))
    c_mm = repro.modgemm_morton(a_mm, b_mm)
    assert np.allclose(c_mm.to_dense(), c)
    print("conversion-free Morton-to-Morton multiply agrees")

    # Repeated same-geometry multiplies: a session compiles the plan
    # (tiling search, pooled Morton buffers, workspace) once and reuses it.
    session = repro.GemmSession()
    session.multiply(a, b)                      # compiles the plan
    batch = [(rng.standard_normal((n, n)), b) for _ in range(4)]
    outs = session.multiply_many(batch)
    assert all(np.allclose(out, ai @ b) for (ai, _), out in zip(batch, outs))
    s = session.stats()
    print(
        f"session: {s.executes} multiplies, {s.plan_misses} plan compiled, "
        f"{s.plan_hits} cache hits, {s.bytes_pooled / 1e6:.1f} MB pooled"
    )


if __name__ == "__main__":
    main()
