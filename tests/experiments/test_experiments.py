"""Smoke and shape tests for the per-figure experiment runners.

These run with deliberately tiny grids/protocols; the full paper grids are
exercised by the benchmark harness.  Each test asserts the *qualitative*
facts the paper reports, not absolute numbers.
"""

import numpy as np
import pytest

from repro.analysis.timing import TimingProtocol
from repro.experiments import (
    fig2_padding,
    fig3_tile_locality,
    fig56_perf,
    fig7_conversion,
    fig8_noconversion,
    fig9_cache,
)
from repro.experiments.runner import ExperimentResult

FAST = TimingProtocol(small_threshold=0, small_reps=1, trials=1)


class TestRunnerInfra:
    def test_column_and_series(self):
        r = ExperimentResult(
            name="x", title="t", columns=("a", "b"),
            rows=[(1, 2.0), (3, 4.0)], chart={"s": ("a", "b")},
        )
        assert r.column("b") == [2.0, 4.0]
        assert r.series() == {"s": ([1, 3], [2.0, 4.0])}

    def test_to_text_includes_table_and_chart(self):
        r = ExperimentResult(
            name="x", title="Title", columns=("a", "b"),
            rows=[(1, 2.0), (3, 4.0)], chart={"s": ("a", "b")},
        )
        text = r.to_text()
        assert "Title" in text and "o=s" in text

    def test_to_csv(self):
        r = ExperimentResult("x", "t", ("a", "b"), [(1, 2)])
        assert r.to_csv().splitlines() == ["a,b", "1,2"]


class TestFig2:
    def test_paper_example_row(self):
        r = fig2_padding.run(sizes=[513])
        n, orig, dyn, fixed, tile = r.rows[0]
        assert (n, dyn, fixed, tile) == (513, 528, 1024, 33)

    def test_dynamic_padding_bounded_fixed_unbounded(self):
        r = fig2_padding.run(sizes=range(65, 1025, 3))
        dyn_pad = [row[2] - row[1] for row in r.rows]
        fixed_pad = [row[3] - row[1] for row in r.rows]
        assert max(dyn_pad) <= 15
        assert max(fixed_pad) > 400


class TestFig3:
    def test_contiguous_flat_noncontiguous_dips(self):
        r = fig3_tile_locality.run(machine="alpha", tiles=(32,), ldas=[224, 256, 288])
        non = r.column("noncontig_T32")
        con = r.column("contig_T32")
        # contiguous identical across lda; non-contiguous craters at 256.
        assert len(set(con)) == 1
        assert non[1] < 0.8 * non[0]
        assert non[1] < 0.8 * non[2]

    def test_ultra_variant_runs(self):
        r = fig3_tile_locality.run(machine="ultra", tiles=(24,), ldas=[128, 160])
        assert len(r.rows) == 2

    def test_lda_too_small_rejected(self):
        with pytest.raises(ValueError):
            fig3_tile_locality.tile_multiply_mflops(
                32, 64, fig3_tile_locality.MACHINES["alpha"]
            )


class TestFig56Measured:
    def test_structure_and_positivity(self):
        r = fig56_perf.run_measured(sizes=[96, 150], protocol=FAST)
        assert [row[0] for row in r.rows] == [96, 150]
        for row in r.rows:
            assert all(v > 0 for v in row[1:])

    def test_normalisation_column(self):
        r = fig56_perf.run_measured(sizes=[128], protocol=FAST)
        row = r.rows[0]
        assert row[4] == pytest.approx(row[1] / row[2])


class TestFig56Modeled:
    def test_alpha_model(self):
        r = fig56_perf.run_modeled(machine="alpha", sizes=[150, 300], scale=16)
        assert len(r.rows) == 2
        assert all(row[4] > 0 for row in r.rows)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            fig56_perf.run_modeled(sizes=[150], scale=8)


class TestFig7:
    def test_fraction_decreases_with_size(self):
        r = fig7_conversion.run(sizes=[128, 600], protocol=FAST)
        pct = r.column("convert_pct")
        assert 0 < pct[1] < pct[0] < 100

    def test_phases_sum(self):
        r = fig7_conversion.run(sizes=[128], protocol=FAST)
        n, to_m, comp, from_m, total, pct = r.rows[0]
        assert total == pytest.approx(to_m + comp + from_m)


class TestFig8:
    def test_noconv_faster_than_full(self):
        # min-of-3 trials to ride out scheduler noise on busy hosts; the
        # conversion work is a strict superset, so the ordering is robust
        # once noise is filtered (5% slack for clock jitter).
        protocol = TimingProtocol(small_threshold=0, small_reps=1, trials=3)
        r = fig8_noconversion.run(sizes=[300], protocol=protocol)
        row = r.rows[0]
        assert row[1] < row[2] * 1.05  # no-conversion beats full modgemm


class TestFig9:
    def test_scaled_run_shows_anomaly(self):
        # Default scale 4; restrict to the sizes bracketing the
        # 513-analogue (257) to keep the test fast.
        r = fig9_cache.run(scale=4, sizes=[255, 256, 257, 258])
        mod = dict(zip(r.column("n_scaled"), r.column("modgemm_miss_pct")))
        dge = dict(zip(r.column("n_scaled"), r.column("dgefmm_miss_pct")))
        # MODGEMM below DGEFMM throughout (paper's first observation).
        for n in (255, 256, 257, 258):
            assert mod[n] < dge[n]
        # The dramatic drop at the 513-analogue (second observation).
        assert mod[257] < 0.8 * mod[256]

    def test_explain_conflict_and_no_conflict(self):
        conflict = fig9_cache.explain(505)
        clean = fig9_cache.explain(513)
        assert "same sets" in conflict
        assert "not a multiple" in clean

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            fig9_cache.run(scale=2)

    def test_full_scale_path_small_sizes(self):
        # scale=1 exercises the paper-exact geometry; tiny sizes keep the
        # trace short.  (The paper-size spot check lives in
        # results/fig9_fullscale.txt.)
        r = fig9_cache.run(scale=1, sizes=[96, 97])
        assert len(r.rows) == 2
        for row in r.rows:
            assert 0 < row[4] < 100 and 0 < row[5] < 100
        # paper-scale labels equal scaled labels at scale 1
        assert r.rows[0][0] == r.rows[0][1] == 96
