"""Tests for the extension experiments (paper future work)."""

import pytest

from repro.analysis.timing import TimingProtocol
from repro.experiments import (
    ext_conflict_aware,
    ext_miss_classification,
    ext_parameters,
)

FAST = TimingProtocol(small_threshold=0, small_reps=1, trials=1)


class TestConflictAware:
    def test_window_shape(self):
        r = ext_conflict_aware.run(scale=4, sizes=[255, 256, 257])
        rows = {row[1]: row for row in r.rows}
        # Power-of-two regime: overpadded tile, lower misses, >1 flops.
        n, _, t_std, t_aw, m_std, m_aw, fr = rows[256]
        assert t_aw != t_std
        assert m_aw < m_std
        assert fr > 1.0
        # Clean regime: identical choice, flop ratio 1.
        assert rows[257][2] == rows[257][3]
        assert rows[257][6] == pytest.approx(1.0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            ext_conflict_aware.run(scale=3)


class TestMissClassification:
    def test_conflict_collapse(self):
        r = ext_miss_classification.run(scale=16, sizes=[128, 129])
        rows = {row[1]: row for row in r.rows}
        conflict_before = rows[128][6]
        conflict_after = rows[129][6]
        assert conflict_after < 0.6 * conflict_before
        # Decomposition sums to the total.
        for row in r.rows:
            assert row[3] == pytest.approx(row[4] + row[5] + row[6], rel=1e-9)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            ext_miss_classification.run(scale=2)


class TestAttribution:
    def test_quadrants_cool_down_at_clean_size(self):
        from repro.experiments import ext_attribution

        r = ext_attribution.run(scale=16)
        by_key = {(row[0], row[2]): row[5] for row in r.rows}
        sizes = sorted({row[0] for row in r.rows})
        before, after = sizes[0], sizes[1]
        # Aggregate C-quadrant miss rate drops at the conflict-free size.
        c_before = sum(by_key[(before, f"C.{q}")] for q in ("NW", "NE", "SW", "SE"))
        c_after = sum(by_key[(after, f"C.{q}")] for q in ("NW", "NE", "SW", "SE"))
        assert c_after < 0.8 * c_before

    def test_every_access_attributed(self):
        from repro.experiments import ext_attribution

        r = ext_attribution.run(scale=16)
        # no '?' region: the RegionMap covers every traced structure
        assert all(row[2] != "?" for row in r.rows)

    def test_bad_scale(self):
        from repro.experiments import ext_attribution

        with pytest.raises(ValueError):
            ext_attribution.run(scale=5)


class TestAccuracyExperiment:
    def test_errors_below_bound(self):
        from repro.experiments import ext_accuracy

        r = ext_accuracy.run(sizes=[64, 150], trials=1)
        for row in r.rows:
            n, *errors, bound = row
            assert all(e <= bound for e in errors)

    def test_error_grows_with_size(self):
        from repro.experiments import ext_accuracy

        r = ext_accuracy.run(sizes=[64, 513], trials=1)
        assert r.rows[1][1] >= r.rows[0][1]


class TestParameters:
    def test_transposes_do_not_blow_up(self):
        r = ext_parameters.run(sizes=[150], protocol=TimingProtocol(
            small_threshold=1000, small_reps=3, trials=2))
        ratios = {row[1]: row[7] for row in r.rows}
        # Fused transposition: within noise of the plain product.
        assert ratios["C=A'.B'"] < 2.0
        # beta accumulation adds bounded overhead.
        assert ratios["C=A.B+C"] < 2.5

    def test_case_table_complete(self):
        r = ext_parameters.run(sizes=[96], protocol=FAST)
        assert len(r.rows) == len(ext_parameters.CASES)
        assert r.rows[0][7] == pytest.approx(1.0)


class TestCliIntegration:
    def test_ext_conflict_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ext-conflict", "--scale", "16", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "aware_miss_pct" in out

    def test_ext_parameters_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ext-parameters", "--quick", "--sizes", "96", "--no-chart"]) == 0
        assert "vs_plain" in capsys.readouterr().out
