"""Autotuner behaviour: enumeration, model pruning, tuning, the CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cachesim.rank import (
    model_tilings,
    rank_tilings,
    resolve_machine,
    simulate_tilings,
)
from repro.engine.session import GemmSession
from repro.layout.padding import Tiling
from repro.tune.autotune import enumerate_tilings
from repro.tune.store import PlanStore


def _tilings(n, tile, depth):
    return tuple(Tiling(n=n, tile=tile, depth=depth) for _ in range(3))


class TestRank:
    def test_model_orders_depths_sensibly(self):
        # At 512 on a 16 KB cache, some recursion must beat depth-0
        # (one giant conventional product misses everywhere).
        flat = model_tilings(_tilings(512, 512, 0), "atom")
        deep = model_tilings(_tilings(512, 32, 4), "atom")
        assert deep.seconds < flat.seconds
        assert flat.flops == 2 * 512**3

    def test_model_counts_are_positive_and_exact_flops(self):
        from repro.analysis.flops import winograd_flops

        t = _tilings(512, 64, 3)
        run = model_tilings(t, "ultra")
        assert run.flops == winograd_flops(t)
        assert run.accesses > 0
        assert len(run.misses) == len(resolve_machine("ultra").levels)
        assert all(m > 0 for m in run.misses)

    def test_rank_never_drops_default(self):
        # Make the default the *worst* candidate; it must survive anyway.
        cands = [
            _tilings(512, 512, 0),  # default: no recursion at all
            _tilings(512, 64, 3),
            _tilings(512, 32, 4),
        ]
        ranked = rank_tilings(
            cands, "atom", keep_ratio=1.01, max_keep=1, default_index=0
        )
        by_default = {rc.is_default: rc for rc in ranked}
        assert by_default[True].kept
        # Cheapest-first ordering.
        seconds = [rc.run.seconds for rc in ranked]
        assert seconds == sorted(seconds)

    def test_rank_prunes_beyond_ratio(self):
        cands = [_tilings(512, 32, 4), _tilings(512, 512, 0)]
        ranked = rank_tilings(cands, "atom", keep_ratio=1.05, max_keep=8)
        kept = [rc for rc in ranked if rc.kept]
        assert len(kept) == 1

    def test_rank_validates_arguments(self):
        with pytest.raises(ValueError):
            rank_tilings([], keep_ratio=0.5)
        with pytest.raises(ValueError):
            rank_tilings([], max_keep=0)
        assert rank_tilings([]) == []
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine("cray")

    def test_simulate_agrees_with_model_on_ordering(self):
        # Exact simulation is slow; use a tiny shape, single-level cache.
        good = _tilings(64, 16, 2)
        bad = _tilings(64, 64, 0)
        sim_good = simulate_tilings(good, "atom")
        sim_bad = simulate_tilings(bad, "atom")
        mod_good = model_tilings(good, "atom")
        mod_bad = model_tilings(bad, "atom")
        assert (sim_good.seconds < sim_bad.seconds) == (
            mod_good.seconds < mod_bad.seconds
        )


class TestEnumerate:
    def test_default_leads_and_deduped(self):
        default = _tilings(512, 32, 4)
        cands = enumerate_tilings(512, 512, 512, default=default)
        assert cands[0] == default
        sigs = [tuple((t.tile, t.depth) for t in c) for c in cands]
        assert len(sigs) == len(set(sigs))

    def test_all_candidates_cover_the_problem(self):
        for cand in enumerate_tilings(513, 513, 513):
            for t in cand:
                assert t.padded >= t.n == 513

    def test_rectangular_shapes(self):
        cands = enumerate_tilings(384, 96, 768)
        assert cands  # at least one common depth exists
        for cand in cands:
            assert [t.n for t in cand] == [384, 96, 768]


class TestAutotune:
    def test_tune_records_decision_and_wins_are_sane(self, tmp_path):
        path = tmp_path / "plans.json"
        with GemmSession(plan_store=path) as s:
            result = s.autotune([96], rounds=2)
        assert result.tuned == 1
        rep = result.reports[0]
        assert rep.winner is not None
        assert rep.winner_seconds <= rep.default_seconds
        assert result.store_path == str(path)
        dec = PlanStore(path).lookup(96, 96, 96)
        assert dec is not None
        assert dec.source == "autotune"
        # The winner's decision must reproduce a plannable policy.
        assert dec.policy(96, 96, 96).plan(96, 96, 96) is not None

    def test_tuned_session_bit_identical_to_default(self, tmp_path):
        path = tmp_path / "plans.json"
        rng = np.random.default_rng(7)
        a = np.asfortranarray(rng.standard_normal((96, 96)))
        b = np.asfortranarray(rng.standard_normal((96, 96)))
        with GemmSession(plan_store=None) as plain:
            expected = plain.multiply(a, b)
        with GemmSession(plan_store=path) as s:
            s.autotune([96], rounds=2)
        with GemmSession(plan_store=path) as warm:
            got = warm.multiply(a, b)
            assert warm.stats().store_hits > 0
        # The default search space is bit-identity preserving.
        assert np.array_equal(got, expected)

    def test_autotune_seconds_reported(self, tmp_path):
        with GemmSession(plan_store=tmp_path / "p.json") as s:
            assert s.stats().autotune_seconds == 0.0
            s.autotune([64], rounds=1)
            assert s.stats().autotune_seconds > 0.0

    def test_autotune_emits_trial_events(self, tmp_path):
        with GemmSession(plan_store=tmp_path / "p.json", trace=True) as s:
            s.autotune([64], rounds=1)
            kinds = [e.kind for e in s.trace.events()]
        assert "autotune_trial" in kinds

    def test_panelled_shape_skipped(self, tmp_path):
        # Wildly rectangular: no common tiling for the default policy.
        with GemmSession(plan_store=tmp_path / "p.json") as s:
            result = s.autotune([(4096, 16, 16)], rounds=1)
        assert result.tuned == 0
        assert result.reports[0].skipped is not None

    def test_tiles_search_widens_space(self, tmp_path):
        with GemmSession(plan_store=tmp_path / "p.json") as s:
            narrow = s.autotune([96], rounds=1)
            wide = s.autotune([96], rounds=1, tiles=True)
        assert wide.reports[0].survivors >= narrow.reports[0].survivors

    def test_validates_arguments(self, tmp_path):
        with GemmSession(plan_store=None) as s:
            with pytest.raises(ValueError):
                s.autotune([64], rounds=0)
            with pytest.raises(ValueError):
                s.autotune([64], margin=1.5)

    def test_dry_run_without_store(self):
        with GemmSession(plan_store=None) as s:
            result = s.autotune([64], rounds=1)
        assert result.store_path is None
        assert result.tuned == 1


class TestCli:
    def _run(self, *argv, env_extra=None):
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env["PYTHONPATH"] = src
        env.pop("REPRO_PLAN_STORE", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.tune", *argv],
            env=env, capture_output=True, text=True, timeout=120,
        )

    def test_cli_tunes_and_persists(self, tmp_path):
        path = tmp_path / "plans.json"
        proc = self._run("64", "--store", str(path), "--rounds", "1")
        assert proc.returncode == 0, proc.stderr
        assert "64x64x64" in proc.stdout
        assert str(path) in proc.stdout
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.plan_store"
        assert doc["entries"]

    def test_cli_dry_run_without_store(self):
        proc = self._run("64", "--rounds", "1")
        assert proc.returncode == 0, proc.stderr
        assert "dry run" in proc.stdout

    def test_cli_rejects_malformed_shape(self):
        proc = self._run("64x64")
        assert proc.returncode != 0
