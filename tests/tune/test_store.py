"""Plan-store robustness: versioning, corruption tolerance, concurrency."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings

import pytest

from repro.core.truncation import TruncationPolicy
from repro.tune.store import (
    STORE_SCHEMA,
    STORE_VERSION,
    PlanStore,
    StoredDecision,
    shape_key,
)

DEC = StoredDecision(
    tile_m=33, tile_k=33, tile_n=33, depth=4,
    schedule="sequential", memory="two_temp",
    measured_seconds=0.05, source="autotune",
)


def test_roundtrip(tmp_path):
    path = tmp_path / "plans.json"
    store = PlanStore(path)
    store.record(513, 513, 513, DEC)
    store.record_calibration("513x513:t33x33:d4:float64", "indexed", 0.002)
    store.set_artifact("accumulate_cap", 1 << 20)
    assert store.dirty
    assert store.flush() == path

    fresh = PlanStore(path)
    dec = fresh.lookup(513, 513, 513)
    assert dec == DEC
    cal = fresh.lookup_calibration("513x513:t33x33:d4:float64")
    assert cal == {"mode": "indexed", "baseline": 0.002}
    assert fresh.get_artifact("accumulate_cap") == 1 << 20
    assert not fresh.dirty


def test_lookup_key_discriminates(tmp_path):
    store = PlanStore(tmp_path / "plans.json")
    store.record(513, 513, 513, DEC)
    assert store.lookup(513, 513, 513) == DEC
    assert store.lookup(513, 513, 514) is None
    assert store.lookup(513, 513, 513, dtype="float32") is None
    assert store.lookup(513, 513, 513, variant="strassen") is None
    assert store.lookup(513, 513, 513, fused_pack=False) is None


def test_decision_policy_pins_tiling():
    policy = DEC.policy(513, 513, 513)
    tilings = policy.plan(513, 513, 513)
    assert tilings is not None
    assert all(t.tile == 33 and t.depth == 4 for t in tilings)
    assert policy.truncation_point() == 33
    # Other dims fall back to dynamic selection, never the pin.
    other = policy.plan(256, 256, 256)
    assert other is None or all(t.n == 256 for t in other)


def test_missing_file_is_empty_without_warning(tmp_path):
    store = PlanStore(tmp_path / "absent.json")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.lookup(513, 513, 513) is None
        assert len(store) == 0


def test_garbage_file_warns_and_loads_empty(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text("{ this is not json")
    store = PlanStore(path)
    with pytest.warns(RuntimeWarning, match="not valid JSON"):
        assert store.lookup(513, 513, 513) is None
    # The store stays usable: record + flush recovers the file (flush
    # re-reads the still-corrupt file to merge, warning once more).
    store.record(513, 513, 513, DEC)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        store.flush()
    assert PlanStore(path).lookup(513, 513, 513) == DEC


def test_truncated_file_warns_and_loads_empty(tmp_path):
    path = tmp_path / "plans.json"
    good = PlanStore(path)
    good.record(513, 513, 513, DEC)
    good.flush()
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])
    with pytest.warns(RuntimeWarning):
        assert PlanStore(path).lookup(513, 513, 513) is None


def test_schema_version_mismatch_ignored_silently(tmp_path):
    path = tmp_path / "plans.json"
    doc = {
        "schema": STORE_SCHEMA,
        "version": STORE_VERSION + 1,
        "entries": {shape_key(513, 513, 513): DEC.as_doc()},
    }
    path.write_text(json.dumps(doc))
    store = PlanStore(path)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.lookup(513, 513, 513) is None
    # A foreign schema marker is likewise not ours to parse.
    path.write_text(json.dumps({"schema": "other.thing", "version": 1}))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert PlanStore(path).lookup(513, 513, 513) is None


def test_malformed_entry_skipped_not_fatal(tmp_path):
    path = tmp_path / "plans.json"
    doc = {
        "schema": STORE_SCHEMA,
        "version": STORE_VERSION,
        "entries": {
            shape_key(513, 513, 513): DEC.as_doc(),
            shape_key(100, 100, 100): {"tile_m": "not-a-number"},
        },
    }
    path.write_text(json.dumps(doc))
    store = PlanStore(path)
    assert store.lookup(513, 513, 513) == DEC
    assert store.lookup(100, 100, 100) is None


def test_flush_merges_with_concurrent_writer(tmp_path):
    """Two stores flushing disjoint entries both land in the file."""
    path = tmp_path / "plans.json"
    first = PlanStore(path)
    second = PlanStore(path)
    first.record(513, 513, 513, DEC)
    other = StoredDecision(tile_m=32, tile_k=32, tile_n=32, depth=5)
    second.record(1024, 1024, 1024, other)
    first.flush()
    second.flush()  # must merge over, not clobber, first's entry
    final = PlanStore(path)
    assert final.lookup(513, 513, 513) == DEC
    assert final.lookup(1024, 1024, 1024) == other


def test_flush_is_noop_when_clean(tmp_path):
    path = tmp_path / "plans.json"
    store = PlanStore(path)
    assert store.flush() is None
    assert not path.exists()


_WRITER = """
import sys
from repro.tune.store import PlanStore, StoredDecision
path, start = sys.argv[1], int(sys.argv[2])
store = PlanStore(path)
for i in range(start, start + 20):
    store.record(i, i, i, StoredDecision(
        tile_m=16, tile_k=16, tile_n=16, depth=1))
    store.flush()
print("ok")
"""


def test_concurrent_processes_do_not_corrupt(tmp_path):
    """Interleaved flushes from two processes lose nothing and stay valid."""
    path = tmp_path / "plans.json"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(path), str(start)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for start in (1000, 2000)
    ]
    for p in procs:
        out, err = p.communicate(timeout=60)
        assert p.returncode == 0, err.decode()
        assert out.decode().strip() == "ok"
    final = PlanStore(path)
    assert len(final) == 40
    for start in (1000, 2000):
        for i in range(start, start + 20):
            assert final.lookup(i, i, i) is not None


def test_resolve_precedence(tmp_path, monkeypatch):
    env_path = tmp_path / "env.json"
    arg_path = tmp_path / "arg.json"
    # No env, no arg: disabled.
    monkeypatch.delenv("REPRO_PLAN_STORE", raising=False)
    assert PlanStore.resolve() is None
    # Env set: used when the argument is omitted.
    monkeypatch.setenv("REPRO_PLAN_STORE", str(env_path))
    resolved = PlanStore.resolve()
    assert resolved is not None and resolved.path == env_path
    # Explicit argument wins over the environment.
    explicit = PlanStore.resolve(arg_path)
    assert explicit is not None and explicit.path == arg_path
    # Explicit None disables even with the env var set.
    assert PlanStore.resolve(None) is None
    # A PlanStore instance passes through unchanged.
    shared = PlanStore(arg_path)
    assert PlanStore.resolve(shared) is shared
    # Empty env value means disabled.
    monkeypatch.setenv("REPRO_PLAN_STORE", "   ")
    assert PlanStore.resolve() is None


def test_record_calibration_validates_mode(tmp_path):
    store = PlanStore(tmp_path / "plans.json")
    with pytest.raises(ValueError, match="indexed"):
        store.record_calibration("some-key", "baseline")


def test_pinned_policy_rejects_bad_geometry():
    with pytest.raises(Exception):
        TruncationPolicy.pinned_tiling(513, 513, 513, (1, 1, 1), 0)
