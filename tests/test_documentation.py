"""Documentation quality gates.

Deliverable (e) requires doc comments on every public item; these tests
make that a checked invariant rather than an aspiration: every module,
public class and public function in ``repro`` must carry a docstring, and
the repo-level documents must exist and mention what they promise.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO = pathlib.Path(__file__).resolve().parent.parent


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module.__name__:
                continue  # re-export; checked at its home module
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(obj):
                for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                    if mname.startswith("_") or meth.__module__ != module.__name__:
                        continue
                    if not (meth.__doc__ and meth.__doc__.strip()):
                        missing.append(f"{name}.{mname}")
    assert not missing, f"undocumented public items in {module.__name__}: {missing}"


class TestRepoDocuments:
    def test_design_md_covers_every_figure(self):
        text = (REPO / "DESIGN.md").read_text()
        for fig in ("Fig. 2", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert fig in text, fig
        assert "Substitutions" in text

    def test_experiments_md_records_paper_vs_measured(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 2", "Figure 3", "Figure 7", "Figure 8", "Figure 9"):
            assert fig in text, fig
        assert "Measured" in text and "paper" in text.lower()

    def test_readme_has_install_quickstart_architecture(self):
        text = (REPO / "README.md").read_text()
        for section in ("Install", "Quickstart", "Architecture"):
            assert section in text, section

    def test_examples_exist_and_are_documented(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        for ex in examples:
            src = ex.read_text()
            assert src.lstrip().startswith(('"""', '#!')), ex.name
