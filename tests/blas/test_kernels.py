"""Unit tests for the leaf multiplication kernels."""

import numpy as np
import pytest

from repro.blas.kernels import (
    KERNELS,
    blocked_matmul,
    get_kernel,
    leaf_matmul,
    naive_matmul,
)

ALL = [leaf_matmul, blocked_matmul, naive_matmul]


@pytest.mark.parametrize("kernel", ALL)
class TestKernelContract:
    def test_overwrite(self, rng, kernel):
        a = rng.standard_normal((6, 5))
        b = rng.standard_normal((5, 7))
        out = np.full((6, 7), np.nan)  # poison: must be fully overwritten
        kernel(a, b, out)
        assert np.allclose(out, a @ b)

    def test_accumulate(self, rng, kernel):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        out = np.ones((4, 4))
        kernel(a, b, out, accumulate=True)
        assert np.allclose(out, 1.0 + a @ b)

    def test_fortran_order_destination(self, rng, kernel):
        a = np.asfortranarray(rng.standard_normal((8, 8)))
        b = np.asfortranarray(rng.standard_normal((8, 8)))
        out = np.empty((8, 8), order="F")
        kernel(a, b, out)
        assert np.allclose(out, a @ b)

    def test_strided_destination(self, rng, kernel):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        big = np.zeros((8, 8), order="F")
        out = big[2:6, 1:5]  # non-contiguous view
        kernel(a, b, out)
        assert np.allclose(out, a @ b)


class TestShapeValidation:
    def test_blocked_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros((2, 3)), np.zeros((4, 2)), np.zeros((2, 2)))

    def test_naive_rejects_bad_out(self):
        with pytest.raises(ValueError):
            naive_matmul(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3)))

    def test_mismatch_raises_typed_shape_error(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            blocked_matmul(np.zeros((2, 3)), np.zeros((4, 2)), np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            naive_matmul(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3)))


class TestAccumulateScratchBound:
    def test_small_requests_are_cached(self):
        from repro.blas import kernels

        buf1 = kernels._accumulate_scratch(1024)
        buf2 = kernels._accumulate_scratch(512)
        assert np.shares_memory(buf1, buf2)

    def test_oversized_requests_not_pinned(self):
        from repro.blas import kernels

        cached_before = getattr(kernels._acc_scratch, "buf", None)
        big = kernels._accumulate_scratch(kernels._ACC_SCRATCH_MAX_ELEMS + 1)
        assert big.size == kernels._ACC_SCRATCH_MAX_ELEMS + 1
        cached_after = getattr(kernels._acc_scratch, "buf", None)
        # The thread-local buffer is unchanged by the oversized request.
        if cached_before is None:
            assert cached_after is None or (
                cached_after.size <= kernels._ACC_SCRATCH_MAX_ELEMS
            )
        else:
            assert cached_after is cached_before

    def test_oversized_accumulate_still_correct(self, rng):
        # End-to-end through the numpy kernel's accumulate path.
        from repro.blas import kernels

        orig = kernels.set_accumulate_cap(16)  # force the transient path
        try:
            a = rng.standard_normal((8, 8))
            b = rng.standard_normal((8, 8))
            out = np.asfortranarray(np.ones((8, 8)))
            leaf_matmul(a, b, out, accumulate=True)
            assert np.allclose(out, 1.0 + a @ b)
        finally:
            kernels.set_accumulate_cap(orig)


class TestBlocking:
    def test_block_size_does_not_change_result(self, rng):
        a = rng.standard_normal((13, 17))
        b = rng.standard_normal((17, 11))
        ref = a @ b
        for block in (1, 3, 8, 64):
            out = np.empty((13, 11))
            blocked_matmul(a, b, out, block=block)
            assert np.allclose(out, ref)


class TestRegistry:
    def test_names(self):
        assert {"numpy", "blocked", "naive", "mixed", "numba"} <= set(KERNELS)

    def test_get_by_name(self):
        assert get_kernel("numpy") is leaf_matmul

    def test_get_passthrough(self):
        f = lambda a, b, out, accumulate=False: None
        assert get_kernel(f) is f

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_kernel("fast")
