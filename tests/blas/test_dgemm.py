"""Unit tests for the dgemm interface contract."""

import numpy as np
import pytest

from repro.blas.dgemm import GemmProblem, OpKind, dgemm_reference


class TestOpKind:
    def test_parse_aliases(self):
        assert OpKind.parse("n") is OpKind.NOTRANS
        assert OpKind.parse("N") is OpKind.NOTRANS
        assert OpKind.parse("t") is OpKind.TRANS
        assert OpKind.parse("T") is OpKind.TRANS
        assert OpKind.parse("c") is OpKind.TRANS  # real matrices
        assert OpKind.parse(OpKind.TRANS) is OpKind.TRANS

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            OpKind.parse("x")


class TestGemmProblem:
    def test_dimensions_notrans(self, rng):
        p = GemmProblem.create(rng.standard_normal((3, 4)), rng.standard_normal((4, 5)))
        assert (p.m, p.k, p.n) == (3, 4, 5)

    def test_dimensions_trans(self, rng):
        p = GemmProblem.create(
            rng.standard_normal((4, 3)),
            rng.standard_normal((5, 4)),
            op_a="t",
            op_b="t",
        )
        assert (p.m, p.k, p.n) == (3, 4, 5)

    def test_inner_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            GemmProblem.create(
                rng.standard_normal((3, 4)), rng.standard_normal((3, 5))
            )

    def test_c_shape_checked(self, rng):
        with pytest.raises(ValueError):
            GemmProblem.create(
                rng.standard_normal((3, 4)),
                rng.standard_normal((4, 5)),
                c=np.zeros((3, 4)),
            )

    def test_beta_without_c_rejected(self, rng):
        with pytest.raises(ValueError):
            GemmProblem.create(
                rng.standard_normal((3, 4)),
                rng.standard_normal((4, 5)),
                beta=1.0,
            )

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            GemmProblem.create(np.zeros(3), np.zeros((3, 3)))

    def test_op_views_are_views(self, rng):
        a = rng.standard_normal((3, 4))
        p = GemmProblem.create(a, rng.standard_normal((3, 5)), op_a="t")
        assert p.op_a_view.base is a or p.op_a_view is a


class TestApplyScaling:
    def test_beta_zero_alpha_one_is_identity(self, rng):
        p = GemmProblem.create(rng.standard_normal((2, 3)), rng.standard_normal((3, 2)))
        d = rng.standard_normal((2, 2))
        assert p.apply_scaling(d, None) is d

    def test_beta_zero_alpha_scales_in_place(self, rng):
        p = GemmProblem.create(
            rng.standard_normal((2, 3)), rng.standard_normal((3, 2)), alpha=3.0
        )
        d = np.ones((2, 2))
        out = p.apply_scaling(d, None)
        assert np.all(out == 3.0)

    def test_general_alpha_beta(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((3, 2))
        c0 = rng.standard_normal((2, 2))
        p = GemmProblem.create(a, b, alpha=2.0, beta=-1.5, c=c0)
        d = a @ b
        c = c0.copy()
        out = p.apply_scaling(d.copy(), c)
        assert np.allclose(out, 2.0 * d - 1.5 * c0)


class TestReference:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((7, 8))
        b = rng.standard_normal((8, 9))
        assert np.allclose(dgemm_reference(a, b), a @ b)

    def test_full_contract(self, rng):
        a = rng.standard_normal((8, 7))
        b = rng.standard_normal((9, 8))
        c = rng.standard_normal((7, 9))
        out = dgemm_reference(a, b, c=c, alpha=0.5, beta=2.0, op_a="t", op_b="t")
        assert np.allclose(out, 0.5 * (a.T @ b.T) + 2.0 * c)

    def test_does_not_mutate_c(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        c = rng.standard_normal((3, 3))
        c0 = c.copy()
        dgemm_reference(a, b, c=c, beta=1.0)
        assert np.array_equal(c, c0)
