"""Integration tests: the full pipelines, public API surface, and CLI."""

import numpy as np
import pytest

import repro
from repro.analysis.timing import TimingProtocol
from repro.cachesim import CacheHierarchy, SimulatorSink, scale_machine, ATOM_EXPERIMENT
from repro.cachesim.tracegen import dgefmm_trace, modgemm_trace
from repro.experiments.__main__ import main
from repro.layout.padding import TileRange, select_common_tiling

from ..conftest import assert_gemm_close


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet(self):
        a = np.random.default_rng(0).standard_normal((513, 513))
        b = np.random.default_rng(1).standard_normal((513, 513))
        c = repro.modgemm(a, b)
        assert np.allclose(c, a @ b)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_three_implementations_agree(self, rng):
        a = rng.standard_normal((130, 140))
        b = rng.standard_normal((140, 120))
        ref = a @ b
        assert_gemm_close(repro.modgemm(a, b), ref)
        assert_gemm_close(repro.dgefmm(a, b, policy=32), ref)
        assert_gemm_close(repro.dgemmw(a, b, policy=32), ref)


class TestMortonWorkflow:
    def test_convert_once_multiply_many(self, rng):
        # The Figure 8 usage pattern as an API workflow.
        n = 150
        plan = repro.select_common_tiling((n, n, n))
        tm, tk, tn = plan
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        a_mm = repro.MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = repro.MortonMatrix.from_dense(b, tilings=(tk, tn))
        c1 = repro.modgemm_morton(a_mm, b_mm)
        c2 = repro.modgemm_morton(a_mm, b_mm)
        assert np.array_equal(c1.to_dense(), c2.to_dense())
        assert_gemm_close(c1.to_dense(), a @ b)

    def test_chained_products(self, rng):
        # (A.B).C computed staying in Morton order between products.
        n = 96
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = rng.standard_normal((n, n))
        ab = repro.modgemm(a, b)
        abc = repro.modgemm(ab, c)
        assert_gemm_close(abc, a @ b @ c, tol=1e-8)


class TestTraceSimulationPipeline:
    def test_modgemm_vs_dgefmm_miss_ordering(self):
        # The paper's headline cache result at a tiny scaled geometry.
        machine = scale_machine(ATOM_EXPERIMENT, 16)
        tile_range = TileRange(4, 16)
        n = 128
        plan = select_common_tiling((n, n, n), tile_range)
        h1 = CacheHierarchy(list(machine.levels))
        modgemm_trace(plan, SimulatorSink(h1))
        h2 = CacheHierarchy(list(machine.levels))
        dgefmm_trace(n, n, n, SimulatorSink(h2), truncation=16)
        assert 0 < h1.miss_ratio() < 1
        assert 0 < h2.miss_ratio() < 1

    def test_trace_deterministic_given_plan(self):
        # Same plan, same flop/access tallies (addresses differ per run).
        from repro.cachesim.trace import CountingSink

        plan = select_common_tiling((100, 100, 100))
        a = modgemm_trace(plan, CountingSink())
        b = modgemm_trace(plan, CountingSink())
        assert (a.flops, a.accesses) == (b.flops, b.accesses)


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2", "--sizes", "513,514", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "528" in out and "1024" in out

    def test_fig9_explain(self, capsys):
        assert main(["fig9", "--explain", "505"]) == 0
        assert "same sets" in capsys.readouterr().out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--quick", "--no-chart"]) == 0
        assert "MFLOPS" in capsys.readouterr().out or True

    def test_csv_output(self, capsys):
        assert main(["fig2", "--sizes", "100", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("n,")

    def test_fig5_quick_sizes(self, capsys):
        assert main(["fig5", "--quick", "--sizes", "96,128", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "modgemm/dgefmm" in out

    def test_fig5_model_cli(self, capsys):
        assert main(["fig5-model", "--sizes", "150", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "alpha-miata" in out

    def test_fig6_model_cli(self, capsys):
        assert main(["fig6-model", "--sizes", "150", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "sun-ultra60" in out

    def test_fig7_cli(self, capsys):
        assert main(["fig7", "--quick", "--sizes", "128", "--no-chart"]) == 0
        assert "convert_pct" in capsys.readouterr().out

    def test_chart_rendering_path(self, capsys):
        # default (charts on) exercises the ascii_chart integration
        assert main(["fig2", "--sizes", "100,200,300"]) == 0
        out = capsys.readouterr().out
        assert "+---" in out or "|" in out


class TestNumericalBehaviour:
    def test_error_scales_like_strassen_not_worse(self, rng):
        from repro.analysis.accuracy import higham_bound_factor, max_relative_error

        for n in (150, 513):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            err = max_relative_error(repro.modgemm(a, b), a @ b)
            assert err < higham_bound_factor(n, 16)

    def test_integer_valued_inputs_exact_at_leaf_scale(self):
        # Small integer matrices multiply exactly (no rounding at all).
        rng = np.random.default_rng(0)
        a = rng.integers(-8, 8, size=(60, 60)).astype(float)
        b = rng.integers(-8, 8, size=(60, 60)).astype(float)
        assert np.array_equal(repro.modgemm(a, b), a @ b)
