"""Smoke tests: the example scripts must run as advertised.

Only the fast examples run here (the benchmark-style ones — blas_drop_in,
cache_study, tuning_explorer — take minutes by design and are exercised
manually / by the experiment suite they delegate to; their importability
and syntax are still checked).
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"

FAST = [
    "quickstart.py",
    "rectangular_matrices.py",
    "simulator_tour.py",
    "trace_demo.py",
]
SLOW = ["blas_drop_in.py", "cache_study.py", "tuning_explorer.py"]


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


@pytest.mark.parametrize("name", FAST + SLOW)
def test_example_parses_and_has_main_guard(name):
    src = (EXAMPLES / name).read_text()
    tree = ast.parse(src)
    assert ast.get_docstring(tree), f"{name} needs a module docstring"
    assert '__main__' in src, f"{name} needs a __main__ guard"


def test_quickstart_mentions_paper_example():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    ).stdout
    assert "528" in out and "1024" in out  # the 513 padding story
