"""Unit tests for the Strassen-Winograd recursion on Morton operands."""

import numpy as np
import pytest

from repro.core.ops import NumpyOps
from repro.core.winograd import multiply_morton, winograd_multiply
from repro.core.workspace import Workspace
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import TileRange, select_common_tiling

from ..conftest import assert_gemm_close


def morton_operands(m, k, n, rng, tile_range=TileRange()):
    plan = select_common_tiling((m, k, n), tile_range)
    assert plan is not None
    tm, tk, tn = plan
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
    b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
    c_mm = MortonMatrix.empty(m, n, tm, tn)
    return a, b, a_mm, b_mm, c_mm


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims",
        [
            (64, 64, 64),      # depth 1
            (100, 100, 100),   # depth 1, odd tiles
            (150, 150, 150),   # depth 2
            (130, 200, 170),   # rectangular tiles, common depth
            (513, 513, 513),   # the paper's example: tile 33, depth 4
        ],
    )
    def test_matches_numpy(self, rng, dims):
        m, k, n = dims
        a, b, a_mm, b_mm, c_mm = morton_operands(m, k, n, rng)
        winograd_multiply(a_mm, b_mm, c_mm)
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_depth_zero_is_single_leaf(self, rng):
        a, b, a_mm, b_mm, c_mm = morton_operands(20, 30, 25, rng)
        assert a_mm.depth == 0
        winograd_multiply(a_mm, b_mm, c_mm)
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_pad_only_roundoff_residue(self, rng):
        # The redundant arithmetic on the pad cancels exactly in real
        # arithmetic; in floats a roundoff-scale residue remains (the
        # Winograd intermediates, e.g. T1 = B12 - B11, are nonzero at pad
        # positions even though the final product's pad is zero).  The
        # residue must stay at noise level and never reach to_dense().
        a, b, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        assert a_mm.pad_is_zero() and b_mm.pad_is_zero()
        winograd_multiply(a_mm, b_mm, c_mm)
        dense = c_mm.to_dense()
        pad_mass = float(np.sum(np.abs(c_mm.buf))) - float(np.sum(np.abs(dense)))
        assert abs(pad_mass) < 1e-8 * float(np.sum(np.abs(dense)))

    def test_multiply_morton_wrapper(self, rng):
        a, b, a_mm, b_mm, _ = morton_operands(100, 100, 100, rng)
        c_mm = multiply_morton(a_mm, b_mm)
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_workspace_reuse_across_calls(self, rng):
        a, b, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        ws = Workspace(a_mm.depth, a_mm.tile_r, a_mm.tile_c, b_mm.tile_c, with_q=True)
        winograd_multiply(a_mm, b_mm, c_mm, workspace=ws)
        first = c_mm.to_dense()
        winograd_multiply(a_mm, b_mm, c_mm, workspace=ws)
        assert np.array_equal(c_mm.to_dense(), first)

    def test_operands_not_mutated(self, rng):
        a, b, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        a0, b0 = a_mm.buf.copy(), b_mm.buf.copy()
        winograd_multiply(a_mm, b_mm, c_mm)
        assert np.array_equal(a_mm.buf, a0)
        assert np.array_equal(b_mm.buf, b0)

    def test_workspace_never_read_before_written(self, rng):
        # Poison the scratch with NaN: if any schedule step read scratch
        # before writing it, NaN would propagate into the product.  This
        # pins the write-before-read discipline of the linearised schedule.
        a, b, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        ws = Workspace(a_mm.depth, a_mm.tile_r, a_mm.tile_c, b_mm.tile_c, with_q=True)
        for lv in ws.levels:
            for buf in (lv.s, lv.t, lv.p, lv.q):
                buf.buf[:] = np.nan
        winograd_multiply(a_mm, b_mm, c_mm, workspace=ws)
        assert not np.any(np.isnan(c_mm.buf))
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_destination_never_read_before_written(self, rng):
        # Same poison discipline for the C buffer (beta=0 core semantics).
        a, b, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        c_mm.buf[:] = np.nan
        winograd_multiply(a_mm, b_mm, c_mm)
        assert not np.any(np.isnan(c_mm.buf))


class TestValidation:
    def test_depth_mismatch_rejected(self, rng):
        _, _, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        bad_b = MortonMatrix.from_dense(rng.standard_normal((152, 152)))
        if bad_b.depth != a_mm.depth:
            with pytest.raises(ValueError):
                winograd_multiply(a_mm, bad_b, c_mm)

    def test_inner_tile_mismatch_rejected(self, rng):
        from repro.layout.padding import Tiling

        a_mm = MortonMatrix.zeros(64, 64, Tiling(64, 32, 1), Tiling(64, 32, 1))
        b_mm = MortonMatrix.zeros(66, 64, Tiling(66, 33, 1), Tiling(64, 32, 1))
        c_mm = MortonMatrix.zeros(64, 64, Tiling(64, 32, 1), Tiling(64, 32, 1))
        with pytest.raises(ValueError):
            winograd_multiply(a_mm, b_mm, c_mm)

    def test_workspace_without_q_rejected(self, rng):
        _, _, a_mm, b_mm, c_mm = morton_operands(150, 150, 150, rng)
        ws = Workspace(a_mm.depth, a_mm.tile_r, a_mm.tile_c, b_mm.tile_c, with_q=False)
        with pytest.raises(ValueError):
            winograd_multiply(a_mm, b_mm, c_mm, workspace=ws)


class _CountingOps(NumpyOps):
    """Arithmetic backend that also counts operations by kind."""

    def __init__(self):
        super().__init__("numpy")
        self.adds = 0
        self.leaf_mults = 0

    def add(self, dst, x, y):
        self.adds += 1
        super().add(dst, x, y)

    def sub(self, dst, x, y):
        self.adds += 1
        super().sub(dst, x, y)

    def iadd(self, dst, x):
        self.adds += 1
        super().iadd(dst, x)

    def leaf_mult(self, a, b, dst):
        self.leaf_mults += 1
        super().leaf_mult(a, b, dst)


class TestSchedule:
    def test_seven_products_fifteen_additions(self, rng):
        # Per internal node: exactly 7 recursive products, 15 additions.
        for dims in [(100, 100, 100), (150, 150, 150)]:
            a, b, a_mm, b_mm, c_mm = morton_operands(*dims, rng)
            depth = a_mm.depth
            assert depth >= 1
            ops = _CountingOps()
            winograd_multiply(a_mm, b_mm, c_mm, ops=ops)
            nodes = sum(7**l for l in range(depth))
            assert ops.leaf_mults == 7**depth
            assert ops.adds == 15 * nodes
            assert_gemm_close(c_mm.to_dense(), a @ b)
