"""Unit tests for the recursion workspace."""

import numpy as np
import pytest

from repro.core.workspace import Workspace


class TestGeometry:
    def test_level_count(self):
        ws = Workspace(depth=3, tile_m=8, tile_k=8, tile_n=8)
        assert len(ws.levels) == 3

    def test_at_indexing(self):
        ws = Workspace(depth=3, tile_m=8, tile_k=8, tile_n=8)
        # Children of the top level have depth 2.
        lv = ws.at(2)
        assert lv.s.depth == 2
        assert lv.s.padded_rows == 8 * 4
        lv0 = ws.at(0)
        assert lv0.s.depth == 0

    def test_scratch_shapes_follow_operands(self):
        ws = Workspace(depth=2, tile_m=3, tile_k=5, tile_n=7)
        lv = ws.at(1)
        assert (lv.s.tile_r, lv.s.tile_c) == (3, 5)  # A-shaped
        assert (lv.t.tile_r, lv.t.tile_c) == (5, 7)  # B-shaped
        assert (lv.p.tile_r, lv.p.tile_c) == (3, 7)  # C-shaped

    def test_q_optional(self):
        assert Workspace(2, 4, 4, 4, with_q=False).at(1).q is None
        assert Workspace(2, 4, 4, 4, with_q=True).at(1).q is not None

    def test_depth_zero_has_no_levels(self):
        ws = Workspace(depth=0, tile_m=4, tile_k=4, tile_n=4)
        assert ws.levels == []

    def test_total_bytes_geometric(self):
        ws = Workspace(depth=4, tile_m=8, tile_k=8, tile_n=8, with_q=True)
        # 4 quarter buffers per level: total < 4/3 of a full matrix.
        full = (8 << 4) * (8 << 4) * 8
        assert ws.total_bytes < 4 * full // 3 + 1
        assert ws.total_bytes > 0


class TestSchedules:
    def test_default_is_classic(self):
        assert Workspace(2, 4, 4, 4).schedule == "classic"

    def test_two_temp_halves_square_scratch(self):
        classic = Workspace(3, 8, 8, 8, with_q=True)
        lean = Workspace(3, 8, 8, 8, schedule="two_temp")
        # Square geometry: max(|A|,|C|)+|B| = 2 quarters vs classic's 4.
        assert lean.nbytes * 2 == classic.nbytes

    def test_two_temp_p_aliases_s_buffer(self):
        ws = Workspace(2, 4, 4, 4, schedule="two_temp")
        lv = ws.at(1)
        assert lv.q is None
        assert np.shares_memory(lv.s.buf, lv.p.buf)
        # nbytes counts the shared buffer once.
        assert lv.nbytes == lv.s.buf.nbytes + lv.t.buf.nbytes

    def test_two_temp_rectangular_x_sized_to_max(self):
        # |A quarter| = 3*5, |C quarter| = 3*7 -> X holds the C shape.
        ws = Workspace(1, 3, 5, 7, schedule="two_temp")
        lv = ws.at(0)
        assert lv.p.size == 3 * 7
        assert lv.s.size == 3 * 5
        assert lv.nbytes == (3 * 7 + 5 * 7) * 8

    def test_ip_overwrite_owns_nothing(self):
        ws = Workspace(3, 4, 4, 4, schedule="ip_overwrite")
        assert ws.levels == []
        assert ws.nbytes == 0
        assert ws.total_bytes == 0

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown workspace schedule"):
            Workspace(2, 4, 4, 4, schedule="lean")

    def test_with_q_only_for_classic(self):
        with pytest.raises(ValueError, match="with_q"):
            Workspace(2, 4, 4, 4, with_q=True, schedule="two_temp")


class TestPoisonQuiescence:
    """The poison/poison_intact round trip debug mode relies on."""

    def test_workspace_round_trip(self):
        from repro.observe import POISON

        ws = Workspace(2, 4, 4, 4, with_q=True)
        ws.poison()
        assert ws.poison_intact()
        buf = next(ws._buffers())
        assert buf[0] == POISON
        buf[3] = 0.0  # one stray write anywhere breaks the checksum
        assert not ws.poison_intact()
        ws.poison()
        assert ws.poison_intact()

    def test_two_temp_workspace_round_trip(self):
        ws = Workspace(2, 4, 4, 4, schedule="two_temp")
        ws.poison()
        assert ws.poison_intact()
        ws.at(1).t.buf[-1] = 1.0
        assert not ws.poison_intact()

    def test_depth_zero_workspace_vacuously_intact(self):
        ws = Workspace(0, 4, 4, 4)
        ws.poison()
        assert ws.poison_intact()

    def test_batch_workspace_round_trip(self):
        from repro.core.workspace import BatchWorkspace

        ws = BatchWorkspace(4, 2, 4, 4, 4, with_q=True)
        ws.poison()
        assert ws.poison_intact()
        next(ws._buffers())[2, 5] = 0.0
        assert not ws.poison_intact()
        ws.poison()
        assert ws.poison_intact()
