"""Unit tests for the recursion workspace."""

import pytest

from repro.core.workspace import Workspace


class TestGeometry:
    def test_level_count(self):
        ws = Workspace(depth=3, tile_m=8, tile_k=8, tile_n=8)
        assert len(ws.levels) == 3

    def test_at_indexing(self):
        ws = Workspace(depth=3, tile_m=8, tile_k=8, tile_n=8)
        # Children of the top level have depth 2.
        lv = ws.at(2)
        assert lv.s.depth == 2
        assert lv.s.padded_rows == 8 * 4
        lv0 = ws.at(0)
        assert lv0.s.depth == 0

    def test_scratch_shapes_follow_operands(self):
        ws = Workspace(depth=2, tile_m=3, tile_k=5, tile_n=7)
        lv = ws.at(1)
        assert (lv.s.tile_r, lv.s.tile_c) == (3, 5)  # A-shaped
        assert (lv.t.tile_r, lv.t.tile_c) == (5, 7)  # B-shaped
        assert (lv.p.tile_r, lv.p.tile_c) == (3, 7)  # C-shaped

    def test_q_optional(self):
        assert Workspace(2, 4, 4, 4, with_q=False).at(1).q is None
        assert Workspace(2, 4, 4, 4, with_q=True).at(1).q is not None

    def test_depth_zero_has_no_levels(self):
        ws = Workspace(depth=0, tile_m=4, tile_k=4, tile_n=4)
        assert ws.levels == []

    def test_total_bytes_geometric(self):
        ws = Workspace(depth=4, tile_m=8, tile_k=8, tile_n=8, with_q=True)
        # 4 quarter buffers per level: total < 4/3 of a full matrix.
        full = (8 << 4) * (8 << 4) * 8
        assert ws.total_bytes < 4 * full // 3 + 1
        assert ws.total_bytes > 0
