"""Unit tests for the original Strassen schedule (ablation variant)."""

import numpy as np
import pytest

from repro.core.strassen import strassen_multiply
from repro.core.winograd import winograd_multiply
from repro.core.workspace import Workspace
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import select_common_tiling

from ..conftest import assert_gemm_close


def operands(m, k, n, rng):
    plan = select_common_tiling((m, k, n))
    tm, tk, tn = plan
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return (
        a,
        b,
        MortonMatrix.from_dense(a, tilings=(tm, tk)),
        MortonMatrix.from_dense(b, tilings=(tk, tn)),
        MortonMatrix.empty(m, n, tm, tn),
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims", [(64, 64, 64), (100, 100, 100), (150, 150, 150), (130, 200, 170)]
    )
    def test_matches_numpy(self, rng, dims):
        a, b, a_mm, b_mm, c_mm = operands(*dims, rng)
        strassen_multiply(a_mm, b_mm, c_mm)
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_agrees_with_winograd_variant(self, rng):
        a, b, a_mm, b_mm, c_mm = operands(150, 150, 150, rng)
        strassen_multiply(a_mm, b_mm, c_mm)
        plan = select_common_tiling((150, 150, 150))
        d_mm = MortonMatrix.empty(150, 150, plan[0], plan[2])
        winograd_multiply(a_mm, b_mm, d_mm)
        assert_gemm_close(c_mm.to_dense(), d_mm.to_dense(), tol=1e-11)

    def test_requires_q_workspace(self, rng):
        _, _, a_mm, b_mm, c_mm = operands(150, 150, 150, rng)
        ws = Workspace(a_mm.depth, a_mm.tile_r, a_mm.tile_c, b_mm.tile_c, with_q=False)
        with pytest.raises(ValueError):
            strassen_multiply(a_mm, b_mm, c_mm, workspace=ws)

    def test_operands_not_mutated(self, rng):
        _, _, a_mm, b_mm, c_mm = operands(100, 100, 100, rng)
        a0 = a_mm.buf.copy()
        strassen_multiply(a_mm, b_mm, c_mm)
        assert np.array_equal(a_mm.buf, a0)
