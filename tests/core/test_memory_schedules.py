"""Tests for the low-memory Winograd schedules (two_temp / ip_overwrite)."""

import numpy as np
import pytest

from repro.core.ops import NumpyOps
from repro.core.parallel import TaskScratch
from repro.core.winograd import (
    MEMORY_SCHEDULES,
    resolve_memory,
    winograd_multiply,
)
from repro.core.workspace import Workspace
from repro.layout.convert import dense_to_morton
from repro.layout.matrix import MortonMatrix


def morton(rows, cols, tile_r, tile_c, depth, dense=None):
    mm = MortonMatrix(
        buf=np.zeros((tile_r << depth) * (tile_c << depth), dtype=np.float64),
        rows=rows,
        cols=cols,
        tile_r=tile_r,
        tile_c=tile_c,
        depth=depth,
    )
    if dense is not None:
        dense_to_morton(dense, mm)
    return mm


def operands(rng, m, k, n, tm, tk, tn, depth):
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    amm = morton(m, k, tm, tk, depth, a)
    bmm = morton(k, n, tk, tn, depth, b)
    return a, b, amm, bmm


class TestResolveMemory:
    def test_canonical_names(self):
        for name in MEMORY_SCHEDULES:
            assert resolve_memory(name) == name

    def test_none_and_aliases(self):
        assert resolve_memory(None) == "classic"
        assert resolve_memory("ip") == "ip_overwrite"
        assert resolve_memory("IP-Overwrite") == "ip_overwrite"
        assert resolve_memory("  Two_Temp ") == "two_temp"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown memory schedule"):
            resolve_memory("tiny")


class TestTwoTemp:
    @pytest.mark.parametrize(
        "m,k,n,tm,tk,tn,depth",
        [
            (16, 16, 16, 2, 2, 2, 3),
            (23, 19, 27, 6, 5, 7, 2),
            (12, 12, 12, 3, 3, 3, 2),
            (5, 5, 5, 5, 5, 5, 0),
        ],
    )
    def test_bit_identical_to_classic(self, rng, m, k, n, tm, tk, tn, depth):
        _, _, amm, bmm = operands(rng, m, k, n, tm, tk, tn, depth)
        c1 = morton(m, n, tm, tn, depth)
        c2 = morton(m, n, tm, tn, depth)
        winograd_multiply(amm, bmm, c1)
        winograd_multiply(amm, bmm, c2, memory="two_temp")
        assert np.array_equal(c1.buf, c2.buf)

    def test_operands_not_mutated(self, rng):
        _, _, amm, bmm = operands(rng, 16, 16, 16, 2, 2, 2, 3)
        a_snap, b_snap = amm.buf.copy(), bmm.buf.copy()
        winograd_multiply(amm, bmm, morton(16, 16, 2, 2, 3), memory="two_temp")
        assert np.array_equal(amm.buf, a_snap)
        assert np.array_equal(bmm.buf, b_snap)

    def test_uses_fused_passes(self, rng):
        _, _, amm, bmm = operands(rng, 16, 16, 16, 2, 2, 2, 3)
        ops = NumpyOps()
        winograd_multiply(
            amm, bmm, morton(16, 16, 2, 2, 3), ops=ops, memory="two_temp"
        )
        # One add3 per internal recursion node: 1 + 7 + 49 at depth 3.
        assert ops.fused_adds == 57

    def test_classic_workspace_rejected(self, rng):
        _, _, amm, bmm = operands(rng, 8, 8, 8, 2, 2, 2, 2)
        ws = Workspace(2, 2, 2, 2, with_q=True)
        with pytest.raises(ValueError, match="schedule='two_temp'"):
            winograd_multiply(
                amm, bmm, morton(8, 8, 2, 2, 2),
                workspace=ws, memory="two_temp",
            )

    def test_backend_without_fused_passes_rejected(self, rng):
        class MinimalOps:
            add = sub = iadd = leaf_mult = staticmethod(lambda *a: None)

        _, _, amm, bmm = operands(rng, 8, 8, 8, 2, 2, 2, 2)
        with pytest.raises(ValueError, match="add3"):
            winograd_multiply(
                amm, bmm, morton(8, 8, 2, 2, 2),
                ops=MinimalOps(), memory="two_temp",
            )


class TestIpOverwrite:
    @pytest.mark.parametrize(
        "m,k,n,tile,depth",
        [
            (16, 16, 16, 2, 3),
            (30, 30, 30, 4, 3),
            (12, 12, 12, 3, 2),
            (6, 6, 6, 6, 0),
        ],
    )
    def test_bit_identical_to_classic(self, rng, m, k, n, tile, depth):
        _, _, amm, bmm = operands(rng, m, k, n, tile, tile, tile, depth)
        c1 = morton(m, n, tile, tile, depth)
        winograd_multiply(amm, bmm, c1)
        a2 = morton(m, k, tile, tile, depth)
        a2.buf[:] = amm.buf
        b2 = morton(k, n, tile, tile, depth)
        b2.buf[:] = bmm.buf
        c2 = morton(m, n, tile, tile, depth)
        winograd_multiply(a2, b2, c2, memory="ip_overwrite")
        assert np.array_equal(c1.buf, c2.buf)

    def test_clobbers_operands(self, rng):
        # The documented contract: A and B are consumed at depth >= 1.
        _, _, amm, bmm = operands(rng, 16, 16, 16, 2, 2, 2, 3)
        a_snap, b_snap = amm.buf.copy(), bmm.buf.copy()
        winograd_multiply(amm, bmm, morton(16, 16, 2, 2, 3), memory="ip")
        assert not np.array_equal(amm.buf, a_snap)
        assert not np.array_equal(bmm.buf, b_snap)

    def test_nonuniform_tiles_rejected(self, rng):
        _, _, amm, bmm = operands(rng, 8, 12, 8, 2, 3, 2, 2)
        with pytest.raises(ValueError, match="uniform tile geometry"):
            winograd_multiply(
                amm, bmm, morton(8, 8, 2, 2, 2), memory="ip_overwrite"
            )

    def test_needs_no_workspace(self, rng):
        _, _, amm, bmm = operands(rng, 8, 8, 8, 2, 2, 2, 2)
        ws = Workspace(2, 2, 2, 2, schedule="ip_overwrite")
        assert ws.nbytes == 0
        c = morton(8, 8, 2, 2, 2)
        winograd_multiply(amm, bmm, c, workspace=ws, memory="ip_overwrite")
        assert np.isfinite(c.buf).all()


class TestTaskScratchMemory:
    def test_two_temp_shrinks_leaf_workspaces(self):
        classic = TaskScratch(4, 4, 4, 4, parallel_depth=1, workers=4)
        lean = TaskScratch(
            4, 4, 4, 4, parallel_depth=1, workers=4, memory="two_temp"
        )
        assert lean.memory == "two_temp"
        assert (
            lean.workspace_pool.total_bytes < classic.workspace_pool.total_bytes
        )
        assert lean.buffer_count < classic.buffer_count

    def test_ip_rejected(self):
        with pytest.raises(ValueError, match="ip_overwrite"):
            TaskScratch(4, 4, 4, 3, memory="ip_overwrite")
