"""Unit tests for the numpy recursion backend."""

import numpy as np
import pytest

from repro.core.ops import FUSE_CHUNK_ELEMS, NumpyOps
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import Tiling


def leaf(rows, cols, value=0.0):
    m = MortonMatrix.zeros(
        rows, cols, Tiling(rows, rows, 0), Tiling(cols, cols, 0)
    )
    m.buf[:] = value
    return m


class TestVectorOps:
    def test_add(self):
        ops = NumpyOps()
        x, y, d = leaf(4, 4, 2.0), leaf(4, 4, 3.0), leaf(4, 4)
        ops.add(d, x, y)
        assert np.all(d.buf == 5.0)

    def test_sub_aliasing_destination(self):
        ops = NumpyOps()
        x, y = leaf(4, 4, 5.0), leaf(4, 4, 2.0)
        ops.sub(x, x, y)  # x = x - y in place
        assert np.all(x.buf == 3.0)

    def test_iadd(self):
        ops = NumpyOps()
        x, d = leaf(4, 4, 2.0), leaf(4, 4, 1.0)
        ops.iadd(d, x)
        assert np.all(d.buf == 3.0)

    def test_size_mismatch_rejected(self):
        ops = NumpyOps()
        with pytest.raises(ValueError):
            ops.add(leaf(4, 4), leaf(4, 4), leaf(4, 5))
        with pytest.raises(ValueError):
            ops.iadd(leaf(4, 4), leaf(3, 3))
        with pytest.raises(ValueError):
            ops.add3(leaf(4, 4), leaf(4, 4), leaf(4, 4), leaf(4, 5))
        with pytest.raises(ValueError):
            ops.sub_into(leaf(4, 4), leaf(3, 3))


class TestFusedOps:
    def test_add3_basic(self):
        ops = NumpyOps()
        x, y, z, d = leaf(4, 4, 1.0), leaf(4, 4, 2.0), leaf(4, 4, 4.0), leaf(4, 4)
        ops.add3(d, x, y, z)
        assert np.all(d.buf == 7.0)
        assert ops.fused_adds == 1

    def test_add3_matches_unfused_bitwise(self, rng):
        n = 16
        vals = [rng.standard_normal(n * n) * 10.0**e for e in (-8, 0, 8)]
        mats = []
        for v in vals:
            m = leaf(n, n)
            m.buf[:] = v
            mats.append(m)
        x, y, z = mats
        fused, staged = leaf(n, n), leaf(n, n)
        ops = NumpyOps()
        ops.add3(fused, x, y, z)
        ops.add(staged, x, y)
        ops.iadd(staged, z)
        assert np.array_equal(fused.buf, staged.buf)

    def test_add3_spans_multiple_chunks(self, rng):
        # A buffer larger than one fuse chunk exercises the chunk loop.
        edge = 1
        while edge * edge <= FUSE_CHUNK_ELEMS:
            edge *= 2
        x, y, z, d = (leaf(edge, edge) for _ in range(4))
        x.buf[:] = rng.standard_normal(x.buf.size)
        y.buf[:] = rng.standard_normal(y.buf.size)
        z.buf[:] = rng.standard_normal(z.buf.size)
        NumpyOps().add3(d, x, y, z)
        assert np.array_equal(d.buf, (x.buf + y.buf) + z.buf)

    def test_add3_dst_may_alias_any_operand(self, rng):
        for alias in range(3):
            bufs = [rng.standard_normal(64) for _ in range(3)]
            mats = []
            for v in bufs:
                m = leaf(8, 8)
                m.buf[:] = v
                mats.append(m)
            expect = (bufs[0] + bufs[1]) + bufs[2]
            NumpyOps().add3(mats[alias], mats[0], mats[1], mats[2])
            assert np.array_equal(mats[alias].buf, expect)

    def test_sub_into(self):
        ops = NumpyOps()
        d, x = leaf(4, 4, 2.0), leaf(4, 4, 7.0)
        ops.sub_into(d, x)  # d = x - d
        assert np.all(d.buf == 5.0)
        assert ops.fused_adds == 0  # sub_into is a plain pass, not a fusion


class TestLeafMult:
    def test_matches_numpy(self, rng):
        a2 = rng.standard_normal((5, 7))
        b2 = rng.standard_normal((7, 3))
        a = MortonMatrix.from_dense(a2)
        b = MortonMatrix.from_dense(b2)
        c = leaf(5, 3)
        NumpyOps().leaf_mult(a, b, c)
        assert np.allclose(c.to_dense(), a2 @ b2)

    def test_kernel_selection(self, rng):
        a2 = rng.standard_normal((6, 6))
        b2 = rng.standard_normal((6, 6))
        a, b = MortonMatrix.from_dense(a2), MortonMatrix.from_dense(b2)
        for kernel in ("numpy", "blocked", "naive"):
            c = leaf(6, 6)
            NumpyOps(kernel).leaf_mult(a, b, c)
            assert np.allclose(c.to_dense(), a2 @ b2)
