"""Unit tests for the numpy recursion backend."""

import numpy as np
import pytest

from repro.core.ops import NumpyOps
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import Tiling


def leaf(rows, cols, value=0.0):
    m = MortonMatrix.zeros(
        rows, cols, Tiling(rows, rows, 0), Tiling(cols, cols, 0)
    )
    m.buf[:] = value
    return m


class TestVectorOps:
    def test_add(self):
        ops = NumpyOps()
        x, y, d = leaf(4, 4, 2.0), leaf(4, 4, 3.0), leaf(4, 4)
        ops.add(d, x, y)
        assert np.all(d.buf == 5.0)

    def test_sub_aliasing_destination(self):
        ops = NumpyOps()
        x, y = leaf(4, 4, 5.0), leaf(4, 4, 2.0)
        ops.sub(x, x, y)  # x = x - y in place
        assert np.all(x.buf == 3.0)

    def test_iadd(self):
        ops = NumpyOps()
        x, d = leaf(4, 4, 2.0), leaf(4, 4, 1.0)
        ops.iadd(d, x)
        assert np.all(d.buf == 3.0)

    def test_size_mismatch_rejected(self):
        ops = NumpyOps()
        with pytest.raises(ValueError):
            ops.add(leaf(4, 4), leaf(4, 4), leaf(4, 5))
        with pytest.raises(ValueError):
            ops.iadd(leaf(4, 4), leaf(3, 3))


class TestLeafMult:
    def test_matches_numpy(self, rng):
        a2 = rng.standard_normal((5, 7))
        b2 = rng.standard_normal((7, 3))
        a = MortonMatrix.from_dense(a2)
        b = MortonMatrix.from_dense(b2)
        c = leaf(5, 3)
        NumpyOps().leaf_mult(a, b, c)
        assert np.allclose(c.to_dense(), a2 @ b2)

    def test_kernel_selection(self, rng):
        a2 = rng.standard_normal((6, 6))
        b2 = rng.standard_normal((6, 6))
        a, b = MortonMatrix.from_dense(a2), MortonMatrix.from_dense(b2)
        for kernel in ("numpy", "blocked", "naive"):
            c = leaf(6, 6)
            NumpyOps(kernel).leaf_mult(a, b, c)
            assert np.allclose(c.to_dense(), a2 @ b2)
