"""Unit tests for the highly-rectangular decomposition (Section 3.5)."""

import pytest

from repro.core.rectangular import PanelProduct, Shape, classify, plan_panels, split_dim


class TestClassify:
    def test_wide(self):
        assert classify(100, 500) is Shape.WIDE

    def test_lean(self):
        assert classify(500, 100) is Shape.LEAN

    def test_well_behaved(self):
        assert classify(100, 399) is Shape.WELL_BEHAVED
        assert classify(100, 100) is Shape.WELL_BEHAVED

    def test_boundary_is_well_behaved(self):
        # ratio exactly max_ratio stays well-behaved (<= semantics)
        assert classify(100, 400) is Shape.WELL_BEHAVED
        assert classify(100, 401) is Shape.WIDE

    def test_custom_ratio(self):
        assert classify(10, 25, max_ratio=2.0) is Shape.WIDE


class TestSplitDim:
    def test_exact_partition(self):
        spans = split_dim(100, 30)
        assert spans[0][0] == 0
        assert spans[-1][1] == 100
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert e0 == s1

    def test_near_equal_sizes(self):
        spans = split_dim(1000, 256)
        sizes = [e - s for s, e in spans]
        assert max(sizes) - min(sizes) <= 1
        assert len(spans) == 4

    def test_dim_smaller_than_ref(self):
        assert split_dim(10, 100) == [(0, 10)]

    def test_sizes_bounded_by_ref(self):
        for dim in (257, 999, 1024):
            for ref in (16, 100, 256):
                for s, e in split_dim(dim, ref):
                    assert e - s <= ref

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_dim(0, 5)
        with pytest.raises(ValueError):
            split_dim(5, 0)


class TestPlanPanels:
    def test_paper_example_1024_256(self):
        panels = plan_panels(1024, 256, 256)
        # rows split into 4 chunks of 256; k and n stay whole.
        assert len(panels) == 4
        assert all(p.k0 == 0 and p.k1 == 256 for p in panels)
        assert all(not p.accumulate for p in panels)

    def test_k_chunks_accumulate(self):
        panels = plan_panels(64, 1024, 64)
        k_chunks = sorted({(p.k0, p.k1) for p in panels})
        assert len(k_chunks) == 16
        first = [p for p in panels if p.k0 == 0]
        rest = [p for p in panels if p.k0 > 0]
        assert all(not p.accumulate for p in first)
        assert all(p.accumulate for p in rest)

    def test_panels_tile_the_output(self):
        m, k, n = 300, 40, 500
        panels = plan_panels(m, k, n)
        cells = set()
        for p in panels:
            if not p.accumulate:
                cells.add((p.m0, p.m1, p.n0, p.n1))
        covered = sum((m1 - m0) * (n1 - n0) for m0, m1, n0, n1 in cells)
        assert covered == m * n

    def test_every_panel_well_behaved(self):
        for dims in [(2048, 256, 256), (100, 1, 100), (31, 900, 257)]:
            ref = min(dims)
            for p in plan_panels(*dims):
                pm, pk, pn = p.m1 - p.m0, p.k1 - p.k0, p.n1 - p.n0
                hi, lo = max(pm, pk, pn), min(pm, pk, pn)
                # chunks are within [ref/2, ref] for dims >= ref
                assert hi <= ref

    def test_panel_product_is_frozen(self):
        p = PanelProduct(0, 1, 0, 1, 0, 1, False)
        with pytest.raises(AttributeError):
            p.m0 = 5
