"""Unit tests for the task-parallel Winograd multiply."""

import numpy as np
import pytest

from repro.core.modgemm import modgemm_morton
from repro.core.parallel import parallel_multiply
from repro.core.truncation import TruncationPolicy
from repro.layout.matrix import MortonMatrix

from ..conftest import assert_gemm_close

# parallel_multiply is a deprecated wrapper over the task scheduler; these
# tests pin its legacy contract, so silence its own warning.
pytestmark = pytest.mark.filterwarnings(
    "ignore:parallel_multiply is deprecated:DeprecationWarning"
)


def operands(m, k, n, rng, policy=None):
    plan = (policy or TruncationPolicy.dynamic()).plan(m, k, n)
    assert plan is not None
    tm, tk, tn = plan
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return (
        a,
        b,
        MortonMatrix.from_dense(a, tilings=(tm, tk)),
        MortonMatrix.from_dense(b, tilings=(tk, tn)),
    )


class TestCorrectness:
    @pytest.mark.parametrize("dims", [(100, 100, 100), (150, 150, 150), (130, 200, 170)])
    def test_matches_numpy(self, rng, dims):
        a, b, a_mm, b_mm = operands(*dims, rng)
        c = parallel_multiply(a_mm, b_mm)
        assert_gemm_close(c.to_dense(), a @ b)

    def test_matches_sequential_bit_for_bit(self, rng):
        # The task DAG performs the same operations on the same values as
        # the sequential schedule (commuted additions only), so results
        # are bitwise identical — not merely close.
        a, b, a_mm, b_mm = operands(150, 150, 150, rng)
        par = parallel_multiply(a_mm, b_mm).to_dense()
        seq = modgemm_morton(a_mm, b_mm).to_dense()
        assert np.array_equal(par, seq)

    def test_emits_deprecation_warning(self, rng):
        _, _, a_mm, b_mm = operands(100, 100, 100, rng)
        with pytest.warns(DeprecationWarning, match="parallel_multiply"):
            parallel_multiply(a_mm, b_mm)

    def test_depth_zero_falls_back(self, rng):
        a, b, a_mm, b_mm = operands(20, 20, 20, rng)
        assert a_mm.depth == 0
        c = parallel_multiply(a_mm, b_mm)
        assert_gemm_close(c.to_dense(), a @ b)

    def test_single_worker_path(self, rng):
        a, b, a_mm, b_mm = operands(130, 130, 130, rng)
        c = parallel_multiply(a_mm, b_mm, max_workers=1)
        assert_gemm_close(c.to_dense(), a @ b)

    def test_supplied_destination(self, rng):
        a, b, a_mm, b_mm = operands(100, 100, 100, rng)
        plan = TruncationPolicy.dynamic().plan(100, 100, 100)
        c_mm = MortonMatrix.empty(100, 100, plan[0], plan[2])
        out = parallel_multiply(a_mm, b_mm, c_mm)
        assert out is c_mm
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_operands_not_mutated(self, rng):
        a, b, a_mm, b_mm = operands(150, 150, 150, rng)
        a0, b0 = a_mm.buf.copy(), b_mm.buf.copy()
        parallel_multiply(a_mm, b_mm)
        assert np.array_equal(a_mm.buf, a0)
        assert np.array_equal(b_mm.buf, b0)

    def test_bad_workers_rejected(self, rng):
        _, _, a_mm, b_mm = operands(100, 100, 100, rng)
        with pytest.raises(ValueError):
            parallel_multiply(a_mm, b_mm, max_workers=0)

    def test_deterministic(self, rng):
        _, _, a_mm, b_mm = operands(150, 150, 150, rng)
        c1 = parallel_multiply(a_mm, b_mm).to_dense()
        c2 = parallel_multiply(a_mm, b_mm).to_dense()
        assert np.array_equal(c1, c2)
