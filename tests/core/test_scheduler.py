"""Unit tests for the task-DAG scheduler primitives."""

import threading
import time

import pytest

from repro.core.scheduler import GraphRun, Schedule, TaskGraph, WorkerPool


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(4, name="test-pool")
    yield p
    p.shutdown()


def chain_graph(results, n=5):
    """a -> b -> c ... each appending its index; checks ordering."""
    g = TaskGraph("chain")
    prev = []
    for i in range(n):
        t = g.add(lambda i=i: results.append(i), deps=prev, label=f"t{i}")
        prev = [t]
    return g


class TestSchedule:
    def test_sequential_default(self):
        s = Schedule()
        assert s.kind == "sequential" and not s.parallel

    def test_tasks_form(self):
        s = Schedule.tasks(depth=2, workers=8)
        assert s.parallel and s.depth == 2 and s.workers == 8

    @pytest.mark.parametrize(
        "spec, expect",
        [
            ("sequential", Schedule.sequential()),
            ("tasks", Schedule.tasks()),
            ("tasks:3", Schedule.tasks(depth=3)),
            ("tasks:2x8", Schedule.tasks(depth=2, workers=8)),
            (None, Schedule.sequential()),
        ],
    )
    def test_coerce(self, spec, expect):
        assert Schedule.coerce(spec) == expect

    def test_coerce_default(self):
        d = Schedule.tasks(depth=2)
        assert Schedule.coerce(None, default=d) == d

    @pytest.mark.parametrize("bad", ["turbo", "tasks:x", "tasks:0", 42, 1.5])
    def test_coerce_rejects(self, bad):
        with pytest.raises(ValueError):
            Schedule.coerce(bad)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            Schedule(kind="magic")
        with pytest.raises(ValueError):
            Schedule.tasks(depth=0)
        with pytest.raises(ValueError):
            Schedule.tasks(depth=1, workers=0)

    def test_hashable_plan_key_component(self):
        assert len({Schedule.tasks(2), Schedule.tasks(2), Schedule()}) == 2


class TestTaskGraph:
    def test_dependencies_order_execution(self, pool):
        results = []
        g = chain_graph(results)
        pool.run(g)
        assert results == [0, 1, 2, 3, 4]

    def test_graph_is_reusable(self, pool):
        results = []
        g = chain_graph(results, n=3)
        for _ in range(5):
            pool.run(g)
        assert results == [0, 1, 2] * 5

    def test_run_inline_matches_pool(self):
        results = []
        g = chain_graph(results)
        run = g.run_inline()
        assert results == [0, 1, 2, 3, 4]
        assert run.tasks == 5 and run.workers == 1

    def test_empty_graph_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.run(TaskGraph("empty"))

    def test_diamond_joins_wait_for_all(self, pool):
        seen = []
        g = TaskGraph("diamond")
        top = g.add(lambda: seen.append("top"))
        left = g.add(lambda: seen.append("left"), deps=[top])
        right = g.add(lambda: seen.append("right"), deps=[top])
        g.add(lambda: seen.append("join"), deps=[left, right])
        for _ in range(10):
            seen.clear()
            pool.run(g)
            assert seen[0] == "top" and seen[-1] == "join"
            assert set(seen[1:3]) == {"left", "right"}


class TestWorkerPool:
    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_parallel_tasks_overlap(self, pool):
        # Two tasks that each wait for the other to start: only a pool
        # running them concurrently can finish.
        barrier = threading.Barrier(2, timeout=10)
        g = TaskGraph("overlap")
        g.add(barrier.wait)
        g.add(barrier.wait)
        run = pool.run(g)
        assert run.tasks == 2

    def test_error_propagates_and_pool_survives(self, pool):
        g = TaskGraph("boom")
        t = g.add(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        g.add(lambda: None, deps=[t])
        with pytest.raises(RuntimeError, match="boom"):
            pool.run(g)
        # Pool is still usable afterwards.
        results = []
        pool.run(chain_graph(results, n=2))
        assert results == [0, 1]

    def test_failed_graph_skips_queued_tasks(self, pool):
        ran = []
        g = TaskGraph("cancel")
        t = g.add(lambda: (_ for _ in ()).throw(ValueError("first")))
        for i in range(8):
            g.add(lambda i=i: ran.append(i), deps=[t])
        with pytest.raises(ValueError, match="first"):
            pool.run(g)
        assert ran == []  # successors of the failed task never ran

    def test_run_all_runs_every_callable(self, pool):
        counter = []
        run = pool.run_all([lambda i=i: counter.append(i) for i in range(10)])
        assert sorted(counter) == list(range(10))
        assert isinstance(run, GraphRun)

    def test_nested_submission_runs_inline(self, pool):
        # A graph submitted from inside a worker must not deadlock the
        # pool: it falls back to an inline run on that worker.
        inner_results = []

        def outer():
            pool.run(chain_graph(inner_results, n=3))

        g = TaskGraph("outer")
        g.add(outer)
        pool.run(g)
        assert inner_results == [0, 1, 2]

    def test_concurrent_graphs_do_not_cross(self, pool):
        streams = [[] for _ in range(4)]
        graphs = [chain_graph(s, n=4) for s in streams]
        threads = [
            threading.Thread(target=pool.run, args=(g,)) for g in graphs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert all(s == [0, 1, 2, 3] for s in streams)

    def test_run_reports_busy_time(self, pool):
        g = TaskGraph("busy")
        g.add(lambda: time.sleep(0.02))
        run = pool.run(g)
        assert run.busy >= 0.015
        assert 0.0 <= run.utilization <= 1.0

    def test_shutdown_rejects_new_work(self):
        p = WorkerPool(2)
        p.shutdown()
        with pytest.raises(RuntimeError):
            p.run(chain_graph([], n=1))
        p.shutdown()  # idempotent


class TestShutdownCancellation:
    """shutdown() must cancel queued graphs, never strand their callers.

    Regression test: workers used to exit with graphs still queued, so a
    caller blocked in ``graph._done.wait()`` hung forever.
    """

    def test_queued_graph_caller_released_with_error(self):
        p = WorkerPool(2, name="shutdown-test")
        occupied = threading.Barrier(3, timeout=10)  # 2 workers + main
        release = threading.Event()

        def blocker():
            occupied.wait()
            assert release.wait(timeout=30)

        blocker_threads = [
            threading.Thread(target=p.run_all, args=([blocker],))
            for _ in range(2)
        ]
        for t in blocker_threads:
            t.start()
        occupied.wait()  # both workers are now busy

        outcome = {}

        def submit_queued():
            try:
                outcome["run"] = p.run_all([lambda: None], name="queued")
            except BaseException as exc:  # noqa: BLE001 - under test
                outcome["exc"] = exc

        caller = threading.Thread(target=submit_queued)
        caller.start()
        deadline = time.monotonic() + 10
        while not p._inject and time.monotonic() < deadline:
            time.sleep(0.001)
        assert p._inject, "queued task never reached the injection queue"

        # Workers are blocked, so shutdown() itself blocks in join();
        # the queued caller must be released long before that resolves.
        shutter = threading.Thread(target=p.shutdown)
        shutter.start()
        caller.join(timeout=10)
        assert not caller.is_alive(), "queued caller hung after shutdown()"
        assert isinstance(outcome.get("exc"), RuntimeError)
        assert "shut down" in str(outcome["exc"])

        # In-flight graphs drain normally once unblocked.
        release.set()
        for t in blocker_threads:
            t.join(timeout=10)
            assert not t.is_alive()
        shutter.join(timeout=10)
        assert not shutter.is_alive()

    def test_idle_shutdown_still_fast(self):
        p = WorkerPool(2)
        t0 = time.monotonic()
        p.shutdown()
        assert time.monotonic() - t0 < 5.0


class TestCrossPoolReentrancy:
    """A worker of any pool submitting to any pool must run inline.

    Regression test: the guard used to recognise only the *same* pool's
    workers, so a worker of pool A blocking inside ``B.run`` (while B's
    workers blocked inside ``A.run``) could deadlock the pair.
    """

    def test_cross_pool_submission_runs_inline(self):
        pool_a = WorkerPool(1, name="cross-a")
        pool_b = WorkerPool(1, name="cross-b")
        try:
            order = []

            def outer():
                g = TaskGraph("inner")
                g.add(lambda: order.append("inner"))
                run = pool_b.run(g)
                order.append(run.workers)

            g = TaskGraph("outer")
            g.add(outer)
            pool_a.run(g)
            # workers == 1 is the inline-run signature.
            assert order == ["inner", 1]
        finally:
            pool_a.shutdown()
            pool_b.shutdown()

    def test_mutual_cross_submission_does_not_deadlock(self):
        # The deadlock shape: A's only worker submits to B while B's only
        # worker submits to A.  With the cross-pool guard both run
        # inline; without it this test hangs (bounded by the watchdog).
        pool_a = WorkerPool(1, name="mutual-a")
        pool_b = WorkerPool(1, name="mutual-b")
        try:
            meet = threading.Barrier(2, timeout=10)
            results = []

            def crossed(target, tag):
                def task():
                    meet.wait()  # both workers committed before nesting
                    g = TaskGraph(f"nested-{tag}")
                    g.add(lambda: results.append(tag))
                    target.run(g)
                return task

            ga = TaskGraph("outer-a")
            ga.add(crossed(pool_b, "a->b"))
            gb = TaskGraph("outer-b")
            gb.add(crossed(pool_a, "b->a"))
            ta = threading.Thread(target=pool_a.run, args=(ga,))
            tb = threading.Thread(target=pool_b.run, args=(gb,))
            ta.start()
            tb.start()
            ta.join(timeout=20)
            tb.join(timeout=20)
            assert not ta.is_alive() and not tb.is_alive()
            assert sorted(results) == ["a->b", "b->a"]
        finally:
            pool_a.shutdown()
            pool_b.shutdown()
