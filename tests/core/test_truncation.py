"""Unit tests for the truncation policies."""

import pytest

from repro.core.truncation import DEFAULT_POLICY, TruncationPolicy


class TestDynamic:
    def test_default_range(self):
        p = TruncationPolicy.dynamic()
        assert p.tile_range is not None
        assert (p.tile_range.min_tile, p.tile_range.max_tile) == (16, 64)
        assert p.fixed_tile is None

    def test_plan_square(self):
        plan = TruncationPolicy.dynamic().plan(513, 513, 513)
        assert plan is not None
        assert plan[0].padded == 528

    def test_plan_returns_none_for_extreme_ratio(self):
        assert TruncationPolicy.dynamic().plan(2048, 256, 256) is None

    def test_label(self):
        assert TruncationPolicy.dynamic(8, 32).label == "dynamic[8,32]"


class TestFixed:
    def test_paper_513_blowup(self):
        # The motivating pathology: fixed T=32 pads 513 to 1024.
        plan = TruncationPolicy.fixed(32).plan(513, 513, 513)
        assert plan is not None
        assert plan[0].padded == 1024

    def test_power_of_two_is_tight(self):
        plan = TruncationPolicy.fixed(32).plan(512, 512, 512)
        assert plan[0].padded == 512
        assert plan[0].depth == 4

    def test_small_matrices_single_leaf(self):
        plan = TruncationPolicy.fixed(32).plan(20, 30, 10)
        assert all(t.depth == 0 for t in plan)

    def test_common_depth_forced_by_largest(self):
        plan = TruncationPolicy.fixed(32).plan(1024, 64, 64)
        assert plan is not None
        depths = {t.depth for t in plan}
        assert depths == {5}
        assert plan[1].padded == 1024  # small dims over-padded: the cost of fixed T

    def test_never_none(self):
        assert TruncationPolicy.fixed(32).plan(2048, 256, 256) is not None

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            TruncationPolicy.fixed(0)

    def test_label(self):
        assert TruncationPolicy.fixed(64).label == "fixed[64]"


def test_default_policy_is_paper_range():
    assert DEFAULT_POLICY.tile_range is not None
    assert DEFAULT_POLICY.tile_range.min_tile == 16
