"""Unit tests for the MODGEMM public entry point (full dgemm semantics)."""

import numpy as np
import pytest

from repro.core.modgemm import PhaseTimings, modgemm, modgemm_morton
from repro.core.truncation import TruncationPolicy
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import select_common_tiling

from ..conftest import assert_gemm_close


class TestPlainProduct:
    @pytest.mark.parametrize(
        "dims",
        [
            (1, 1, 1),
            (5, 3, 7),
            (64, 64, 64),
            (65, 65, 65),
            (150, 150, 150),
            (150, 200, 170),
            (513, 513, 513),
        ],
    )
    def test_matches_numpy(self, rng, dims):
        m, k, n = dims
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        assert_gemm_close(modgemm(a, b), a @ b)

    def test_accepts_c_and_f_order(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        ref = a @ b
        assert_gemm_close(modgemm(np.ascontiguousarray(a), np.asfortranarray(b)), ref)

    def test_result_reproducible(self, rng):
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        assert np.array_equal(modgemm(a, b), modgemm(a, b))

    def test_integer_inputs_upcast(self, rng):
        a = rng.integers(-5, 5, size=(80, 80))
        b = rng.integers(-5, 5, size=(80, 80))
        out = modgemm(a, b)
        assert out.dtype == np.float64
        assert np.array_equal(out, (a @ b).astype(np.float64))

    def test_list_inputs_accepted(self):
        out = modgemm([[1.0, 2.0], [3.0, 4.0]], [[5.0, 6.0], [7.0, 8.0]])
        assert np.allclose(out, [[19.0, 22.0], [43.0, 50.0]])


class TestBlasSemantics:
    def test_alpha(self, rng):
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal((40, 40))
        assert_gemm_close(modgemm(a, b, alpha=-2.0), -2.0 * (a @ b))

    def test_beta_accumulation_in_place(self, rng):
        a = rng.standard_normal((40, 30))
        b = rng.standard_normal((30, 50))
        c0 = rng.standard_normal((40, 50))
        c = c0.copy()
        out = modgemm(a, b, c=c, alpha=0.5, beta=2.0)
        assert out is c
        assert_gemm_close(out, 0.5 * (a @ b) + 2.0 * c0)

    def test_beta_zero_with_c(self, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        c = np.full((20, 20), np.nan)  # beta=0 must ignore old C entirely
        out = modgemm(a, b, c=c, beta=0.0)
        assert_gemm_close(out, a @ b)

    def test_transposes(self, rng):
        a = rng.standard_normal((80, 60))
        b = rng.standard_normal((90, 80))
        out = modgemm(a, b, op_a="t", op_b="t")
        assert_gemm_close(out, a.T @ b.T)

    def test_single_transpose(self, rng):
        a = rng.standard_normal((60, 80))
        b = rng.standard_normal((90, 80))
        assert_gemm_close(modgemm(a, b, op_b="t"), a @ b.T)

    def test_beta_without_c_rejected(self, rng):
        with pytest.raises(ValueError):
            modgemm(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)), beta=1.0)


class TestRectangularPanels:
    @pytest.mark.parametrize(
        "dims",
        [
            (2048 // 8, 256 // 8, 256 // 8),  # well-behaved (sanity)
            (512, 64, 512),                   # ratio 8: panel path
            (100, 1, 100),                    # degenerate inner dimension
            (2, 1000, 2),                     # extreme lean/wide mix
            (257, 31, 900),
        ],
    )
    def test_matches_numpy(self, rng, dims):
        m, k, n = dims
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        assert_gemm_close(modgemm(a, b), a @ b)

    def test_panel_count_recorded(self, rng):
        a = rng.standard_normal((512, 64))
        b = rng.standard_normal((64, 512))
        t = PhaseTimings()
        modgemm(a, b, timings=t)
        assert t.panels > 1


class TestPoliciesAndVariants:
    def test_fixed_policy(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        out = modgemm(a, b, policy=TruncationPolicy.fixed(32))
        assert_gemm_close(out, a @ b)

    def test_wide_dynamic_policy(self, rng):
        a = rng.standard_normal((300, 300))
        b = rng.standard_normal((300, 300))
        out = modgemm(a, b, policy=TruncationPolicy.dynamic(64, 256))
        assert_gemm_close(out, a @ b)

    def test_strassen_variant(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        assert_gemm_close(modgemm(a, b, variant="strassen"), a @ b)

    def test_unknown_variant_rejected(self, rng):
        with pytest.raises(ValueError):
            modgemm(np.eye(4), np.eye(4), variant="coppersmith")

    def test_blocked_kernel(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        assert_gemm_close(modgemm(a, b, kernel="blocked"), a @ b)

    def test_parallel_flag(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        assert_gemm_close(modgemm(a, b, parallel=True), a @ b)

    def test_parallel_with_alpha_beta(self, rng):
        a = rng.standard_normal((130, 130))
        b = rng.standard_normal((130, 130))
        c0 = rng.standard_normal((130, 130))
        c = c0.copy()
        out = modgemm(a, b, c=c, alpha=2.0, beta=1.0, parallel=True)
        assert_gemm_close(out, 2.0 * (a @ b) + c0)

    def test_parallel_rejects_strassen_variant(self, rng):
        with pytest.raises(ValueError):
            modgemm(np.eye(8), np.eye(8), parallel=True, variant="strassen")


class TestTimings:
    def test_phases_populated(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        t = PhaseTimings()
        modgemm(a, b, timings=t)
        assert t.to_morton > 0 and t.compute > 0 and t.from_morton > 0
        assert 0 < t.convert_fraction < 1
        assert abs(t.total - (t.to_morton + t.compute + t.from_morton)) < 1e-12

    def test_empty_timings_fraction(self):
        assert PhaseTimings().convert_fraction == 0.0


class TestMortonEntry:
    def test_preconverted_operands(self, rng):
        m = k = n = 150
        plan = select_common_tiling((m, k, n))
        tm, tk, tn = plan
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
        c_mm = modgemm_morton(a_mm, b_mm)
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_supplied_destination(self, rng):
        plan = select_common_tiling((100, 100, 100))
        tm, tk, tn = plan
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
        c_mm = MortonMatrix.empty(100, 100, tm, tn)
        out = modgemm_morton(a_mm, b_mm, c_mm)
        assert out is c_mm
        assert_gemm_close(c_mm.to_dense(), a @ b)

    def test_strassen_variant(self, rng):
        plan = select_common_tiling((100, 100, 100))
        tm, tk, tn = plan
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
        out = modgemm_morton(a_mm, b_mm, variant="strassen")
        assert_gemm_close(out.to_dense(), a @ b)

    def test_unknown_variant_rejected(self, rng):
        plan = select_common_tiling((64, 64, 64))
        tm, tk, tn = plan
        a_mm = MortonMatrix.zeros(64, 64, tm, tk)
        b_mm = MortonMatrix.zeros(64, 64, tk, tn)
        with pytest.raises(ValueError):
            modgemm_morton(a_mm, b_mm, variant="nope")
