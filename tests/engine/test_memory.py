"""Engine integration of the memory-schedule dimension."""

import numpy as np
import pytest

from repro.engine import GemmSession, MEMORY_SCHEDULES
from repro.errors import PlanError


def square(rng, n):
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))
    return a, b


class TestPlanKeyMemory:
    def test_memory_is_part_of_the_key(self, rng):
        with GemmSession() as s:
            p1 = s.plan(64, 64, 64)
            p2 = s.plan(64, 64, 64, memory="two_temp")
            p3 = s.plan(64, 64, 64, memory="two_temp")
            assert p1 is not p2
            assert p2 is p3
            assert p1.key.memory == "classic"
            assert p2.key.memory == "two_temp"

    def test_session_default_memory(self, rng):
        with GemmSession(memory="two_temp") as s:
            assert s.plan(32, 32, 32).key.memory == "two_temp"
            assert s.plan(32, 32, 32, memory="classic").key.memory == "classic"

    def test_unknown_memory_rejected(self):
        with GemmSession() as s:
            with pytest.raises(PlanError):
                s.plan(32, 32, 32, memory="frugal")
        with pytest.raises(PlanError):
            GemmSession(memory="frugal")

    def test_memory_requires_winograd(self):
        with GemmSession() as s:
            with pytest.raises(PlanError):
                s.plan(32, 32, 32, variant="strassen", memory="two_temp")

    def test_ip_rejects_task_schedule(self):
        with GemmSession() as s:
            with pytest.raises(PlanError):
                s.plan(64, 64, 64, schedule="tasks:1", memory="ip_overwrite")


class TestResultsAcrossSchedules:
    @pytest.mark.parametrize("memory", MEMORY_SCHEDULES)
    def test_bit_identical_to_classic(self, rng, memory):
        a, b = square(rng, 96)
        with GemmSession() as s:
            ref = s.multiply(a, b)
            got = s.multiply(a, b, memory=memory)
            assert np.array_equal(ref, got)

    def test_dense_operands_survive_ip(self, rng):
        # ip_overwrite clobbers the plan's internal Morton copies only.
        a, b = square(rng, 48)
        a_snap, b_snap = a.copy(), b.copy()
        with GemmSession(memory="ip_overwrite") as s:
            s.multiply(a, b)
            assert np.array_equal(a, a_snap)
            assert np.array_equal(b, b_snap)

    def test_ip_repeated_execution_stays_correct(self, rng):
        # Regression: ip executions leave garbage in the operand pads;
        # the plan must re-zero before the next conversion.  Size 50 pads
        # at every reasonable tiling.
        with GemmSession(memory="ip_overwrite") as s:
            for _ in range(3):
                a, b = square(rng, 50)
                assert np.allclose(s.multiply(a, b), a @ b)

    def test_two_temp_parallel_bit_identical(self, rng):
        a, b = square(rng, 96)
        with GemmSession() as s:
            ref = s.multiply(a, b)
            for workers in (1, 2, 7):
                got = s.multiply(
                    a, b, schedule=f"tasks:1x{workers}", memory="two_temp"
                )
                assert np.array_equal(ref, got)


class TestScratchAccounting:
    def test_two_temp_plan_scratch_halved(self):
        with GemmSession() as s:
            classic = s.plan(256, 256, 256)
            lean = s.plan(256, 256, 256, memory="two_temp")
            ip = s.plan(256, 256, 256, memory="ip_overwrite")
            assert classic.scratch_bytes > 0
            assert lean.scratch_bytes * 2 == classic.scratch_bytes
            assert ip.scratch_bytes == 0

    def test_scratch_bytes_closed_form(self):
        # Geometric series over levels: at child depth d the quarter
        # buffers hold (tile << d)^2 elements per operand shape.
        with GemmSession() as s:
            for memory, per_level in (
                ("classic", lambda e: 4 * e),       # S + T + P + Q
                ("two_temp", lambda e: 2 * e),      # max(|A|,|C|) + |B|
                ("ip_overwrite", lambda e: 0),
            ):
                plan = s.plan(256, 256, 256, memory=memory)
                tm, tk, tn = plan.tilings
                assert tm.tile == tk.tile == tn.tile  # square problem
                expect = sum(
                    per_level(((tm.tile << d) ** 2) * 8)
                    for d in range(tm.depth)
                )
                assert plan.scratch_bytes == expect

    def test_session_stats_fields(self, rng):
        a, b = square(rng, 64)
        with GemmSession() as s:
            s.multiply(a, b, memory="two_temp")
            st = s.stats()
            assert st.scratch_bytes_allocated > 0
            assert st.peak_scratch_bytes > 0
            assert st.peak_scratch_bytes <= st.scratch_bytes_allocated
            assert st.fused_adds > 0

    def test_classic_reports_no_fused_adds(self, rng):
        a, b = square(rng, 64)
        with GemmSession() as s:
            s.multiply(a, b)
            assert s.stats().fused_adds == 0

    def test_clear_resets_live_scratch_not_peak(self, rng):
        a, b = square(rng, 64)
        with GemmSession() as s:
            s.multiply(a, b)
            peak = s.stats().peak_scratch_bytes
            s.clear()
            st = s.stats()
            assert st.peak_scratch_bytes == peak
            assert st.scratch_bytes_allocated >= peak


class TestMortonPooledOutput:
    def test_pooled_output_reused(self, rng):
        from repro.core.truncation import TruncationPolicy
        from repro.layout.convert import dense_to_morton
        from repro.layout.matrix import MortonMatrix

        tm, tk, tn = TruncationPolicy.coerce(None).plan(64, 64, 64)
        a, b = square(rng, 64)
        amm = MortonMatrix.zeros(64, 64, tm, tk)
        bmm = MortonMatrix.zeros(64, 64, tk, tn)
        dense_to_morton(a, amm)
        dense_to_morton(b, bmm)
        with GemmSession() as s:
            out1 = s.multiply_morton(amm, bmm)
            before = s.stats().buffers_allocated
            out2 = s.multiply_morton(amm, bmm)
            # Same pooled buffer, no new allocations on the warm path.
            assert np.shares_memory(out1.buf, out2.buf)
            assert s.stats().buffers_allocated == before

    def test_core_multiply_morton_uses_pool(self, rng):
        from repro.core.truncation import TruncationPolicy
        from repro.core.winograd import multiply_morton
        from repro.engine import reset_default_session
        from repro.layout.convert import dense_to_morton
        from repro.layout.matrix import MortonMatrix

        tm, tk, tn = TruncationPolicy.coerce(None).plan(48, 48, 48)
        a, b = square(rng, 48)
        amm = MortonMatrix.zeros(48, 48, tm, tk)
        bmm = MortonMatrix.zeros(48, 48, tk, tn)
        dense_to_morton(a, amm)
        dense_to_morton(b, bmm)
        session = reset_default_session()
        try:
            out1 = multiply_morton(amm, bmm)
            assert np.allclose(out1.to_dense(), a @ b)
            out2 = multiply_morton(amm, bmm)
            assert np.shares_memory(out1.buf, out2.buf)
        finally:
            reset_default_session()
