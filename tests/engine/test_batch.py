"""Tests for the stacked-Morton batched execution path.

The central invariant: routing same-geometry problems through one
:class:`BatchPlan` recursion over ``(B, ...)`` stacks is **bit-identical**
to executing each item through its per-item :class:`CompiledPlan` — the
recursion code and addition order are literally shared, only the leading
batch axis differs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import BatchItemError
from repro.engine import (
    BATCH_CAP_MAX,
    BatchPlan,
    GemmSession,
    batch_size_class,
)
from repro.engine.plan import PlanKey
from repro.errors import PlanError

from ..conftest import assert_gemm_close


@pytest.fixture
def session() -> GemmSession:
    return GemmSession()


def _pairs(rng, n, count, dtype=np.float64):
    return [
        (
            rng.standard_normal((n, n)).astype(dtype),
            rng.standard_normal((n, n)).astype(dtype),
        )
        for _ in range(count)
    ]


def _reference_outputs(pairs, **kwargs):
    """Per-item results through a fresh session (the non-batched truth)."""
    with GemmSession() as ref:
        return [ref.multiply(a, b, **kwargs) for a, b in pairs]


class TestBatchSizeClass:
    def test_powers_of_two(self):
        assert batch_size_class(1) == 1
        assert batch_size_class(2) == 2
        assert batch_size_class(3) == 4
        assert batch_size_class(7) == 8
        assert batch_size_class(8) == 8
        assert batch_size_class(9) == 16

    def test_capped(self):
        assert batch_size_class(BATCH_CAP_MAX) == BATCH_CAP_MAX
        assert batch_size_class(BATCH_CAP_MAX + 1) == BATCH_CAP_MAX
        assert batch_size_class(10_000) == BATCH_CAP_MAX

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            batch_size_class(0)


class TestBitIdentity:
    """Batched results must equal per-item results bit for bit."""

    @pytest.mark.parametrize("n", [66, 96])
    @pytest.mark.parametrize("memory", ["classic", "two_temp"])
    @pytest.mark.parametrize("schedule", [None, "tasks:2"])
    @pytest.mark.parametrize("count", [1, 2, 7, 32])
    def test_full_grid(self, rng, n, memory, schedule, count):
        pairs = _pairs(rng, n, count)
        refs = _reference_outputs(pairs, memory=memory, schedule=schedule)
        with GemmSession() as s:
            outs = s.multiply_many(pairs, memory=memory, schedule=schedule)
            stats = s.stats()
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)
        if count > 1:
            assert stats.batched_executes >= 1
            assert stats.batch_items == count
            assert stats.batch_fallbacks == 0

    @pytest.mark.parametrize(
        "memory,schedule", [("classic", None), ("two_temp", "tasks:1")]
    )
    def test_large_geometry(self, rng, memory, schedule):
        pairs = _pairs(rng, 513, 2)
        refs = _reference_outputs(pairs, memory=memory, schedule=schedule)
        with GemmSession() as s:
            outs = s.multiply_many(pairs, memory=memory, schedule=schedule)
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)

    def test_oversized_batch_chunks(self, rng):
        """More items than BATCH_CAP_MAX run in chunks, still bit-identical."""
        count = BATCH_CAP_MAX + 3
        pairs = _pairs(rng, 40, count)
        refs = _reference_outputs(pairs)
        with GemmSession() as s:
            outs = s.multiply_many(pairs)
            stats = s.stats()
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)
        assert stats.batched_executes == 2
        assert stats.batch_items == count

    def test_strassen_variant_batches(self, rng):
        pairs = _pairs(rng, 64, 3)
        refs = _reference_outputs(pairs, variant="strassen")
        with GemmSession() as s:
            outs = s.multiply_many(pairs, variant="strassen")
            assert s.stats().batched_executes == 1
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)


class TestRouting:
    def test_singleton_uses_per_item_path(self, rng, session):
        (a, b), = _pairs(rng, 64, 1)
        session.multiply_many([(a, b)])
        s = session.stats()
        assert s.batched_executes == 0
        assert s.batch_fallbacks == 0
        assert s.executes == 1

    def test_ip_overwrite_group_falls_back(self, rng, session):
        pairs = _pairs(rng, 64, 3)
        refs = _reference_outputs(pairs, memory="ip_overwrite")
        outs = session.multiply_many(pairs, memory="ip_overwrite")
        s = session.stats()
        assert s.batched_executes == 0
        assert s.batch_fallbacks == 1
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)

    def test_panelled_geometry_falls_back(self, rng, session):
        # Highly rectangular: no well-behaved tiling, Figure-4 panels.
        a = rng.standard_normal((32, 2048))
        b = rng.standard_normal((2048, 32))
        outs = session.multiply_many([(a, b), (a, b)])
        s = session.stats()
        assert s.batched_executes == 0
        assert s.batch_fallbacks == 1
        assert_gemm_close(outs[0], a @ b)
        assert np.array_equal(outs[0], outs[1])

    def test_batch_false_forces_legacy_path(self, rng, session):
        pairs = _pairs(rng, 64, 4)
        outs = session.multiply_many(pairs, batch=False)
        s = session.stats()
        assert s.batched_executes == 0
        assert s.batch_fallbacks == 0
        for (a, b), out in zip(pairs, outs):
            assert_gemm_close(out, a @ b)

    def test_bad_batch_value_rejected(self, session):
        with pytest.raises(ValueError, match="batch"):
            session.multiply_many([], batch="always")

    def test_mixed_geometry_routing(self, rng, session):
        items, refs = [], []
        for n in (64, 96, 64, 40, 96, 64):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            items.append((a, b))
            refs.append(a @ b)
        outs = session.multiply_many(items)
        s = session.stats()
        # 64 appears 3x and 96 twice -> two batched groups; 40 is a singleton.
        assert s.batched_executes == 2
        assert s.batch_items == 5
        for out, ref in zip(outs, refs):
            assert_gemm_close(out, ref)

    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.sampled_from([40, 64, 66, 96]), min_size=1, max_size=9),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_ragged_groups_match_per_item(self, sizes, seed):
        """Any mix of geometries routes every item to a correct result."""
        rng = np.random.default_rng(seed)
        items = [
            (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for n in sizes
        ]
        with GemmSession() as s, GemmSession() as ref:
            outs = s.multiply_many(items)
            stats = s.stats()
            assert stats.executes == len(items)
            assert stats.batch_items + (stats.executes - stats.batch_items) \
                == len(items)
            for (a, b), out in zip(items, outs):
                assert np.array_equal(out, ref.multiply(a, b))


class TestMultiplyManyContract:
    def test_failing_item_reports_its_index(self, rng, session):
        good = _pairs(rng, 40, 1)[0]
        bad = (rng.standard_normal((40, 40)), rng.standard_normal((3, 5)))
        with pytest.raises(BatchItemError) as excinfo:
            session.multiply_many([good, bad, good])
        assert excinfo.value.index == 1
        assert excinfo.value.__cause__ is not None

    def test_failing_item_index_on_thread_pool_path(self, rng, session):
        # Force the legacy path; the error must still carry the index.
        good = _pairs(rng, 40, 1)[0]
        bad_c = (
            rng.standard_normal((40, 40)),
            rng.standard_normal((40, 40)),
            rng.standard_normal((7, 7)),
        )
        with pytest.raises(BatchItemError) as excinfo:
            session.multiply_many([good, good, bad_c], batch=False)
        assert excinfo.value.index == 2

    def test_malformed_item_tuple(self, rng, session):
        with pytest.raises(BatchItemError) as excinfo:
            session.multiply_many([(rng.standard_normal((8, 8)),)])
        assert excinfo.value.index == 0

    def test_unknown_option_rejected_with_index(self, rng, session):
        a, b = _pairs(rng, 40, 1)[0]
        with pytest.raises(BatchItemError) as excinfo:
            session.multiply_many([{"a": a, "b": b, "polcy": 32}])
        assert excinfo.value.index == 0
        assert "polcy" in str(excinfo.value)

    def test_dict_items_with_per_item_overrides(self, rng, session):
        a, b = _pairs(rng, 64, 1)[0]
        c0 = rng.standard_normal((64, 64))
        c = c0.copy()
        outs = session.multiply_many(
            [
                {"a": a, "b": b},
                {"a": a, "b": b, "memory": "two_temp"},
                {"a": a, "b": b, "c": c, "alpha": 2.0, "beta": 1.0},
                {"a": a.T.copy(), "b": b, "op_a": "t"},
            ]
        )
        ref = a @ b
        assert_gemm_close(outs[0], ref)
        # Memory schedules are bit-identical, so items 0 and 1 share bits.
        assert np.array_equal(outs[0], outs[1])
        assert outs[2] is c
        assert_gemm_close(c, 2.0 * ref + c0)
        # The transposed item consumes A through a Morton quadrant-swap
        # relabel (zero-copy), so its leaf kernels see transposed strides;
        # BLAS results are not bitwise layout-invariant, hence tolerance
        # equality rather than bit equality against the plain item.
        assert_gemm_close(outs[3], outs[0])

    def test_per_item_policy_override_splits_groups(self, rng, session):
        pairs = _pairs(rng, 96, 4)
        items = [
            {"a": a, "b": b, "policy": 32 if i % 2 else 48}
            for i, (a, b) in enumerate(pairs)
        ]
        outs = session.multiply_many(items)
        s = session.stats()
        assert s.batched_executes == 2  # one stacked group per policy
        for (a, b), out in zip(pairs, outs):
            assert_gemm_close(out, a @ b)

    def test_in_place_c_through_batched_path(self, rng, session):
        a, b = _pairs(rng, 64, 1)[0]
        c0s = [rng.standard_normal((64, 64)) for _ in range(4)]
        cs = [c.copy() for c in c0s]
        outs = session.multiply_many(
            [(a, b, c) for c in cs], alpha=1.0, beta=1.0
        )
        assert session.stats().batched_executes == 1
        for out, c, c0 in zip(outs, cs, c0s):
            assert out is c
            assert_gemm_close(c, a @ b + c0)

    def test_kwargs_still_apply_to_all_items(self, rng, session):
        pairs = _pairs(rng, 64, 3)
        outs = session.multiply_many(pairs, alpha=3.0)
        for (a, b), out in zip(pairs, outs):
            assert_gemm_close(out, 3.0 * (a @ b))


def _poisoned_items(rng, n, count, poison_at):
    """``(a, b, c)`` items where item ``poison_at`` carries a read-only c.

    A read-only output operand passes spec-time validation (creating the
    :class:`GemmProblem` never writes ``c``) and fails only at the
    per-item scaling step (``c *= beta`` / ``c += d``) — an
    *execution-time* failure attributable to exactly one item, on both
    the stacked and the fallback path.
    """
    items, c0s = [], []
    for i in range(count):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = rng.standard_normal((n, n))
        c0s.append(c.copy())
        if i == poison_at:
            c.flags.writeable = False
        items.append((a, b, c))
    return items, c0s


class TestExecutionFailureIndex:
    """Execution-time per-item failures must report the *input* index.

    Regression tests: the stacked path used to call ``execute_batch``
    bare, so a mid-batch failure surfaced with the chunk-local position
    (or no index at all) instead of the caller's item number.
    """

    @pytest.mark.parametrize("batch", ["auto", False])
    @pytest.mark.parametrize("count", [2, 7, 32])
    def test_index_maps_back_to_input_position(self, rng, count, batch):
        poison_at = count // 2
        items, _ = _poisoned_items(rng, 64, count, poison_at)
        with GemmSession() as s:
            with pytest.raises(BatchItemError) as excinfo:
                s.multiply_many(items, beta=1.0, batch=batch)
            if batch == "auto":
                assert s.stats().batched_executes == 1
        assert excinfo.value.index == poison_at
        assert isinstance(excinfo.value.__cause__, ValueError)

    @pytest.mark.parametrize("batch", ["auto", False])
    def test_smallest_failing_index_wins(self, rng, batch):
        items, _ = _poisoned_items(rng, 64, 8, 5)
        a, b, c = items[2]
        c = c.copy()
        c.flags.writeable = False
        items[2] = (a, b, c)
        with GemmSession() as s, pytest.raises(BatchItemError) as excinfo:
            s.multiply_many(items, beta=1.0, batch=batch)
        assert excinfo.value.index == 2

    @pytest.mark.parametrize("batch", ["auto", False])
    def test_good_items_still_complete(self, rng, batch):
        """A failing item must not abandon its siblings mid-batch."""
        items, c0s = _poisoned_items(rng, 64, 5, 1)
        with GemmSession() as s, pytest.raises(BatchItemError):
            s.multiply_many(items, beta=1.0, batch=batch)
        for i, ((a, b, c), c0) in enumerate(zip(items, c0s)):
            if i == 1:
                assert np.array_equal(c, c0)  # read-only: untouched
            else:
                assert_gemm_close(c, a @ b + c0)

    def test_index_survives_chunking(self, rng):
        """Input numbering holds across BATCH_CAP_MAX-sized chunks."""
        count = BATCH_CAP_MAX + 3
        poison_at = BATCH_CAP_MAX + 1  # second chunk, chunk position 1
        items, c0s = _poisoned_items(rng, 40, count, poison_at)
        with GemmSession() as s:
            with pytest.raises(BatchItemError) as excinfo:
                s.multiply_many(items, beta=1.0)
            assert s.stats().batched_executes == 2  # both chunks ran
        assert excinfo.value.index == poison_at
        a, b, c = items[0]
        assert_gemm_close(c, a @ b + c0s[0])  # first chunk drained

    def test_other_groups_drain_after_a_group_fails(self, rng):
        items64, c064 = _poisoned_items(rng, 64, 3, 0)
        items96, c096 = _poisoned_items(rng, 96, 3, -1)  # no poison
        with GemmSession() as s, pytest.raises(BatchItemError) as excinfo:
            s.multiply_many(items64 + items96, beta=1.0)
        assert excinfo.value.index == 0
        for (a, b, c), c0 in zip(items96, c096):
            assert_gemm_close(c, a @ b + c0)

    @pytest.mark.parametrize("batch", ["auto", False])
    def test_plan_reusable_after_failure(self, rng, batch):
        """Pooled stacks stay quiescent: the next batch is bit-exact."""
        items, _ = _poisoned_items(rng, 64, 4, 2)
        with GemmSession() as s:
            with pytest.raises(BatchItemError):
                s.multiply_many(items, beta=1.0, batch=batch)
            pairs = _pairs(rng, 64, 4)
            refs = _reference_outputs(pairs)
            outs = s.multiply_many(pairs, batch=batch)
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)

    def test_execute_batch_maps_indices_argument(self, rng, session):
        """BatchPlan honours the caller's index mapping directly."""
        import repro

        pairs = _pairs(rng, 64, 3)
        session.multiply_many(pairs)  # compile the (key, 4) batch plan
        ((_, bp),) = session._batch_plans.items()
        bad_c = rng.standard_normal((64, 64))
        bad_c.flags.writeable = False
        probs = [
            repro.GemmProblem.create(
                a, b,
                beta=1.0 if i == 1 else 0.0,
                c=bad_c if i == 1 else None,
            )
            for i, (a, b) in enumerate(pairs)
        ]
        cs = [None, bad_c, None]
        with pytest.raises(BatchItemError) as excinfo:
            bp.execute_batch(probs, cs, indices=[10, 20, 30])
        assert excinfo.value.index == 20


class TestDtype:
    def test_float32_multiply(self, rng, session):
        a, b = _pairs(rng, 96, 1, dtype=np.float32)[0]
        out = session.multiply(a, b, dtype=np.float32)
        assert out.dtype == np.float32
        # float32 tolerance: ~eps * recursion growth.
        assert_gemm_close(
            out.astype(np.float64),
            (a.astype(np.float64) @ b.astype(np.float64)),
            tol=1e-3,
        )

    def test_dtype_in_plan_key_separates_plans(self, rng, session):
        a, b = _pairs(rng, 64, 1)[0]
        session.multiply(a, b)
        session.multiply(a, b, dtype=np.float32)
        s = session.stats()
        assert s.plan_misses == 2 and s.plans_cached == 2

    def test_batched_float32_bit_identical_to_per_item(self, rng):
        pairs = _pairs(rng, 96, 5, dtype=np.float32)
        refs = _reference_outputs(pairs, dtype=np.float32)
        with GemmSession() as s:
            outs = s.multiply_many(pairs, dtype=np.float32)
            assert s.stats().batched_executes == 1
        for out, ref in zip(outs, refs):
            assert out.dtype == np.float32
            assert np.array_equal(out, ref)

    def test_mixed_input_dtypes_cast_on_entry(self, rng, session):
        a = rng.standard_normal((40, 40)).astype(np.float32)
        b = rng.standard_normal((40, 40))
        out = session.multiply(a, b)  # default float64 compute
        assert out.dtype == np.float64
        assert_gemm_close(out, a.astype(np.float64) @ b)

    def test_unsupported_dtype_rejected(self, rng, session):
        a, b = _pairs(rng, 16, 1)[0]
        with pytest.raises(ValueError, match="dtype"):
            session.multiply(a, b, dtype=np.int32)


class TestBatchPlanCache:
    def test_same_size_class_reuses_plan(self, rng, session):
        for _ in range(3):
            session.multiply_many(_pairs(rng, 64, 5))
        s = session.stats()
        assert s.plan_misses == 1  # one BatchPlan compile
        assert s.plan_hits == 2
        assert s.plans_cached == 1
        assert s.batched_executes == 3

    def test_size_classes_get_distinct_plans(self, rng, session):
        session.multiply_many(_pairs(rng, 64, 2))   # class 2
        session.multiply_many(_pairs(rng, 64, 7))   # class 8
        s = session.stats()
        assert s.plan_misses == 2 and s.plans_cached == 2

    def test_eviction_releases_stacked_buffers(self, rng):
        with GemmSession(capacity=1) as s:
            s.multiply_many(_pairs(rng, 96, 4))
            pooled_large = s.stats().bytes_pooled
            s.multiply_many(_pairs(rng, 40, 4))
            stats = s.stats()
        assert stats.plan_evictions == 1
        # The 96^2 stacks are gone; only the smaller plan's bytes remain.
        assert 0 < stats.bytes_pooled < pooled_large
        assert stats.plans_cached == 1

    def test_scratch_accounting_survives_eviction(self, rng):
        with GemmSession(capacity=1) as s:
            s.multiply_many(_pairs(rng, 96, 4))
            s.multiply_many(_pairs(rng, 66, 4))
            stats = s.stats()
        assert stats.peak_scratch_bytes >= stats.scratch_bytes_allocated / 2
        assert stats.scratch_bytes_allocated > 0

    def test_clear_drops_batch_plans(self, rng, session):
        session.multiply_many(_pairs(rng, 64, 4))
        assert session.stats().plans_cached == 1
        session.clear()
        assert session.stats().plans_cached == 0
        assert session.stats().bytes_pooled == 0

    def test_batch_plan_rejects_ip_overwrite(self, session):
        key = session._make_key(
            64, 64, 64, "n", "n", None, None, None, False, None,
            "ip_overwrite",
        )
        with pytest.raises(PlanError, match="ip_overwrite"):
            BatchPlan(key, 4, session)

    def test_batch_plan_rejects_panelled_geometry(self, session):
        key = session._make_key(
            32, 2048, 32, "n", "n", None, None, None, False, None, None,
        )
        with pytest.raises(PlanError, match="panelled"):
            BatchPlan(key, 4, session)

    def test_capacity_guard(self, rng, session):
        pairs = _pairs(rng, 64, 3)
        session.multiply_many(pairs)
        ((_, bp),) = session._batch_plans.items()
        probs = [
            __import__("repro").GemmProblem.create(a, b) for a, b in pairs
        ]
        with pytest.raises(PlanError, match="capacity"):
            bp.execute_batch(probs * 2, [None] * 6)


class TestBatchStats:
    def test_convert_savings_counter_moves(self, rng, session):
        # Repeat so post-calibration executions accrue table savings.
        for _ in range(4):
            session.multiply_many(_pairs(rng, 96, 8))
        s = session.stats()
        assert s.batched_executes == 4
        assert s.batch_items == 32
        assert s.batch_convert_seconds_saved != 0.0

    def test_executes_counts_batch_items(self, rng, session):
        session.multiply_many(_pairs(rng, 64, 6))
        s = session.stats()
        assert s.executes == 6
        assert s.batch_items == 6

    def test_repr_mentions_batches(self, rng, session):
        session.multiply_many(_pairs(rng, 64, 2))
        assert "batched=1" in repr(session)
