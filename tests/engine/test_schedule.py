"""Engine-level tests of the task-DAG scheduling modes.

The load-bearing property: every schedule — sequential, ``tasks`` at any
expansion depth, any worker count — produces *bitwise identical* results,
because the task graph performs the same floating-point operations on the
same values as the sequential recursion (commuted additions only).
"""

import threading

import numpy as np
import pytest

from repro.engine import GemmSession, PlanKey, Schedule, WorkerPool
from repro.errors import PlanError


@pytest.fixture(scope="module")
def shared_pool():
    pool = WorkerPool(4, name="test-engine-pool")
    yield pool
    pool.shutdown()


def sequential_reference(rng, n):
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    with GemmSession() as s:
        return a, b, s.multiply(a, b)


class TestBitIdentity:
    # 513 pads to 528 with odd 33-wide tiles at depth 4; 528 divides
    # evenly.  Both exercise genuine padding/depth in the task graph.
    @pytest.mark.parametrize("n", [513, 528])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_tasks_matches_sequential(self, rng, n, depth):
        a, b, ref = sequential_reference(rng, n)
        with GemmSession(max_workers=4) as s:
            c = s.multiply(a, b, schedule=Schedule.tasks(depth=depth))
            assert np.array_equal(c, ref)
            # warm (cached-plan) rerun too
            assert np.array_equal(s.multiply(a, b, schedule=f"tasks:{depth}"), ref)

    @pytest.mark.parametrize("workers", [1, 2, 7, 16])
    def test_any_worker_count(self, rng, workers):
        a, b, ref = sequential_reference(rng, 150)
        with GemmSession(max_workers=workers) as s:
            c = s.multiply(a, b, schedule="tasks:2")
            assert np.array_equal(c, ref)

    def test_rectangular_and_transposed(self, rng):
        a = rng.standard_normal((96, 130))
        b = rng.standard_normal((96, 110))
        with GemmSession() as s:
            ref = s.multiply(a, b, op_a="t")
            with GemmSession(max_workers=2) as p:
                assert np.array_equal(
                    p.multiply(a, b, op_a="t", schedule="tasks"), ref
                )

    def test_parallel_bool_back_compat(self, rng):
        a, b, ref = sequential_reference(rng, 150)
        with GemmSession() as s:
            c = s.multiply(a, b, parallel=True)
            assert np.array_equal(c, ref)
            key = s.plan(150, 150, 150, parallel=True).key
            assert key.parallel and key.schedule == Schedule.tasks(1, 7)


class TestPlanCache:
    def test_schedules_get_distinct_plans(self, rng):
        with GemmSession(max_workers=2) as s:
            p_seq = s.plan(150, 150, 150)
            p_t1 = s.plan(150, 150, 150, schedule="tasks:1")
            p_t2 = s.plan(150, 150, 150, schedule="tasks:2")
            assert len({id(p_seq), id(p_t1), id(p_t2)}) == 3
            assert s.plan(150, 150, 150, schedule=Schedule.tasks(2)) is p_t2

    def test_expansion_depth_clamped_to_recursion(self, rng):
        a, b, ref = sequential_reference(rng, 96)  # shallow: depth 1-2
        with GemmSession(max_workers=2) as s:
            c = s.multiply(a, b, schedule="tasks:6")
            assert np.array_equal(c, ref)

    def test_depth_zero_geometry_runs_sequentially(self, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        with GemmSession(max_workers=2) as s:
            plan = s.plan(20, 20, 20, schedule="tasks")
            assert plan._graph is None  # no recursion to parallelise
            assert np.allclose(plan.execute(a, b), a @ b)

    def test_tasks_rejected_for_strassen(self):
        with GemmSession() as s:
            with pytest.raises(PlanError):
                s.plan(150, 150, 150, variant="strassen", schedule="tasks")

    def test_session_default_schedule(self, rng):
        a, b, ref = sequential_reference(rng, 150)
        with GemmSession(schedule="tasks:2", max_workers=2) as s:
            assert s.plan(150, 150, 150).key.schedule == Schedule.tasks(2)
            assert np.array_equal(s.multiply(a, b), ref)
            # per-call override back to sequential
            assert not s.plan(150, 150, 150, schedule="sequential").key.parallel

    def test_plan_key_hashes_with_schedule(self):
        with GemmSession() as s:
            key = s.plan(96, 96, 96, schedule="tasks:2x4").key
            assert isinstance(key, PlanKey)
            assert key.schedule == Schedule.tasks(depth=2, workers=4)
            assert hash(key) == hash(key)


class TestWorkerPoolOwnership:
    def test_pool_created_lazily(self):
        with GemmSession(max_workers=3) as s:
            s.plan(150, 150, 150)  # sequential: no pool needed
            assert s._pool is None
            s.plan(150, 150, 150, schedule="tasks")
            assert s._pool is None  # compile alone does not spin it up

    def test_concurrent_sessions_share_one_pool(self, rng, shared_pool):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        with GemmSession() as ref_s:
            ref = ref_s.multiply(a, b)
        sessions = [GemmSession(pool=shared_pool) for _ in range(3)]
        results = [None] * len(sessions)
        errors = []

        def work(i, s):
            try:
                for _ in range(3):
                    results[i] = s.multiply(a, b, schedule="tasks:2")
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i, s))
            for i, s in enumerate(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(np.array_equal(r, ref) for r in results)
        # close() must leave the shared pool running
        for s in sessions:
            s.close()
        assert shared_pool.run_all([lambda: None]).tasks == 1

    def test_close_shuts_down_owned_pool(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        s = GemmSession(max_workers=2)
        s.multiply(a, b, schedule="tasks")
        pool = s._pool
        assert pool is not None
        s.close()
        assert s._pool is None
        with pytest.raises(RuntimeError):
            pool.run_all([lambda: None])
        # session stays usable: pool is lazily recreated
        assert np.allclose(s.multiply(a, b, schedule="tasks"), a @ b)
        s.close()


class TestParallelStats:
    def test_counters_accumulate(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        with GemmSession(max_workers=2) as s:
            s.multiply(a, b)  # sequential: no parallel counters
            assert s.stats().parallel_executes == 0
            s.multiply(a, b, schedule="tasks:2")
            s.multiply(a, b, schedule="tasks:2")
            st = s.stats()
            assert st.parallel_executes == 2
            # depth-2 expansion: 7**2 products plus sums/combinations
            assert st.tasks_run >= 2 * 49
            assert st.worker_busy_seconds > 0.0
            assert 0.0 <= st.worker_utilization <= 1.0

    def test_conversion_calibration_counters(self, rng):
        # 513 -> tile 33 / depth 4: tables are built, and after the
        # exec-1 baseline the indexed path is tried on exec 2.  With
        # fused packing (the default) the a/b sides always gather through
        # the fused tables, so only the c site calibrates loop-vs-indexed.
        a = rng.standard_normal((513, 513))
        b = rng.standard_normal((513, 513))
        with GemmSession() as s:
            plan = s.plan(513, 513, 513)
            assert set(plan._sites) == {"c"}
            assert set(plan._ftables) == {"a", "b"}
            ref = s.multiply(a, b)
            assert s.stats().indexed_conversions == 0  # baseline pass
            c2 = s.multiply(a, b)
            assert np.array_equal(c2, ref)  # paths are bit-identical
            st = s.stats()
            assert st.indexed_conversions == 1  # trial pass, c site
            for _ in range(2):
                assert np.array_equal(s.multiply(a, b), ref)

    def test_conversion_calibration_counters_unfused(self, rng):
        # fused_pack=False restores the legacy three-site calibration.
        a = rng.standard_normal((513, 513))
        b = rng.standard_normal((513, 513))
        with GemmSession(fused_pack=False) as s:
            plan = s.plan(513, 513, 513)
            assert set(plan._sites) == {"a", "b", "c"}
            assert plan._ftables == {}
            ref = s.multiply(a, b)
            assert s.stats().indexed_conversions == 0  # baseline pass
            c2 = s.multiply(a, b)
            assert np.array_equal(c2, ref)  # paths are bit-identical
            st = s.stats()
            assert st.indexed_conversions == 3  # trial pass, all sites
            for _ in range(2):
                assert np.array_equal(s.multiply(a, b), ref)

    def test_shallow_plans_skip_tables(self):
        with GemmSession() as s:
            plan = s.plan(96, 96, 96)  # depth < CONVERT_TABLE_MIN_DEPTH
            assert plan._sites == {}

    def test_pooled_bytes_cover_scratch_and_tables(self):
        with GemmSession(max_workers=2) as s:
            seq = s.plan(513, 513, 513)
            par = s.plan(513, 513, 513, schedule="tasks:2")
            assert par._tscratch is not None
            assert par.pooled_bytes > seq.pooled_bytes
            assert s.stats().bytes_pooled >= seq.pooled_bytes + par.pooled_bytes
