"""Typed errors (`repro.errors`) and API-consistency deprecation shims."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.blas.dgemm import GemmProblem
from repro.blas.kernels import get_kernel
from repro.core.truncation import TruncationPolicy
from repro.engine import resolve_variant
from repro.errors import KernelError, PlanError, ReproError, ShapeError


class TestHierarchy:
    def test_all_subclass_valueerror(self):
        for exc in (ReproError, ShapeError, PlanError, KernelError):
            assert issubclass(exc, ValueError)
        for exc in (ShapeError, PlanError, KernelError):
            assert issubclass(exc, ReproError)

    def test_exported_at_top_level(self):
        assert repro.ShapeError is ShapeError
        assert repro.PlanError is PlanError
        assert repro.KernelError is KernelError


class TestShapeError:
    def test_non_2d_operands(self):
        with pytest.raises(ShapeError):
            GemmProblem.create(np.zeros(3), np.zeros((3, 3)))

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            GemmProblem.create(np.zeros((3, 4)), np.zeros((5, 3)))

    def test_wrong_c_shape(self):
        with pytest.raises(ShapeError):
            GemmProblem.create(np.zeros((3, 3)), np.zeros((3, 3)), c=np.zeros((2, 2)))

    def test_modgemm_propagates(self):
        with pytest.raises(ShapeError):
            repro.modgemm(np.zeros((3, 4)), np.zeros((5, 3)))


class TestPlanError:
    def test_fixed_tile_validation(self):
        with pytest.raises(PlanError):
            TruncationPolicy.fixed(0)

    def test_conflict_aware_validation(self):
        with pytest.raises(PlanError):
            TruncationPolicy.conflict_aware(cache_bytes=0)

    def test_plan_rejects_degenerate_dims(self):
        with pytest.raises(PlanError):
            TruncationPolicy.dynamic().plan(0, 4, 4)

    def test_parallel_strassen_rejected_as_plan_error(self):
        with pytest.raises(PlanError):
            repro.modgemm(np.eye(8), np.eye(8), parallel=True, variant="strassen")

    def test_malformed_policy_string(self):
        with pytest.raises(PlanError):
            TruncationPolicy.coerce("fixed:nope")
        with pytest.raises(PlanError):
            TruncationPolicy.coerce("coppersmith")


class TestKernelError:
    def test_unknown_kernel_name(self):
        with pytest.raises(KernelError):
            get_kernel("turbo")

    def test_unknown_variant(self):
        with pytest.raises(KernelError):
            resolve_variant("coppersmith")

    def test_modgemm_propagates(self):
        with pytest.raises(KernelError):
            repro.modgemm(np.eye(4), np.eye(4), kernel="turbo")


class TestPolicyCoercion:
    def test_none_gives_default(self):
        from repro.core.truncation import DEFAULT_POLICY

        assert TruncationPolicy.coerce(None) is DEFAULT_POLICY

    def test_passthrough(self):
        p = TruncationPolicy.fixed(48)
        assert TruncationPolicy.coerce(p) is p

    def test_int_means_fixed(self):
        assert TruncationPolicy.coerce(48) == TruncationPolicy.fixed(48)

    def test_strings(self):
        assert TruncationPolicy.coerce("dynamic") == TruncationPolicy.dynamic()
        assert TruncationPolicy.coerce("fixed") == TruncationPolicy.fixed()
        assert TruncationPolicy.coerce("fixed:48") == TruncationPolicy.fixed(48)
        assert TruncationPolicy.coerce("dynamic:32,128") == \
            TruncationPolicy.dynamic(32, 128)

    def test_truncation_point(self):
        assert TruncationPolicy.fixed(48).truncation_point() == 48
        assert TruncationPolicy.dynamic(16, 64).truncation_point() == 64

    def test_modgemm_accepts_int_and_string_policy(self, rng):
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        ref = a @ b
        for policy in (32, "fixed:32", "dynamic", TruncationPolicy.dynamic()):
            out = repro.modgemm(a, b, policy=policy)
            assert np.allclose(out, ref)


class TestVariantForms:
    def test_variant_accepts_function_objects(self, rng):
        from repro.core.strassen import strassen_multiply
        from repro.core.winograd import winograd_multiply

        assert resolve_variant(winograd_multiply) == "winograd"
        assert resolve_variant(strassen_multiply) == "strassen"
        a = rng.standard_normal((80, 80))
        b = rng.standard_normal((80, 80))
        assert np.array_equal(
            repro.modgemm(a, b, variant=strassen_multiply),
            repro.modgemm(a, b, variant="strassen"),
        )


class TestBaselineDeprecationShims:
    def test_dgefmm_truncation_warns_and_works(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        with pytest.warns(DeprecationWarning, match="dgefmm"):
            out = repro.dgefmm(a, b, truncation=32)
        assert np.allclose(out, a @ b)

    def test_dgemmw_truncation_warns_and_works(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        with pytest.warns(DeprecationWarning, match="dgemmw"):
            out = repro.dgemmw(a, b, truncation=32)
        assert np.allclose(out, a @ b)

    def test_deprecated_matches_new_spelling(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        with pytest.warns(DeprecationWarning):
            old = repro.dgefmm(a, b, truncation=32)
        new = repro.dgefmm(a, b, policy=32)
        assert np.array_equal(old, new)

    def test_both_spellings_rejected(self, rng):
        a = rng.standard_normal((8, 8))
        with pytest.raises(PlanError):
            repro.dgefmm(a, a, policy=32, truncation=32)

    def test_policy_object_maps_to_crossover(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        via_policy = repro.dgemmw(a, b, policy=TruncationPolicy.fixed(32))
        via_int = repro.dgemmw(a, b, policy=32)
        assert np.array_equal(via_policy, via_int)
