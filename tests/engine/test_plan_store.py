"""Engine x plan-store integration: precedence, key resolution, calibration.

The regression at the heart of this file: a plan's conversion-site
loop-vs-indexed calibration used to live only on the plan object, so an
LRU eviction threw the measured verdict away and the next compile of the
same geometry re-ran both trial executions.  With a plan store attached,
the verdict persists — across evictions and across sessions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blas.kernels import get_accumulate_cap, set_accumulate_cap
from repro.engine.session import GemmSession
from repro.layout.convert import calibration_key
from repro.observe.schema import EVENT_KINDS, validate_trace
from repro.tune.store import PlanStore, StoredDecision

# Sites calibrate only at depth >= CONVERT_TABLE_MIN_DEPTH (3); 129 at
# the default dynamic policy splits to depth 3 (tile 17) or similar only
# for larger n, so use fused_pack=False + an explicit fixed policy that
# forces depth >= 3 on a small matrix to keep the test fast.
N = 136  # 17 * 2**3
POLICY = 17  # fixed tile 17 -> depth 3 at n=136


def _operands(n=N, seed=3):
    rng = np.random.default_rng(seed)
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))
    return a, b


def _site_modes(plan):
    return {name: site.mode for name, site in plan._sites.items()}


class TestPrecedence:
    def test_env_var_attaches_store(self, tmp_path, monkeypatch):
        path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_PLAN_STORE", str(path))
        s = GemmSession()
        assert s.plan_store is not None
        assert s.plan_store.path == path
        s.close()

    def test_explicit_arg_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_STORE", str(tmp_path / "env.json"))
        s = GemmSession(plan_store=tmp_path / "arg.json")
        assert s.plan_store.path == tmp_path / "arg.json"
        s.close()

    def test_explicit_none_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_STORE", str(tmp_path / "env.json"))
        s = GemmSession(plan_store=None)
        assert s.plan_store is None
        s.close()

    def test_no_env_no_arg_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_STORE", raising=False)
        s = GemmSession()
        assert s.plan_store is None
        s.close()

    def test_shared_store_instance(self, tmp_path):
        shared = PlanStore(tmp_path / "shared.json")
        s1 = GemmSession(plan_store=shared)
        s2 = GemmSession(plan_store=shared)
        assert s1.plan_store is shared and s2.plan_store is shared
        s1.close()
        s2.close()


class TestKeyResolution:
    def test_store_decision_drives_policy(self, tmp_path):
        store = PlanStore(tmp_path / "p.json")
        store.record(96, 96, 96, StoredDecision(
            tile_m=12, tile_k=12, tile_n=12, depth=3, memory="two_temp",
        ))
        with GemmSession(plan_store=store) as s:
            plan = s.plan(96, 96, 96)
            assert [t.tile for t in plan.tilings] == [12, 12, 12]
            assert plan.tilings[0].depth == 3
            assert plan.key.memory == "two_temp"
            st = s.stats()
            assert st.store_hits == 1 and st.store_misses == 0

    def test_explicit_caller_args_beat_store(self, tmp_path):
        store = PlanStore(tmp_path / "p.json")
        store.record(96, 96, 96, StoredDecision(
            tile_m=12, tile_k=12, tile_n=12, depth=3, memory="two_temp",
        ))
        with GemmSession(plan_store=store) as s:
            # Explicit policy: the store is not even consulted.
            plan = s.plan(96, 96, 96, policy=48)
            assert plan.tilings[0].tile == 48
            assert s.stats().store_hits == 0
            # Policy from store, but explicit memory wins over its field.
            plan = s.plan(96, 96, 96, memory="classic")
            assert plan.tilings[0].tile == 12
            assert plan.key.memory == "classic"

    def test_miss_counts_and_default_fallback(self, tmp_path):
        with GemmSession(plan_store=tmp_path / "p.json") as s:
            plan = s.plan(96, 96, 96)
            st = s.stats()
            assert st.store_misses == 1 and st.store_hits == 0
            # Heuristic default applies on a miss.
            assert plan.tilings == s.default_policy.plan(96, 96, 96)

    def test_store_lookup_trace_event_and_schema(self, tmp_path):
        assert "store_lookup" in EVENT_KINDS
        assert "autotune_trial" in EVENT_KINDS
        store = PlanStore(tmp_path / "p.json")
        store.record(96, 96, 96, StoredDecision(
            tile_m=12, tile_k=12, tile_n=12, depth=3,
        ))
        with GemmSession(plan_store=store, trace=True) as s:
            s.plan(96, 96, 96)
            s.plan(64, 64, 64)
            doc = s.trace.dump()
        validate_trace(doc)
        lookups = [e for e in doc["events"] if e["kind"] == "store_lookup"]
        assert [e["data"]["hit"] for e in lookups] == [True, False]

    def test_unusable_record_falls_back(self, tmp_path):
        store = PlanStore(tmp_path / "p.json")
        # tile * 2^depth < n: not a plannable decision for this shape.
        store.record(96, 96, 96, StoredDecision(
            tile_m=2, tile_k=2, tile_n=2, depth=1,
        ))
        with GemmSession(plan_store=store) as s:
            plan = s.plan(96, 96, 96)  # must not raise
            assert plan.tilings == s.default_policy.plan(96, 96, 96)


class TestCalibrationPersistence:
    def test_verdict_survives_eviction(self, tmp_path):
        """The PR's regression test: eviction no longer re-trials."""
        a, b = _operands()
        store = PlanStore(tmp_path / "p.json")
        with GemmSession(
            capacity=1, plan_store=store, fused_pack=False,
        ) as s:
            s.multiply(a, b, policy=POLICY)
            s.multiply(a, b, policy=POLICY)  # trial run -> verdicts decided
            modes = set(_site_modes(s.plan(N, N, N, policy=POLICY)).values())
            assert modes <= {"indexed", "loop"} and modes
            # Evict the plan, then recompile the same geometry.
            s.plan(64, 64, 64, policy=8)
            plan = s.plan(N, N, N, policy=POLICY)
            # Preseeded from the store: no site is back in baseline/trial.
            for mode in _site_modes(plan).values():
                assert mode == "indexed"
            # "loop" verdicts skip the site (and its table) entirely:
            # every surviving site is indexed, none needs a trial.

    def test_without_store_eviction_retrials(self, tmp_path):
        """The pre-store behaviour this PR fixes, kept as a contrast."""
        a, b = _operands()
        with GemmSession(capacity=1, plan_store=None, fused_pack=False) as s:
            s.multiply(a, b, policy=POLICY)
            s.multiply(a, b, policy=POLICY)
            s.plan(64, 64, 64, policy=8)  # evict
            plan = s.plan(N, N, N, policy=POLICY)
            for mode in _site_modes(plan).values():
                assert mode == "baseline"  # recalibration from scratch

    def test_verdict_survives_sessions(self, tmp_path):
        a, b = _operands()
        path = tmp_path / "p.json"
        with GemmSession(plan_store=path, fused_pack=False) as s:
            s.multiply(a, b, policy=POLICY)
            s.multiply(a, b, policy=POLICY)
            decided = _site_modes(s.plan(N, N, N, policy=POLICY))
        # A fresh process-like session against the flushed store.
        with GemmSession(plan_store=path, fused_pack=False) as warm:
            plan = warm.plan(N, N, N, policy=POLICY)
            warm_modes = _site_modes(plan)
            for name, mode in warm_modes.items():
                assert mode == "indexed"
                assert decided.get(name) == "indexed"
            # Sites decided "loop" were dropped: no table was even built.
            loop_names = {
                n_ for n_, m_ in decided.items() if m_ == "loop"
            }
            assert loop_names.isdisjoint(warm_modes)

    def test_calibration_key_is_stable(self):
        assert calibration_key(136, 136, 17, 17, 3) == (
            "136x136:t17x17:d3:float64"
        )
        assert calibration_key(136, 136, 17, 17, 3, dtype="float32") != (
            calibration_key(136, 136, 17, 17, 3)
        )


class TestArtifacts:
    def test_accumulate_cap_applied_from_store(self, tmp_path):
        original = get_accumulate_cap()
        try:
            store = PlanStore(tmp_path / "p.json")
            store.record(96, 96, 96, StoredDecision(
                tile_m=12, tile_k=12, tile_n=12, depth=3,
            ))
            store.set_artifact("accumulate_cap", 1 << 18)
            with GemmSession(plan_store=store) as s:
                s.plan(96, 96, 96)  # first consult applies the artifact
                assert get_accumulate_cap() == 1 << 18
        finally:
            set_accumulate_cap(original)

    def test_explicit_cap_outranks_store_artifact(self, tmp_path):
        original = get_accumulate_cap()
        try:
            store = PlanStore(tmp_path / "p.json")
            store.set_artifact("accumulate_cap", 1 << 18)
            with GemmSession(
                plan_store=store, accumulate_cap=1 << 19
            ) as s:
                s.plan(96, 96, 96)
                assert get_accumulate_cap() == 1 << 19
        finally:
            set_accumulate_cap(original)


class TestClose:
    def test_close_flushes_store(self, tmp_path):
        path = tmp_path / "p.json"
        store = PlanStore(path)
        s = GemmSession(plan_store=store)
        store.record(96, 96, 96, StoredDecision(
            tile_m=12, tile_k=12, tile_n=12, depth=3,
        ))
        assert not path.exists()
        s.close()
        assert path.exists()
        assert PlanStore(path).lookup(96, 96, 96) is not None

    def test_stats_fields_default_zero(self):
        with GemmSession(plan_store=None) as s:
            st = s.stats()
            assert st.store_hits == 0
            assert st.store_misses == 0
            assert st.autotune_seconds == 0.0
