"""Unit tests for the plan-caching GEMM engine (`repro.engine`)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.modgemm import PhaseTimings, modgemm
from repro.core.truncation import TruncationPolicy
from repro.engine import GemmSession, default_session, reset_default_session
from repro.errors import PlanError, ShapeError

from ..conftest import assert_gemm_close


@pytest.fixture
def session() -> GemmSession:
    return GemmSession()


class TestPlanCacheAccounting:
    def test_first_call_misses_then_hits(self, rng, session):
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        session.multiply(a, b)
        s = session.stats()
        assert (s.plan_misses, s.plan_hits) == (1, 0)
        session.multiply(a, b)
        session.multiply(a, b)
        s = session.stats()
        assert (s.plan_misses, s.plan_hits) == (1, 2)
        assert s.executes == 3
        assert s.buffers_reused == 2

    def test_distinct_geometries_get_distinct_plans(self, rng, session):
        session.multiply(rng.standard_normal((60, 60)), rng.standard_normal((60, 60)))
        session.multiply(rng.standard_normal((70, 70)), rng.standard_normal((70, 70)))
        s = session.stats()
        assert s.plan_misses == 2 and s.plans_cached == 2

    def test_transpose_ops_are_part_of_the_key(self, rng, session):
        a = rng.standard_normal((80, 80))
        b = rng.standard_normal((80, 80))
        session.multiply(a, b)
        session.multiply(a, b, op_a="t")
        assert session.stats().plan_misses == 2

    def test_policy_and_variant_part_of_the_key(self, rng, session):
        a = rng.standard_normal((80, 80))
        b = rng.standard_normal((80, 80))
        session.multiply(a, b, variant="winograd")
        session.multiply(a, b, variant="strassen")
        session.multiply(a, b, policy=TruncationPolicy.fixed(32))
        assert session.stats().plan_misses == 3

    def test_hit_path_allocates_no_new_buffers(self, rng, session):
        a = rng.standard_normal((90, 90))
        b = rng.standard_normal((90, 90))
        session.multiply(a, b)
        allocated = session.stats().buffers_allocated
        assert allocated > 0
        for _ in range(5):
            session.multiply(a, b)
        assert session.stats().buffers_allocated == allocated

    def test_bytes_pooled_positive_and_drops_on_clear(self, rng, session):
        session.multiply(rng.standard_normal((64, 64)), rng.standard_normal((64, 64)))
        assert session.stats().bytes_pooled > 0
        session.clear()
        assert session.stats().bytes_pooled == 0

    def test_aggregate_timings_accumulate(self, rng, session):
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        session.multiply(a, b)
        t1 = session.stats().timings.total
        session.multiply(a, b)
        t2 = session.stats().timings.total
        assert 0 < t1 < t2


class TestLruEviction:
    def test_capacity_bounds_cached_plans(self, rng):
        session = GemmSession(capacity=2)
        for n in (40, 50, 60, 70):
            session.multiply(
                rng.standard_normal((n, n)), rng.standard_normal((n, n))
            )
        s = session.stats()
        assert s.plans_cached <= 2
        assert s.plan_evictions >= 2

    def test_lru_order_evicts_least_recent(self, rng):
        session = GemmSession(capacity=2)
        mats = {
            n: (rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            for n in (40, 50, 60)
        }
        session.multiply(*mats[40])
        session.multiply(*mats[50])
        session.multiply(*mats[40])   # refresh 40 -> 50 is now LRU
        session.multiply(*mats[60])   # evicts 50
        before = session.stats().plan_misses
        session.multiply(*mats[40])   # still cached
        assert session.stats().plan_misses == before
        session.multiply(*mats[50])   # was evicted -> recompiles
        assert session.stats().plan_misses == before + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GemmSession(capacity=0)


class TestCorrectness:
    @pytest.mark.parametrize(
        "dims",
        [(1, 1, 1), (5, 3, 7), (64, 64, 64), (65, 65, 65), (150, 200, 170)],
    )
    def test_matches_numpy_repeatedly(self, rng, session, dims):
        m, k, n = dims
        for _ in range(3):
            a = rng.standard_normal((m, k))
            b = rng.standard_normal((k, n))
            assert_gemm_close(session.multiply(a, b), a @ b)

    def test_bit_identical_to_modgemm(self, rng, session):
        cases = [
            dict(dims=(150, 150, 150)),
            dict(dims=(100, 80, 120)),
            dict(dims=(80, 80, 80), op_a="t"),
            dict(dims=(512, 64, 512)),          # panel path
            dict(dims=(97, 97, 97), variant="strassen"),
        ]
        for case in cases:
            m, k, n = case.pop("dims")
            op_a = case.get("op_a", "n")
            shape_a = (k, m) if op_a == "t" else (m, k)
            a = rng.standard_normal(shape_a)
            b = rng.standard_normal((k, n))
            expected = modgemm(a, b, **case)
            got = session.multiply(a, b, **case)
            assert np.array_equal(got, expected)
            # and again through the warm plan
            assert np.array_equal(session.multiply(a, b, **case), expected)

    def test_blas_contract_alpha_beta_inplace(self, rng, session):
        a = rng.standard_normal((40, 30))
        b = rng.standard_normal((30, 50))
        c0 = rng.standard_normal((40, 50))
        c = c0.copy()
        out = session.multiply(a, b, c=c, alpha=0.5, beta=2.0)
        assert out is c
        assert_gemm_close(out, 0.5 * (a @ b) + 2.0 * c0)

    def test_pooled_buffers_do_not_leak_between_calls(self, rng, session):
        """A second multiply must not see residue of the first's operands."""
        a1 = rng.standard_normal((65, 65))
        b1 = rng.standard_normal((65, 65))
        session.multiply(a1, b1)
        a2 = rng.standard_normal((65, 65))
        b2 = rng.standard_normal((65, 65))
        assert_gemm_close(session.multiply(a2, b2), a2 @ b2)

    def test_parallel_routed_through_plan(self, rng, session):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        out = session.multiply(a, b, parallel=True)
        assert_gemm_close(out, a @ b)
        # parallelism is a plan property, not a variant rewrite
        key = next(iter(session._plans))
        assert key.parallel is True and key.variant == "winograd"

    def test_parallel_with_non_winograd_variant_rejected(self, rng, session):
        with pytest.raises(PlanError):
            session.multiply(np.eye(8), np.eye(8), parallel=True, variant="strassen")

    def test_timings_filled(self, rng, session):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        t = PhaseTimings()
        session.multiply(a, b, timings=t)
        assert t.to_morton > 0 and t.compute > 0 and t.from_morton > 0

    def test_panel_count_reported(self, rng, session):
        a = rng.standard_normal((512, 64))
        b = rng.standard_normal((64, 512))
        t = PhaseTimings()
        session.multiply(a, b, timings=t)
        assert t.panels > 1


class TestCompiledPlan:
    def test_explicit_plan_execute(self, rng, session):
        plan = session.plan(100, 100, 100)
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        assert_gemm_close(plan.execute(a, b), a @ b)

    def test_plan_rejects_mismatched_shapes(self, rng, session):
        plan = session.plan(100, 100, 100)
        with pytest.raises(ShapeError):
            plan.execute(rng.standard_normal((64, 64)), rng.standard_normal((64, 64)))

    def test_plan_freezes_tilings(self, session):
        plan = session.plan(513, 513, 513)
        tm, tk, tn = plan.tilings
        expected = TruncationPolicy.dynamic().plan(513, 513, 513)
        assert (tm, tk, tn) == expected

    def test_plan_key_identity_gives_same_object(self, session):
        assert session.plan(100, 100, 100) is session.plan(100, 100, 100)


class TestMultiplyMany:
    def test_results_in_order(self, rng, session):
        pairs = []
        refs = []
        for n in (40, 50, 60, 40, 50):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            pairs.append((a, b))
            refs.append(a @ b)
        outs = session.multiply_many(pairs)
        assert len(outs) == len(refs)
        for out, ref in zip(outs, refs):
            assert_gemm_close(out, ref)

    def test_in_place_c_items(self, rng, session):
        a = rng.standard_normal((30, 30))
        b = rng.standard_normal((30, 30))
        c0 = rng.standard_normal((30, 30))
        c = c0.copy()
        outs = session.multiply_many([(a, b, c)], alpha=1.0, beta=1.0)
        assert outs[0] is c
        assert_gemm_close(c, a @ b + c0)

    def test_same_geometry_batch_reuses_one_plan(self, rng, session):
        pairs = [
            (rng.standard_normal((64, 64)), rng.standard_normal((64, 64)))
            for _ in range(6)
        ]
        outs = session.multiply_many(pairs)
        for (a, b), out in zip(pairs, outs):
            assert_gemm_close(out, a @ b)
        s = session.stats()
        assert s.plan_misses == 1 and s.plans_cached == 1

    def test_concurrent_sessions_do_not_corrupt_buffers(self, rng):
        """Hammer one session from many threads; all products must be exact."""
        session = GemmSession()
        n_threads, per_thread = 6, 4
        a = rng.standard_normal((96, 96))
        b = rng.standard_normal((96, 96))
        expected = session.multiply(a, b)
        errors: list[Exception] = []

        def worker() -> None:
            try:
                for _ in range(per_thread):
                    got = session.multiply(a, b)
                    if not np.array_equal(got, expected):
                        raise AssertionError("corrupted pooled buffers")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert session.stats().executes == 1 + n_threads * per_thread


class TestDefaultSession:
    def test_modgemm_uses_default_session(self, rng):
        sess = reset_default_session()
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        modgemm(a, b)
        modgemm(a, b)
        s = sess.stats()
        assert s.plan_misses == 1 and s.plan_hits == 1

    def test_reset_replaces_the_session(self):
        first = default_session()
        second = reset_default_session()
        assert first is not second
        assert default_session() is second

    def test_session_and_modgemm_bit_identical(self, rng):
        reset_default_session()
        session = GemmSession()
        a = rng.standard_normal((120, 120))
        b = rng.standard_normal((120, 120))
        assert np.array_equal(session.multiply(a, b), modgemm(a, b))


class TestCloseDuringMultiply:
    """close() racing an in-flight parallel multiply must never hang.

    Regression test for the pool-shutdown bug: a graph still queued when
    the workers exited left its caller blocked forever.  Now the caller
    either completes normally (its graph drained) or gets the pool's
    shutdown ``RuntimeError`` — both within a bounded wait.
    """

    @pytest.mark.parametrize("delay", [0.0, 0.002, 0.01])
    def test_close_concurrent_with_parallel_multiply(self, rng, delay):
        import time

        a = rng.standard_normal((129, 129))
        b = rng.standard_normal((129, 129))
        expected = a @ b
        session = GemmSession(max_workers=2)
        failures: list[Exception] = []
        done = threading.Event()

        def work() -> None:
            try:
                for _ in range(6):
                    out = session.multiply(a, b, schedule="tasks:1")
                    assert_gemm_close(out, expected)
            except RuntimeError as exc:
                # The one acceptable error: the pool died under us.
                if "shut down" not in str(exc):
                    failures.append(exc)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)
            finally:
                done.set()

        t = threading.Thread(target=work)
        t.start()
        time.sleep(delay)
        session.close()
        assert done.wait(timeout=60), "multiply hung after close()"
        t.join(timeout=10)
        assert not t.is_alive()
        assert not failures, failures
        # The session stays usable: a later multiply recreates the pool.
        out = session.multiply(a, b, schedule="tasks:1")
        assert_gemm_close(out, expected)
        session.close()


class TestMortonWorkspacePool:
    def test_pooled_workspace_reused(self, rng):
        from repro.layout.matrix import MortonMatrix
        from repro.layout.padding import select_common_tiling

        session = GemmSession()
        tm, tk, tn = select_common_tiling((100, 100, 100))
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal((100, 100))
        a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
        out1 = session.multiply_morton(a_mm, b_mm)
        out2 = session.multiply_morton(a_mm, b_mm)
        assert_gemm_close(out1.to_dense(), a @ b)
        assert np.array_equal(out1.to_dense(), out2.to_dense())
        s = session.stats()
        assert s.plan_misses == 1 and s.plan_hits == 1
