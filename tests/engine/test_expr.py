"""The chained-expression planner: Mat/MatChain and session.evaluate."""

import numpy as np
import pytest

from repro.engine import GemmSession, Mat, MatChain, chain_order
from repro.errors import PlanError, ShapeError

from ..conftest import assert_gemm_close


@pytest.fixture
def rng():
    return np.random.default_rng(777)


class TestMatAlgebra:
    def test_leaf_shape_and_transpose(self, rng):
        m = Mat(rng.standard_normal((3, 5)))
        assert m.shape == (3, 5)
        assert m.T.shape == (5, 3)
        assert m.T.T.shape == (3, 5)
        assert not m.T.T.trans

    def test_non_2d_leaf_rejected(self):
        with pytest.raises(ShapeError):
            Mat(np.zeros(4))

    def test_chain_building_and_shape(self, rng):
        a = Mat(rng.standard_normal((3, 4)))
        b = Mat(rng.standard_normal((4, 5)))
        c = Mat(rng.standard_normal((5, 2)))
        chain = a @ b @ c
        assert isinstance(chain, MatChain)
        assert len(chain.leaves) == 3
        assert chain.shape == (3, 2)

    def test_inner_dim_mismatch_rejected(self, rng):
        a = Mat(rng.standard_normal((3, 4)))
        b = Mat(rng.standard_normal((5, 6)))
        with pytest.raises(ShapeError):
            a @ b

    def test_chain_transpose_rejected(self, rng):
        a = Mat(rng.standard_normal((3, 4)))
        b = Mat(rng.standard_normal((4, 5)))
        with pytest.raises(PlanError):
            (a @ b).T

    def test_raw_arrays_coerce_to_leaves(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        chain = Mat(a) @ b
        assert len(chain.leaves) == 2


class TestChainOrder:
    def test_textbook_example(self):
        # CLRS 15.2: dims (30, 35, 15, 5, 10, 20, 25) -> 15125 multiplies.
        cost, splits = chain_order([30, 35, 15, 5, 10, 20, 25])
        assert cost == 15125
        assert splits[0][5] == 2  # optimal root split after matrix 3

    def test_two_matrices_trivial(self):
        cost, splits = chain_order([4, 8, 2])
        assert cost == 4 * 8 * 2
        assert splits[0][1] == 0

    def test_association_order_matters(self):
        # (A @ B) @ C vs A @ (B @ C) with a skinny middle: the DP must
        # pick the cheap side.
        cost, splits = chain_order([100, 2, 100, 2])
        # right-assoc: B@C costs 2*100*2, then A@(BC) costs 100*2*2.
        assert cost == 2 * 100 * 2 + 100 * 2 * 2
        assert splits[0][2] == 0


class TestEvaluate:
    def test_three_chain_matches_numpy(self, rng):
        a = rng.standard_normal((40, 90))
        b = rng.standard_normal((90, 8))
        c = rng.standard_normal((8, 70))
        with GemmSession() as s:
            out = s.evaluate(Mat(a) @ Mat(b) @ Mat(c))
        assert_gemm_close(out, a @ b @ c, tol=1e-8)

    def test_transposed_leaves(self, rng):
        a = rng.standard_normal((90, 40))
        b = rng.standard_normal((90, 8))
        c = rng.standard_normal((70, 8))
        with GemmSession() as s:
            out = s.evaluate(Mat(a).T @ Mat(b) @ Mat(c).T)
        assert_gemm_close(out, a.T @ b @ c.T, tol=1e-8)

    def test_alpha_beta_c_apply_at_root_only(self, rng):
        a = rng.standard_normal((32, 48))
        b = rng.standard_normal((48, 24))
        d = rng.standard_normal((24, 40))
        c0 = rng.standard_normal((32, 40))
        c = c0.copy()
        with GemmSession() as s:
            out = s.evaluate(Mat(a) @ Mat(b) @ Mat(d), alpha=0.5,
                             beta=2.0, c=c)
        assert out is c
        assert_gemm_close(out, 0.5 * (a @ b @ d) + 2.0 * c0, tol=1e-8)

    def test_single_leaf_rejected(self, rng):
        with GemmSession() as s:
            with pytest.raises(PlanError):
                s.evaluate(Mat(rng.standard_normal((4, 4))))

    def test_intermediate_buffers_are_pooled(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32))
        with GemmSession() as s:
            s.evaluate(Mat(a) @ Mat(b) @ Mat(c))
            pooled = {
                key: [id(buf) for buf in bufs]
                for key, bufs in s._expr_pool.items()
            }
            assert pooled  # the intermediate went back to the pool
            s.evaluate(Mat(a) @ Mat(b) @ Mat(c))
            # Second evaluation reuses the same buffer objects.
            again = {
                key: [id(buf) for buf in bufs]
                for key, bufs in s._expr_pool.items()
            }
        assert pooled == again

    def test_evaluate_forwards_engine_options(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32))
        with GemmSession() as s:
            out = s.evaluate(Mat(a) @ Mat(b) @ Mat(c), memory="two_temp")
            ref = s.evaluate(Mat(a) @ Mat(b) @ Mat(c))
        assert np.array_equal(out, ref)  # memory schedules stay bit-identical

    def test_long_chain_uses_cost_model(self, rng):
        # A chain whose optimal association is right-to-left: the planner
        # must not blow up on the (expensive) left-assoc order and the
        # result must still match numpy.
        mats = [rng.standard_normal(s) for s in
                [(4, 96), (96, 4), (4, 96), (96, 4), (4, 64)]]
        expr = Mat(mats[0])
        for m in mats[1:]:
            expr = expr @ Mat(m)
        with GemmSession() as s:
            out = s.evaluate(expr)
        ref = mats[0] @ mats[1] @ mats[2] @ mats[3] @ mats[4]
        assert_gemm_close(out, ref, tol=1e-8)

    def test_clear_drops_expression_pool(self, rng):
        a = rng.standard_normal((16, 16))
        with GemmSession() as s:
            s.evaluate(Mat(a) @ Mat(a) @ Mat(a))
            assert s._expr_pool
            s.clear()
            assert not s._expr_pool
