"""Tests for the plan-caching GEMM engine."""
