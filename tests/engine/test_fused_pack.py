"""Engine-level tests of fused convert-and-add packing + the kernel registry.

The load-bearing property: a fused plan produces *bitwise identical*
results to the two-pass plan on every execution path — sequential
(all three memory schedules), the ``tasks:`` graph, and stacked batches —
because packing performs the same floating-point additions on the same
values, merely sourced from the dense operand instead of the converted
quadrants.  The trace contract then proves the fusion actually happened:
top-level add passes disappear and four ``pack`` events take their place.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.blas import (
    HAVE_NUMBA,
    KERNELS,
    get_accumulate_cap,
    get_kernel,
    leaf_matmul,
    register_kernel,
    set_accumulate_cap,
)
from repro.engine import GemmSession
from repro.errors import KernelError
from repro.observe import validate_trace

# Forces tile 8 / depth >= 1 on the small sizes hypothesis explores, so
# the fused path is actually exercised (default policy truncates to
# depth 0 below n=65).
POLICY = 8

dims = st.integers(min_value=16, max_value=48)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
memories = st.sampled_from(["classic", "two_temp", "ip_overwrite"])
schedules = st.sampled_from([None, "tasks:2"])
dtypes = st.sampled_from([np.float64, np.float32])
batch_sizes = st.sampled_from([1, 2, 7])


def _bits(x):
    itype = np.int32 if x.dtype == np.float32 else np.int64
    return np.ascontiguousarray(x).view(itype).tobytes()


def _operands(rng, m, k, n, dtype=np.float64):
    a = rng.standard_normal((m, k)).astype(dtype)
    b = rng.standard_normal((k, n)).astype(dtype)
    return a, b


class TestBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(m=dims, k=dims, n=dims, seed=seeds, memory=memories,
           schedule=schedules, dtype=dtypes)
    def test_fused_matches_two_pass(self, m, k, n, seed, memory, schedule,
                                    dtype):
        assume(not (memory == "ip_overwrite" and schedule is not None))
        rng = np.random.default_rng(seed)
        a, b = _operands(rng, m, k, n, dtype)
        with GemmSession(policy=POLICY, fused_pack="always", memory=memory,
                         schedule=schedule, max_workers=2) as s:
            plan = s.plan(m, k, n)
            assert plan._fused, "grid geometry must trip the fused gate"
            c1 = s.multiply(a, b)
            c1b = s.multiply(a, b)  # warm (cached-plan) rerun
        with GemmSession(policy=POLICY, fused_pack=False, memory=memory,
                         schedule=schedule, max_workers=2) as s:
            assert not s.plan(m, k, n)._fused
            c0 = s.multiply(a, b)
        assert _bits(c1) == _bits(c0)
        assert _bits(c1b) == _bits(c0)

    @settings(max_examples=25, deadline=None)
    @given(n=dims, nb=batch_sizes, seed=seeds,
           memory=st.sampled_from(["classic", "two_temp"]),
           schedule=schedules, dtype=dtypes)
    def test_batch_fused_matches_two_pass(self, n, nb, seed, memory,
                                          schedule, dtype):
        rng = np.random.default_rng(seed)
        pairs = [_operands(rng, n, n, n, dtype) for _ in range(nb)]
        with GemmSession(policy=POLICY, fused_pack=True, memory=memory,
                         max_workers=2) as s:
            fused = s.multiply_many(pairs, schedule=schedule)
        with GemmSession(policy=POLICY, fused_pack=False, memory=memory,
                         max_workers=2) as s:
            plain = s.multiply_many(pairs, schedule=schedule)
        for c1, c0 in zip(fused, plain):
            assert _bits(c1) == _bits(c0)

    @pytest.mark.parametrize("memory", ["classic", "ip_overwrite"])
    def test_transposes_alpha_beta(self, rng, memory):
        # classic relabels transposed operands (fusion steps aside);
        # ip_overwrite packs straight from the transposed dense source.
        a = rng.standard_normal((20, 16))
        b = rng.standard_normal((24, 20))
        c = rng.standard_normal((16, 24))
        kw = dict(op_a="t", op_b="t", alpha=0.5, beta=-1.5)
        with GemmSession(policy=POLICY, fused_pack="always",
                         memory=memory) as s:
            c1 = s.multiply(a, b, c.copy(), **kw)
        with GemmSession(policy=POLICY, fused_pack=False, memory=memory) as s:
            c0 = s.multiply(a, b, c.copy(), **kw)
        assert _bits(c1) == _bits(c0)


# Top-level "add" events each path loses to fusion.  two_temp loses one
# fewer: its original T2 was a non-emitting in-place subtraction, while
# the fused residual T2 is an ordinary emitting subtract.
ADD_DELTAS = [
    ("classic", None, 4),
    ("two_temp", None, 3),
    ("ip_overwrite", None, 4),
    ("classic", "tasks:1", 4),
]


class TestTraceContract:
    def _events(self, rng, memory, schedule, fused):
        a, b = _operands(rng, 16, 16, 16)
        with GemmSession(policy=POLICY, trace=True, memory=memory,
                         fused_pack="always" if fused else False,
                         max_workers=2) as s:
            s.multiply(a, b, schedule=schedule)
            validate_trace(s.trace.dump())
            return s.trace.events()

    @pytest.mark.parametrize("memory,schedule,delta", ADD_DELTAS)
    def test_pack_events_replace_top_level_adds(self, rng, memory, schedule,
                                                delta):
        ev_f = self._events(rng, memory, schedule, fused=True)
        ev_u = self._events(rng, memory, schedule, fused=False)
        packs_f = [ev for ev in ev_f if ev.kind == "pack"]
        assert len(packs_f) == 4
        assert {ev.label for ev in packs_f} == {"S1", "S3", "T1", "T3"}
        assert all(
            ev.data and ev.data.get("seconds") is not None for ev in packs_f
        )
        assert not any(ev.kind == "pack" for ev in ev_u)
        adds_f = sum(ev.kind == "add" for ev in ev_f)
        adds_u = sum(ev.kind == "add" for ev in ev_u)
        assert adds_u - adds_f == delta

    def test_fused_convert_events_flagged(self, rng):
        ev = self._events(rng, "classic", None, fused=True)
        conv = {e.label: e for e in ev if e.kind == "convert"}
        assert {"a", "b", "c"} <= set(conv)
        for side in ("a", "b"):
            assert conv[side].data and conv[side].data.get("fused") is True

    def test_batch_pack_events(self, rng):
        pairs = [_operands(rng, 16, 16, 16) for _ in range(3)]
        with GemmSession(policy=POLICY, trace=True) as s:
            s.multiply_many(pairs)
            events = s.trace.events()
            validate_trace(s.trace.dump())
        packs = [ev for ev in events if ev.kind == "pack"]
        assert {ev.label for ev in packs} == {
            "batch-S1", "batch-S3", "batch-T1", "batch-T3"
        }
        assert all(ev.data and ev.data.get("items") == 3 for ev in packs)
        convert_labels = {ev.label for ev in events if ev.kind == "convert"}
        assert {"batch-a", "batch-b", "batch-out"} <= convert_labels
        assert "batch-in" not in convert_labels


class TestGate:
    def test_default_requires_table_depth(self):
        # Default fused_pack=True follows the table heuristic: elementwise
        # gathers only win at depth >= CONVERT_TABLE_MIN_DEPTH.
        with GemmSession() as s:
            assert not s.plan(96, 96, 96)._fused  # depth 2
            assert s.plan(513, 513, 513)._fused  # depth 4
        with GemmSession(policy=POLICY) as s:
            assert not s.plan(16, 16, 16)._fused  # depth 1

    def test_always_fuses_any_recursion(self):
        with GemmSession(policy=POLICY, fused_pack="always") as s:
            assert s.plan(16, 16, 16)._fused

    def test_false_never_fuses(self):
        with GemmSession(fused_pack=False) as s:
            assert not s.plan(513, 513, 513)._fused

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="fused_pack"):
            GemmSession(fused_pack="maybe")

    def test_strassen_variant_not_fused(self):
        # Fusion encodes the Winograd S/T schedule specifically.
        with GemmSession(fused_pack="always", policy=POLICY) as s:
            assert not s.plan(16, 16, 16, variant="strassen")._fused


class TestStats:
    def test_fused_pack_and_convert_counters(self, rng):
        a, b = _operands(rng, 16, 16, 16)
        with GemmSession(policy=POLICY, fused_pack="always") as s:
            s.multiply(a, b)
            s.multiply(a, b)
            st_ = s.stats()
            assert st_.fused_packs == 8  # 4 packs per execution
            assert st_.convert_seconds >= 0.0
            assert 0.0 <= st_.convert_fraction <= 1.0
            s.multiply_many([_operands(rng, 16, 16, 16) for _ in range(3)])
            assert s.stats().fused_packs == 8 + 4 * 3

    def test_unfused_counts_zero(self, rng):
        a, b = _operands(rng, 16, 16, 16)
        with GemmSession(policy=POLICY, fused_pack=False) as s:
            s.multiply(a, b)
            assert s.stats().fused_packs == 0

    def test_idle_session_fraction_is_zero(self):
        with GemmSession() as s:
            st_ = s.stats()
            assert st_.convert_seconds == 0.0
            assert st_.convert_fraction == 0.0


class TestAccumulateCap:
    def test_session_kwarg_sets_global_cap(self):
        old = get_accumulate_cap()
        try:
            with GemmSession(accumulate_cap=4096):
                assert get_accumulate_cap() == 4096
        finally:
            set_accumulate_cap(old)


class TestKernelRegistry:
    def test_registered_kernel_selectable_everywhere(self, rng):
        calls = {"n": 0}

        def counting(a, b, out, accumulate=False):
            calls["n"] += 1
            return leaf_matmul(a, b, out, accumulate)

        register_kernel("counting-test", counting)
        try:
            a, b = _operands(rng, 16, 16, 16)
            with GemmSession(policy=POLICY, max_workers=2) as s:
                c = s.multiply(a, b, kernel="counting-test")
                assert np.allclose(c, a @ b)
                assert calls["n"] > 0

                calls["n"] = 0
                outs = s.multiply_many(
                    [(a, b), (a, b)], kernel="counting-test"
                )
                assert all(np.allclose(o, a @ b) for o in outs)
                assert calls["n"] > 0  # loop-batched, same arithmetic

                calls["n"] = 0
                c = s.multiply(a, b, kernel="counting-test",
                               schedule="tasks:1")
                assert np.allclose(c, a @ b)
                assert calls["n"] > 0

            with pytest.raises(KernelError, match="replace=True"):
                register_kernel("counting-test", counting)
            register_kernel("counting-test", counting, replace=True)
        finally:
            KERNELS.pop("counting-test", None)

    def test_unknown_kernel_lists_registered_backends(self):
        register_kernel("ephemeral-test", leaf_matmul, replace=True)
        try:
            with pytest.raises(KernelError) as ei:
                get_kernel("no-such-kernel")
            msg = str(ei.value)
            for name in ("numpy", "blocked", "naive", "mixed", "numba",
                         "ephemeral-test"):
                assert name in msg
        finally:
            KERNELS.pop("ephemeral-test", None)
        with pytest.raises(KernelError, match="registered backends"):
            GemmSession(kernel="no-such-kernel")

    def test_mixed_kernel_by_name(self, rng):
        a, b = _operands(rng, 32, 32, 32)
        with GemmSession(policy=POLICY) as s:
            c = s.multiply(a, b, kernel="mixed")
        # float32 storage, float64 accumulation: close but not exact.
        ref = a @ b
        assert np.allclose(c, ref, rtol=5e-4, atol=5e-4)
        assert not np.array_equal(c, ref)

    def test_numba_name_degrades_without_numba(self, rng):
        if HAVE_NUMBA:  # pragma: no cover - numba not in the test image
            pytest.skip("numba installed; fallback path not reachable")
        assert get_kernel("numba") is leaf_matmul
        a, b = _operands(rng, 16, 16, 16)
        with GemmSession(policy=POLICY) as s:
            assert _bits(s.multiply(a, b, kernel="numba")) == _bits(
                s.multiply(a, b, kernel="numpy")
            )
