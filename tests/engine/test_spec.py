"""GemmSpec: the frozen operation spec and its end-to-end semantics.

Coercion forms, plan-key participation, the copy-free transpose relabel
(verified through trace convert counts), fused beta accumulation, and
the typed errors the redesigned surface promises (aliased outputs,
dtype-mismatched accumulates) on the sequential and batch paths.
"""

import numpy as np
import pytest

import repro
from repro import modgemm
from repro.engine import GemmSession, GemmSpec
from repro.errors import BatchItemError, PlanError, ShapeError

from ..conftest import assert_gemm_close


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


class TestGemmSpecCoercion:
    def test_defaults(self):
        s = GemmSpec()
        assert (s.alpha, s.beta, s.trans_a, s.trans_b, s.dtype) == (
            1.0, 0.0, False, False, "float64"
        )
        assert s.is_default
        assert s.np_dtype == np.dtype(np.float64)

    def test_coerce_none_and_passthrough(self):
        assert GemmSpec.coerce(None) == GemmSpec()
        s = GemmSpec(alpha=2.0, trans_b=True)
        assert GemmSpec.coerce(s) is s

    def test_coerce_dict_and_keyword_overrides(self):
        s = GemmSpec.coerce({"alpha": 2, "trans_a": "t", "dtype": "float32"})
        assert s.alpha == 2.0 and s.trans_a and s.dtype == "float32"
        # Explicit keywords override the base spec.
        s2 = GemmSpec.coerce(s, alpha=3.0, trans_a=False)
        assert s2.alpha == 3.0 and not s2.trans_a and s2.dtype == "float32"

    def test_op_spellings_and_trans_precedence(self):
        s = GemmSpec.coerce(None, op_a="t", op_b="notrans")
        assert s.trans_a and not s.trans_b
        # Boolean flags win over op spellings.
        s = GemmSpec.coerce(None, op_a="t", trans_a=False)
        assert not s.trans_a

    def test_malformed_values_raise_plan_error(self):
        with pytest.raises(PlanError):
            GemmSpec.coerce({"alpha": 1.0, "frobnicate": 2})
        with pytest.raises(PlanError):
            GemmSpec.coerce(None, op_a="sideways")
        with pytest.raises(PlanError):
            GemmSpec(dtype="int32")

    def test_str_form(self):
        assert "tn" in str(GemmSpec(trans_a=True))


class TestSpecInPlanKey:
    def test_distinct_specs_compile_distinct_plans(self, rng):
        a, b = rng.standard_normal((48, 48)), rng.standard_normal((48, 48))
        with GemmSession() as s:
            s.multiply(a, b)
            s.multiply(a, b, alpha=2.0)
            s.multiply(a, b, trans_a=True)
            stats = s.stats()
        assert stats.plan_misses == 3

    def test_same_spec_hits_cache(self, rng):
        a, b = rng.standard_normal((48, 48)), rng.standard_normal((48, 48))
        with GemmSession() as s:
            s.multiply(a, b, alpha=2.0, trans_b=True)
            s.multiply(a, b, alpha=2.0, trans_b=True)
            stats = s.stats()
        assert stats.plan_misses == 1 and stats.plan_hits >= 1

    def test_plan_accepts_spec_object(self):
        spec = GemmSpec(alpha=0.5, beta=1.0, trans_a=True)
        with GemmSession() as s:
            plan = s.plan(64, 64, 64, spec=spec)
            assert plan.key.spec == spec
            assert plan.key.alpha == 0.5
            assert plan.key.trans_a
            # Legacy key properties stay available.
            assert plan.key.op_a.value == "t"

    def test_plan_executes_frozen_spec(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        c0 = rng.standard_normal((64, 64))
        c = c0.copy()
        with GemmSession() as s:
            plan = s.plan(64, 64, 64, alpha=0.5, beta=2.0, trans_a=True)
            out = plan.execute(a, b, c=c)
        assert out is c
        assert_gemm_close(out, 0.5 * (a.T @ b) + 2.0 * c0)

    def test_execute_rejects_mismatched_scalars(self, rng):
        a, b = rng.standard_normal((32, 32)), rng.standard_normal((32, 32))
        with GemmSession() as s:
            plan = s.plan(32, 32, 32, alpha=2.0)
            with pytest.raises(PlanError):
                plan.execute(a, b, alpha=3.0)


class TestTransposeRelabel:
    def test_trans_adds_no_conversions(self, rng):
        # The tentpole's zero-copy promise: a transposed operand is a
        # Morton quadrant-swap relabel, so the traced convert count must
        # equal the non-transposed run's exactly.
        a = rng.standard_normal((96, 96))
        b = rng.standard_normal((96, 96))

        def convert_count(**kw):
            with GemmSession(trace=True) as s:
                s.multiply(a, b, **kw)
                return sum(
                    1 for e in s.trace.events() if e.kind == "convert"
                )

        base = convert_count()
        assert convert_count(trans_a=True) == base
        assert convert_count(trans_b=True) == base
        assert convert_count(trans_a=True, trans_b=True) == base

    def test_relabel_events_emitted(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        with GemmSession(trace=True) as s:
            s.multiply(a, b, trans_a=True)
            labels = [
                e.label for e in s.trace.events() if e.kind == "relabel"
            ]
        assert labels == ["a"]

    def test_trans_results_match_reference(self, rng):
        a = rng.standard_normal((40, 72))
        b = rng.standard_normal((56, 40))
        out = modgemm(a, b, trans_a=True, trans_b=True)
        assert_gemm_close(out, a.T @ b.T)

    def test_op_strings_and_flags_agree_bitwise(self, rng):
        a = rng.standard_normal((64, 48))
        b = rng.standard_normal((64, 48))
        with GemmSession() as s:
            via_op = s.multiply(a, b, op_a="t")
            via_flag = s.multiply(a, b, trans_a=True)
        assert np.array_equal(via_op, via_flag)


class TestBetaAccumulate:
    def test_accumulate_event_emitted(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        c = rng.standard_normal((64, 64))
        with GemmSession(trace=True) as s:
            s.multiply(a, b, c=c, beta=0.5)
            kinds = [e.kind for e in s.trace.events()]
        assert "accumulate" in kinds

    def test_beta_without_c_rejected(self, rng):
        a, b = rng.standard_normal((16, 16)), rng.standard_normal((16, 16))
        with pytest.raises(ValueError):
            modgemm(a, b, beta=1.0)

    def test_negative_zero_beta_is_zero_path(self, rng):
        a, b = rng.standard_normal((32, 32)), rng.standard_normal((32, 32))
        with GemmSession() as s:
            plain = s.multiply(a, b)
            c = rng.standard_normal((32, 32))
            out = s.multiply(a, b, c=c, beta=-0.0)
        assert np.array_equal(out, plain)


class TestAliasAndDtypeErrors:
    def test_out_aliasing_input_raises_shape_error(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        with pytest.raises(ShapeError):
            modgemm(a, b, c=a, beta=1.0)
        with pytest.raises(ShapeError):
            modgemm(a, b, c=b[:, :], beta=1.0)

    def test_dtype_mismatch_names_both_dtypes_sequential(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32)).astype(np.float32)
        with pytest.raises(PlanError) as excinfo:
            modgemm(a, b, c=c, beta=1.0)
        msg = str(excinfo.value)
        assert "float32" in msg and "float64" in msg

    def test_dtype_mismatch_names_both_dtypes_batch(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        good = rng.standard_normal((32, 32))
        bad = rng.standard_normal((32, 32)).astype(np.float32)
        with GemmSession() as s:
            with pytest.raises(BatchItemError) as excinfo:
                s.multiply_many(
                    [
                        {"a": a, "b": b, "c": good.copy()},
                        {"a": a, "b": b, "c": bad},
                    ],
                    beta=1.0,
                )
        assert excinfo.value.index == 1
        msg = str(excinfo.value)
        assert "float32" in msg and "float64" in msg


class TestModgemmSurface:
    def test_modgemm_trans_kwargs(self, rng):
        a = rng.standard_normal((48, 32))
        b = rng.standard_normal((48, 40))
        assert_gemm_close(modgemm(a, b, trans_a=True), a.T @ b)

    def test_modgemm_morton_full_spec(self, rng):
        from repro import MortonMatrix, TruncationPolicy
        from repro.layout.convert import dense_to_morton, morton_to_dense

        tm, tk, tn = TruncationPolicy.coerce(8).plan(48, 48, 48)
        x = rng.standard_normal((48, 48))
        y = rng.standard_normal((48, 48))

        def to_mm(arr, tr, tc):
            mm = MortonMatrix.zeros(arr.shape[0], arr.shape[1], tr, tc)
            return dense_to_morton(arr, mm)

        xm, ym = to_mm(x, tm, tk), to_mm(y, tk, tn)
        zm = repro.modgemm_morton(xm, ym, trans_a=True, alpha=2.0)
        assert_gemm_close(morton_to_dense(zm), 2.0 * (x.T @ y))

        base = morton_to_dense(repro.modgemm_morton(xm, ym)).copy()
        cm = to_mm(base, tm, tn)
        repro.modgemm_morton(xm, ym, c_mm=cm, beta=2.0)
        assert_gemm_close(morton_to_dense(cm), 3.0 * (x @ y))

    def test_modgemm_morton_guards(self, rng):
        from repro import MortonMatrix, TruncationPolicy
        from repro.layout.convert import dense_to_morton

        tm, tk, tn = TruncationPolicy.coerce(8).plan(32, 32, 32)
        mm = MortonMatrix.zeros(32, 32, tm, tk)
        dense_to_morton(rng.standard_normal((32, 32)), mm)
        with pytest.raises(PlanError):
            repro.modgemm_morton(mm, mm, trans_a=True, memory="ip_overwrite")
        with pytest.raises(PlanError):
            repro.modgemm_morton(mm, mm, beta=1.0)
        with pytest.raises(PlanError):
            repro.modgemm_morton(mm, mm, trans_a=True, variant="strassen")
