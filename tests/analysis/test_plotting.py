"""Unit tests for ASCII table/chart rendering."""

import pytest

from repro.analysis.plotting import ascii_chart, format_table


class TestFormatTable:
    def test_header_and_rows(self):
        out = format_table(("a", "bb"), [(1, 2.5), (30, 4.125)])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "30" in lines[3]

    def test_float_precision(self):
        out = format_table(("x",), [(1.23456789,)], precision=3)
        assert "1.23" in out and "1.2345" not in out

    def test_alignment_widths(self):
        out = format_table(("verylongheader",), [(1,)])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row)


class TestAsciiChart:
    def test_contains_glyphs_and_legend(self):
        chart = ascii_chart(
            {"up": ([0, 1, 2], [0.0, 1.0, 2.0]), "down": ([0, 1, 2], [2.0, 1.0, 0.0])},
            width=20,
            height=5,
        )
        assert "o=up" in chart and "x=down" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels(self):
        chart = ascii_chart(
            {"s": ([0, 10], [0.0, 5.0])},
            title="T", x_label="size", y_label="ms",
        )
        assert chart.splitlines()[0] == "T"
        assert "size" in chart and "ms" in chart
        assert "10" in chart  # x max

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])})
        assert "flat" in chart

    def test_single_point(self):
        chart = ascii_chart({"p": ([1], [1.0])}, width=10, height=4)
        assert "o" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"e": ([], [])})

    def test_overlap_marked(self):
        chart = ascii_chart(
            {"a": ([0], [0.0]), "b": ([0], [0.0]), "c": ([1], [1.0])},
            width=10, height=4,
        )
        assert "?" in chart  # collision glyph
