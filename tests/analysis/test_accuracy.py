"""Unit tests for accuracy measurement."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    error_vs_reference,
    higham_bound_factor,
    max_relative_error,
)
from repro.core.modgemm import modgemm


class TestMaxRelativeError:
    def test_zero_for_identical(self):
        a = np.ones((3, 3))
        assert max_relative_error(a, a) == 0.0

    def test_scale_invariance_floor(self):
        # For tiny references the denominator floors at 1.
        assert max_relative_error(np.array([[1e-12]]), np.array([[0.0]])) == 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_relative_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestErrorVsReference:
    def test_modgemm_error_is_tiny(self):
        err = error_vs_reference(modgemm, 150, 150, 150)
        assert err < 1e-11

    def test_error_grows_with_depth_but_stays_bounded(self):
        small = error_vs_reference(modgemm, 64, 64, 64)
        large = error_vs_reference(modgemm, 513, 513, 513)
        assert large < 1e-10
        assert large >= small * 0.1  # sanity: both are noise-scale


class TestHighamBound:
    def test_grows_with_n(self):
        assert higham_bound_factor(1024, 32) > higham_bound_factor(128, 32)

    def test_positive(self):
        for n in (10, 100, 1000):
            assert higham_bound_factor(n, 32) > 0

    def test_measured_error_within_bound(self):
        # The conservative analytic tolerance must dominate measurements.
        for n in (100, 200, 513):
            err = error_vs_reference(modgemm, n, n, n)
            assert err < higham_bound_factor(n, 16)
