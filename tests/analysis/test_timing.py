"""Unit tests for the timing protocol."""

import pytest

from repro.analysis.timing import TimingProtocol, measure


class TestProtocol:
    def test_paper_defaults(self):
        p = TimingProtocol()
        assert p.small_threshold == 500
        assert p.small_reps == 10
        assert p.trials == 3

    def test_reps_rule(self):
        p = TimingProtocol()
        assert p.reps(499) == 10
        assert p.reps(500) == 1
        assert p.reps(1024) == 1

    def test_run_counts_invocations(self):
        p = TimingProtocol(small_threshold=100, small_reps=4, trials=3)
        calls = []
        p.run(lambda: calls.append(1), size=50)
        assert len(calls) == 12  # 3 trials x 4 reps

    def test_large_size_single_rep(self):
        p = TimingProtocol(trials=2)
        calls = []
        p.run(lambda: calls.append(1), size=1000)
        assert len(calls) == 2

    def test_returns_positive_seconds(self):
        t = measure(lambda: sum(range(1000)), size=1000,
                    protocol=TimingProtocol(trials=1))
        assert t > 0

    def test_min_of_trials(self, monkeypatch):
        # Fake clock: successive perf_counter calls step by shrinking deltas,
        # so later trials are "faster"; run() must return the minimum.
        times = iter([0.0, 3.0, 10.0, 12.0, 20.0, 21.0])
        monkeypatch.setattr(
            "repro.analysis.timing.time.perf_counter", lambda: next(times)
        )
        p = TimingProtocol(small_threshold=0, trials=3)
        assert p.run(lambda: None, size=10) == pytest.approx(1.0)
