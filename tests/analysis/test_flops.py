"""Unit tests for closed-form operation counts."""

import pytest

from repro.analysis.flops import (
    conventional_flops,
    dgefmm_flops,
    dgemmw_flops,
    leaf_mult_count,
    strassen_original_flops,
    winograd_add_count,
    winograd_flops,
)
from repro.layout.padding import Tiling, select_common_tiling


class TestBasics:
    def test_conventional(self):
        assert conventional_flops(2, 3, 4) == 48

    def test_leaf_mult_count(self):
        assert [leaf_mult_count(d) for d in range(4)] == [1, 7, 49, 343]

    def test_leaf_mult_rejects_negative(self):
        with pytest.raises(ValueError):
            leaf_mult_count(-1)


class TestWinogradCounts:
    def test_depth_zero_no_adds(self):
        assert winograd_add_count(0, 64, 64, 64) == 0

    def test_one_level_square(self):
        # One node: 15 quarter-size additions of a 2T x 2T problem.
        assert winograd_add_count(1, 64, 64, 64) == 15 * 32 * 32

    def test_two_levels(self):
        n = 128
        h, q = n // 2, n // 4
        expected = 15 * h * h + 7 * 15 * q * q
        assert winograd_add_count(2, n, n, n) == expected

    def test_total_flops_structure(self):
        plan = (Tiling(128, 32, 2), Tiling(128, 32, 2), Tiling(128, 32, 2))
        total = winograd_flops(plan)
        assert total == 49 * 2 * 32**3 + winograd_add_count(2, 128, 128, 128)

    def test_winograd_beats_conventional_asymptotically(self):
        plan = select_common_tiling((1024, 1024, 1024))
        assert winograd_flops(plan) < conventional_flops(1024, 1024, 1024)

    def test_strassen_has_more_adds_than_winograd(self):
        plan = select_common_tiling((512, 512, 512))
        assert strassen_original_flops(plan) > winograd_flops(plan)
        # ... but the same multiplication count, so the gap is bounded by
        # the addition-count ratio 18/15.
        gap = strassen_original_flops(plan) - winograd_flops(plan)
        adds = winograd_add_count(plan[0].depth, *[t.padded for t in plan])
        assert gap == pytest.approx(adds * 3 / 15)


class TestDgefmmFlops:
    def test_leaf_case(self):
        assert dgefmm_flops(10, 20, 30, truncation=64) == conventional_flops(10, 20, 30)

    def test_even_recursion(self):
        n = 128
        got = dgefmm_flops(n, n, n, truncation=64)
        expected = 7 * conventional_flops(64, 64, 64) + 15 * 64 * 64
        assert got == expected

    def test_odd_adds_fixups(self):
        even = dgefmm_flops(128, 128, 128, truncation=64)
        odd = dgefmm_flops(129, 129, 129, truncation=64)
        assert odd > even

    def test_monotone_in_size(self):
        vals = [dgefmm_flops(n, n, n, truncation=32) for n in range(64, 200, 8)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestDgemmwFlops:
    def test_leaf_case(self):
        assert dgemmw_flops(10, 20, 30, truncation=64) == conventional_flops(10, 20, 30)

    def test_even_recursion_matches_dgefmm(self):
        # No odd dimensions anywhere: overlap and peeling do exactly the
        # same arithmetic.
        assert dgemmw_flops(128, 128, 128, 32) == dgefmm_flops(128, 128, 128, 32)

    def test_odd_sizes_cost_redundant_work(self):
        # Overlap computes the duplicated strips twice.
        assert dgemmw_flops(129, 129, 129, 32) > dgefmm_flops(129, 129, 129, 32)

    def test_matches_instrumented_tracer(self):
        from repro.cachesim.trace import CountingSink
        from repro.cachesim.tracegen import dgemmw_trace

        for dims in [(100, 100, 100), (127, 130, 97)]:
            tr = dgemmw_trace(*dims, CountingSink(), truncation=32)
            assert tr.flops == dgemmw_flops(*dims, truncation=32)
