"""Unit tests for the profiling helper."""

import pytest

from repro.analysis.profiling import Hotspot, hotspot_table, profile_call


def busy():
    return sum(i * i for i in range(20000))


class TestProfileCall:
    def test_returns_hotspots(self):
        rows = profile_call(busy, top=5)
        assert 0 < len(rows) <= 5
        assert all(isinstance(h, Hotspot) for h in rows)

    def test_sorted_by_own_time(self):
        rows = profile_call(busy, top=10)
        times = [h.total_time for h in rows]
        assert times == sorted(times, reverse=True)

    def test_finds_the_actual_hotspot(self):
        rows = profile_call(busy, top=3)
        assert any("genexpr" in h.function or "busy" in h.function for h in rows)

    def test_top_validation(self):
        with pytest.raises(ValueError):
            profile_call(busy, top=0)

    def test_exception_still_disables_profiler(self):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profile_call(boom)
        # profiler must not be left enabled: a subsequent call works
        assert profile_call(busy)


class TestHotspotTable:
    def test_renders(self):
        rows = profile_call(busy, top=3)
        table = hotspot_table(rows)
        assert "own_s" in table and "function" in table


class TestMeasurePeak:
    def test_returns_result_and_bytes(self):
        import numpy as np

        from repro.analysis.profiling import measure_peak

        result, peak = measure_peak(lambda: np.ones(1 << 16).sum())
        assert result == float(1 << 16)
        # The 512 KiB array must dominate the measured peak.
        assert peak >= (1 << 16) * 8

    def test_small_allocation_small_peak(self):
        from repro.analysis.profiling import measure_peak

        _, tiny = measure_peak(lambda: [0] * 10)
        assert tiny < 1 << 16

    def test_stops_tracing_it_started(self):
        import tracemalloc

        from repro.analysis.profiling import measure_peak

        assert not tracemalloc.is_tracing()
        measure_peak(lambda: None)
        assert not tracemalloc.is_tracing()

    def test_nested_reuses_active_trace(self):
        import tracemalloc

        from repro.analysis.profiling import measure_peak

        tracemalloc.start()
        try:
            _, peak = measure_peak(lambda: bytearray(1 << 16))
            assert peak >= 1 << 16
            assert tracemalloc.is_tracing()  # left running for the owner
        finally:
            tracemalloc.stop()

    def test_exception_still_stops_tracing(self):
        import tracemalloc

        import pytest as _pytest

        from repro.analysis.profiling import measure_peak

        def boom():
            raise RuntimeError("x")

        with _pytest.raises(RuntimeError):
            measure_peak(boom)
        assert not tracemalloc.is_tracing()
