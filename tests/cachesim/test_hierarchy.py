"""Unit tests for the multi-level hierarchy and duplicate collapsing."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, LRUCache
from repro.cachesim.hierarchy import CacheHierarchy, make_cache
from repro.cachesim.vectorized import DirectMappedCache


class TestMakeCache:
    def test_direct_mapped_uses_vectorised(self):
        assert isinstance(make_cache(CacheConfig(1024, 32, 1)), DirectMappedCache)

    def test_associative_uses_lru(self):
        assert isinstance(make_cache(CacheConfig(3072, 32, 3)), LRUCache)


class TestSingleLevel:
    def test_matches_bare_simulator(self):
        rng = np.random.default_rng(4)
        addrs = rng.integers(0, 1 << 13, size=4000) * 8
        h = CacheHierarchy([CacheConfig(1024, 32, 1)])
        h.access(addrs)
        bare = DirectMappedCache(CacheConfig(1024, 32, 1))
        bare.access(addrs)
        assert h.levels[0].stats.misses == bare.stats.misses
        assert h.levels[0].stats.accesses == bare.stats.accesses

    def test_duplicate_collapse_is_exact(self):
        # A trace with heavy consecutive-duplicate blocks: the collapsed
        # accesses are guaranteed hits, so miss counts must be identical
        # and access counts must include the collapsed ones.
        base = np.array([0, 0, 0, 32, 32, 64, 64, 64, 64], dtype=np.int64)
        h = CacheHierarchy([CacheConfig(128, 32, 1)])
        h.access(base)
        assert h.levels[0].stats.accesses == 9
        assert h.levels[0].stats.misses == 3


class TestMultiLevel:
    def test_l2_sees_only_l1_misses(self):
        # L1: 2 sets of 32B (128B won't hold the working set);
        # L2: large enough to hold everything.
        h = CacheHierarchy(
            [CacheConfig(64, 32, 1), CacheConfig(4096, 32, 1)]
        )
        addrs = np.tile(np.array([0, 64, 128, 192], dtype=np.int64), 50)
        h.access(addrs)
        l1, l2 = h.levels
        assert l2.stats.accesses == l1.stats.misses
        # After the first round everything lives in L2: only 4 cold misses.
        assert l2.stats.misses == 4

    def test_miss_ratio_helper(self):
        h = CacheHierarchy([CacheConfig(64, 32, 1)])
        h.access(np.array([0, 0, 0, 0], dtype=np.int64))
        assert h.miss_ratio() == pytest.approx(0.25)

    def test_misses_list(self):
        h = CacheHierarchy([CacheConfig(64, 32, 1), CacheConfig(128, 32, 1)])
        h.access(np.array([0, 64, 0, 64], dtype=np.int64))
        assert len(h.misses()) == 2

    def test_reset(self):
        h = CacheHierarchy([CacheConfig(64, 32, 1)])
        h.access(np.array([0], dtype=np.int64))
        h.reset()
        assert h.levels[0].stats.accesses == 0

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_empty_trace_noop(self):
        h = CacheHierarchy([CacheConfig(64, 32, 1)])
        h.access(np.array([], dtype=np.int64))
        assert h.levels[0].stats.accesses == 0

    def test_associative_l2_integration(self):
        # Alpha-like shape: DM L1 + 3-way L2; just exercise the path.
        h = CacheHierarchy(
            [CacheConfig(256, 32, 1), CacheConfig(3 * 512, 32, 3)]
        )
        rng = np.random.default_rng(5)
        h.access(rng.integers(0, 1 << 12, size=2000) * 8)
        assert h.levels[1].stats.accesses == h.levels[0].stats.misses
        assert h.levels[1].stats.misses <= h.levels[1].stats.accesses
