"""Unit tests for the instrumented trace generators (the ATOM substitute)."""

import numpy as np
import pytest

from repro.analysis.flops import (
    conventional_flops,
    dgefmm_flops,
    winograd_flops,
)
from repro.cachesim.trace import ELEM, CountingSink, TraceCollector
from repro.cachesim.tracegen import (
    TraceOps,
    add2d_trace,
    conversion_trace,
    dgefmm_trace,
    dgemmw_trace,
    matmul_trace,
    modgemm_trace,
    move2d_trace,
    vec3_trace,
)
from repro.core.winograd import winograd_multiply
from repro.core.workspace import Workspace
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import TileRange, select_common_tiling


class TestMatmulTrace:
    def test_access_count(self):
        sink = TraceCollector()
        n = matmul_trace(3, 4, 5, 0, 3, 1000, 4, 2000, 3, sink)
        assert n == 5 * 4 * (1 + 2 * 3)
        assert sink.total == n

    def test_address_ranges(self):
        sink = TraceCollector()
        matmul_trace(2, 2, 2, 0, 2, 1000, 2, 2000, 2, sink)
        t = sink.concatenate()
        a = t[(t >= 0) & (t < 1000)]
        b = t[(t >= 1000) & (t < 2000)]
        c = t[t >= 2000]
        assert set(a) == {0, 8, 16, 24}          # 2x2 doubles at base 0
        assert set(b) == {1000, 1008, 1016, 1024}
        assert set(c) == {2000, 2008, 2016, 2024}

    def test_first_access_is_b_element(self):
        sink = TraceCollector()
        matmul_trace(2, 2, 2, 0, 2, 1000, 2, 2000, 2, sink)
        assert sink.concatenate()[0] == 1000  # b[0,0] register load

    def test_leading_dimension_strides(self):
        sink = TraceCollector()
        matmul_trace(2, 1, 1, 0, 100, 10**6, 1, 2 * 10**6, 100, sink)
        t = sink.concatenate()
        # column of A: rows 0,1 with ld 100 -> addresses 0 and 8.
        assert 0 in t and 8 in t

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            matmul_trace(0, 1, 1, 0, 1, 0, 1, 0, 1, CountingSink())


class TestVectorTraces:
    def test_vec3_interleaving(self):
        sink = TraceCollector()
        n = vec3_trace(2, 0, 100, 200, sink)
        assert n == 6
        assert list(sink.concatenate()) == [0, 100, 200, 8, 108, 208]

    def test_add2d_strides(self):
        sink = TraceCollector()
        n = add2d_trace(2, 2, 0, 10, 1000, 20, 2000, 30, sink)
        assert n == 12
        t = sink.concatenate()
        # first column of x: 0, 8; second column: 10*8=80, 88.
        assert {0, 8, 80, 88} <= set(t.tolist())

    def test_move2d(self):
        sink = TraceCollector()
        n = move2d_trace(2, 3, 0, 2, 1000, 2, sink)
        assert n == 12
        assert sink.concatenate()[0] == 0  # read before write


class TestConversionTrace:
    def test_count_matches_two_accesses_per_element(self, rng):
        a = rng.standard_normal((20, 20))
        mm = MortonMatrix.from_dense(a)
        sink = CountingSink()
        n = conversion_trace(mm, base_dense=1 << 22, ld_dense=20, sink=sink)
        assert n == 2 * 20 * 20
        assert sink.total == n

    def test_padding_not_read_from_dense(self, rng):
        # The Morton side uses the real buffer address (a large heap
        # pointer); the synthetic dense side sits in a low window, so the
        # two are distinguishable by range.
        a = rng.standard_normal((150, 150))  # pads to 152
        mm = MortonMatrix.from_dense(a)
        sink = TraceCollector()
        base = 1 << 22
        conversion_trace(mm, base_dense=base, ld_dense=150, sink=sink)
        t = sink.concatenate()
        dense = t[(t >= base) & (t < base + (1 << 21))]
        assert dense.size == 150 * 150
        assert dense.max() < base + 150 * 150 * ELEM

    def test_direction_flag(self, rng):
        a = rng.standard_normal((8, 8))
        mm = MortonMatrix.from_dense(a)
        base = 1 << 22
        s1, s2 = TraceCollector(), TraceCollector()
        conversion_trace(mm, base, 8, s1, to_morton=True)
        conversion_trace(mm, base, 8, s2, to_morton=False)
        # Same addresses, opposite read/write interleaving order.
        t1, t2 = s1.concatenate(), s2.concatenate()
        in_dense = lambda x: base <= x < base + (1 << 21)
        assert in_dense(t1[0]) and not in_dense(t2[0])
        assert sorted(t1.tolist()) == sorted(t2.tolist())


class TestTraceOps:
    def test_flops_match_closed_form(self):
        plan = select_common_tiling((100, 100, 100))
        ops = modgemm_trace(plan, CountingSink(), include_conversion=False)
        assert ops.flops == winograd_flops(plan)

    def test_flops_match_closed_form_rectangular(self):
        plan = select_common_tiling((130, 200, 170))
        ops = modgemm_trace(plan, CountingSink(), include_conversion=False)
        assert ops.flops == winograd_flops(plan)

    def test_conversion_adds_accesses(self):
        plan = select_common_tiling((100, 100, 100))
        without = modgemm_trace(plan, CountingSink(), include_conversion=False)
        with_conv = modgemm_trace(plan, CountingSink(), include_conversion=True)
        assert with_conv.accesses > without.accesses

    def test_trace_addresses_are_real_buffers(self):
        # All traced addresses must fall inside allocated numpy buffers, so
        # collect the trace and check every address is sane (> 4096).
        plan = select_common_tiling((64, 64, 64))
        sink = TraceCollector()
        modgemm_trace(plan, sink, include_conversion=False)
        t = sink.concatenate()
        assert (t > 4096).all()

    def test_accesses_equal_sink_total(self):
        plan = select_common_tiling((100, 100, 100))
        sink = CountingSink()
        ops = modgemm_trace(plan, sink)
        assert ops.accesses == sink.total

    def test_regions_cover_all_accesses(self):
        from repro.cachesim.classify import RegionMap

        plan = select_common_tiling((96, 96, 96))
        regions = RegionMap()
        sink = TraceCollector()
        modgemm_trace(plan, sink, regions=regions)
        trace = sink.concatenate()
        labels = regions.labels(trace[:: max(1, trace.size // 500)])
        assert "?" not in labels
        assert any(l.startswith("A.") for l in labels)
        assert any(l.startswith("ws") for l in labels)

    def test_strassen_variant_has_more_adds(self):
        plan = select_common_tiling((150, 150, 150))
        wino = modgemm_trace(plan, CountingSink(), include_conversion=False)
        stra = modgemm_trace(
            plan, CountingSink(), include_conversion=False, variant="strassen"
        )
        assert stra.flops > wino.flops  # 18 vs 15 additions per level

    def test_same_schedule_as_numpy_backend(self, rng):
        # TraceOps drives the same recursion; flop count must equal what a
        # counting arithmetic backend sees.
        plan = select_common_tiling((100, 100, 100))
        tm, tk, tn = plan
        a_mm = MortonMatrix.zeros(100, 100, tm, tk)
        b_mm = MortonMatrix.zeros(100, 100, tk, tn)
        c_mm = MortonMatrix.zeros(100, 100, tm, tn)
        ws = Workspace(tm.depth, tm.tile, tk.tile, tn.tile, with_q=True)
        ops = TraceOps(CountingSink())
        winograd_multiply(a_mm, b_mm, c_mm, ops=ops, workspace=ws)
        assert ops.flops == winograd_flops(plan)


class TestDgefmmTrace:
    def test_flops_match_closed_form(self):
        for dims in [(100, 100, 100), (127, 127, 127), (130, 70, 200)]:
            tr = dgefmm_trace(*dims, CountingSink(), truncation=32)
            assert tr.flops == dgefmm_flops(*dims, truncation=32)

    def test_leaf_only_case(self):
        tr = dgefmm_trace(10, 10, 10, CountingSink(), truncation=64)
        assert tr.flops == conventional_flops(10, 10, 10)

    def test_access_tally(self):
        sink = CountingSink()
        tr = dgefmm_trace(100, 100, 100, sink, truncation=32)
        assert tr.accesses == sink.total


class TestDgemmwTrace:
    def test_runs_and_tallies(self):
        sink = CountingSink()
        tr = dgemmw_trace(100, 100, 100, sink, truncation=32)
        assert tr.accesses == sink.total
        assert tr.flops > conventional_flops(100, 100, 100) * 0.5

    def test_overlap_more_traffic_than_peeling(self):
        # The copy-heavy overlap scheme moves more data.
        s1, s2 = CountingSink(), CountingSink()
        dgemmw_trace(128, 128, 128, s1, truncation=32)
        dgefmm_trace(128, 128, 128, s2, truncation=32)
        assert s1.total > s2.total
