"""Unit tests for the two leaf-kernel trace models (jki vs blocked)."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig
from repro.cachesim.trace import CountingSink, TraceCollector
from repro.cachesim.tracegen import (
    TraceOps,
    dgefmm_trace,
    matmul_trace,
    matmul_trace_blocked,
    modgemm_trace,
)
from repro.cachesim.vectorized import DirectMappedCache
from repro.layout.padding import TileRange, select_common_tiling


class TestBlockedTrace:
    def test_access_count_formula(self):
        m, k, n, blk = 5, 13, 4, 8
        cnt = matmul_trace_blocked(
            m, k, n, 0, m, 10**6, k, 2 * 10**6, m, CountingSink(), block=blk
        )
        assert cnt == n * (k + m * k + 2 * m * -(-k // blk))

    def test_fewer_c_touches_than_jki(self):
        s1, s2 = CountingSink(), CountingSink()
        matmul_trace(16, 16, 16, 0, 16, 10**6, 16, 2 * 10**6, 16, s1)
        matmul_trace_blocked(16, 16, 16, 0, 16, 10**6, 16, 2 * 10**6, 16, s2)
        assert s2.total < s1.total

    def test_same_address_footprint(self):
        # Both models touch exactly the same elements, just with
        # different reuse patterns.
        c1, c2 = TraceCollector(), TraceCollector()
        matmul_trace(6, 7, 5, 0, 6, 10**6, 7, 2 * 10**6, 6, c1)
        matmul_trace_blocked(6, 7, 5, 0, 6, 10**6, 7, 2 * 10**6, 6, c2, block=3)
        assert set(c1.concatenate().tolist()) == set(c2.concatenate().tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            matmul_trace_blocked(0, 1, 1, 0, 1, 0, 1, 0, 1, CountingSink())
        with pytest.raises(ValueError):
            matmul_trace_blocked(1, 1, 1, 0, 1, 0, 1, 0, 1, CountingSink(), block=0)

    def test_blocked_lowers_miss_pressure(self):
        # With register-held accumulators the C column stops thrashing:
        # miss *count* can only drop or stay equal for the same cache.
        cfg = CacheConfig(512, 32, 1)
        dm1, dm2 = DirectMappedCache(cfg), DirectMappedCache(cfg)
        c1, c2 = TraceCollector(), TraceCollector()
        matmul_trace(24, 24, 24, 0, 24, 10**6, 24, 2 * 10**6, 24, c1)
        matmul_trace_blocked(24, 24, 24, 0, 24, 10**6, 24, 2 * 10**6, 24, c2)
        dm1.access(c1.concatenate())
        dm2.access(c2.concatenate())
        assert dm2.stats.misses <= dm1.stats.misses


class TestModelSelection:
    def test_trace_ops_model_flag(self):
        plan = select_common_tiling((100, 100, 100))
        jki = modgemm_trace(plan, CountingSink(), include_conversion=False)
        blocked = modgemm_trace(
            plan, CountingSink(), include_conversion=False, kernel_model="blocked"
        )
        assert blocked.accesses < jki.accesses
        assert blocked.flops == jki.flops  # the arithmetic is identical

    def test_dgefmm_model_flag(self):
        jki = dgefmm_trace(100, 100, 100, CountingSink(), truncation=32)
        blk = dgefmm_trace(
            100, 100, 100, CountingSink(), truncation=32, kernel_model="blocked"
        )
        assert blk.accesses < jki.accesses
        assert blk.flops == jki.flops

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            TraceOps(CountingSink(), kernel_model="simd")
        with pytest.raises(ValueError):
            dgefmm_trace(10, 10, 10, CountingSink(), kernel_model="nope")
