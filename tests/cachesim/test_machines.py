"""Unit tests for the machine models and geometry scaling."""

import pytest

from repro.cachesim.cache import CacheConfig
from repro.cachesim.machines import (
    ALPHA_MIATA,
    ATOM_EXPERIMENT,
    MACHINES,
    SUN_ULTRA60,
    Machine,
    scale_machine,
)


class TestPaperGeometries:
    def test_alpha_levels(self):
        l1, l2, l3 = ALPHA_MIATA.levels
        assert (l1.size_bytes, l1.block_bytes, l1.assoc) == (8 * 1024, 32, 1)
        assert (l2.size_bytes, l2.assoc) == (96 * 1024, 3)
        assert (l3.size_bytes, l3.assoc) == (2 * 1024 * 1024, 1)

    def test_ultra_levels(self):
        l1, l2 = SUN_ULTRA60.levels
        assert (l1.size_bytes, l1.block_bytes) == (16 * 1024, 32)
        assert l2.size_bytes == 2 * 1024 * 1024

    def test_atom_is_paper_section42(self):
        (l1,) = ATOM_EXPERIMENT.levels
        assert (l1.size_bytes, l1.block_bytes, l1.assoc) == (16 * 1024, 32, 1)

    def test_registry(self):
        assert set(MACHINES) == {"alpha", "ultra", "atom"}

    def test_penalties_per_level_enforced(self):
        with pytest.raises(ValueError):
            Machine("bad", (CacheConfig(1024, 32, 1),), 1e9, (1e-9, 2e-9))

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            Machine("bad", (), 1e9, ())


class TestScaling:
    def test_identity(self):
        assert scale_machine(ATOM_EXPERIMENT, 1) is ATOM_EXPERIMENT

    def test_capacity_scaled_blocks_kept(self):
        m = scale_machine(ATOM_EXPERIMENT, 4)
        assert m.levels[0].size_bytes == 4 * 1024
        assert m.levels[0].block_bytes == 32

    def test_blocks_scaled_on_request(self):
        m = scale_machine(ATOM_EXPERIMENT, 4, scale_blocks=True)
        assert m.levels[0].block_bytes == 8

    def test_block_floor_is_one_double(self):
        m = scale_machine(ATOM_EXPERIMENT, 16, scale_blocks=True)
        assert m.levels[0].block_bytes == 8

    def test_penalties_and_flops_untouched(self):
        m = scale_machine(SUN_ULTRA60, 4)
        assert m.peak_flops == SUN_ULTRA60.peak_flops
        assert m.miss_penalties == SUN_ULTRA60.miss_penalties

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            scale_machine(ATOM_EXPERIMENT, 3)

    def test_rejects_overscaling(self):
        with pytest.raises(ValueError):
            scale_machine(ATOM_EXPERIMENT, 1024)  # 16 B < one 32 B block

    def test_alpha_scales_with_associativity(self):
        m = scale_machine(ALPHA_MIATA, 4)
        assert m.levels[1].assoc == 3
        assert m.levels[1].size_bytes == 24 * 1024
