"""Unit tests for trace plumbing and the synthetic address space."""

import numpy as np
import pytest

from repro.cachesim.trace import (
    AddressSpace,
    CountingSink,
    TraceCollector,
)


class TestCollector:
    def test_concatenates_in_order(self):
        c = TraceCollector()
        c.consume(np.array([1, 2]))
        c.consume(np.array([3]))
        assert list(c.concatenate()) == [1, 2, 3]
        assert c.total == 3

    def test_empty(self):
        c = TraceCollector()
        assert c.concatenate().size == 0

    def test_ignores_empty_chunks(self):
        c = TraceCollector()
        c.consume(np.array([], dtype=np.int64))
        assert c.chunks == []


class TestCountingSink:
    def test_counts(self):
        s = CountingSink()
        s.consume(np.zeros(5, dtype=np.int64))
        s.consume(np.zeros((2, 3), dtype=np.int64))
        assert s.total == 11


class TestAddressSpace:
    def test_alignment(self):
        sp = AddressSpace(align=64)
        for nbytes in (1, 63, 64, 100):
            assert sp.alloc(nbytes) % 64 == 0

    def test_live_allocations_disjoint(self):
        sp = AddressSpace()
        spans = []
        for nbytes in (100, 200, 64, 1000):
            base = sp.alloc(nbytes)
            spans.append((base, base + nbytes))
        spans.sort()
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert e0 <= s1

    def test_free_enables_reuse(self):
        sp = AddressSpace()
        a = sp.alloc(256)
        sp.free(a)
        b = sp.alloc(256)
        assert b == a  # first-fit reuses the freed block

    def test_free_coalesces(self):
        sp = AddressSpace()
        a = sp.alloc(64)
        b = sp.alloc(64)
        sp.free(a)
        sp.free(b)
        c = sp.alloc(128)  # only fits if neighbours coalesced
        assert c == a

    def test_double_free_rejected(self):
        sp = AddressSpace()
        a = sp.alloc(64)
        sp.free(a)
        with pytest.raises(KeyError):
            sp.free(a)

    def test_matrix_helper(self):
        sp = AddressSpace()
        base = sp.alloc_matrix(10, 10)
        assert sp.live[base] >= 10 * 10 * 8

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(align=48)

    def test_smaller_request_splits_free_block(self):
        sp = AddressSpace()
        a = sp.alloc(256)
        sp.alloc(64)  # guard so the heap top moves on
        sp.free(a)
        b = sp.alloc(64)
        c = sp.alloc(64)
        assert b == a and c == a + 64
