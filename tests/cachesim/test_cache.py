"""Unit tests for cache configuration and the LRU reference simulator."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, CacheStats, LRUCache


class TestCacheConfig:
    def test_derived_geometry(self):
        c = CacheConfig(16 * 1024, 32, assoc=1)
        assert c.n_blocks == 512
        assert c.n_sets == 512
        assert c.block_bits == 5
        assert c.set_bits == 9

    def test_associative_sets(self):
        c = CacheConfig(96 * 1024, 64, assoc=3)
        assert c.n_sets == 512

    def test_split(self):
        c = CacheConfig(1024, 32, 1)  # 32 sets
        sets, tags = c.split(np.array([0, 32, 1024, 1056]))
        assert list(sets) == [0, 1, 0, 1]
        assert list(tags) == [0, 0, 1, 1]

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 48, 1)

    def test_rejects_indivisible_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 32, 1)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(96 * 1024, 64, assoc=1)  # 1536 sets


class TestCacheStats:
    def test_ratios(self):
        s = CacheStats(accesses=10, misses=3)
        assert s.hits == 7
        assert s.miss_ratio == 0.3

    def test_empty_ratio_zero(self):
        assert CacheStats().miss_ratio == 0.0

    def test_merge(self):
        a = CacheStats(10, 2)
        a.merge(CacheStats(5, 1))
        assert (a.accesses, a.misses) == (15, 3)


class TestLRUCache:
    def test_cold_misses(self):
        c = LRUCache(CacheConfig(128, 32, 1))
        miss = c.access(np.array([0, 32, 64, 96]))
        assert miss.all()

    def test_repeat_hits(self):
        c = LRUCache(CacheConfig(128, 32, 1))
        c.access(np.array([0]))
        miss = c.access(np.array([0, 8, 31]))  # same block
        assert not miss.any()

    def test_direct_mapped_conflict(self):
        # 4 sets of 32B: addresses 0 and 128 share set 0.
        c = LRUCache(CacheConfig(128, 32, 1))
        miss = c.access(np.array([0, 128, 0, 128]))
        assert miss.all()

    def test_two_way_absorbs_conflict(self):
        c = LRUCache(CacheConfig(256, 32, 2))  # 4 sets, 2 ways
        miss = c.access(np.array([0, 128, 0, 128]))
        assert list(miss) == [True, True, False, False]

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: A B C -> evicts A; touching A again misses, B evicted.
        c = LRUCache(CacheConfig(64, 32, 2))
        a, b, cc = 0, 64, 128
        miss = c.access(np.array([a, b, cc, a, b]))
        assert list(miss) == [True, True, True, True, True]

    def test_lru_refresh_on_hit(self):
        # A B A C: the hit on A refreshes it, so C evicts B, not A.
        c = LRUCache(CacheConfig(64, 32, 2))
        a, b, cc = 0, 64, 128
        c.access(np.array([a, b, a, cc]))
        miss = c.access(np.array([a]), return_mask=True)
        assert not miss.any()

    def test_count_only_mode(self):
        c = LRUCache(CacheConfig(128, 32, 1))
        n = c.access(np.array([0, 0, 32]), return_mask=False)
        assert n == 2

    def test_reset(self):
        c = LRUCache(CacheConfig(128, 32, 1))
        c.access(np.array([0]))
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(np.array([0])).all()  # cold again

    def test_stats_accumulate_across_calls(self):
        c = LRUCache(CacheConfig(128, 32, 1))
        c.access(np.array([0, 32]))
        c.access(np.array([0, 32]))
        assert c.stats.accesses == 4
        assert c.stats.misses == 2
