"""Unit tests for miss classification (the CProf substitute)."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig
from repro.cachesim.classify import (
    MissClasses,
    RegionMap,
    classify_misses,
    stack_distances,
)


class TestStackDistances:
    def test_handcrafted(self):
        d = stack_distances(np.array([1, 2, 3, 1, 1, 2]))
        assert d.tolist() == [-1, -1, -1, 2, 0, 2]

    def test_first_accesses_negative(self):
        d = stack_distances(np.arange(10))
        assert (d == -1).all()

    def test_immediate_reuse_zero(self):
        d = stack_distances(np.array([5, 5, 5]))
        assert d.tolist() == [-1, 0, 0]

    def test_empty(self):
        assert stack_distances(np.array([], dtype=np.int64)).size == 0

    def test_thresholding_matches_lru_simulation(self):
        # An LRU cache of capacity C hits exactly distances in [0, C).
        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 50, size=2000)
        d = stack_distances(blocks)
        for cap in (1, 4, 16, 64):
            from repro.cachesim.cache import LRUCache

            # capacity in blocks via a 1-set fully-associative config
            lru = LRUCache(CacheConfig(cap * 32, 32, assoc=cap))
            misses = lru.access(blocks * 32, return_mask=False)
            expected = int(np.count_nonzero((d < 0) | (d >= cap)))
            assert misses == expected, cap


class TestClassifyMisses:
    CFG = CacheConfig(1024, 32, 1)  # 32 blocks

    def test_pure_conflict_pattern(self):
        trace = np.tile(np.array([0, 1024], dtype=np.int64), 500)
        mc = classify_misses(trace, self.CFG)
        assert mc.compulsory == 2
        assert mc.capacity == 0
        assert mc.conflict == 998
        assert mc.miss_ratio == 1.0

    def test_pure_capacity_pattern(self):
        # Cyclic sweep of 64 blocks through a 32-block cache: every access
        # misses in both DM and FA caches.
        sweep = np.tile(np.arange(64, dtype=np.int64) * 32, 20)
        mc = classify_misses(sweep, self.CFG)
        assert mc.compulsory == 64
        assert mc.conflict == 0
        assert mc.capacity == 64 * 19

    def test_resident_working_set_compulsory_only(self):
        trace = np.tile(np.arange(16, dtype=np.int64) * 32, 50)
        mc = classify_misses(trace, self.CFG)
        assert mc.misses == mc.compulsory == 16

    def test_totals_consistent_with_dm_simulation(self):
        from repro.cachesim.vectorized import DirectMappedCache

        rng = np.random.default_rng(3)
        trace = rng.integers(0, 1 << 13, size=5000) * 8
        mc = classify_misses(trace, self.CFG)
        dm = DirectMappedCache(self.CFG)
        dm.access(trace)
        assert mc.misses == dm.stats.misses
        assert mc.accesses == 5000

    def test_empty_trace(self):
        mc = classify_misses(np.array([], dtype=np.int64), self.CFG)
        assert mc == MissClasses(0, 0, 0, 0)
        assert mc.miss_ratio == 0.0 and mc.conflict_share == 0.0

    def test_rejects_associative_config(self):
        with pytest.raises(ValueError):
            classify_misses(np.array([0]), CacheConfig(1024, 32, 2))


class TestRegionMap:
    def test_labels(self):
        rm = RegionMap()
        rm.add("A", 1000, 100)
        rm.add("B", 2000, 100)
        labels = rm.labels(np.array([1000, 1099, 1100, 2050, 0]))
        assert labels == ["A", "A", "?", "B", "?"]

    def test_overlap_rejected(self):
        rm = RegionMap()
        rm.add("A", 1000, 100)
        with pytest.raises(ValueError):
            rm.add("B", 1050, 10)
        with pytest.raises(ValueError):
            rm.add("C", 950, 60)

    def test_attribution_counts(self):
        rm = RegionMap()
        rm.add("A", 0, 64)
        rm.add("B", 1024, 64)
        addrs = np.array([0, 8, 1024, 1032, 4096])
        miss = np.array([True, False, True, True, True])
        out = rm.attribute(addrs, miss)
        assert out["A"] == (2, 1)
        assert out["B"] == (2, 2)
        assert out["?"] == (1, 1)

    def test_add_array(self):
        rm = RegionMap()
        arr = np.zeros(16)
        rm.add_array("buf", arr)
        base = arr.__array_interface__["data"][0]
        assert rm.labels(np.array([base, base + 127])) == ["buf", "buf"]

    def test_mismatched_lengths_rejected(self):
        rm = RegionMap()
        rm.add("A", 0, 64)
        with pytest.raises(ValueError):
            rm.attribute(np.array([0, 1]), np.array([True]))

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            RegionMap().add("x", 0, 0)


class TestOnRealTraces:
    def test_conflict_collapse_at_513_analogue(self):
        # The paper's CProf diagnosis, at the smallest exact geometry.
        from repro.cachesim.machines import ATOM_EXPERIMENT, scale_machine
        from repro.cachesim.trace import TraceCollector
        from repro.cachesim.tracegen import modgemm_trace
        from repro.layout.padding import TileRange, select_common_tiling

        machine = scale_machine(ATOM_EXPERIMENT, 16)
        results = {}
        for n in (128, 129):
            plan = select_common_tiling((n, n, n), TileRange(4, 16))
            coll = TraceCollector()
            modgemm_trace(plan, coll)
            results[n] = classify_misses(coll.concatenate(), machine.levels[0])
        # Conflict miss count drops sharply; compulsory barely moves.
        assert results[129].conflict < 0.7 * results[128].conflict
        assert results[129].compulsory < 1.5 * results[128].compulsory
