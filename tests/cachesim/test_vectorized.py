"""Unit tests for the vectorised direct-mapped simulator."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, LRUCache
from repro.cachesim.vectorized import DirectMappedCache


def both(config, addrs, chunks=1):
    dm = DirectMappedCache(config)
    lru = LRUCache(config)
    for part in np.array_split(np.asarray(addrs, dtype=np.int64), chunks):
        if part.size:
            dm.access(part)
    lru.access(np.asarray(addrs, dtype=np.int64))
    return dm, lru


class TestAgainstLRUReference:
    def test_random_trace(self):
        rng = np.random.default_rng(9)
        addrs = rng.integers(0, 1 << 14, size=5000) * 8
        dm, lru = both(CacheConfig(1024, 32, 1), addrs)
        assert dm.stats.misses == lru.stats.misses

    @pytest.mark.parametrize("chunks", [1, 2, 7, 64])
    def test_chunking_invariant(self, chunks):
        rng = np.random.default_rng(10)
        addrs = rng.integers(0, 1 << 13, size=3000) * 8
        dm, lru = both(CacheConfig(512, 16, 1), addrs, chunks=chunks)
        assert dm.stats.misses == lru.stats.misses
        assert dm.stats.accesses == lru.stats.accesses

    def test_small_handcrafted(self):
        cfg = CacheConfig(128, 32, 1)  # 4 sets
        dm = DirectMappedCache(cfg)
        #      miss  miss  hit  miss(conflict 0^128) miss  hit
        trace = [0, 32, 4, 128, 0, 33]
        mask = dm.access(np.array(trace))
        assert list(mask) == [True, True, False, True, True, False]


class TestBehaviour:
    def test_sequential_scan_miss_ratio(self):
        # 8-byte elements, 32-byte blocks: exactly 1 miss per 4 accesses.
        dm = DirectMappedCache(CacheConfig(8192, 32, 1))
        dm.access(np.arange(40000, dtype=np.int64) * 8)
        assert dm.stats.miss_ratio == pytest.approx(0.25)

    def test_working_set_fits(self):
        # Second pass over a cache-resident array: all hits.
        dm = DirectMappedCache(CacheConfig(4096, 32, 1))
        addrs = np.arange(0, 4096, 8, dtype=np.int64)
        dm.access(addrs)
        before = dm.stats.misses
        dm.access(addrs)
        assert dm.stats.misses == before

    def test_cache_sized_stride_conflicts(self):
        # Alternating addresses one cache-size apart: 100% misses.  This is
        # the Section 4.2 quadrant-conflict pattern in miniature.
        dm = DirectMappedCache(CacheConfig(1024, 32, 1))
        a = np.tile(np.array([0, 1024], dtype=np.int64), 500)
        dm.access(a)
        assert dm.stats.miss_ratio == 1.0

    def test_empty_chunk(self):
        dm = DirectMappedCache(CacheConfig(1024, 32, 1))
        out = dm.access(np.array([], dtype=np.int64))
        assert out.size == 0
        assert dm.stats.accesses == 0

    def test_count_only(self):
        dm = DirectMappedCache(CacheConfig(1024, 32, 1))
        assert dm.access(np.array([0, 0, 2048]), return_mask=False) == 2

    def test_reset(self):
        dm = DirectMappedCache(CacheConfig(1024, 32, 1))
        dm.access(np.array([0]))
        dm.reset()
        assert dm.stats.accesses == 0
        assert dm.access(np.array([0])).all()

    def test_rejects_associative_config(self):
        with pytest.raises(ValueError):
            DirectMappedCache(CacheConfig(1024, 32, 2))

    def test_state_carries_across_chunks(self):
        dm = DirectMappedCache(CacheConfig(128, 32, 1))
        dm.access(np.array([0]))
        mask = dm.access(np.array([0]))  # hit only if state carried
        assert not mask.any()
