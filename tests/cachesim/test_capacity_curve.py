"""Unit tests for the Mattson one-pass capacity curve."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig, LRUCache
from repro.cachesim.classify import capacity_miss_curve


class TestCapacityCurve:
    def test_monotone_nonincreasing_in_capacity(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 12, size=3000) * 8
        caps = [1, 2, 4, 8, 16, 32, 64]
        misses = capacity_miss_curve(addrs, 32, caps)
        assert all(b <= a for a, b in zip(misses, misses[1:]))

    def test_matches_lru_simulation(self):
        # Cross-check against a one-set fully-associative LRU per capacity.
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 11, size=1500) * 8
        for cap in (2, 8, 32):
            (curve,) = capacity_miss_curve(addrs, 32, [cap])
            lru = LRUCache(CacheConfig(cap * 32, 32, assoc=cap))
            assert curve == lru.access(addrs, return_mask=False)

    def test_infinite_capacity_leaves_compulsory(self):
        addrs = np.tile(np.arange(10, dtype=np.int64) * 32, 5)
        (misses,) = capacity_miss_curve(addrs, 32, [10**6])
        assert misses == 10

    def test_sequential_scan_all_capacities_same(self):
        # No reuse at all: every capacity sees only compulsory misses.
        addrs = np.arange(0, 32 * 100, 32, dtype=np.int64)
        misses = capacity_miss_curve(addrs, 32, [1, 4, 64])
        assert misses == [100, 100, 100]

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_miss_curve(np.array([0]), 24, [1])
        with pytest.raises(ValueError):
            capacity_miss_curve(np.array([0]), 32, [0])


class TestSensitivityExperiments:
    def test_associativity_absorbs_modgemm_conflicts(self):
        from repro.experiments.ext_sensitivity import run_associativity

        r = run_associativity(scale=16, paper_size=256)  # small & fast
        by_org = {row[1]: row[2] for row in r.rows}
        # monotone: more ways never hurt, and 2-way ~ fully associative
        assert by_org["2-way"] <= by_org["1-way (DM)"]
        assert by_org["4-way"] <= by_org["2-way"] + 1e-9

    def test_working_set_curve_shape(self):
        from repro.experiments.ext_sensitivity import run_working_set

        r = run_working_set(scale=16, paper_size=256)
        mod = r.column("modgemm_miss_pct")
        assert all(b <= a + 1e-12 for a, b in zip(mod, mod[1:]))
