"""Unit tests for the linear timing model."""

import numpy as np
import pytest

from repro.cachesim.cache import CacheConfig
from repro.cachesim.machines import ATOM_EXPERIMENT, Machine
from repro.cachesim.timemodel import ModelledRun, TimingModel


def simple_machine(peak=1e9, penalty=100e-9):
    return Machine(
        "test", (CacheConfig(1024, 32, 1),), peak, (penalty,)
    )


class TestEvaluate:
    def test_linear_formula(self):
        model = TimingModel(simple_machine())
        run = model.evaluate(flops=10**6, accesses=10**6, misses=[1000])
        assert run.seconds == pytest.approx(10**6 / 1e9 + 1000 * 100e-9)

    def test_mflops(self):
        model = TimingModel(simple_machine())
        run = model.evaluate(flops=10**6, accesses=1, misses=[0])
        assert run.mflops == pytest.approx(1000.0)

    def test_miss_ratio(self):
        run = ModelledRun("m", 1, 100, (25,), 1.0)
        assert run.l1_miss_ratio == 0.25

    def test_wrong_level_count_rejected(self):
        model = TimingModel(ATOM_EXPERIMENT)
        with pytest.raises(ValueError):
            model.evaluate(1, 1, [1, 2])

    def test_more_misses_slower(self):
        model = TimingModel(simple_machine())
        fast = model.evaluate(10**6, 10**6, [100])
        slow = model.evaluate(10**6, 10**6, [10**5])
        assert slow.seconds > fast.seconds


class TestRunTrace:
    def test_integrates_with_hierarchy(self):
        model = TimingModel(simple_machine())
        h = model.hierarchy()
        h.access(np.arange(0, 10**5, 8, dtype=np.int64))
        run = model.run_trace(flops=10**4, accesses=12500, hierarchy=h)
        assert run.misses[0] == h.levels[0].stats.misses
        assert run.seconds > 0
