"""Tests for validation mode: ``GemmSession(debug=True)`` invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import GemmSession
from repro.errors import BatchItemError, InvariantError
from repro.observe import POISON


def _square(rng, n):
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


class TestDebugIsTransparent:
    @pytest.mark.parametrize("memory", ["classic", "two_temp"])
    def test_bit_identical_to_plain_session(self, rng, memory):
        a, b = _square(rng, 65)  # padded geometry: pad checks are live
        with GemmSession() as plain, GemmSession(debug=True) as dbg:
            ref = plain.multiply(a, b, memory=memory)
            got = dbg.multiply(a, b, memory=memory)
            again = dbg.multiply(a, b, memory=memory)  # quiescence armed
        assert np.array_equal(got, ref)
        assert np.array_equal(again, ref)

    def test_bit_identical_on_parallel_schedule(self, rng):
        a, b = _square(rng, 129)
        with GemmSession(max_workers=2) as plain, \
                GemmSession(debug=True, max_workers=2) as dbg:
            ref = plain.multiply(a, b, schedule="tasks:1")
            for _ in range(3):
                assert np.array_equal(
                    dbg.multiply(a, b, schedule="tasks:1"), ref
                )

    def test_bit_identical_on_batched_path(self, rng):
        pairs = [_square(rng, 64) for _ in range(4)]
        with GemmSession() as plain, GemmSession(debug=True) as dbg:
            refs = [plain.multiply(a, b) for a, b in pairs]
            outs = dbg.multiply_many(pairs)
            again = dbg.multiply_many(pairs)
            assert dbg.stats().batched_executes == 2
        for out, out2, ref in zip(outs, again, refs):
            assert np.array_equal(out, ref)
            assert np.array_equal(out2, ref)


class TestPadCorruption:
    def test_injected_pad_corruption_is_caught(self, rng):
        a, b = _square(rng, 65)  # 65 pads to 66 logical tiles
        with GemmSession(debug=True) as s:
            s.multiply(a, b)
            plan = s.plan(65, 65, 65)
            assert plan._a_mm.size > 65 * 65, "test needs a padded geometry"
            # Scribble over the whole operand buffer.  The next execution
            # rewrites only logical elements (zero_pad=False), so the pad
            # stays corrupted — exactly what debug mode must catch.
            plan._a_mm.buf.fill(1.0)
            with pytest.raises(InvariantError, match="pad"):
                s.multiply(a, b)

    def test_plain_session_misses_it(self, rng):
        # The control: without debug the same corruption goes unnoticed
        # (and silently wrongs the result) — that is why the mode exists.
        a, b = _square(rng, 65)
        with GemmSession() as s:
            ref = s.multiply(a, b)
            s.plan(65, 65, 65)._a_mm.buf.fill(1.0)
            got = s.multiply(a, b)  # no error raised...
        assert not np.array_equal(got, ref)  # ...but the bits are wrong


class TestWorkspaceQuiescence:
    def test_scribbled_workspace_is_caught(self, rng):
        a, b = _square(rng, 66)
        with GemmSession(debug=True) as s:
            s.multiply(a, b)
            plan = s.plan(66, 66, 66)
            assert plan._poisoned
            buf = next(plan._workspace._buffers())
            buf[buf.size // 2] = 0.0  # a single stray write
            with pytest.raises(InvariantError, match="poison"):
                s.multiply(a, b)

    def test_task_scratch_scribble_is_caught(self, rng):
        a, b = _square(rng, 129)
        with GemmSession(debug=True, max_workers=2) as s:
            s.multiply(a, b, schedule="tasks:1")
            plan = s.plan(129, 129, 129, schedule="tasks:1")
            next(plan._tscratch._buffers())[0] = 0.0
            with pytest.raises(InvariantError, match="poison"):
                s.multiply(a, b, schedule="tasks:1")

    def test_batch_workspace_scribble_is_caught(self, rng):
        pairs = [_square(rng, 64) for _ in range(4)]
        with GemmSession(debug=True) as s:
            s.multiply_many(pairs)
            ((_, bp),) = s._batch_plans.items()
            assert bp._poisoned
            next(bp._ws._buffers())[0] = 0.0
            with pytest.raises(BatchItemError) as excinfo:
                s.multiply_many(pairs)
        assert isinstance(excinfo.value.__cause__, InvariantError)

    def test_poison_value_is_finite(self):
        # NaN would defeat the == comparison poison_intact relies on.
        assert np.isfinite(POISON)


class TestFiniteGuard:
    def test_nonfinite_leaf_product_is_caught(self, rng):
        a, b = _square(rng, 66)
        a[0, 0] = np.inf
        with GemmSession(debug=True) as s:
            with pytest.raises(InvariantError, match="leaf"):
                s.multiply(a, b)

    def test_nan_operand_is_caught(self, rng):
        a, b = _square(rng, 66)
        b[10, 10] = np.nan
        with GemmSession(debug=True) as s:
            with pytest.raises(InvariantError, match="non-finite"):
                s.multiply(a, b)

    def test_plain_session_propagates_nan_silently(self, rng):
        a, b = _square(rng, 66)
        a[0, 0] = np.nan
        with GemmSession() as s:
            out = s.multiply(a, b)
        assert np.isnan(out).any()  # no diagnosis without debug


class TestDebugFixedAtConstruction:
    def test_flag_recorded_on_session_and_plans(self, rng):
        with GemmSession(debug=True) as s:
            assert s.debug is True
            s.multiply(*_square(rng, 64))
            plan = s.plan(64, 64, 64)
            assert plan._debug is True
        with GemmSession() as s:
            s.multiply(*_square(rng, 64))
            assert s.plan(64, 64, 64)._debug is False
