"""Unit and integration tests for the structured event tracer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import GemmSession
from repro.observe import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    validate_trace,
)


class TestRingBuffer:
    def test_capacity_bounds_events_and_counts_drops(self):
        tr = Tracer(capacity=4, enabled=True)
        for i in range(7):
            tr.emit("add", label=f"e{i}")
        events = tr.events()
        assert len(events) == 4
        assert tr.dropped == 3
        # Oldest dropped: the window holds the most recent events.
        assert [ev.label for ev in events] == ["e3", "e4", "e5", "e6"]
        assert [ev.seq for ev in events] == [3, 4, 5, 6]

    def test_seq_monotonic_and_timestamps_ordered(self):
        tr = Tracer(enabled=True)
        for _ in range(5):
            tr.emit("convert", label="x")
        events = tr.events()
        assert [ev.seq for ev in events] == list(range(5))
        assert all(e0.t <= e1.t for e0, e1 in zip(events, events[1:]))
        assert all(ev.thread == threading.get_ident() for ev in events)

    def test_clear_resets_counters(self):
        tr = Tracer(capacity=2, enabled=True)
        for _ in range(5):
            tr.emit("add")
        tr.clear()
        assert tr.events() == [] and tr.dropped == 0
        tr.emit("add")
        assert tr.events()[0].seq == 0

    def test_unknown_kind_rejected(self):
        tr = Tracer(enabled=True)
        with pytest.raises(ValueError, match="unknown trace event kind"):
            tr.emit("bogus")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_disabled_by_default(self):
        assert Tracer().enabled is False
        assert Tracer().enable().enabled is True


class TestCallbacks:
    def test_on_event_fires_and_unsubscribes(self):
        tr = Tracer(enabled=True)
        seen = []
        unsubscribe = tr.on_event(seen.append)
        tr.emit("add", label="one")
        assert len(seen) == 1 and seen[0].label == "one"
        unsubscribe()
        unsubscribe()  # idempotent
        tr.emit("add", label="two")
        assert len(seen) == 1

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            Tracer().on_event("not-a-function")


class TestDump:
    def test_dump_validates_against_schema(self):
        tr = Tracer(capacity=8, enabled=True)
        for kind in ("plan_compile", "convert", "exec", "worker_start"):
            tr.emit(kind, label=kind, seconds=0.5, worker=0)
        doc = tr.dump()
        assert validate_trace(doc) is doc
        assert doc["version"] == TRACE_SCHEMA_VERSION
        assert doc["capacity"] == 8 and doc["dropped"] == 0
        # The contract is plain JSON: a round trip must be lossless.
        assert json.loads(json.dumps(doc)) == doc

    def test_tampered_document_rejected_with_path(self):
        tr = Tracer(enabled=True)
        tr.emit("add")
        doc = tr.dump()
        doc["events"][0]["kind"] = "bogus"
        with pytest.raises(ValueError, match=r"events\[0\].kind"):
            validate_trace(doc)
        doc = tr.dump()
        del doc["capacity"]
        with pytest.raises(ValueError, match="capacity"):
            validate_trace(doc)

    def test_every_kind_is_schema_valid(self):
        tr = Tracer(capacity=len(EVENT_KINDS), enabled=True)
        for kind in EVENT_KINDS:
            tr.emit(kind, label=kind)
        validate_trace(tr.dump())


class TestTimeline:
    def test_spans_gaps_and_steal_flag(self):
        tr = Tracer(enabled=True)
        tr.emit("worker_start", label="first", worker=0, task=0)
        tr.emit("worker_finish", label="first", worker=0, task=0)
        tr.emit("worker_steal", label="second", worker=0, task=1)
        tr.emit("worker_finish", label="second", worker=0, task=1)
        tl = tr.timeline()
        assert list(tl) == [threading.get_ident()]
        mine = tl[threading.get_ident()]
        assert [s["label"] for s in mine["spans"]] == ["first", "second"]
        assert [s["stolen"] for s in mine["spans"]] == [False, True]
        assert len(mine["gaps"]) == 1
        assert mine["busy"] >= 0.0 and mine["idle"] >= 0.0
        assert mine["gaps"][0]["dt"] == pytest.approx(
            mine["spans"][1]["t0"] - mine["spans"][0]["t1"]
        )

    def test_unpaired_events_ignored(self):
        tr = Tracer(enabled=True)
        tr.emit("worker_finish", label="orphan")  # no opener
        tr.emit("worker_start", label="dangling")  # never finishes
        assert tr.timeline() == {}


class TestSessionTracing:
    def test_disabled_by_default_emits_nothing(self, rng):
        with GemmSession() as s:
            assert s.trace.enabled is False
            s.multiply(
                rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
            )
            assert s.trace.events() == []

    def test_multiply_emits_compile_convert_exec(self, rng):
        a = rng.standard_normal((66, 66))
        b = rng.standard_normal((66, 66))
        with GemmSession(trace=True) as s:
            s.multiply(a, b)
            kinds = {ev.kind for ev in s.trace.events()}
            assert {"plan_compile", "convert", "add", "exec"} <= kinds
            assert kinds <= set(EVENT_KINDS)
            s.multiply(a, b)
            assert "plan_hit" in {ev.kind for ev in s.trace.events()}
            validate_trace(s.trace.dump())

    def test_eviction_emits_plan_evict(self, rng):
        with GemmSession(capacity=1, trace=True) as s:
            s.multiply(
                rng.standard_normal((40, 40)), rng.standard_normal((40, 40))
            )
            s.multiply(
                rng.standard_normal((50, 50)), rng.standard_normal((50, 50))
            )
            evicts = [
                ev for ev in s.trace.events() if ev.kind == "plan_evict"
            ]
        assert len(evicts) == 1
        assert evicts[0].label.startswith("40x40x40")

    def test_parallel_execution_traces_workers(self, rng):
        a = rng.standard_normal((129, 129))
        b = rng.standard_normal((129, 129))
        with GemmSession(trace=True, max_workers=2) as s:
            s.multiply(a, b, schedule="tasks:1")
            kinds = {ev.kind for ev in s.trace.events()}
            assert "worker_finish" in kinds
            assert kinds & {"worker_start", "worker_steal"}
            tl = s.trace.timeline()
        assert tl, "worker events must produce a non-empty timeline"
        spans = [sp for t in tl.values() for sp in t["spans"]]
        assert len(spans) >= 7  # one per top-level product at least

    def test_batched_execution_traces_stripes(self, rng):
        pairs = [
            (rng.standard_normal((64, 64)), rng.standard_normal((64, 64)))
            for _ in range(4)
        ]
        with GemmSession(trace=True) as s:
            s.multiply_many(pairs)
            events = s.trace.events()
        kinds = {ev.kind for ev in events}
        assert "batch_stripe" in kinds
        execs = [ev for ev in events if ev.kind == "exec"]
        assert any(ev.data and ev.data.get("items") == 4 for ev in execs)
        convert_labels = {
            ev.label for ev in events if ev.kind == "convert"
        }
        # Fused packing converts each side separately (batch-a/batch-b);
        # the unfused path emits one combined batch-in event.
        assert "batch-out" in convert_labels
        assert (
            {"batch-a", "batch-b"} <= convert_labels
            or "batch-in" in convert_labels
        )

    def test_enable_mid_stream(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        with GemmSession() as s:
            s.multiply(a, b)
            assert s.trace.events() == []
            s.trace.enable()
            s.multiply(a, b)
            assert s.trace.events()
            s.trace.disable()
            n = len(s.trace.events())
            s.multiply(a, b)
            assert len(s.trace.events()) == n

    def test_trace_capacity_forwarded(self):
        s = GemmSession(trace=True, trace_capacity=3)
        assert s.trace.capacity == 3
