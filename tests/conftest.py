"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import faulthandler

import numpy as np
import pytest

# Hard ceiling on any single test.  CI installs pytest-timeout, which
# enforces this properly (see ci.yml / the Makefile's TIMEOUT_FLAGS);
# environments without the plugin fall back to a stdlib faulthandler
# watchdog so a deadlocked concurrency test dumps all thread stacks and
# aborts instead of hanging the whole run forever.
TEST_TIMEOUT_SECONDS = 120.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item):
    if item.config.pluginmanager.hasplugin("timeout"):
        yield  # pytest-timeout owns the deadline
        return
    faulthandler.dump_traceback_later(TEST_TIMEOUT_SECONDS, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def assert_gemm_close(result: np.ndarray, reference: np.ndarray, tol: float = 1e-9):
    """Relative max-norm comparison with a Strassen-friendly tolerance."""
    denom = max(1.0, float(np.max(np.abs(reference))))
    err = float(np.max(np.abs(result - reference))) / denom
    assert err < tol, f"relative error {err:.3e} exceeds {tol:.1e}"
