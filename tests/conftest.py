"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def assert_gemm_close(result: np.ndarray, reference: np.ndarray, tol: float = 1e-9):
    """Relative max-norm comparison with a Strassen-friendly tolerance."""
    denom = max(1.0, float(np.max(np.abs(reference))))
    err = float(np.max(np.abs(result - reference))) / denom
    assert err < tol, f"relative error {err:.3e} exceeds {tol:.1e}"
