"""Unit tests for dynamic truncation-point selection (paper Section 3.4)."""

import pytest

from repro.layout.padding import (
    TileRange,
    Tiling,
    feasible_depths,
    min_padding_curve,
    padded_size,
    select_common_tiling,
    select_tiling,
)


class TestTileRange:
    def test_defaults_match_paper(self):
        r = TileRange()
        assert (r.min_tile, r.max_tile) == (16, 64)
        assert r.span == 4.0

    def test_rejects_narrow_range(self):
        # A span below 2 leaves unreachable sizes between T*2^d ladders.
        with pytest.raises(ValueError):
            TileRange(20, 30)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TileRange(0, 10)


class TestTiling:
    def test_padded_and_pad(self):
        t = Tiling(n=513, tile=33, depth=4)
        assert t.padded == 528
        assert t.pad == 15

    def test_rejects_too_small_capacity(self):
        with pytest.raises(ValueError):
            Tiling(n=100, tile=10, depth=3)  # 80 < 100

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Tiling(n=0, tile=1, depth=0)
        with pytest.raises(ValueError):
            Tiling(n=1, tile=1, depth=-1)


class TestFeasibleDepths:
    def test_small_matrix_single_leaf(self):
        opts = feasible_depths(10)
        assert Tiling(n=10, tile=10, depth=0) in opts

    def test_all_candidates_valid(self):
        for n in (17, 100, 513, 1024):
            for t in feasible_depths(n):
                assert t.padded >= n
                if t.depth > 0:
                    assert 16 <= t.tile <= 64
                assert t.tile == -(-n // (1 << t.depth)) or t.depth == 0

    def test_no_candidate_missed(self):
        # Brute-force cross-check for one size.
        n = 300
        got = {(t.tile, t.depth) for t in feasible_depths(n)}
        expected = set()
        for d in range(0, 10):
            t = -(-n // (1 << d))
            if d == 0 and n <= 64:
                expected.add((n, 0))
            elif d > 0 and 16 <= t <= 64:
                expected.add((t, d))
        assert got == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            feasible_depths(0)


class TestSelectTiling:
    def test_paper_example_513(self):
        t = select_tiling(513)
        assert (t.tile, t.depth, t.padded) == (33, 4, 528)

    def test_paper_505_to_512_truncate_at_32(self):
        # Section 4.2: sizes 505..512 pad to 512 with tile size 32.
        for n in range(505, 513):
            t = select_tiling(n)
            assert t.padded == 512
            assert t.tile == 32

    def test_1024_uses_tile_32_depth_5(self):
        t = select_tiling(1024)
        assert (t.tile, t.depth) == (32, 5)

    def test_worst_case_pad_is_15_up_to_1024(self):
        # The paper's "worst case amount" of 15 extra elements.
        worst = max(select_tiling(n).pad for n in range(1, 1025))
        assert worst == 15

    def test_pad_never_negative(self):
        for n in range(1, 1400, 7):
            assert select_tiling(n).pad >= 0

    def test_scaled_range_prefers_scaled_midpoint(self):
        # At range [8,32] the 250..256 regime should use tile 16 (the
        # scaled analogue of the paper's 505..512 -> 32 observation).
        for n in range(250, 257):
            t = select_tiling(n, TileRange(8, 32))
            assert t.tile == 16

    def test_small_sizes_are_single_leaves(self):
        for n in (1, 5, 16, 40):
            t = select_tiling(n)
            assert t.depth == 0 and t.tile == n and t.pad == 0

    def test_64_prefers_one_strassen_level(self):
        # 64 = 32 * 2: zero padding either way; the tie-break picks the
        # tile nearer the range midpoint, giving one recursion level.
        t = select_tiling(64)
        assert (t.tile, t.depth, t.pad) == (32, 1, 0)


class TestPaddedSize:
    def test_matches_select_tiling(self):
        for n in (150, 513, 1000):
            assert padded_size(n) == select_tiling(n).padded

    def test_dynamic_padding_bounded(self):
        # Figure 2's message: dynamic padding is O(1), independent of n.
        for n in range(65, 1025):
            assert padded_size(n) - n <= 15


class TestSelectCommonTiling:
    def test_square_matches_single_dim(self):
        plan = select_common_tiling((513, 513, 513))
        assert plan is not None
        assert all(t.padded == 528 for t in plan)

    def test_same_depth_different_tiles(self):
        plan = select_common_tiling((150, 200, 170))
        assert plan is not None
        depths = {t.depth for t in plan}
        assert len(depths) == 1
        assert [t.n for t in plan] == [150, 200, 170]

    def test_paper_rectangular_example_handled_jointly(self):
        # The paper's 1024 x 256 example: choosing T=32 per dimension
        # independently clashes (depths 5 vs 3), but the joint search finds
        # the common depth 4 with tiles 64 and 16 — the full range makes
        # ratio-4 cases feasible without panelling.
        plan = select_common_tiling((1024, 256))
        assert plan is not None
        assert plan[0].depth == plan[1].depth == 4
        assert (plan[0].tile, plan[1].tile) == (64, 16)

    def test_extreme_rectangles_fail(self):
        # Beyond the range's span no common depth can exist.
        assert select_common_tiling((2048, 256)) is None
        # Within (2, 4] rounding can also leave the depth intervals
        # disjoint — this is why the panel splitter targets ratio <= 2.
        assert select_common_tiling((100, 399)) is None

    def test_ratio_two_always_succeeds(self):
        for a in range(65, 700, 13):
            for b in (a, 2 * a - 1, (a + 1) // 2):
                assert select_common_tiling((a, b)) is not None, (a, b)

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            select_common_tiling(())

    def test_all_small_dims_single_leaf(self):
        plan = select_common_tiling((10, 20, 30))
        assert plan is not None
        assert all(t.depth == 0 for t in plan)


class TestMinPaddingCurve:
    def test_rows_structure(self):
        rows = min_padding_curve([513, 514])
        assert rows[0] == (513, 528, 33)
        assert len(rows) == 2
