"""Unit tests for the MortonMatrix container."""

import numpy as np
import pytest

from repro.layout.matrix import MortonMatrix
from repro.layout.padding import TileRange, Tiling, select_common_tiling


def make(rows, cols, tile_range=TileRange()):
    plan = select_common_tiling((rows, cols), tile_range)
    assert plan is not None
    return MortonMatrix.zeros(rows, cols, plan[0], plan[1])


class TestConstruction:
    def test_zeros_is_zero(self):
        m = make(100, 80)
        assert np.all(m.buf == 0.0)

    def test_shapes(self):
        m = make(150, 150)
        assert m.shape == (150, 150)
        assert m.padded_rows == 152 and m.padded_cols == 152
        assert m.size == 152 * 152

    def test_buffer_length_validated(self):
        with pytest.raises(ValueError):
            MortonMatrix(
                buf=np.zeros(10), rows=4, cols=4, tile_r=2, tile_c=2, depth=1
            )

    def test_requires_1d_buffer(self):
        with pytest.raises(ValueError):
            MortonMatrix(
                buf=np.zeros((4, 4)), rows=4, cols=4, tile_r=2, tile_c=2, depth=1
            )

    def test_logical_dims_within_padded(self):
        with pytest.raises(ValueError):
            MortonMatrix(
                buf=np.zeros(16), rows=5, cols=4, tile_r=2, tile_c=2, depth=1
            )

    def test_empty_mismatched_depths_rejected(self):
        with pytest.raises(ValueError):
            MortonMatrix.empty(
                4, 4, Tiling(n=4, tile=2, depth=1), Tiling(n=4, tile=4, depth=0)
            )


class TestFromDense:
    def test_roundtrip_identity(self, rng):
        a = rng.standard_normal((97, 143))
        m = MortonMatrix.from_dense(a)
        assert np.array_equal(m.to_dense(), a)

    def test_transpose_fused(self, rng):
        a = rng.standard_normal((60, 90))
        m = MortonMatrix.from_dense(a, transpose=True)
        assert m.shape == (90, 60)
        assert np.array_equal(m.to_dense(), a.T)

    def test_pad_region_zeroed(self, rng):
        a = rng.standard_normal((150, 150))
        m = MortonMatrix.from_dense(a)
        assert m.pad_is_zero()

    def test_extreme_aspect_ratio_degenerates_to_single_tile(self, rng):
        a = rng.standard_normal((100, 2))
        m = MortonMatrix.from_dense(a)
        assert m.depth == 0
        assert np.array_equal(m.to_dense(), a)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            MortonMatrix.from_dense(np.zeros(5))

    def test_float32_input_upcast(self):
        a = np.eye(10, dtype=np.float32)
        m = MortonMatrix.from_dense(a)
        assert m.buf.dtype == np.float64
        assert np.array_equal(m.to_dense(), a.astype(np.float64))


class TestQuadrants:
    def test_views_share_memory(self, rng):
        m = make(200, 200)
        q = m.quadrant(0, 1)
        q.buf[:] = 7.0
        quarter = m.size // 4
        assert np.all(m.buf[quarter : 2 * quarter] == 7.0)
        assert np.all(m.buf[:quarter] == 0.0)

    def test_order_is_nw_ne_sw_se(self, rng):
        a = rng.standard_normal((128, 128))
        m = MortonMatrix.from_dense(a)
        nw, ne, sw, se = m.quadrants()
        h = m.padded_rows // 2
        assert np.array_equal(nw.to_dense(), a[:h, :h])
        assert np.array_equal(se.to_dense(), a[h:, h:])
        assert np.array_equal(sw.to_dense(), a[h:, :h])
        assert np.array_equal(ne.to_dense(), a[:h, h:])

    def test_quadrants_contiguous(self):
        m = make(128, 128)
        for q in m.quadrants():
            assert q.buf.flags.c_contiguous

    def test_leaf_has_no_quadrants(self):
        m = make(8, 8)
        assert m.depth == 0
        with pytest.raises(ValueError):
            m.quadrant(0, 0)

    def test_bad_indices(self):
        m = make(200, 200)
        with pytest.raises(ValueError):
            m.quadrant(2, 0)


class TestLeafView:
    def test_fortran_order_view(self, rng):
        a = rng.standard_normal((8, 8))
        m = MortonMatrix.from_dense(a)
        v = m.leaf_view()
        assert v.shape == (8, 8)
        assert np.array_equal(v, a)
        assert not v.flags.owndata  # it is a view

    def test_requires_depth_zero(self):
        m = make(200, 200)
        with pytest.raises(ValueError):
            m.leaf_view()


class TestElementAccess:
    def test_matches_dense(self, rng):
        a = rng.standard_normal((33, 47))
        m = MortonMatrix.from_dense(a)
        for i, j in [(0, 0), (32, 46), (10, 20)]:
            assert m[i, j] == a[i, j]

    def test_out_of_logical_bounds(self):
        m = make(33, 47)
        with pytest.raises(IndexError):
            m[33, 0]


class TestCopy:
    def test_independent_buffer(self):
        m = make(40, 40)
        c = m.copy()
        c.buf[:] = 1.0
        assert np.all(m.buf == 0.0)
