"""Unit tests for column-major <-> Morton conversion."""

import numpy as np
import pytest

import repro.layout.convert as convert_mod
from repro.core.scheduler import WorkerPool
from repro.layout.convert import (
    ConversionTable,
    conversion_table,
    dense_to_morton,
    morton_to_dense,
)
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import TileRange, select_common_tiling


def empty_for(rows, cols, tile_range=TileRange()):
    plan = select_common_tiling((rows, cols), tile_range)
    assert plan is not None
    return MortonMatrix.empty(rows, cols, plan[0], plan[1])


SHAPES = [(1, 1), (7, 9), (16, 16), (64, 64), (65, 63), (150, 150), (513, 260)]


class TestRoundtrip:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip_exact(self, rng, shape):
        a = rng.standard_normal(shape)
        m = empty_for(*shape)
        dense_to_morton(a, m)
        assert np.array_equal(morton_to_dense(m), a)

    def test_roundtrip_with_odd_tiles(self, rng):
        # 513 forces tile 33 / depth 4: odd tiles, genuine padding.
        a = rng.standard_normal((513, 513))
        m = empty_for(513, 513)
        dense_to_morton(a, m)
        assert m.tile_r == 33
        assert np.array_equal(morton_to_dense(m), a)

    def test_transpose_fusion(self, rng):
        a = rng.standard_normal((40, 70))
        m = empty_for(70, 40)
        dense_to_morton(a, m, transpose=True)
        assert np.array_equal(morton_to_dense(m), a.T)


class TestPadding:
    def test_straddling_tiles_zero_filled(self, rng):
        a = rng.standard_normal((150, 150))  # pads to 152
        m = empty_for(150, 150)
        m.buf[:] = np.nan  # poison: conversion must overwrite the pad
        dense_to_morton(a, m)
        assert not np.any(np.isnan(m.buf))
        assert m.pad_is_zero()

    def test_full_interior_tiles_not_rezeroed(self, rng):
        # (cheap behavioural check: conversion output is correct even when
        # the destination held garbage)
        a = rng.standard_normal((64, 64))
        m = empty_for(64, 64)
        m.buf[:] = 123.0
        dense_to_morton(a, m)
        assert np.array_equal(morton_to_dense(m), a)


class TestValidation:
    def test_shape_mismatch_rejected(self, rng):
        a = rng.standard_normal((10, 10))
        m = empty_for(11, 10)
        with pytest.raises(ValueError):
            dense_to_morton(a, m)

    def test_transpose_shape_checked(self, rng):
        a = rng.standard_normal((10, 12))
        m = empty_for(10, 12)
        with pytest.raises(ValueError):
            dense_to_morton(a, m, transpose=True)

    def test_non_2d_rejected(self):
        m = empty_for(4, 4)
        with pytest.raises(ValueError):
            dense_to_morton(np.zeros(16), m)

    def test_morton_to_dense_out_shape_checked(self, rng):
        a = rng.standard_normal((10, 10))
        m = empty_for(10, 10)
        dense_to_morton(a, m)
        with pytest.raises(ValueError):
            morton_to_dense(m, out=np.empty((9, 10)))


def table_for(m: MortonMatrix) -> ConversionTable:
    return ConversionTable(m.rows, m.cols, m.tile_r, m.tile_c, m.depth)


class TestConversionTable:
    """The precomputed-index path must agree exactly with the tile loop."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip_matches_loop(self, rng, shape):
        a = rng.standard_normal(shape)
        loop = empty_for(*shape)
        indexed = empty_for(*shape)
        dense_to_morton(a, loop)
        dense_to_morton(a, indexed, table=table_for(indexed))
        assert np.array_equal(indexed.buf, loop.buf)
        assert np.array_equal(
            morton_to_dense(indexed, table=table_for(indexed)), a
        )

    @pytest.mark.parametrize("order", ["C", "F"])
    def test_source_contiguity_dispatch(self, rng, order):
        a = np.asarray(rng.standard_normal((65, 63)), order=order)
        m = empty_for(65, 63)
        dense_to_morton(a, m, table=table_for(m))
        assert np.array_equal(morton_to_dense(m), a)

    def test_strided_source_fallback(self, rng):
        big = rng.standard_normal((130, 126))
        a = big[::2, ::2]  # non-contiguous view
        assert not (a.flags.c_contiguous or a.flags.f_contiguous)
        m = empty_for(65, 63)
        dense_to_morton(a, m, table=table_for(m))
        assert np.array_equal(morton_to_dense(m), a)

    def test_transpose_fusion(self, rng):
        a = rng.standard_normal((40, 70))
        m = empty_for(70, 40)
        dense_to_morton(a, m, transpose=True, table=table_for(m))
        assert np.array_equal(morton_to_dense(m), a.T)

    def test_pad_zeroed(self, rng):
        a = rng.standard_normal((150, 150))  # pads to 152
        m = empty_for(150, 150)
        m.buf[:] = np.nan
        dense_to_morton(a, m, table=table_for(m))
        assert not np.any(np.isnan(m.buf))
        assert m.pad_is_zero()

    def test_zero_pad_false_skips_rezero(self, rng):
        a = rng.standard_normal((150, 150))
        m = empty_for(150, 150)
        dense_to_morton(a, m)  # establishes a zero pad
        dense_to_morton(a * 2, m, zero_pad=False, table=table_for(m))
        assert m.pad_is_zero()
        assert np.array_equal(morton_to_dense(m), a * 2)

    def test_geometry_mismatch_rejected(self, rng):
        a = rng.standard_normal((64, 64))
        m = empty_for(64, 64)
        wrong = ConversionTable(63, 64, m.tile_r, m.tile_c, m.depth)
        with pytest.raises(ValueError):
            dense_to_morton(a, m, table=wrong)
        dense_to_morton(a, m)
        with pytest.raises(ValueError):
            morton_to_dense(m, table=wrong)

    def test_morton_to_dense_out_orders(self, rng):
        a = rng.standard_normal((65, 63))
        m = empty_for(65, 63)
        dense_to_morton(a, m)
        tab = table_for(m)
        for order in ("C", "F"):
            out = np.empty((65, 63), order=order)
            assert np.array_equal(morton_to_dense(m, out=out, table=tab), a)
        strided = np.empty((130, 63))[::2]
        assert np.array_equal(morton_to_dense(m, out=strided, table=tab), a)

    def test_parallel_chunked_conversion(self, rng, monkeypatch):
        monkeypatch.setattr(convert_mod, "PARALLEL_CONVERT_MIN", 64)
        pool = WorkerPool(3, name="test-convert")
        try:
            a = rng.standard_normal((150, 150))
            m = empty_for(150, 150)
            dense_to_morton(a, m, table=table_for(m), pool=pool, workers=3)
            loop = empty_for(150, 150)
            dense_to_morton(a, loop)
            assert np.array_equal(m.buf, loop.buf)
            out = morton_to_dense(m, table=table_for(m), pool=pool, workers=3)
            assert np.array_equal(out, a)
        finally:
            pool.shutdown()

    def test_chunks_cover_range_disjointly(self):
        tab = ConversionTable(33, 33, 33, 33, 0)
        for n in (1, 2, 7, 2000):
            slices = tab.chunks(n)
            covered = np.concatenate(
                [np.arange(s.start, s.stop) for s in slices]
            )
            assert np.array_equal(covered, np.arange(33 * 33))

    def test_shared_cache_returns_same_table(self):
        t1 = conversion_table(64, 64, 16, 16, 2)
        t2 = conversion_table(64, 64, 16, 16, 2)
        assert t1 is t2
        assert t1.nbytes > 0

    def test_tables_are_immutable(self):
        tab = conversion_table(64, 64, 16, 16, 2)
        with pytest.raises(ValueError):
            tab.offsets[0, 0] = 1
        with pytest.raises(ValueError):
            tab.flat_f[0] = 1


class TestMortonToDenseOut:
    def test_writes_into_supplied_array(self, rng):
        a = rng.standard_normal((33, 33))
        m = empty_for(33, 33)
        dense_to_morton(a, m)
        out = np.zeros((33, 33), order="F")
        result = morton_to_dense(m, out=out)
        assert result is out
        assert np.array_equal(out, a)

    def test_default_output_fortran_order(self, rng):
        a = rng.standard_normal((20, 30))
        m = empty_for(20, 30)
        dense_to_morton(a, m)
        assert morton_to_dense(m).flags.f_contiguous
