"""Unit tests for column-major <-> Morton conversion."""

import numpy as np
import pytest

from repro.layout.convert import dense_to_morton, morton_to_dense
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import TileRange, select_common_tiling


def empty_for(rows, cols, tile_range=TileRange()):
    plan = select_common_tiling((rows, cols), tile_range)
    assert plan is not None
    return MortonMatrix.empty(rows, cols, plan[0], plan[1])


SHAPES = [(1, 1), (7, 9), (16, 16), (64, 64), (65, 63), (150, 150), (513, 260)]


class TestRoundtrip:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip_exact(self, rng, shape):
        a = rng.standard_normal(shape)
        m = empty_for(*shape)
        dense_to_morton(a, m)
        assert np.array_equal(morton_to_dense(m), a)

    def test_roundtrip_with_odd_tiles(self, rng):
        # 513 forces tile 33 / depth 4: odd tiles, genuine padding.
        a = rng.standard_normal((513, 513))
        m = empty_for(513, 513)
        dense_to_morton(a, m)
        assert m.tile_r == 33
        assert np.array_equal(morton_to_dense(m), a)

    def test_transpose_fusion(self, rng):
        a = rng.standard_normal((40, 70))
        m = empty_for(70, 40)
        dense_to_morton(a, m, transpose=True)
        assert np.array_equal(morton_to_dense(m), a.T)


class TestPadding:
    def test_straddling_tiles_zero_filled(self, rng):
        a = rng.standard_normal((150, 150))  # pads to 152
        m = empty_for(150, 150)
        m.buf[:] = np.nan  # poison: conversion must overwrite the pad
        dense_to_morton(a, m)
        assert not np.any(np.isnan(m.buf))
        assert m.pad_is_zero()

    def test_full_interior_tiles_not_rezeroed(self, rng):
        # (cheap behavioural check: conversion output is correct even when
        # the destination held garbage)
        a = rng.standard_normal((64, 64))
        m = empty_for(64, 64)
        m.buf[:] = 123.0
        dense_to_morton(a, m)
        assert np.array_equal(morton_to_dense(m), a)


class TestValidation:
    def test_shape_mismatch_rejected(self, rng):
        a = rng.standard_normal((10, 10))
        m = empty_for(11, 10)
        with pytest.raises(ValueError):
            dense_to_morton(a, m)

    def test_transpose_shape_checked(self, rng):
        a = rng.standard_normal((10, 12))
        m = empty_for(10, 12)
        with pytest.raises(ValueError):
            dense_to_morton(a, m, transpose=True)

    def test_non_2d_rejected(self):
        m = empty_for(4, 4)
        with pytest.raises(ValueError):
            dense_to_morton(np.zeros(16), m)

    def test_morton_to_dense_out_shape_checked(self, rng):
        a = rng.standard_normal((10, 10))
        m = empty_for(10, 10)
        dense_to_morton(a, m)
        with pytest.raises(ValueError):
            morton_to_dense(m, out=np.empty((9, 10)))


class TestMortonToDenseOut:
    def test_writes_into_supplied_array(self, rng):
        a = rng.standard_normal((33, 33))
        m = empty_for(33, 33)
        dense_to_morton(a, m)
        out = np.zeros((33, 33), order="F")
        result = morton_to_dense(m, out=out)
        assert result is out
        assert np.array_equal(out, a)

    def test_default_output_fortran_order(self, rng):
        a = rng.standard_normal((20, 30))
        m = empty_for(20, 30)
        dense_to_morton(a, m)
        assert morton_to_dense(m).flags.f_contiguous
