"""Unit tests for the fused convert-and-add packing primitives.

The contract under test: :func:`pack_morton_quarter` scatters a Winograd
operand sum directly from the dense source, bit-identical to converting
both quadrants and running the flat ufunc over their buffer slots —
including the signed-zero behaviour of padded regions.
"""

import numpy as np
import pytest

from repro.layout.convert import (
    ConversionTable,
    dense_to_morton,
    dense_to_morton_quadrants,
    pack_morton_quarter,
    pack_morton_quarter_batch,
)
from repro.layout.matrix import MortonMatrix

# (rows, cols, tile_r, tile_c, depth) geometries: exact fits, padded
# remainders in one or both axes, and non-square tiles.
GEOMETRIES = [
    (16, 16, 4, 4, 2),
    (13, 11, 4, 3, 2),
    (24, 24, 3, 3, 3),
    (9, 16, 3, 4, 2),
    (17, 17, 5, 5, 2),
]


def _mm(rows, cols, tile_r, tile_c, depth, dtype=np.float64):
    n = (tile_r << depth) * (tile_c << depth)
    return MortonMatrix(
        buf=np.zeros(n, dtype=dtype), rows=rows, cols=cols,
        tile_r=tile_r, tile_c=tile_c, depth=depth,
    )


def _bits(x):
    return np.asarray(x).view(np.int64).tobytes()


def _dense(rng, rows, cols):
    a = rng.standard_normal((rows, cols))
    # Signed zeros must survive the fused remainder algebra exactly.
    a[a < -2.2] = -0.0
    a[a > 2.2] = 0.0
    return a


class TestQuadOffsets:
    @pytest.mark.parametrize("geom", GEOMETRIES)
    def test_matches_quadrant_relative_offsets(self, geom):
        rows, cols, tr, tc, depth = geom
        table = ConversionTable(rows, cols, tr, tc, depth)
        quad = table.quad_offsets
        h2 = (tr << depth) >> 1
        w2 = (tc << depth) >> 1
        assert quad.shape == (h2, w2)
        quarter = table.padded_size // 4
        for qr in (0, 1):
            for qc in (0, 1):
                z = (qr << 1) | qc
                h = min(max(rows - qr * h2, 0), h2)
                w = min(max(cols - qc * w2, 0), w2)
                if not (h and w):
                    continue
                full = table.offsets[qr * h2 : qr * h2 + h,
                                     qc * w2 : qc * w2 + w]
                assert np.array_equal(full - z * quarter, quad[:h, :w])

    def test_depth_zero_rejected(self):
        table = ConversionTable(4, 4, 4, 4, 0)
        with pytest.raises(ValueError):
            table.quad_offsets

    def test_cached_and_counted(self):
        table = ConversionTable(16, 16, 4, 4, 2)
        before = table.nbytes
        quad = table.quad_offsets
        assert table.quad_offsets is quad  # lazy, built once
        assert table.nbytes == before + quad.nbytes
        assert not quad.flags.writeable


class TestDenseToMortonQuadrants:
    @pytest.mark.parametrize("geom", GEOMETRIES)
    @pytest.mark.parametrize("transpose", [False, True])
    def test_converted_quadrants_bit_identical(self, rng, geom, transpose):
        rows, cols, tr, tc, depth = geom
        src = _dense(rng, cols, rows) if transpose else _dense(rng, rows, cols)
        table = ConversionTable(rows, cols, tr, tc, depth)
        ref = _mm(rows, cols, tr, tc, depth)
        dense_to_morton(src, ref, transpose=transpose)
        out = _mm(rows, cols, tr, tc, depth)
        quads = ((0, 0), (0, 1), (1, 1))
        dense_to_morton_quadrants(
            src, out, quads, transpose=transpose, table=table
        )
        quarter = out.size // 4
        for qr, qc in quads:
            z = (qr << 1) | qc
            sl = slice(z * quarter, (z + 1) * quarter)
            assert _bits(out.buf[sl]) == _bits(ref.buf[sl]), (qr, qc)

    def test_requires_table(self):
        out = _mm(16, 16, 4, 4, 2)
        with pytest.raises(ValueError, match="table"):
            dense_to_morton_quadrants(np.zeros((16, 16)), out, ((0, 0),))

    def test_rejects_mismatched_table(self):
        out = _mm(16, 16, 4, 4, 2)
        table = ConversionTable(13, 11, 4, 3, 2)
        with pytest.raises(ValueError):
            dense_to_morton_quadrants(
                np.zeros((16, 16)), out, ((0, 0),), table=table
            )


class TestPackMortonQuarter:
    @pytest.mark.parametrize("geom", GEOMETRIES)
    @pytest.mark.parametrize("transpose", [False, True])
    @pytest.mark.parametrize("op,q0,q1", [
        ("+", (1, 0), (1, 1)),  # S1 = A21 + A22
        ("-", (0, 0), (1, 0)),  # S3 = A11 - A21
        ("-", (0, 1), (0, 0)),  # T1 = B12 - B11
        ("-", (1, 1), (0, 1)),  # T3 = B22 - B12
    ])
    def test_bit_identical_to_two_pass(self, rng, geom, transpose, op, q0, q1):
        rows, cols, tr, tc, depth = geom
        src = _dense(rng, cols, rows) if transpose else _dense(rng, rows, cols)
        table = ConversionTable(rows, cols, tr, tc, depth)
        # Two-pass reference: full conversion, then the flat ufunc over
        # the two quadrants' buffer slots (what ops.add/ops.sub do).
        full = _mm(rows, cols, tr, tc, depth)
        dense_to_morton(src, full, transpose=transpose)
        quarter = full.size // 4

        def slot(q):
            z = (q[0] << 1) | q[1]
            return full.buf[z * quarter : (z + 1) * quarter]

        ufunc = np.add if op == "+" else np.subtract
        ref = ufunc(slot(q0), slot(q1))
        dst = np.full(quarter, np.nan)  # poison: must be fully rewritten
        pack_morton_quarter(dst, src, op, q0, q1, table, transpose=transpose)
        assert _bits(dst) == _bits(ref)

    def test_signed_zero_pad_rows(self):
        # 5x4 over 4x4 tiles, depth 1: the bottom quadrants have one
        # logical row against three pad rows; -0.0 inputs exercise the
        # literal x - 0.0 / 0.0 - x remainder algebra.
        rows, cols, tr, tc, depth = 5, 4, 4, 4, 1
        a = np.full((rows, cols), -0.0)
        table = ConversionTable(rows, cols, tr, tc, depth)
        full = _mm(rows, cols, tr, tc, depth)
        dense_to_morton(a, full)
        quarter = full.size // 4
        ref = np.subtract(
            full.buf[0:quarter], full.buf[2 * quarter : 3 * quarter]
        )
        dst = np.empty(quarter)
        pack_morton_quarter(dst, a, "-", (0, 0), (1, 0), table)
        assert _bits(dst) == _bits(ref)

    def test_batch_matches_per_item(self, rng):
        rows, cols, tr, tc, depth = 13, 11, 4, 3, 2
        table = ConversionTable(rows, cols, tr, tc, depth)
        arrs = [_dense(rng, rows, cols) for _ in range(3)]
        quarter = table.padded_size // 4
        stack = np.empty((3, quarter))
        pack_morton_quarter_batch(stack, arrs, "+", (1, 0), (1, 1), table)
        for i, a in enumerate(arrs):
            one = np.empty(quarter)
            pack_morton_quarter(one, a, "+", (1, 0), (1, 1), table)
            assert _bits(stack[i]) == _bits(one)

    def test_rejects_wrong_shape(self):
        table = ConversionTable(16, 16, 4, 4, 2)
        dst = np.empty(table.padded_size // 4)
        with pytest.raises(ValueError):
            pack_morton_quarter(dst, np.zeros((8, 8)), "+", (1, 0), (1, 1),
                                table)
