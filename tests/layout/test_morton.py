"""Unit tests for the Morton bit-interleaving arithmetic."""

import numpy as np
import pytest

from repro.layout.morton import (
    compact_bits,
    deinterleave2,
    element_offsets,
    interleave2,
    spread_bits,
    zorder_coords,
)


class TestSpreadCompact:
    def test_spread_small_values(self):
        assert spread_bits(0) == 0
        assert spread_bits(1) == 1
        assert spread_bits(0b10) == 0b100
        assert spread_bits(0b11) == 0b101
        assert spread_bits(0b111) == 0b010101

    def test_compact_inverts_spread_scalars(self):
        for x in [0, 1, 5, 123, 1 << 15, (1 << 20) - 3]:
            assert compact_bits(spread_bits(x)) == x

    def test_spread_vectorised_matches_scalar(self):
        xs = np.array([0, 1, 2, 3, 100, 65535], dtype=np.int64)
        spread = spread_bits(xs)
        assert list(spread) == [spread_bits(int(x)) for x in xs]

    def test_compact_vectorised_roundtrip(self):
        xs = np.arange(2048, dtype=np.int64)
        assert np.array_equal(compact_bits(spread_bits(xs)), xs)

    def test_spread_rejects_negative(self):
        with pytest.raises(ValueError):
            spread_bits(-1)

    def test_spread_rejects_too_large(self):
        with pytest.raises(ValueError):
            spread_bits(1 << 31)


class TestInterleave:
    def test_quadrant_order_matches_paper_figure1(self):
        # NW, NE, SW, SE = 0, 1, 2, 3 (row bit more significant).
        assert interleave2(0, 0) == 0
        assert interleave2(0, 1) == 1
        assert interleave2(1, 0) == 2
        assert interleave2(1, 1) == 3

    def test_figure1_first_level_tiles(self):
        # Figure 1's 4x4 top-left tile numbers.
        expected = [[0, 1, 4, 5], [2, 3, 6, 7], [8, 9, 12, 13], [10, 11, 14, 15]]
        for r in range(4):
            for c in range(4):
                assert interleave2(r, c) == expected[r][c]

    def test_deinterleave_inverts(self):
        for z in range(256):
            r, c = deinterleave2(z)
            assert interleave2(r, c) == z

    def test_interleave_is_monotone_in_blocks(self):
        # All tiles of the NW half-grid come before all of the SE half-grid.
        assert interleave2(0, 1) < interleave2(1, 0) < interleave2(1, 1)
        assert interleave2(1, 1) < interleave2(2, 0)

    def test_vectorised_matches_scalar(self):
        r = np.array([0, 1, 2, 3, 7], dtype=np.int64)
        c = np.array([3, 2, 1, 0, 7], dtype=np.int64)
        z = interleave2(r, c)
        assert list(z) == [interleave2(int(a), int(b)) for a, b in zip(r, c)]


class TestZorderCoords:
    def test_depth_zero(self):
        ti, tj = zorder_coords(0)
        assert list(ti) == [0] and list(tj) == [0]

    def test_depth_one_order(self):
        ti, tj = zorder_coords(1)
        assert list(zip(ti, tj)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_is_permutation_of_grid(self):
        ti, tj = zorder_coords(3)
        pairs = set(zip(ti.tolist(), tj.tolist()))
        assert pairs == {(r, c) for r in range(8) for c in range(8)}

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            zorder_coords(-1)


class TestElementOffsets:
    def test_is_bijection_on_padded_matrix(self):
        tr, tc, depth = 3, 5, 2
        rows, cols = tr << depth, tc << depth
        i = np.repeat(np.arange(rows), cols)
        j = np.tile(np.arange(cols), rows)
        off = element_offsets(i, j, tr, tc, depth)
        assert sorted(off.tolist()) == list(range(rows * cols))

    def test_within_tile_column_major(self):
        # Consecutive rows within a tile are adjacent in the buffer.
        assert element_offsets(1, 0, 4, 4, 1) == element_offsets(0, 0, 4, 4, 1) + 1

    def test_tile_stride(self):
        # The NE tile (z=1) starts one tile after the NW tile.
        tr, tc = 4, 6
        assert element_offsets(0, tc, tr, tc, 1) == tr * tc

    def test_scalar_returns_int(self):
        off = element_offsets(0, 0, 2, 2, 1)
        assert isinstance(off, int) and off == 0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(IndexError):
            element_offsets(8, 0, 4, 4, 1)
        with pytest.raises(IndexError):
            element_offsets(0, -1, 4, 4, 1)

    def test_matches_naive_definition(self):
        tr, tc, depth = 2, 3, 3
        for i in (0, 1, 5, 15):
            for j in (0, 2, 7, 23):
                z = interleave2(i // tr, j // tc)
                expected = z * tr * tc + (j % tc) * tr + (i % tr)
                assert element_offsets(i, j, tr, tc, depth) == expected
