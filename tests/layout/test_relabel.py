"""Morton transpose relabeling: TransposedView and relabel_scratch.

The transpose of a Morton matrix is a pure relabeling: quadrant (q, r)
of ``X^T`` is quadrant (r, q) of ``X`` transposed, recursively, with the
actual transposition happening only in the leaf view — zero data copies.
"""

import numpy as np
import pytest

from repro.core.truncation import TruncationPolicy
from repro.layout.convert import dense_to_morton, morton_to_dense
from repro.layout.matrix import MortonMatrix
from repro.layout.relabel import relabel_scratch, transposed_view


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def _morton(rng, rows, cols, tile=8):
    tr, tc, _ = TruncationPolicy.coerce(tile).plan(rows, cols, cols)
    mm = MortonMatrix.zeros(rows, cols, tr, tc)
    return dense_to_morton(rng.standard_normal((rows, cols)), mm)


class TestTransposedView:
    def test_geometry_swaps(self, rng):
        mm = _morton(rng, 48, 32)
        tv = transposed_view(mm)
        assert (tv.rows, tv.cols) == (mm.cols, mm.rows)
        assert (tv.tile_r, tv.tile_c) == (mm.tile_c, mm.tile_r)
        assert (tv.padded_rows, tv.padded_cols) == (
            mm.padded_cols, mm.padded_rows
        )
        assert tv.depth == mm.depth
        assert tv.transposed

    def test_double_wrap_unwraps(self, rng):
        mm = _morton(rng, 32, 32)
        assert transposed_view(transposed_view(mm)) is mm

    def test_no_data_copied(self, rng):
        mm = _morton(rng, 32, 32)
        tv = transposed_view(mm)
        assert tv.base.buf is mm.buf

    def test_quadrants_are_swapped_and_transposed(self, rng):
        mm = _morton(rng, 32, 32)
        tv = transposed_view(mm)
        t11, t12, t21, t22 = tv.quadrants()
        m11, m12, m21, m22 = mm.quadrants()
        # (X^T)_12 is (X_21)^T, etc.  Quadrants of a padded matrix are
        # full, so their dense images compare shape-for-shape.
        np.testing.assert_array_equal(_dense_of(t12), morton_to_dense(m21).T)
        np.testing.assert_array_equal(_dense_of(t21), morton_to_dense(m12).T)
        np.testing.assert_array_equal(_dense_of(t11), morton_to_dense(m11).T)
        np.testing.assert_array_equal(_dense_of(t22), morton_to_dense(m22).T)

    def test_leaf_view_is_transposed(self, rng):
        mm = _morton(rng, 8, 8)  # depth 0: a single leaf
        assert mm.depth == 0
        tv = transposed_view(mm)
        np.testing.assert_array_equal(tv.leaf_view(), mm.leaf_view().T)

    def test_whole_view_represents_transpose(self, rng):
        mm = _morton(rng, 48, 32)
        tv = transposed_view(mm)
        np.testing.assert_array_equal(
            _dense_of(tv)[: tv.rows, : tv.cols], morton_to_dense(mm).T
        )


def _dense_of(view) -> np.ndarray:
    """Materialise a (possibly transposed) Morton view recursively."""
    if view.depth == 0:
        lv = view.leaf_view()
        return np.asarray(lv)
    q11, q12, q21, q22 = view.quadrants()
    top = np.hstack([_dense_of(q11), _dense_of(q12)])
    bot = np.hstack([_dense_of(q21), _dense_of(q22)])
    return np.vstack([top, bot])[: view.padded_rows, : view.padded_cols]


class TestRelabelScratch:
    def test_same_buffer_swapped_geometry(self, rng):
        mm = _morton(rng, 32, 48)
        rl = relabel_scratch(mm)
        assert rl.transposed
        assert rl.base.buf is mm.buf
        assert (rl.rows, rl.cols) == (
            mm.tile_r << mm.depth, mm.tile_c << mm.depth
        )
        assert (rl.tile_r, rl.tile_c) == (mm.tile_r, mm.tile_c)

    def test_relabel_reads_native_writes(self, rng):
        # Writing through the native matrix then reading through the
        # relabel must observe the transpose.
        tr, tc, _ = TruncationPolicy.coerce(4).plan(8, 8, 8)
        mm = MortonMatrix.zeros(8, 8, tr, tc)
        dense_to_morton(rng.standard_normal((8, 8)), mm)
        rl = relabel_scratch(mm)
        np.testing.assert_array_equal(
            _dense_of(rl)[: rl.rows, : rl.cols], morton_to_dense(mm).T
        )
