"""Unit tests for conflict-aware tile selection (realised future work)."""

import pytest

from repro.layout.padding import (
    TileRange,
    Tiling,
    conflict_levels,
    select_common_tiling,
    select_tiling,
)

CACHE = 16 * 1024  # the Section 4.2 experiment geometry


class TestConflictLevels:
    def test_paper_regime_tile_32(self):
        # tile 32, depth 4: leaf separation 2*32*32*8 = 16 KB = the cache.
        t = Tiling(n=512, tile=32, depth=4)
        assert conflict_levels(t, CACHE) == 4  # congruent at every level

    def test_tile_33_is_clean(self):
        t = Tiling(n=513, tile=33, depth=4)
        assert conflict_levels(t, CACHE) == 0

    def test_deeper_level_congruence_only(self):
        # tile 16: leaf sep 4 KB (clean), level-1 sep 16 KB (congruent).
        t = Tiling(n=512, tile=16, depth=5)
        assert conflict_levels(t, CACHE) == 4  # levels 1..4

    def test_depth_zero_has_no_conflicts(self):
        assert conflict_levels(Tiling(n=64, tile=64, depth=0), CACHE) == 0

    def test_rejects_bad_cache(self):
        with pytest.raises(ValueError):
            conflict_levels(Tiling(n=64, tile=32, depth=1), 0)


class TestConflictAwareSelection:
    def test_power_of_two_regime_overpads(self):
        # 505..512 normally pad to 512/tile 32 (all-levels conflict); the
        # aware policy pays 16 more elements for tile 33 / padded 528.
        for n in range(505, 513):
            t = select_tiling(n, cache_bytes=CACHE)
            assert (t.tile, t.padded) == (33, 528)
            assert conflict_levels(t, CACHE) == 0

    def test_already_clean_sizes_unchanged(self):
        for n in (513, 520, 150, 300):
            std = select_tiling(n)
            aware = select_tiling(n, cache_bytes=CACHE)
            if conflict_levels(std, CACHE) == 0:
                assert aware == std

    def test_common_tiling_variant(self):
        plan = select_common_tiling((512, 512, 512), cache_bytes=CACHE)
        assert plan is not None
        assert all(conflict_levels(t, CACHE) == 0 for t in plan)
        assert plan[0].tile == 33

    def test_scaled_geometry(self):
        # The scale-4 analogue: cache 4 KB, range [8,32], sizes 250..256.
        for n in (250, 256):
            t = select_tiling(n, TileRange(8, 32), cache_bytes=4096)
            assert conflict_levels(t, 4096) == 0
            assert t.tile == 17

    def test_without_cache_unchanged_behaviour(self):
        # Regression: the default path must be identical to the original.
        assert select_tiling(513).padded == 528
        assert select_tiling(512).tile == 32


class TestPolicyIntegration:
    def test_policy_plan_uses_cache(self):
        from repro.core.truncation import TruncationPolicy

        p = TruncationPolicy.conflict_aware(CACHE)
        plan = p.plan(512, 512, 512)
        assert plan is not None
        assert plan[0].tile == 33
        assert "conflict-aware" in p.label

    def test_policy_rejects_bad_cache(self):
        from repro.core.truncation import TruncationPolicy

        with pytest.raises(ValueError):
            TruncationPolicy.conflict_aware(0)

    def test_modgemm_with_conflict_aware_policy(self, rng):
        import numpy as np

        from repro.core.modgemm import modgemm
        from repro.core.truncation import TruncationPolicy

        a = rng.standard_normal((200, 200))
        b = rng.standard_normal((200, 200))
        out = modgemm(a, b, policy=TruncationPolicy.conflict_aware(CACHE))
        assert np.allclose(out, a @ b)
