"""Unit tests for the conventional baselines."""

import numpy as np
import pytest

from repro.baselines.conventional import conventional_gemm, tiled_gemm

from ..conftest import assert_gemm_close


class TestConventionalGemm:
    def test_plain(self, rng):
        a = rng.standard_normal((30, 40))
        b = rng.standard_normal((40, 20))
        assert np.allclose(conventional_gemm(a, b), a @ b)

    def test_blas_contract(self, rng):
        a = rng.standard_normal((30, 40))
        b = rng.standard_normal((20, 30))
        c0 = rng.standard_normal((40, 20))
        c = c0.copy()
        out = conventional_gemm(a, b, c=c, alpha=2.0, beta=0.5, op_a="t", op_b="t")
        assert out is c
        assert np.allclose(out, 2.0 * (a.T @ b.T) + 0.5 * c0)


class TestTiledGemm:
    @pytest.mark.parametrize("tile", [1, 7, 16, 32, 100])
    def test_tile_size_invariant(self, rng, tile):
        a = rng.standard_normal((33, 45))
        b = rng.standard_normal((45, 28))
        assert_gemm_close(tiled_gemm(a, b, tile=tile), a @ b)

    def test_out_parameter(self, rng):
        a = rng.standard_normal((10, 10))
        b = rng.standard_normal((10, 10))
        out = np.full((10, 10), 9.0, order="F")
        result = tiled_gemm(a, b, tile=4, out=out)
        assert result is out
        assert_gemm_close(out, a @ b)

    def test_bad_tile_rejected(self):
        with pytest.raises(ValueError):
            tiled_gemm(np.eye(4), np.eye(4), tile=0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tiled_gemm(np.zeros((3, 4)), np.zeros((5, 6)))
        with pytest.raises(ValueError):
            tiled_gemm(np.eye(3), np.eye(3), out=np.zeros((2, 2)))

    def test_blocked_kernel_variant(self, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        assert_gemm_close(tiled_gemm(a, b, tile=8, kernel="blocked"), a @ b)
