"""Unit tests for the dynamic-peeling baseline (DGEFMM)."""

import numpy as np
import pytest

from repro.baselines.dgefmm import DEFAULT_TRUNCATION, dgefmm, peeled_multiply

from ..conftest import assert_gemm_close


class TestPeeledMultiply:
    @pytest.mark.parametrize(
        "dims",
        [
            (64, 64, 64),     # at truncation: single kernel call
            (65, 65, 65),     # one peel at the top
            (128, 128, 128),  # clean power of two
            (127, 127, 127),  # peeling at every level
            (130, 70, 200),   # rectangular
            (513, 513, 513),
        ],
    )
    def test_matches_numpy(self, rng, dims):
        m, k, n = dims
        a = np.asfortranarray(rng.standard_normal((m, k)))
        b = np.asfortranarray(rng.standard_normal((k, n)))
        assert_gemm_close(peeled_multiply(a, b, truncation=32), a @ b)

    def test_odd_every_dimension_combination(self, rng):
        # peel combinations: each of m, k, n independently odd
        for dm in (0, 1):
            for dk in (0, 1):
                for dn in (0, 1):
                    m, k, n = 66 + dm, 66 + dk, 66 + dn
                    a = rng.standard_normal((m, k))
                    b = rng.standard_normal((k, n))
                    assert_gemm_close(peeled_multiply(a, b, truncation=32), a @ b)

    def test_truncation_respected(self, rng):
        # At truncation >= all dims the call is one conventional product.
        calls = []

        def spy_kernel(a, b, out, accumulate=False):
            calls.append(a.shape)
            out[...] = a @ b

        a = rng.standard_normal((50, 50))
        b = rng.standard_normal((50, 50))
        peeled_multiply(a, b, truncation=64, kernel=spy_kernel)
        assert calls == [(50, 50)]

    def test_recursion_produces_seven_subproducts(self, rng):
        calls = []

        def spy_kernel(a, b, out, accumulate=False):
            calls.append(a.shape)
            out[...] = a @ b

        a = rng.standard_normal((128, 128))
        b = rng.standard_normal((128, 128))
        peeled_multiply(a, b, truncation=64, kernel=spy_kernel)
        assert len(calls) == 7
        assert all(s == (64, 64) for s in calls)

    def test_inner_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            peeled_multiply(np.zeros((4, 5)), np.zeros((4, 5)))

    def test_bad_truncation_rejected(self):
        with pytest.raises(ValueError):
            peeled_multiply(np.eye(4), np.eye(4), truncation=0)


class TestDgefmmInterface:
    def test_default_truncation_is_paper_value(self):
        assert DEFAULT_TRUNCATION == 64

    def test_full_blas_contract(self, rng):
        a = rng.standard_normal((90, 120))
        b = rng.standard_normal((140, 90))
        c0 = rng.standard_normal((120, 140))
        c = c0.copy()
        out = dgefmm(a, b, c=c, alpha=1.5, beta=-2.0, op_a="t", op_b="t", policy=32)
        assert out is c
        assert_gemm_close(out, 1.5 * (a.T @ b.T) - 2.0 * c0)

    def test_plain_product(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        assert_gemm_close(dgefmm(a, b), a @ b)

    def test_alpha_only(self, rng):
        a = rng.standard_normal((70, 70))
        b = rng.standard_normal((70, 70))
        assert_gemm_close(dgefmm(a, b, alpha=3.0, policy=32), 3.0 * (a @ b))
