"""Unit tests for the dynamic-overlap baseline (DGEMMW)."""

import numpy as np
import pytest

from repro.baselines.dgemmw import dgemmw, overlap_multiply

from ..conftest import assert_gemm_close


class TestOverlapMultiply:
    @pytest.mark.parametrize(
        "dims",
        [
            (64, 64, 64),
            (65, 65, 65),     # overlap in all three dimensions
            (65, 64, 64),     # odd m only (output-row overlap)
            (64, 65, 64),     # odd k only (inner overlap: zeroed column)
            (64, 64, 65),     # odd n only (output-column overlap)
            (127, 129, 131),
            (200, 150, 170),
            (513, 513, 513),
        ],
    )
    def test_matches_numpy(self, rng, dims):
        m, k, n = dims
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        assert_gemm_close(overlap_multiply(a, b, truncation=32), a @ b)

    def test_repeated_odd_halving(self, rng):
        # ceil-halving 101 -> 51 -> 26: overlap at several levels.
        a = rng.standard_normal((101, 101))
        b = rng.standard_normal((101, 101))
        assert_gemm_close(overlap_multiply(a, b, truncation=16), a @ b)

    def test_operands_not_mutated(self, rng):
        # The k-overlap zeroes a column — it must happen on the copies.
        a = rng.standard_normal((65, 65))
        b = rng.standard_normal((65, 65))
        a0, b0 = a.copy(), b.copy()
        overlap_multiply(a, b, truncation=16)
        assert np.array_equal(a, a0)
        assert np.array_equal(b, b0)

    def test_inner_mismatch_rejected(self):
        with pytest.raises(ValueError):
            overlap_multiply(np.zeros((4, 5)), np.zeros((4, 5)))

    def test_bad_truncation_rejected(self):
        with pytest.raises(ValueError):
            overlap_multiply(np.eye(4), np.eye(4), truncation=-1)


class TestDgemmwInterface:
    def test_full_blas_contract(self, rng):
        a = rng.standard_normal((90, 120))
        b = rng.standard_normal((140, 90))
        c0 = rng.standard_normal((120, 140))
        c = c0.copy()
        out = dgemmw(a, b, c=c, alpha=0.5, beta=1.0, op_a="t", op_b="t", policy=32)
        assert out is c
        assert_gemm_close(out, 0.5 * (a.T @ b.T) + c0)

    def test_plain_product(self, rng):
        a = rng.standard_normal((150, 150))
        b = rng.standard_normal((150, 150))
        assert_gemm_close(dgemmw(a, b), a @ b)
