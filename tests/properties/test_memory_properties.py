"""Property-based tests for the low-memory Winograd schedules.

Bit-identity of ``two_temp`` (and ``ip_overwrite`` through the engine,
whose internal Morton copies absorb the clobbering) against ``classic``
across arbitrary shapes and worker counts, plus the closed-form scratch
accounting the schedules promise.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.truncation import TruncationPolicy
from repro.engine import GemmSession

small_dims = st.integers(min_value=1, max_value=96)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
worker_counts = st.sampled_from([1, 2, 7])


def operands(m, k, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


@settings(max_examples=40, deadline=None)
@given(m=small_dims, k=small_dims, n=small_dims, seed=seeds)
def test_two_temp_bit_identical_sequential(m, k, n, seed):
    a, b = operands(m, k, n, seed)
    with GemmSession() as s:
        ref = s.multiply(a, b)
        got = s.multiply(a, b, memory="two_temp")
    assert np.array_equal(ref, got)


@settings(max_examples=15, deadline=None)
@given(m=small_dims, k=small_dims, n=small_dims, seed=seeds,
       workers=worker_counts)
def test_two_temp_bit_identical_parallel(m, k, n, seed, workers):
    a, b = operands(m, k, n, seed)
    with GemmSession(max_workers=workers) as s:
        ref = s.multiply(a, b)
        got = s.multiply(
            a, b, schedule=f"tasks:1x{workers}", memory="two_temp"
        )
    assert np.array_equal(ref, got)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=8, max_value=96), seed=seeds)
def test_ip_overwrite_bit_identical_square(n, seed):
    # Square problems get uniform tilings, ip_overwrite's requirement.
    a, b = operands(n, n, n, seed)
    with GemmSession() as s:
        ref = s.multiply(a, b)
        got = s.multiply(a, b, memory="ip_overwrite")
    assert np.array_equal(ref, got)


@settings(max_examples=25, deadline=None)
@given(m=small_dims, k=small_dims, n=small_dims, seed=seeds)
def test_scratch_bytes_match_closed_form(m, k, n, seed):
    # CompiledPlan.scratch_bytes must equal the geometric series the
    # schedule promises, for any planned tiling (rectangular included).
    planned = TruncationPolicy.coerce(None).plan(m, k, n)
    with GemmSession() as s:
        for memory in ("classic", "two_temp", "ip_overwrite"):
            if memory == "ip_overwrite":
                if planned is None:
                    continue  # panelled: sub-panels may be non-uniform
                tm, tk, tn = planned
                if tm.depth > 0 and not (tm.tile == tk.tile == tn.tile):
                    continue  # engine rejects this combination at compile
            plan = s.plan(m, k, n, memory=memory)
            if plan.tilings is None:
                continue  # panelled: covered via sub-plans
            tm, tk, tn = plan.tilings
            expect = 0
            for d in range(tm.depth):
                a_q = (tm.tile << d) * (tk.tile << d) * 8
                b_q = (tk.tile << d) * (tn.tile << d) * 8
                c_q = (tm.tile << d) * (tn.tile << d) * 8
                if memory == "classic":
                    expect += a_q + b_q + 2 * c_q
                elif memory == "two_temp":
                    expect += max(a_q, c_q) + b_q
            assert plan.scratch_bytes == expect


def test_ip_nonuniform_policy_combination():
    # Shapes whose planned tiles are non-uniform must raise cleanly
    # rather than compute garbage.
    from repro.errors import PlanError

    policy = TruncationPolicy.coerce(None)
    with GemmSession() as s:
        for m, k, n in [(33, 65, 97), (48, 64, 80), (96, 32, 64)]:
            plan_t = policy.plan(m, k, n)
            if plan_t is None:
                continue
            tm, tk, tn = plan_t
            if tm.depth == 0 or tm.tile == tk.tile == tn.tile:
                continue
            try:
                s.plan(m, k, n, memory="ip_overwrite")
            except PlanError:
                pass
            else:
                raise AssertionError(
                    f"non-uniform tiling {m}x{k}x{n} accepted for ip"
                )
