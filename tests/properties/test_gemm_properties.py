"""Property-based tests: every multiplication path vs the numpy oracle."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.dgefmm import peeled_multiply
from repro.baselines.dgemmw import overlap_multiply
from repro.core.modgemm import modgemm
from repro.core.truncation import TruncationPolicy

from ..conftest import assert_gemm_close

dims = st.integers(min_value=1, max_value=160)
small_dims = st.integers(min_value=1, max_value=96)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def operands(m, k, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds)
def test_modgemm_matches_numpy(m, k, n, seed):
    a, b = operands(m, k, n, seed)
    assert_gemm_close(modgemm(a, b), a @ b)


@settings(max_examples=25, deadline=None)
@given(m=small_dims, k=small_dims, n=small_dims, seed=seeds)
def test_modgemm_small_range_policy(m, k, n, seed):
    # A tighter tile range forces deeper recursion on small operands.
    a, b = operands(m, k, n, seed)
    out = modgemm(a, b, policy=TruncationPolicy.dynamic(4, 16))
    assert_gemm_close(out, a @ b, tol=1e-8)


@settings(max_examples=25, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds,
       alpha=st.floats(-4, 4), beta=st.floats(-4, 4))
def test_modgemm_alpha_beta(m, k, n, seed, alpha, beta):
    a, b = operands(m, k, n, seed)
    rng = np.random.default_rng(seed + 1)
    c0 = rng.standard_normal((m, n))
    c = c0.copy()
    out = modgemm(a, b, c=c, alpha=alpha, beta=beta)
    assert_gemm_close(out, alpha * (a @ b) + beta * c0, tol=1e-8)


@settings(max_examples=25, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds,
       ta=st.booleans(), tb=st.booleans())
def test_modgemm_transposes(m, k, n, seed, ta, tb):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, m) if ta else (m, k))
    b = rng.standard_normal((n, k) if tb else (k, n))
    opa = a.T if ta else a
    opb = b.T if tb else b
    out = modgemm(a, b, op_a="t" if ta else "n", op_b="t" if tb else "n")
    assert_gemm_close(out, opa @ opb)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds,
       trunc=st.sampled_from([8, 16, 32, 64]))
def test_dgefmm_matches_numpy(m, k, n, seed, trunc):
    a, b = operands(m, k, n, seed)
    assert_gemm_close(peeled_multiply(a, b, truncation=trunc), a @ b, tol=1e-8)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds,
       trunc=st.sampled_from([8, 16, 32, 64]))
def test_dgemmw_matches_numpy(m, k, n, seed, trunc):
    a, b = operands(m, k, n, seed)
    assert_gemm_close(overlap_multiply(a, b, truncation=trunc), a @ b, tol=1e-8)


@settings(max_examples=20, deadline=None)
@given(m=small_dims, k=small_dims, n=small_dims, seed=seeds)
def test_all_variants_agree(m, k, n, seed):
    a, b = operands(m, k, n, seed)
    mod = modgemm(a, b)
    stra = modgemm(a, b, variant="strassen")
    dge = peeled_multiply(a, b, truncation=16)
    gw = overlap_multiply(a, b, truncation=16)
    for other in (stra, dge, gw):
        assert_gemm_close(mod, other, tol=1e-8)
