"""Property-based tests for the full GemmSpec operation semantics.

``C = alpha * op(A) . op(B) + beta * C`` against the numpy oracle across
memory schedules (classic / two_temp / ip_overwrite), execution
schedules (sequential / tasks), dtypes (float64 / float32, with a
tolerance scaled to the precision), the stacked batch path
(``multiply_many`` with B in {1, 2, 7}), and the chained-expression
planner — plus the cross-schedule bit-identity the engine promises for
a fixed spec.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.engine import GemmSession, Mat

from ..conftest import assert_gemm_close

dims = st.integers(min_value=1, max_value=96)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
scalars = st.sampled_from([0.0, 1.0, -1.0, 0.5])
memories = st.sampled_from(["classic", "two_temp", "ip_overwrite"])
schedules = st.sampled_from([None, "tasks:1"])
dtypes = st.sampled_from(["float64", "float32"])
batch_sizes = st.sampled_from([1, 2, 7])


def _tol(dtype) -> float:
    return 1e-3 if np.dtype(dtype) == np.float32 else 1e-8


def _operands(m, k, n, seed, ta, tb, dtype):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, m) if ta else (m, k)).astype(dtype)
    b = rng.standard_normal((n, k) if tb else (k, n)).astype(dtype)
    c0 = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c0


def _reference(a, b, c0, alpha, beta, ta, tb):
    opa = a.T if ta else a
    opb = b.T if tb else b
    ref = alpha * (opa @ opb)
    if beta != 0.0:
        ref = ref + beta * c0
    return ref


@settings(max_examples=60, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, alpha=scalars, beta=scalars,
       ta=st.booleans(), tb=st.booleans(), memory=memories,
       schedule=schedules, dtype=dtypes)
def test_full_spec_matches_numpy(m, k, n, seed, alpha, beta, ta, tb,
                                 memory, schedule, dtype):
    if memory == "ip_overwrite":
        # Zero-scratch mode: uniform tiles (square) and sequential only.
        assume(schedule is None)
        k = n = m
    a, b, c0 = _operands(m, k, n, seed, ta, tb, dtype)
    c = c0.copy() if beta != 0.0 else None
    with GemmSession() as s:
        out = s.multiply(
            a, b, c=c, alpha=alpha, beta=beta, trans_a=ta, trans_b=tb,
            memory=memory, schedule=schedule, dtype=dtype,
        )
    ref = _reference(a, b, c0, alpha, beta, ta, tb)
    assert_gemm_close(out, ref, tol=_tol(dtype))
    if beta != 0.0:
        assert out is c  # accumulate lands in the caller's C


@settings(max_examples=30, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, alpha=scalars, beta=scalars,
       ta=st.booleans(), tb=st.booleans())
def test_spec_bit_identical_across_schedules(m, k, n, seed, alpha, beta,
                                             ta, tb):
    # For one frozen spec, classic/two_temp and sequential/tasks must
    # agree bit-for-bit: alpha folds into the same final U-adds and beta
    # into the same fused output conversion on every path.
    a, b, c0 = _operands(m, k, n, seed, ta, tb, "float64")
    outs = []
    with GemmSession() as s:
        for memory in ("classic", "two_temp"):
            for schedule in (None, "tasks:1"):
                c = c0.copy() if beta != 0.0 else None
                outs.append(s.multiply(
                    a, b, c=c, alpha=alpha, beta=beta, trans_a=ta,
                    trans_b=tb, memory=memory, schedule=schedule,
                ))
    for other in outs[1:]:
        assert np.array_equal(outs[0], other)


@settings(max_examples=30, deadline=None)
@given(m=dims, k=dims, n=dims, seed=seeds, alpha=scalars, beta=scalars,
       ta=st.booleans(), tb=st.booleans(), nb=batch_sizes, dtype=dtypes)
def test_full_spec_through_batch_path(m, k, n, seed, alpha, beta, ta, tb,
                                      nb, dtype):
    rng = np.random.default_rng(seed)
    items, refs = [], []
    for _ in range(nb):
        a = rng.standard_normal((k, m) if ta else (m, k)).astype(dtype)
        b = rng.standard_normal((n, k) if tb else (k, n)).astype(dtype)
        c0 = rng.standard_normal((m, n)).astype(dtype)
        item = {"a": a, "b": b}
        if beta != 0.0:
            item["c"] = c0.copy()
        items.append(item)
        refs.append(_reference(a, b, c0, alpha, beta, ta, tb))
    with GemmSession() as s:
        outs = s.multiply_many(
            items, alpha=alpha, beta=beta, trans_a=ta, trans_b=tb,
            dtype=dtype,
        )
    for out, ref in zip(outs, refs):
        assert_gemm_close(out, ref, tol=_tol(dtype))


@settings(max_examples=25, deadline=None)
@given(m=dims, k=dims, n=dims, p=dims, seed=seeds, alpha=scalars,
       beta=scalars, ta=st.booleans())
def test_expression_chain_matches_numpy(m, k, n, p, seed, alpha, beta, ta):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, m) if ta else (m, k))
    b = rng.standard_normal((k, n))
    d = rng.standard_normal((n, p))
    c0 = rng.standard_normal((m, p))
    c = c0.copy() if beta != 0.0 else None
    lead = Mat(a).T if ta else Mat(a)
    with GemmSession() as s:
        out = s.evaluate(lead @ Mat(b) @ Mat(d), alpha=alpha, beta=beta, c=c)
    opa = a.T if ta else a
    ref = alpha * (opa @ b @ d)
    if beta != 0.0:
        ref = ref + beta * c0
    assert_gemm_close(out, ref, tol=1e-8)
