"""Property-based tests on the layout engine's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.layout.matrix import MortonMatrix
from repro.layout.morton import (
    compact_bits,
    deinterleave2,
    element_offsets,
    interleave2,
    spread_bits,
)
from repro.layout.padding import TileRange, feasible_depths, select_tiling

coords = st.integers(min_value=0, max_value=(1 << 20) - 1)
sizes = st.integers(min_value=1, max_value=700)


@given(x=coords)
def test_spread_compact_roundtrip(x):
    assert compact_bits(spread_bits(x)) == x


@given(r=coords, c=coords)
def test_interleave_roundtrip(r, c):
    assert deinterleave2(interleave2(r, c)) == (r, c)


@given(r1=coords, c1=coords, r2=coords, c2=coords)
def test_interleave_injective(r1, c1, r2, c2):
    if (r1, c1) != (r2, c2):
        assert interleave2(r1, c1) != interleave2(r2, c2)


@given(n=sizes)
def test_select_tiling_minimises_padding(n):
    chosen = select_tiling(n)
    best = min(t.pad for t in feasible_depths(n))
    assert chosen.pad == best
    assert chosen.padded == chosen.tile << chosen.depth


@given(n=sizes, lo=st.sampled_from([4, 8, 16]), mult=st.sampled_from([2, 4, 8]))
def test_select_tiling_respects_range(n, lo, mult):
    r = TileRange(lo, lo * mult)
    t = select_tiling(n, r)
    if t.depth > 0:
        assert lo <= t.tile <= lo * mult
    assert t.padded >= n


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 300),
    cols=st.integers(1, 300),
    seed=st.integers(0, 2**31 - 1),
    transpose=st.booleans(),
)
def test_from_dense_roundtrip(rows, cols, seed, transpose):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, cols))
    m = MortonMatrix.from_dense(a, transpose=transpose)
    expected = a.T if transpose else a
    assert np.array_equal(m.to_dense(), expected)
    assert m.pad_is_zero()


@given(
    n=sizes,
    cache_kb=st.sampled_from([1, 4, 16]),
)
def test_conflict_aware_selection_is_optimal(n, cache_kb):
    # The conflict-aware choice must (a) hold the dgemm capacity invariant,
    # (b) achieve the minimal weighted-conflict score among all candidates
    # it considers (minimal-pad tiles per depth), so no standard candidate
    # is strictly cleaner.
    from repro.layout.padding import _conflict_score, feasible_depths

    cache = cache_kb * 1024
    chosen = select_tiling(n, cache_bytes=cache)
    assert chosen.padded >= n
    best_standard = min(
        (_conflict_score(t, cache) for t in feasible_depths(n)), default=0.0
    )
    # the aware choice's weighted conflict score is never worse than the
    # cleanest standard candidate's (overpadding can only improve it)
    assert _conflict_score(chosen, cache) <= best_standard


@settings(max_examples=30, deadline=None)
@given(
    tile_r=st.integers(1, 9),
    tile_c=st.integers(1, 9),
    depth=st.integers(0, 4),
)
def test_element_offsets_bijective(tile_r, tile_c, depth):
    rows, cols = tile_r << depth, tile_c << depth
    i = np.repeat(np.arange(rows), cols)
    j = np.tile(np.arange(cols), rows)
    off = element_offsets(i, j, tile_r, tile_c, depth)
    assert np.array_equal(np.sort(off), np.arange(rows * cols))
