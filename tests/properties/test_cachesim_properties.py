"""Property-based tests on the cache simulators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cachesim.cache import CacheConfig, LRUCache
from repro.cachesim.trace import AddressSpace
from repro.cachesim.vectorized import DirectMappedCache
from repro.core.rectangular import split_dim

configs = st.sampled_from(
    [
        CacheConfig(256, 16, 1),
        CacheConfig(1024, 32, 1),
        CacheConfig(4096, 64, 1),
    ]
)


@settings(max_examples=40, deadline=None)
@given(
    config=configs,
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 3000),
    chunks=st.integers(1, 10),
    addr_space=st.integers(8, 18),
)
def test_vectorised_equals_lru_reference(config, seed, length, chunks, addr_space):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << addr_space, size=length) * 8
    dm = DirectMappedCache(config)
    for part in np.array_split(addrs, min(chunks, length)):
        if part.size:
            dm.access(part)
    lru = LRUCache(config)
    mask = lru.access(addrs)
    assert dm.stats.misses == lru.stats.misses
    assert dm.stats.accesses == lru.stats.accesses


@settings(max_examples=30, deadline=None)
@given(
    config=configs,
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 2000),
)
def test_miss_mask_consistent_with_count(config, seed, length):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 14, size=length) * 8
    dm1 = DirectMappedCache(config)
    mask = dm1.access(addrs, return_mask=True)
    dm2 = DirectMappedCache(config)
    count = dm2.access(addrs, return_mask=False)
    assert int(np.count_nonzero(mask)) == count


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 1500),
    assoc=st.sampled_from([2, 4]),
)
def test_higher_associativity_never_more_misses_same_sets(seed, length, assoc):
    # With the number of SETS held fixed, adding ways can only absorb
    # conflicts (LRU inclusion property per set).
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 13, size=length) * 8
    sets = 16
    block = 32
    direct = LRUCache(CacheConfig(sets * block, block, 1))
    wide = LRUCache(CacheConfig(sets * block * assoc, block, assoc))
    direct.access(addrs)
    wide.access(addrs)
    assert wide.stats.misses <= direct.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.integers(1, 5000), min_size=1, max_size=40),
)
def test_address_space_live_blocks_never_overlap(seed, ops):
    rng = np.random.default_rng(seed)
    sp = AddressSpace()
    live = {}
    for size in ops:
        if live and rng.random() < 0.4:
            victim = rng.choice(list(live))
            sp.free(int(victim))
            del live[int(victim)]
        else:
            base = sp.alloc(size)
            live[base] = size
        spans = sorted((b, b + s) for b, s in live.items())
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert e0 <= s1


@settings(max_examples=25, deadline=None)
@given(
    config=configs,
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 2000),
)
def test_three_c_decomposition_sums_to_dm_misses(config, seed, length):
    from repro.cachesim.classify import classify_misses

    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 14, size=length) * 8
    mc = classify_misses(addrs, config)
    dm = DirectMappedCache(config)
    dm.access(addrs)
    assert mc.misses == dm.stats.misses
    assert mc.compulsory >= 0 and mc.capacity >= 0
    assert mc.compulsory <= mc.misses or mc.conflict < 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), length=st.integers(1, 800),
       cap=st.sampled_from([4, 16, 64]))
def test_fast_fa_lru_matches_stack_distance_threshold(seed, length, cap):
    from repro.cachesim.classify import _fully_associative_misses, stack_distances

    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, 128, size=length)
    comp, misses = _fully_associative_misses(blocks, cap)
    dist = stack_distances(blocks)
    assert comp == int(np.count_nonzero(dist < 0))
    assert misses == int(np.count_nonzero((dist < 0) | (dist >= cap)))


@given(dim=st.integers(1, 5000), ref=st.integers(1, 512))
def test_split_dim_is_partition(dim, ref):
    spans = split_dim(dim, ref)
    assert spans[0][0] == 0 and spans[-1][1] == dim
    for (s0, e0), (s1, _) in zip(spans, spans[1:]):
        assert e0 == s1
    sizes = [e - s for s, e in spans]
    assert max(sizes) - min(sizes) <= 1
    assert all(sz <= ref for sz in sizes)
