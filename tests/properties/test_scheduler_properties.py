"""Property-based tests for the scheduler's batch-axis striping.

``stripe_ranges`` is the unit of batch parallelism: the stacked GEMM path
and the batched conversions both trust it to partition ``range(n)`` into
contiguous, disjoint, ordered stripes.  Any hole or overlap would silently
drop or double-compute batch items, so the partition laws are pinned here
over the whole input space rather than a handful of examples.
"""

from hypothesis import given, settings, strategies as st

from repro.core.scheduler import stripe_ranges


@settings(max_examples=300, deadline=None)
@given(n=st.integers(min_value=0, max_value=500),
       parts=st.integers(min_value=-3, max_value=64))
def test_stripe_ranges_partitions_range(n, parts):
    stripes = stripe_ranges(n, parts)
    if n <= 0:
        assert stripes == []
        return
    # At most `parts` pieces (degenerate part counts clamp to one).
    assert 1 <= len(stripes) <= max(1, parts)
    # Non-empty, ordered, contiguous — first starts at 0, last ends at n.
    assert all(lo < hi for lo, hi in stripes)
    assert stripes[0][0] == 0
    assert stripes[-1][1] == n
    assert all(
        prev_hi == lo for (_, prev_hi), (lo, _) in zip(stripes, stripes[1:])
    )
    # Together the stripes cover range(n) exactly once.
    covered = [i for lo, hi in stripes for i in range(lo, hi)]
    assert covered == list(range(n))


@settings(max_examples=200, deadline=None)
@given(n=st.integers(min_value=1, max_value=500),
       parts=st.integers(min_value=1, max_value=64))
def test_stripe_ranges_balanced(n, parts):
    # Even ceil-division stripes: all full-sized except a shorter tail.
    stripes = stripe_ranges(n, parts)
    sizes = [hi - lo for lo, hi in stripes]
    assert len(set(sizes[:-1])) <= 1
    assert sizes[-1] <= sizes[0]
    assert max(sizes) - min(sizes) <= max(sizes)


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=1, max_value=64))
def test_one_stripe_per_item_at_saturation(n):
    # parts >= n degenerates to singleton stripes, never empty ones.
    assert stripe_ranges(n, n) == [(i, i + 1) for i in range(n)]
    assert stripe_ranges(n, n + 7) == [(i, i + 1) for i in range(n)]
