"""Shim for environments without the `wheel` package (offline editable install).

`pip install -e .` requires bdist_wheel under PEP 517; this shim lets
`python setup.py develop` perform the equivalent editable install offline.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
