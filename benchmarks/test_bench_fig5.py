"""Figure 5 bench: the three implementations, host wall-clock.

Times each implementation at a representative large size and regenerates
the normalised comparison over a reduced size grid (panel a: MODGEMM vs
DGEFMM; panel b: DGEMMW vs DGEFMM).
"""

from repro.analysis.timing import TimingProtocol
from repro.baselines.dgefmm import dgefmm
from repro.baselines.dgemmw import dgemmw
from repro.core.modgemm import modgemm
from repro.experiments import fig56_perf
from repro.experiments.tuning import (
    HOST_DGEFMM_TRUNCATION,
    HOST_DGEMMW_TRUNCATION,
    HOST_POLICY,
)

from conftest import emit

N = 513
GRID = [150, 250, 350, 450, 513, 600, 700]
FAST = TimingProtocol(small_threshold=0, small_reps=1, trials=2)


def test_modgemm_headline_size(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=HOST_POLICY), rounds=5, iterations=1
    )


def test_dgefmm_headline_size(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: dgefmm(a, b, policy=HOST_DGEFMM_TRUNCATION),
        rounds=5,
        iterations=1,
    )


def test_dgemmw_headline_size(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: dgemmw(a, b, policy=HOST_DGEMMW_TRUNCATION),
        rounds=5,
        iterations=1,
    )


def test_fig5_normalised_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: fig56_perf.run_measured(sizes=GRID, protocol=FAST),
        rounds=1,
        iterations=1,
    )
    ratios = result.column("modgemm/dgefmm")
    # The paper's band: wide variability, with wins for large sizes.
    assert min(ratios) < 1.1, "MODGEMM should win (or tie) somewhere"
    emit("Figure 5 (host wall-clock, normalised to DGEFMM)",
         result.to_text(with_chart=False))
