"""Conversion-fraction benchmark: fused convert-and-add packing.

At the paper's flagship sizes the dense-to-Morton conversion costs 5-15%
of total time (Figure 7); the fused packing path folds the top-level
Winograd S/T additions into the operand gather and skips converting one
quadrant per operand, cutting the per-operand conversion volume by 25%.
This benchmark measures the *traced* conversion fraction — the sum of
``convert`` event seconds over the run's wall-clock — of a steady-state
multiply with fusion on (the default at these depths) and off, plus the
separately-attributed ``pack`` seconds.

Emits ``BENCH_convert.json`` at the repo root; hard guards live in
``validate_bench_convert.py`` (run by ``make bench-smoke`` and CI).
Set ``BENCH_CONVERT_QUICK=1`` for a seconds-scale smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.blas import HAVE_NUMBA
from repro.engine import GemmSession

QUICK = os.environ.get("BENCH_CONVERT_QUICK", "") not in ("", "0")
SIZES = [513] if QUICK else [513, 1024]
ROUNDS = 2 if QUICK else 4
#: A deep recursion emits ~8k add events per run; the ring must hold a
#: whole run or the early convert/pack events get evicted before they
#: are counted.
TRACE_CAPACITY = 1 << 17
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_convert.json"


@pytest.fixture(scope="module")
def report():
    data = {
        "benchmark": "convert-fusion",
        "schema_version": 1,
        "quick": QUICK,
        "have_numba": HAVE_NUMBA,
        "host": {"cpu_count": os.cpu_count() or 1},
        "rows": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_convert.json", f"wrote {OUT_PATH} ({len(data['rows'])} rows)")


def _traced_best(session, fn, rounds=ROUNDS):
    """Best-wall steady-state round: (wall, convert_s, pack_s, packs)."""
    fn()  # warm-up: plan compile, pooled buffers, calibration baseline
    best = None
    for _ in range(rounds):
        session.trace.clear()
        session.trace.enable()
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
        events = session.trace.events()
        session.trace.disable()
        conv = sum(
            (e.data or {}).get("seconds") or 0.0
            for e in events if e.kind == "convert"
        )
        packs = [e for e in events if e.kind == "pack"]
        pack_s = sum((e.data or {}).get("seconds") or 0.0 for e in packs)
        if best is None or wall < best[0]:
            best = (wall, conv, pack_s, len(packs))
    return best


@pytest.mark.parametrize("n", SIZES)
def test_convert_fraction_grid(square_operands, report, n):
    a, b = square_operands(n)

    # Fused by default at these depths; fused_pack=False is the two-pass
    # control.
    with GemmSession(trace_capacity=TRACE_CAPACITY) as s:
        assert s.plan(n, n, n)._fused
        c_fused = s.multiply(a, b)
        wall_f, conv_f, pack_f, n_packs = _traced_best(
            s, lambda: s.multiply(a, b)
        )
    with GemmSession(fused_pack=False,
                     trace_capacity=TRACE_CAPACITY) as s:
        c_plain = s.multiply(a, b)
        wall_u, conv_u, pack_u, _ = _traced_best(
            s, lambda: s.multiply(a, b)
        )

    # Fusion must never change a single output bit.
    bit_identical = bool(
        np.array_equal(c_fused.view(np.int64), c_plain.view(np.int64))
    )
    assert bit_identical
    assert n_packs == 4 and pack_u == 0.0

    frac_f = conv_f / wall_f
    frac_u = conv_u / wall_u
    row = {
        "n": n,
        "fused_wall_seconds": wall_f,
        "unfused_wall_seconds": wall_u,
        "fused_convert_seconds": conv_f,
        "unfused_convert_seconds": conv_u,
        "fused_pack_seconds": pack_f,
        "fused_convert_fraction": frac_f,
        "unfused_convert_fraction": frac_u,
        "fraction_drop": frac_u - frac_f,
        "bit_identical": bit_identical,
    }
    report["rows"].append(row)
    emit(
        f"convert-fusion n={n}",
        f"fused   {wall_f * 1e3:7.1f} ms wall, convert "
        f"{conv_f * 1e3:6.1f} ms ({frac_f * 100:4.1f}%) + pack "
        f"{pack_f * 1e3:5.1f} ms\n"
        f"unfused {wall_u * 1e3:7.1f} ms wall, convert "
        f"{conv_u * 1e3:6.1f} ms ({frac_u * 100:4.1f}%)\n"
        f"fraction drop {row['fraction_drop'] * 100:+.1f} pp, "
        f"bit-identical={bit_identical}",
    )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_convert_fraction_numba_leg(square_operands, report):
    # Optional backend leg: same measurement through the registry's
    # numba kernel, recorded (not guarded) for cross-backend comparison.
    n = SIZES[0]
    a, b = square_operands(n)
    with GemmSession(kernel="numba",
                     trace_capacity=TRACE_CAPACITY) as s:
        wall_f, conv_f, pack_f, _ = _traced_best(
            s, lambda: s.multiply(a, b)
        )
    report["rows"].append({
        "n": n,
        "kernel": "numba",
        "fused_wall_seconds": wall_f,
        "fused_convert_seconds": conv_f,
        "fused_pack_seconds": pack_f,
        "fused_convert_fraction": conv_f / wall_f,
    })
