"""Dependency-free schema validator for BENCH_convert.json.

Usage::

    python benchmarks/validate_bench_convert.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, does not match the schema the convert-fusion benchmark
emits, or violates the fused-packing guarantees:

* every guarded row must be **bit-identical** between the fused and
  two-pass plans,
* the traced conversion fraction must *drop* with fusion on in every
  guarded row (fused converts three quadrants per operand, not four),
* at least one row must cover the paper's flagship size (n >= 513).

Rows carrying a ``kernel`` key are informational backend legs (e.g. the
optional numba kernel) and are schema-checked but not guarded.

Run by ``make bench-smoke`` and CI after the benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_convert.json"

GUARD_MIN_N = 513

SECONDS_FIELDS = (
    "fused_wall_seconds",
    "unfused_wall_seconds",
    "fused_convert_seconds",
    "unfused_convert_seconds",
)


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "convert-fusion",
        "benchmark must be 'convert-fusion'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool",
           problems)
    _check(
        isinstance(data.get("have_numba"), bool),
        "have_numba must be a bool", problems,
    )

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )

    rows = data.get("rows")
    if not _check(
        isinstance(rows, list) and rows, "rows must be a non-empty list",
        problems,
    ):
        return

    flagship_rows = 0
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not _check(isinstance(row, dict), f"{where} must be an object",
                      problems):
            continue
        _check(
            isinstance(row.get("n"), int) and row["n"] >= 1,
            f"{where}.n must be a positive int", problems,
        )
        if "kernel" in row:  # informational backend leg: schema only
            for field in ("fused_wall_seconds", "fused_convert_seconds"):
                _check(
                    _number(row.get(field)) and row[field] > 0,
                    f"{where}.{field} must be a positive number", problems,
                )
            continue

        for field in SECONDS_FIELDS:
            _check(
                _number(row.get(field)) and row[field] > 0,
                f"{where}.{field} must be a positive number", problems,
            )
        _check(
            _number(row.get("fused_pack_seconds"))
            and row["fused_pack_seconds"] >= 0,
            f"{where}.fused_pack_seconds must be a non-negative number",
            problems,
        )
        for field in ("fused_convert_fraction", "unfused_convert_fraction"):
            _check(
                _number(row.get(field)) and 0.0 <= row[field] <= 1.0,
                f"{where}.{field} must be a number in [0, 1]", problems,
            )

        # ---- the fused-packing guards --------------------------------
        _check(
            row.get("bit_identical") is True,
            f"{where}: fused and two-pass results differ at "
            f"n={row.get('n')} (fusion must be bit-exact)", problems,
        )
        frac_f = row.get("fused_convert_fraction")
        frac_u = row.get("unfused_convert_fraction")
        if _number(frac_f) and _number(frac_u):
            _check(
                frac_f < frac_u,
                f"{where}: traced conversion fraction did not drop with "
                f"fusion at n={row.get('n')} "
                f"({frac_f * 100:.1f}% fused vs {frac_u * 100:.1f}% "
                "unfused)", problems,
            )
        if isinstance(row.get("n"), int) and row["n"] >= GUARD_MIN_N:
            flagship_rows += 1

    _check(
        flagship_rows >= 1,
        f"no flagship row present (need at least one n >= {GUARD_MIN_N})",
        problems,
    )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['rows'])} rows, quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
