"""Dependency-free schema validator for BENCH_tune.json.

Usage::

    python benchmarks/validate_bench_tune.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, does not match the schema the plan-store/autotune benchmark
emits, or violates the acceptance guards:

* every ``warm_store`` row must show a session that replayed the store
  instead of recalibrating: ``store_hits >= 1``, zero ``autotune_trial``
  events, every conversion site preseeded, and a first-call latency
  below the cold session's calibration+first-call cost,
* every ``tuned_vs_default`` row must be **bit-identical** to the
  default plan and no slower than it by more than 2% (median of the
  recorded interleaved rounds),
* both row kinds must cover the paper's flagship size (n >= 513).

Run by ``make tune-smoke`` / ``make bench-smoke`` and CI after the
benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tune.json"

GUARD_MIN_N = 513
MAX_TUNED_RATIO = 1.02

WARM_SECONDS_FIELDS = (
    "cold_autotune_seconds",
    "cold_first_seconds",
    "cold_total_seconds",
    "warm_first_seconds",
)


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_warm(row: dict, where: str, problems: list) -> None:
    for field in WARM_SECONDS_FIELDS:
        _check(
            _number(row.get(field)) and row[field] > 0,
            f"{where}.{field} must be a positive number", problems,
        )
    _check(
        isinstance(row.get("store_hits"), int) and row["store_hits"] >= 1,
        f"{where}: warm session recorded no store hits at n={row.get('n')}",
        problems,
    )
    _check(
        row.get("autotune_trial_events") == 0,
        f"{where}: warm session ran calibration trials at n={row.get('n')} "
        "(must replay the store instead)", problems,
    )
    _check(
        row.get("calibration_preseeded") is True,
        f"{where}: conversion sites were not preseeded from the store at "
        f"n={row.get('n')}", problems,
    )
    warm = row.get("warm_first_seconds")
    cold = row.get("cold_total_seconds")
    if _number(warm) and _number(cold):
        _check(
            warm < cold,
            f"{where}: warm first call ({warm:.3f}s) did not beat the cold "
            f"session's calibration+first-call cost ({cold:.3f}s) at "
            f"n={row.get('n')}", problems,
        )


def _validate_tuned(row: dict, where: str, problems: list) -> None:
    for field in ("tuned_median_seconds", "default_median_seconds"):
        _check(
            _number(row.get(field)) and row[field] > 0,
            f"{where}.{field} must be a positive number", problems,
        )
    _check(
        isinstance(row.get("rounds"), int) and row["rounds"] >= 3,
        f"{where}.rounds must be an int >= 3", problems,
    )
    _check(
        row.get("bit_identical") is True,
        f"{where}: tuned and default results differ at n={row.get('n')} "
        "(the default search space must stay bit-exact)", problems,
    )
    ratio = row.get("ratio")
    if _check(
        _number(ratio) and ratio > 0,
        f"{where}.ratio must be a positive number", problems,
    ):
        _check(
            ratio <= MAX_TUNED_RATIO,
            f"{where}: tuned plan is {ratio:.3f}x the heuristic default at "
            f"n={row.get('n')} (limit {MAX_TUNED_RATIO:.2f}x)", problems,
        )


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "plan-store-tune",
        "benchmark must be 'plan-store-tune'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool",
           problems)

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )

    rows = data.get("rows")
    if not _check(
        isinstance(rows, list) and rows, "rows must be a non-empty list",
        problems,
    ):
        return

    flagship = {"warm_store": 0, "tuned_vs_default": 0}
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not _check(isinstance(row, dict), f"{where} must be an object",
                      problems):
            continue
        _check(
            isinstance(row.get("n"), int) and row["n"] >= 1,
            f"{where}.n must be a positive int", problems,
        )
        kind = row.get("kind")
        if not _check(
            kind in flagship,
            f"{where}.kind must be one of {sorted(flagship)}", problems,
        ):
            continue
        if kind == "warm_store":
            _validate_warm(row, where, problems)
        else:
            _validate_tuned(row, where, problems)
        if isinstance(row.get("n"), int) and row["n"] >= GUARD_MIN_N:
            flagship[kind] += 1

    for kind, count in flagship.items():
        _check(
            count >= 1,
            f"no flagship {kind} row present (need at least one "
            f"n >= {GUARD_MIN_N})", problems,
        )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['rows'])} rows, quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
