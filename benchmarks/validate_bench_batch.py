"""Dependency-free schema validator for BENCH_batch.json.

Usage::

    python benchmarks/validate_bench_batch.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, does not match the schema the stacked-batch benchmark
emits, or violates the batched-dispatch guarantees:

* every row must be bit-identical across the three dispatch paths,
* every row must have run at least one stacked :class:`BatchPlan`
  execution (``batched_executes >= 1``),
* the batched path must reach at least 3x the per-item thread-pool
  path's items/sec for every 96x96 cell with batch >= 32.

Run by ``make bench-smoke`` and CI after the benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: The acceptance-criteria guard: batched vs threaded items/sec at this
#: size, for batches at least this large.
GUARD_N = 96
GUARD_BATCH = 32
GUARD_SPEEDUP = 3.0

RATE_FIELDS = (
    "batched_items_per_sec", "threaded_items_per_sec", "loop_items_per_sec",
    "batched_gflops", "threaded_gflops", "loop_gflops",
)


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "stacked-batch",
        "benchmark must be 'stacked-batch'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool", problems)

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )

    rows = data.get("rows")
    if not _check(
        isinstance(rows, list) and rows, "rows must be a non-empty list",
        problems,
    ):
        return

    guard_cells = 0
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not _check(isinstance(row, dict), f"{where} must be an object",
                      problems):
            continue
        for field in ("n", "batch"):
            _check(
                isinstance(row.get(field), int) and row[field] >= 1,
                f"{where}.{field} must be a positive int", problems,
            )
        for field in RATE_FIELDS:
            _check(
                _number(row.get(field)) and row[field] > 0,
                f"{where}.{field} must be a positive number", problems,
            )
        for field in ("speedup_vs_threaded", "speedup_vs_loop"):
            _check(
                _number(row.get(field)) and row[field] > 0,
                f"{where}.{field} must be a positive number", problems,
            )
        _check(
            row.get("bit_identical") is True,
            f"{where}.bit_identical must be true", problems,
        )
        _check(
            isinstance(row.get("batched_executes"), int)
            and row["batched_executes"] >= 1,
            f"{where}.batched_executes must be a positive int "
            "(the stacked path must actually have run)", problems,
        )
        _check(
            _number(row.get("batch_convert_seconds_saved")),
            f"{where}.batch_convert_seconds_saved must be a number", problems,
        )

        # ---- the throughput guard ------------------------------------
        if row.get("n") == GUARD_N and isinstance(row.get("batch"), int) \
                and row["batch"] >= GUARD_BATCH:
            guard_cells += 1
            speedup = row.get("speedup_vs_threaded")
            if _number(speedup):
                _check(
                    speedup >= GUARD_SPEEDUP,
                    f"{where}: batched path is only {speedup:.2f}x the "
                    f"thread-pool path for n={GUARD_N} batch={row['batch']} "
                    f"(need >= {GUARD_SPEEDUP}x)", problems,
                )

    _check(
        guard_cells >= 1,
        f"no guard cell present (need at least one n={GUARD_N} row with "
        f"batch >= {GUARD_BATCH})", problems,
    )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['rows'])} rows, quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
