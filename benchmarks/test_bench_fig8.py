"""Figure 8 bench: performance with conversion cost excluded.

Times the conversion-free Morton multiply and regenerates the normalised
comparison; the paper's finding is that MODGEMM then beats DGEFMM nearly
everywhere.
"""

import numpy as np

from repro.analysis.timing import TimingProtocol
from repro.core.modgemm import modgemm_morton
from repro.core.workspace import Workspace
from repro.experiments import fig8_noconversion
from repro.experiments.tuning import HOST_POLICY
from repro.layout.matrix import MortonMatrix

from conftest import emit

FAST = TimingProtocol(small_threshold=0, small_reps=1, trials=2)


def test_morton_multiply_headline_size(benchmark, square_operands):
    a, b = square_operands(513)
    plan = HOST_POLICY.plan(513, 513, 513)
    tm, tk, tn = plan
    a_mm = MortonMatrix.from_dense(np.asarray(a), tilings=(tm, tk))
    b_mm = MortonMatrix.from_dense(np.asarray(b), tilings=(tk, tn))
    c_mm = MortonMatrix.empty(513, 513, tm, tn)
    ws = Workspace(tm.depth, tm.tile, tk.tile, tn.tile, with_q=True)
    benchmark.pedantic(
        lambda: modgemm_morton(a_mm, b_mm, c_mm, workspace=ws),
        rounds=5,
        iterations=1,
    )


def test_fig8_normalised_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_noconversion.run(sizes=[300, 513, 700], protocol=FAST),
        rounds=1,
        iterations=1,
    )
    noconv = result.column("noconv/dgefmm")
    full = result.column("full/dgefmm")
    # Removing conversion helps at every size, and (paper's finding) the
    # conversion-free variant outperforms DGEFMM across the board here.
    assert all(nc < f for nc, f in zip(noconv, full))
    assert all(nc < 1.0 for nc in noconv)
    emit("Figure 8 (no-conversion vs DGEFMM)", result.to_text(with_chart=False))
