"""Plan-store/autotuner benchmark: warm-up amortisation and tuned safety.

Two guarantees of the ``repro.tune`` subsystem are measured and guarded:

* **warm_store** rows — a session opened against a warm store replays
  every tuned decision: ``store_hits > 0``, zero calibration trials (no
  ``autotune_trial`` events, every conversion site preseeded past its
  trial states), and the warm session's *first* call latency beats the
  cold session's total cost (autotune calibration + its first call) —
  the one-time-warm-up-across-processes claim.
* **tuned_vs_default** rows — the autotuned plan choice, over a median
  of interleaved rounds, is never slower than the heuristic default by
  more than 2%, and its results are bit-identical to the default plan's
  (the default search space varies only bit-stable axes).

Emits ``BENCH_tune.json`` at the repo root; hard guards live in
``validate_bench_tune.py`` (run by ``make tune-smoke`` / ``bench-smoke``
and CI).  Set ``BENCH_TUNE_QUICK=1`` for a seconds-scale smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.core.truncation import TruncationPolicy
from repro.engine.session import GemmSession
from repro.tune.store import PlanStore

QUICK = os.environ.get("BENCH_TUNE_QUICK", "") not in ("", "0")
SIZES = [513] if QUICK else [513, 1024]
#: Interleaved timing rounds for the tuned-vs-default median (the
#: acceptance guard wants >= 5 on the full run; quick mode uses *more*
#: rounds, not fewer — its 513-only multiplies are cheap and a median
#: of 3 at ~50 ms/call is inside host noise of the 2% guard).
ROUNDS = 9 if QUICK else 7
#: Autotune's own internal rounds (its trials are the "calibration cost"
#: the warm session must beat, so keep them realistic but bounded).
TUNE_ROUNDS = 2 if QUICK else 3
#: Hysteresis handed to the tuner: a challenger must beat the heuristic
#: default by more than this to displace it.  Wider than the library's
#: 1% default because CI hosts are noisy (often single-core, where e.g.
#: the tasks:1 schedule can win a 1% coin-flip it cannot repeat) and a
#: spurious winner would trip the 2% tuned-vs-default guard below.
TUNE_MARGIN = 0.03
TRACE_CAPACITY = 1 << 16
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tune.json"


@pytest.fixture(scope="module")
def report():
    data = {
        "benchmark": "plan-store-tune",
        "schema_version": 1,
        "quick": QUICK,
        "host": {"cpu_count": os.cpu_count() or 1},
        "rows": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_tune.json", f"wrote {OUT_PATH} ({len(data['rows'])} rows)")


@pytest.fixture(scope="module")
def warm_stores(tmp_path_factory):
    """One tuned store per size, built once and shared by both legs."""
    stores = {}
    for n in SIZES:
        path = tmp_path_factory.mktemp("tune") / f"plans_{n}.json"
        stores[n] = {"path": path}
    return stores


@pytest.mark.parametrize("n", SIZES)
def test_warm_store_skips_calibration(square_operands, report, warm_stores,
                                      n):
    a, b = square_operands(n)
    path = warm_stores[n]["path"]

    # ---- cold leg: empty store, autotune pays the calibration cost ----
    t0 = time.perf_counter()
    with GemmSession(plan_store=path) as cold:
        tune = cold.autotune([n], rounds=TUNE_ROUNDS, margin=TUNE_MARGIN)
        t1 = time.perf_counter()
        cold.multiply(a, b)
        cold_first = time.perf_counter() - t1
        autotune_seconds = cold.stats().autotune_seconds
    cold_total = time.perf_counter() - t0
    winner = tune.reports[0].winner
    warm_stores[n]["winner_label"] = winner.label if winner else None

    # ---- warm leg: a fresh session against the flushed store ----------
    with GemmSession(plan_store=path, trace=True,
                     trace_capacity=TRACE_CAPACITY) as warm:
        t2 = time.perf_counter()
        warm.multiply(a, b)
        warm_first = time.perf_counter() - t2
        stats = warm.stats()
        events = warm.trace.events()
        trial_events = sum(1 for e in events if e.kind == "autotune_trial")
        lookup_hits = sum(
            1 for e in events
            if e.kind == "store_lookup" and (e.data or {}).get("hit")
        )
        # Every conversion site must be preseeded past its trial states:
        # after ONE execution an uncalibrated site would read "trial".
        modes = {
            name: site.mode
            for name, site in warm.plan(n, n, n)._sites.items()
        }
        preseeded = all(m == "indexed" for m in modes.values())

    assert stats.store_hits > 0
    assert trial_events == 0
    assert preseeded, f"sites still calibrating in the warm session: {modes}"
    assert warm_first < cold_total, (
        f"warm first call ({warm_first:.3f}s) did not beat the cold "
        f"session's calibration+first-call cost ({cold_total:.3f}s)"
    )

    row = {
        "kind": "warm_store",
        "n": n,
        "cold_autotune_seconds": autotune_seconds,
        "cold_first_seconds": cold_first,
        "cold_total_seconds": cold_total,
        "warm_first_seconds": warm_first,
        "store_hits": stats.store_hits,
        "store_lookup_hit_events": lookup_hits,
        "autotune_trial_events": trial_events,
        "calibration_preseeded": bool(preseeded),
        "winner": warm_stores[n]["winner_label"],
    }
    report["rows"].append(row)
    emit(
        f"warm-store n={n}",
        f"cold autotune {autotune_seconds * 1e3:7.1f} ms + first "
        f"{cold_first * 1e3:6.1f} ms (total {cold_total * 1e3:7.1f} ms)\n"
        f"warm first   {warm_first * 1e3:7.1f} ms, "
        f"{stats.store_hits} store hit(s), {trial_events} trial events, "
        f"preseeded={preseeded}",
    )


@pytest.mark.parametrize("n", SIZES)
def test_tuned_never_slower_than_default(square_operands, report,
                                         warm_stores, n):
    a, b = square_operands(n)
    path = warm_stores[n]["path"]
    assert PlanStore(path).lookup(n, n, n) is not None, (
        "warm-store leg must run first (module test order)"
    )

    # Resolve the heuristic default's full plan parameters from a
    # store-less session, then race the store-backed decision against
    # that explicit default INSIDE one session: explicit caller args
    # outrank the store, and sharing the session removes the
    # per-session buffer-allocation draw (two sessions running
    # *identical* plans measure up to ~3% apart on this host — buffer
    # alignment moves the conflict-miss cost, the paper's Section 4.2
    # effect — which is session luck, not the plan choice under test).
    with GemmSession() as plain:
        default_plan = plain.plan(n, n, n)
        default_key = default_plan.key
        default_tilings = default_plan.tilings
    # Pin the default's *resolved* (T, d) rather than passing its
    # dynamic policy object through: when the stored decision matches
    # the heuristic (the common case on quiet hosts) both legs then
    # share one PlanKey — and one compiled plan, one set of buffers —
    # so the ratio measures the plan choice, not two allocations.
    default_policy = TruncationPolicy.pinned_tiling(
        n, n, n,
        tuple(t.tile for t in default_tilings),
        default_tilings[0].depth,
    )
    default_kwargs = dict(
        policy=default_policy, kernel=default_key.kernel,
        variant=default_key.variant, schedule=default_key.schedule,
        memory=default_key.memory,
    )

    with GemmSession(plan_store=path) as sess:
        out_tuned = sess.multiply(a, b)
        out_default = sess.multiply(a, b, **default_kwargs)
        bit_identical = bool(np.array_equal(
            out_tuned.view(np.int64), out_default.view(np.int64)
        ))
        same_plan = sess.plan(n, n, n).key == sess.plan(
            n, n, n, **default_kwargs
        ).key
        # Second warm-up so conversion calibration has settled.
        sess.multiply(a, b)
        sess.multiply(a, b, **default_kwargs)

        def measure():
            tuned_times, default_times = [], []
            legs = [(None, tuned_times), (default_kwargs, default_times)]
            for rnd in range(ROUNDS):
                # Interleaved and ping-ponged: host timing drifts as
                # the process warms, so a fixed order would flatter
                # whichever leg runs later in the round.
                for kwargs, sink in (legs if rnd % 2 == 0 else legs[::-1]):
                    t0 = time.perf_counter()
                    if kwargs is None:
                        sess.multiply(a, b)
                    else:
                        sess.multiply(a, b, **kwargs)
                    sink.append(time.perf_counter() - t0)
            return tuned_times, default_times

        # Up to one re-measure: a genuine plan regression repeats; a
        # host-noise burst that happened to sit on one leg's rounds
        # does not.
        for attempt in range(2):
            attempts = attempt + 1
            tuned_times, default_times = measure()
            tuned_med = float(np.median(tuned_times))
            default_med = float(np.median(default_times))
            # Two one-sided estimators: the median of per-round paired
            # ratios (cancels warm-up drift) and the ratio of
            # cross-round medians (robust to single-round bursts).  A
            # real >2% regression moves both; bursts move one or the
            # other, so — like the autotuner's own confirmation duel —
            # the guard trips only when the estimators agree.
            ratio_paired = float(np.median([
                t / d for t, d in zip(tuned_times, default_times)
            ]))
            ratio_medians = tuned_med / default_med
            ratio = min(ratio_paired, ratio_medians)
            if ratio <= 1.02:
                break
        stats = sess.stats()
    assert stats.store_hits > 0, "tuned leg never consulted the store"
    assert bit_identical, "tuned plan changed result bits vs the default"
    assert ratio <= 1.02, (
        f"tuned plan {ratio_paired:.3f}x (paired) / {ratio_medians:.3f}x "
        f"(medians) the default at n={n} "
        f"({tuned_med * 1e3:.1f} ms vs {default_med * 1e3:.1f} ms)"
    )

    row = {
        "kind": "tuned_vs_default",
        "n": n,
        "rounds": ROUNDS,
        "tuned_median_seconds": tuned_med,
        "default_median_seconds": default_med,
        "ratio": ratio,
        "ratio_paired": ratio_paired,
        "ratio_medians": ratio_medians,
        "attempts": attempts,
        "bit_identical": bit_identical,
        "same_plan": bool(same_plan),
        "winner": warm_stores[n].get("winner_label"),
    }
    report["rows"].append(row)
    emit(
        f"tuned-vs-default n={n}",
        f"tuned   {tuned_med * 1e3:7.1f} ms (median of {ROUNDS})\n"
        f"default {default_med * 1e3:7.1f} ms -> ratio {ratio:.3f} "
        f"(paired {ratio_paired:.3f}, medians {ratio_medians:.3f}), "
        f"bit-identical={bit_identical}, same-plan={same_plan}",
    )
