"""Benches for the future-work extensions (see EXPERIMENTS.md).

* conflict-aware truncation: the miss-ratio/flop trade across the
  Figure 9 window;
* three-C miss classification: the CProf-style diagnosis cost and result;
* task-parallel multiply: the 7-product thread-pool variant (correctness
  bench; speedup requires more than one CPU).
"""

import numpy as np
import pytest

from repro.core.parallel import parallel_multiply
from repro.core.truncation import TruncationPolicy
from repro.experiments import ext_conflict_aware, ext_miss_classification
from repro.layout.matrix import MortonMatrix

from conftest import emit


def test_conflict_aware_window(benchmark):
    result = benchmark.pedantic(
        lambda: ext_conflict_aware.run(scale=4), rounds=1, iterations=1
    )
    std = result.column("std_miss_pct")
    aware = result.column("aware_miss_pct")
    # In the power-of-two regime the aware policy must cut misses; at the
    # already-clean sizes it picks the same tiling (miss ratios then agree
    # up to run-to-run buffer-placement variance).
    assert aware[0] < 0.8 * std[0]
    assert result.column("tile_std")[-1] == result.column("tile_aware")[-1]
    assert aware[-1] == pytest.approx(std[-1], rel=0.15)
    emit("Conflict-aware tile selection (Figure 9 extension)",
         result.to_text(with_chart=False))


def test_miss_classification_window(benchmark):
    result = benchmark.pedantic(
        lambda: ext_miss_classification.run(scale=16), rounds=1, iterations=1
    )
    rows = {r[1]: r for r in result.rows}
    mid = 129  # the 513 analogue at scale 16
    # Conflict component collapses; capacity stays roughly flat.
    assert rows[mid][6] < 0.6 * rows[mid - 1][6]
    assert abs(rows[mid][5] - rows[mid - 1][5]) < 2.0
    emit("Three-C classification (CProf reproduction)",
         result.to_text(with_chart=False))


def test_parallel_multiply_headline(benchmark, square_operands):
    a, b = square_operands(513)
    plan = TruncationPolicy.dynamic(64, 256).plan(513, 513, 513)
    tm, tk, tn = plan
    a_mm = MortonMatrix.from_dense(np.asarray(a), tilings=(tm, tk))
    b_mm = MortonMatrix.from_dense(np.asarray(b), tilings=(tk, tn))
    c = benchmark.pedantic(
        lambda: parallel_multiply(a_mm, b_mm), rounds=3, iterations=1
    )
    assert np.allclose(c.to_dense(), np.asarray(a) @ np.asarray(b))
