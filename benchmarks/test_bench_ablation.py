"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one of the paper's techniques on otherwise
identical machinery:

* dynamic vs fixed truncation (padding + wall-clock at the 513 pathology);
* Morton vs column-major internal layout (same recursion & truncation);
* Winograd vs original Strassen schedule (15 vs 18 additions);
* interface conversion vs operands kept in Morton order.
"""

import numpy as np

from repro.analysis.flops import strassen_original_flops, winograd_flops
from repro.baselines.dgefmm import peeled_multiply
from repro.core.modgemm import modgemm, modgemm_morton
from repro.core.truncation import TruncationPolicy
from repro.core.workspace import Workspace
from repro.experiments.tuning import HOST_POLICY
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import select_common_tiling

from conftest import emit

N = 513  # the pathological size for fixed truncation


def test_dynamic_truncation(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=TruncationPolicy.dynamic(64, 256)),
        rounds=3, iterations=1,
    )


def test_fixed_truncation(benchmark, square_operands):
    # Fixed T=128 pads 513 -> 1024: the Figure 2 pathology, timed.
    a, b = square_operands(N)
    plan = TruncationPolicy.fixed(128).plan(N, N, N)
    assert plan[0].padded == 1024
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=TruncationPolicy.fixed(128)),
        rounds=3, iterations=1,
    )


def test_morton_internal_layout(benchmark, square_operands):
    # Layout ablation, Morton side: same Winograd schedule, truncation 128,
    # on an even size (no peeling in the column-major comparator).
    a, b = square_operands(512)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=TruncationPolicy.fixed(128)),
        rounds=3, iterations=1,
    )


def test_colmajor_internal_layout(benchmark, square_operands):
    # Layout ablation, column-major side: DGEFMM's recursion at 512 does no
    # peeling, so the only difference from the Morton bench is the layout
    # (strided quadrant views and per-level temporaries).
    a, b = square_operands(512)
    benchmark.pedantic(
        lambda: peeled_multiply(np.asarray(a), np.asarray(b), truncation=128),
        rounds=3, iterations=1,
    )


def test_winograd_schedule(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=HOST_POLICY, variant="winograd"),
        rounds=3, iterations=1,
    )


def test_original_strassen_schedule(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=HOST_POLICY, variant="strassen"),
        rounds=3, iterations=1,
    )
    plan = select_common_tiling((N, N, N))
    emit(
        "Winograd vs Strassen flop counts (paper range, n=513)",
        f"winograd: {winograd_flops(plan):,} flops\n"
        f"strassen: {strassen_original_flops(plan):,} flops",
    )


def test_with_conversion(benchmark, square_operands):
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: modgemm(a, b, policy=HOST_POLICY), rounds=3, iterations=1
    )


def test_without_conversion(benchmark, square_operands):
    a, b = square_operands(N)
    plan = HOST_POLICY.plan(N, N, N)
    tm, tk, tn = plan
    a_mm = MortonMatrix.from_dense(np.asarray(a), tilings=(tm, tk))
    b_mm = MortonMatrix.from_dense(np.asarray(b), tilings=(tk, tn))
    c_mm = MortonMatrix.empty(N, N, tm, tn)
    ws = Workspace(tm.depth, tm.tile, tk.tile, tn.tile, with_q=True)
    benchmark.pedantic(
        lambda: modgemm_morton(a_mm, b_mm, c_mm, workspace=ws),
        rounds=3, iterations=1,
    )
