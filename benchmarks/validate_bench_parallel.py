"""Dependency-free schema validator for BENCH_parallel.json.

Usage::

    python benchmarks/validate_bench_parallel.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, or does not match the schema the scaling benchmark emits.
Run by ``make bench-smoke`` and CI after the benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

GEMM_MODES = ("sequential", "legacy_7way", "tasks_d1", "tasks_d2")


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "parallel-scaling",
        "benchmark must be 'parallel-scaling'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool", problems)

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )
        _check(
            isinstance(host.get("pool_workers"), int)
            and host["pool_workers"] >= 1,
            "host.pool_workers must be a positive int", problems,
        )

    gemm = data.get("gemm")
    if _check(
        isinstance(gemm, list) and gemm, "gemm must be a non-empty list",
        problems,
    ):
        for i, row in enumerate(gemm):
            where = f"gemm[{i}]"
            if not _check(isinstance(row, dict), f"{where} must be an object",
                          problems):
                continue
            for field in ("n", "depth", "rounds"):
                _check(
                    isinstance(row.get(field), int) and row[field] >= 1,
                    f"{where}.{field} must be a positive int", problems,
                )
            _check(
                row.get("bit_identical") is True,
                f"{where}.bit_identical must be true", problems,
            )
            secs = row.get("seconds")
            if _check(isinstance(secs, dict), f"{where}.seconds must be an "
                      "object", problems):
                for mode in GEMM_MODES:
                    _check(
                        _number(secs.get(mode)) and secs[mode] > 0,
                        f"{where}.seconds.{mode} must be a positive number",
                        problems,
                    )
            stats = row.get("stats")
            if _check(isinstance(stats, dict), f"{where}.stats must be an "
                      "object", problems):
                for label, st in stats.items():
                    _check(
                        isinstance(st, dict)
                        and isinstance(st.get("tasks_run"), int)
                        and st["tasks_run"] > 0
                        and _number(st.get("worker_utilization"))
                        and 0.0 <= st["worker_utilization"] <= 1.0,
                        f"{where}.stats.{label} needs tasks_run > 0 and "
                        "worker_utilization in [0, 1]", problems,
                    )

    conv = data.get("conversion")
    if _check(
        isinstance(conv, list) and conv,
        "conversion must be a non-empty list", problems,
    ):
        for i, row in enumerate(conv):
            where = f"conversion[{i}]"
            if not _check(isinstance(row, dict), f"{where} must be an object",
                          problems):
                continue
            for field in ("n", "tile", "depth"):
                _check(
                    isinstance(row.get(field), int) and row[field] >= 1,
                    f"{where}.{field} must be a positive int", problems,
                )
            _check(
                _number(row.get("table_build_seconds"))
                and row["table_build_seconds"] >= 0,
                f"{where}.table_build_seconds must be a number", problems,
            )
            for section in ("to_morton", "to_dense"):
                sec = row.get(section)
                if not _check(isinstance(sec, dict),
                              f"{where}.{section} must be an object", problems):
                    continue
                for field in ("loop_seconds", "indexed_seconds", "speedup"):
                    _check(
                        _number(sec.get(field)) and sec[field] > 0,
                        f"{where}.{section}.{field} must be a positive number",
                        problems,
                    )
            if isinstance(row.get("to_morton"), dict) and _number(
                row["to_morton"].get("speedup")
            ):
                _check(
                    row["to_morton"]["speedup"] > 1.0,
                    f"{where}.to_morton.speedup must exceed 1.0 (indexed "
                    "conversion must win at depth >= 4)", problems,
                )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} schema problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['gemm'])} gemm rows, "
        f"{len(data['conversion'])} conversion rows, "
        f"quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
