"""Figure 6 bench: the modelled cross-platform axis (Alpha and Ultra).

Times the full trace+simulate+model pipeline for one size and regenerates
the normalised curves on both machine models at the scaled geometry.
"""

import pytest

from repro.experiments import fig56_perf

from conftest import emit

GRID = [150, 300, 500, 513, 700, 1024]


def test_model_pipeline_cost(benchmark):
    result = benchmark.pedantic(
        lambda: fig56_perf.run_modeled(machine="ultra", sizes=[500], scale=16),
        rounds=1,
        iterations=1,
    )
    assert result.rows[0][4] > 0


@pytest.mark.parametrize("machine", ["alpha", "ultra"])
def test_fig56_modeled_sweep(benchmark, machine):
    result = benchmark.pedantic(
        lambda: fig56_perf.run_modeled(machine=machine, sizes=GRID, scale=16),
        rounds=1,
        iterations=1,
    )
    ratios = result.column("modgemm/dgefmm")
    # Paper band: -30%..+25% depending on size and platform.
    assert min(ratios) < 1.25
    assert max(ratios) < 2.0
    emit(
        f"Figure {'5' if machine == 'alpha' else '6'} modelled ({machine})",
        result.to_text(with_chart=False),
    )
