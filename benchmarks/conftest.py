"""Shared fixtures for the benchmark harness.

Each ``test_bench_fig*.py`` module regenerates one of the paper's figures:
it times the representative operation under ``pytest-benchmark`` *and*
prints the paper-comparable rows (run with ``-s`` to see them inline; they
are also asserted qualitatively).  Grids are reduced relative to the full
experiment CLI (``python -m repro.experiments all``) so that
``pytest benchmarks/ --benchmark-only`` completes in minutes.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20260704)


@pytest.fixture(scope="session")
def square_operands(rng):
    """Session-cached square operands by size."""
    cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def get(n: int):
        if n not in cache:
            cache[n] = (
                np.asfortranarray(rng.standard_normal((n, n))),
                np.asfortranarray(rng.standard_normal((n, n))),
            )
        return cache[n]

    return get


def emit(title: str, text: str) -> None:
    """Print a figure block (visible with -s / captured otherwise)."""
    print(f"\n--- {title} ---\n{text}\n")
