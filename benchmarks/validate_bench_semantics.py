"""Dependency-free schema validator for BENCH_semantics.json.

Usage::

    python benchmarks/validate_bench_semantics.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, does not match the schema the GEMM-semantics benchmark
emits, or violates the operation-semantics guarantees:

* the transpose path must add **zero** extra Morton conversions over
  the non-transposed run in every row (the quadrant-swap relabel is
  copy-free),
* the beta accumulate must cost less than 10% wall-clock overhead over
  the plain multiply in every row,
* at least one row must cover the paper's flagship size (n >= 513).

Run by ``make bench-smoke`` and CI after the benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_semantics.json"

#: Acceptance guards: zero extra conversions, bounded accumulate cost.
GUARD_MIN_N = 513
GUARD_ACC_OVERHEAD = 0.10

SECONDS_FIELDS = ("plain_seconds", "trans_seconds", "accumulate_seconds")


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "gemm-semantics",
        "benchmark must be 'gemm-semantics'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool", problems)

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )

    rows = data.get("rows")
    if not _check(
        isinstance(rows, list) and rows, "rows must be a non-empty list",
        problems,
    ):
        return

    flagship_rows = 0
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not _check(isinstance(row, dict), f"{where} must be an object",
                      problems):
            continue
        _check(
            isinstance(row.get("n"), int) and row["n"] >= 1,
            f"{where}.n must be a positive int", problems,
        )
        for field in SECONDS_FIELDS + ("plain_gflops",):
            _check(
                _number(row.get(field)) and row[field] > 0,
                f"{where}.{field} must be a positive number", problems,
            )
        for field in ("convert_count_plain", "convert_count_trans"):
            _check(
                isinstance(row.get(field), int) and row[field] >= 1,
                f"{where}.{field} must be a positive int", problems,
            )
        _check(
            _number(row.get("accumulate_overhead")),
            f"{where}.accumulate_overhead must be a number", problems,
        )

        # ---- the semantics guards ------------------------------------
        _check(
            row.get("convert_extra") == 0,
            f"{where}: transposed run added {row.get('convert_extra')} "
            "Morton conversions (the relabel must be copy-free: need 0)",
            problems,
        )
        overhead = row.get("accumulate_overhead")
        if _number(overhead):
            _check(
                overhead < GUARD_ACC_OVERHEAD,
                f"{where}: beta accumulate costs {overhead * 100:.1f}% over "
                f"the plain multiply at n={row.get('n')} "
                f"(need < {GUARD_ACC_OVERHEAD * 100:.0f}%)", problems,
            )
        if isinstance(row.get("n"), int) and row["n"] >= GUARD_MIN_N:
            flagship_rows += 1

    _check(
        flagship_rows >= 1,
        f"no flagship row present (need at least one n >= {GUARD_MIN_N})",
        problems,
    )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['rows'])} rows, quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
