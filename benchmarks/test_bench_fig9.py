"""Figure 9 bench: cache miss ratios, MODGEMM vs DGEFMM.

Times the full-program trace simulation for one size (at the fast scale-16
geometry) and regenerates the miss-ratio table across the anomaly window
at the default scale-4 geometry — sizes 250..262 are the analogues of the
paper's 500..523, with the 513 analogue at 257.  (Scale 4 keeps the
32-byte blocks a small fraction of a tile column, which scale 16 does
not; the strict MODGEMM-below-DGEFMM ordering needs that fidelity.)
"""

from repro.cachesim import ATOM_EXPERIMENT, CacheHierarchy, scale_machine
from repro.cachesim.trace import SimulatorSink
from repro.cachesim.tracegen import modgemm_trace
from repro.experiments import fig9_cache
from repro.layout.padding import TileRange, select_common_tiling

from conftest import emit


def test_trace_simulation_cost(benchmark):
    machine = scale_machine(ATOM_EXPERIMENT, 16)
    plan = select_common_tiling((128, 128, 128), TileRange(4, 16))

    def run():
        h = CacheHierarchy(list(machine.levels))
        modgemm_trace(plan, SimulatorSink(h))
        return h.miss_ratio()

    ratio = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0 < ratio < 1


def test_fig9_anomaly_window(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_cache.run(scale=4), rounds=1, iterations=1
    )
    mod = dict(zip(result.column("n_scaled"), result.column("modgemm_miss_pct")))
    dge = dict(zip(result.column("n_scaled"), result.column("dgefmm_miss_pct")))
    sizes = sorted(mod)
    analogue = 257  # ceil(513 / 2)
    # Observation 1: MODGEMM's miss ratio below DGEFMM's throughout.
    for n in sizes:
        assert mod[n] < dge[n], f"MODGEMM not below DGEFMM at {n}"
    # Observation 2: the dramatic drop at the 513-analogue.
    assert mod[analogue] < 0.8 * mod[analogue - 1]
    emit("Figure 9 (scaled 16 KB DM cache, miss %)", result.to_text(with_chart=False))
