"""GEMM-semantics benchmark: the cost of the full GemmSpec surface.

Measures, at the paper's flagship sizes (513 and 1024), what the
redesigned operation semantics cost relative to a plain ``C = A . B``:

* **transpose** — ``trans_a=True`` consumed through Morton quadrant-swap
  relabeling.  The tentpole claim is *zero operand copies*: the traced
  ``convert`` event count of a transposed run must equal the plain
  run's exactly (the relabel is pure index bookkeeping).
* **accumulate** — ``beta != 0`` folded into the output conversion
  through the fused ``morton_to_dense(out=, beta=)`` sweep: one pass,
  guarded to < 10% wall-clock overhead over the plain multiply.

Emits ``BENCH_semantics.json`` at the repo root; hard guards live in
``validate_bench_semantics.py`` (run by ``make bench-smoke`` and CI).
Set ``BENCH_SEMANTICS_QUICK=1`` for a seconds-scale smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.engine import GemmSession

QUICK = os.environ.get("BENCH_SEMANTICS_QUICK", "") not in ("", "0")
SIZES = [513] if QUICK else [513, 1024]
ROUNDS = 3 if QUICK else 5
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_semantics.json"


@pytest.fixture(scope="module")
def report():
    data = {
        "benchmark": "gemm-semantics",
        "schema_version": 1,
        "quick": QUICK,
        "host": {"cpu_count": os.cpu_count() or 1},
        "rows": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_semantics.json", f"wrote {OUT_PATH} ({len(data['rows'])} rows)")


def _best_seconds(fn, rounds=ROUNDS):
    fn()  # warm-up: plan compile, pooled buffers, BLAS threads
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _convert_count(session, runner) -> int:
    """Steady-state ``convert`` events of one run (after a warm run)."""
    runner()
    session.trace.clear()
    session.trace.enable()
    runner()
    count = sum(1 for e in session.trace.events() if e.kind == "convert")
    session.trace.disable()
    return count


@pytest.mark.parametrize("n", SIZES)
def test_semantics_grid(rng, report, n):
    a = np.asfortranarray(rng.standard_normal((n, n)))
    b = np.asfortranarray(rng.standard_normal((n, n)))
    c0 = np.asfortranarray(rng.standard_normal((n, n)))
    flops = 2.0 * n**3

    with GemmSession() as s:
        secs_plain = _best_seconds(lambda: s.multiply(a, b))
        secs_trans = _best_seconds(lambda: s.multiply(a, b, trans_a=True))
        c = c0.copy()
        secs_acc = _best_seconds(
            lambda: s.multiply(a, b, c=c, beta=0.5)
        )
        converts_plain = _convert_count(s, lambda: s.multiply(a, b))
        converts_trans = _convert_count(
            s, lambda: s.multiply(a, b, trans_a=True)
        )

    overhead = secs_acc / secs_plain - 1.0
    extra = converts_trans - converts_plain

    # The zero-copy claim is deterministic: assert it here too, not just
    # in the validator.
    assert extra == 0, (
        f"transposed run emitted {extra} extra convert events at n={n}"
    )

    row = {
        "n": n,
        "plain_seconds": secs_plain,
        "trans_seconds": secs_trans,
        "accumulate_seconds": secs_acc,
        "plain_gflops": flops / secs_plain / 1e9,
        "convert_count_plain": converts_plain,
        "convert_count_trans": converts_trans,
        "convert_extra": extra,
        "accumulate_overhead": overhead,
    }
    report["rows"].append(row)
    emit(
        f"semantics n={n}",
        f"plain {secs_plain * 1e3:7.1f} ms ({row['plain_gflops']:.2f} "
        f"GFLOP/s) | trans {secs_trans * 1e3:7.1f} ms "
        f"({converts_trans} converts vs {converts_plain}, extra={extra}) | "
        f"accumulate {secs_acc * 1e3:7.1f} ms "
        f"({overhead * 100:+.1f}% vs plain)",
    )
