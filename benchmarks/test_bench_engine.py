"""Engine bench: plan-cached sessions vs per-call planning.

Demonstrates the point of :class:`repro.GemmSession` for serving-style
workloads: repeated multiplies of one geometry skip tiling search, Morton
buffer allocation, and workspace construction after the first call.  The
cold baseline compiles a fresh plan per call (a new session each time,
which is exactly what every one-shot ``modgemm`` call did before plans
were cached).
"""

from __future__ import annotations

import time

from repro.engine import GemmSession

from conftest import emit

N = 480
ROUNDS = 8


def _timed(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_session_warm_calls(benchmark, square_operands):
    """Steady-state: every call after the first is a plan-cache hit."""
    a, b = square_operands(N)
    session = GemmSession()
    session.multiply(a, b)  # compile once, outside the timed region
    benchmark.pedantic(lambda: session.multiply(a, b), rounds=ROUNDS, iterations=1)
    stats = session.stats()
    assert stats.plan_misses == 1
    assert stats.plan_hits >= ROUNDS


def test_per_call_planning(benchmark, square_operands):
    """Baseline: a fresh session per call pays the full compile cost."""
    a, b = square_operands(N)
    benchmark.pedantic(
        lambda: GemmSession().multiply(a, b), rounds=ROUNDS, iterations=1
    )


def test_warm_session_beats_cold_planning(square_operands):
    """Acceptance: cached plans win, and hits allocate no new Morton buffers."""
    a, b = square_operands(N)

    session = GemmSession()
    session.multiply(a, b)
    allocated_after_compile = session.stats().buffers_allocated
    warm = _timed(lambda: session.multiply(a, b), ROUNDS)

    cold = _timed(lambda: GemmSession().multiply(a, b), ROUNDS)

    stats = session.stats()
    assert stats.buffers_allocated == allocated_after_compile, (
        "cache-hit executions must reuse pooled Morton buffers"
    )
    assert stats.buffers_reused >= ROUNDS
    assert warm < cold, (
        f"warm session ({warm * 1e3:.2f} ms) should beat per-call planning "
        f"({cold * 1e3:.2f} ms)"
    )
    emit(
        "Engine: warm session vs per-call planning",
        f"n={N}  warm={warm * 1e3:.2f} ms  cold={cold * 1e3:.2f} ms  "
        f"speedup={cold / warm:.2f}x  "
        f"(hits={stats.plan_hits}, buffers_reused={stats.buffers_reused})",
    )


def test_multiply_many_batched(benchmark, square_operands):
    """Batched dispatch over a mixed-geometry worklist."""
    a1, b1 = square_operands(N)
    a2, b2 = square_operands(N // 2)
    items = [(a1, b1), (a2, b2)] * 3
    session = GemmSession()
    session.multiply_many(items)  # compile both plans up front
    benchmark.pedantic(lambda: session.multiply_many(items), rounds=3, iterations=1)
    assert session.stats().plan_misses == 2
