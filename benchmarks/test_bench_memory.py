"""Memory-schedule benchmark: GFLOP/s and peak bytes per schedule.

Runs every memory schedule (``classic``, ``two_temp``, ``ip_overwrite``)
over a grid of sizes and worker counts and emits ``BENCH_memory.json``
at the repo root with, per cell:

* warm throughput (best-of-rounds GFLOP/s),
* the plan's accounted scratch (``CompiledPlan.scratch_bytes``),
* the session's ``peak_scratch_bytes`` / ``fused_adds`` counters,
* a tracemalloc-measured cold peak (fresh session, first multiply).

Hard assertions are limited to deterministic claims that hold on any
host, including single-core CI runners:

* every schedule is bit-identical to classic,
* ``two_temp`` accounted scratch is at most 60 % of classic whenever
  the plan recurses to depth >= 3 (analytically it is exactly 50 % for
  square problems),
* ``ip_overwrite`` owns zero scratch.

Throughput ratios are recorded in the JSON for the validator and for
humans; they are not hard-asserted here because wall-clock on shared CI
is noisy.  Set ``BENCH_MEMORY_QUICK=1`` for a seconds-scale smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.analysis import measure_peak
from repro.engine import MEMORY_SCHEDULES, GemmSession

QUICK = os.environ.get("BENCH_MEMORY_QUICK", "") not in ("", "0")
SIZES = [192] if QUICK else [512, 1024]
ROUNDS = 2 if QUICK else 4
WORKER_GRID = [1, 2] if QUICK else [1, 2, 4]
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_memory.json"


@pytest.fixture(scope="module")
def report():
    data = {
        "benchmark": "memory-schedules",
        "schema_version": 1,
        "quick": QUICK,
        "host": {"cpu_count": os.cpu_count() or 1},
        "rows": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_memory.json", f"wrote {OUT_PATH} ({len(data['rows'])} rows)")


def _timed(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cell(n, a, b, ref, memory, workers):
    """Measure one (schedule, size, workers) cell; returns a row dict."""
    kwargs = {} if workers == 1 else {"schedule": f"tasks:1x{workers}"}

    # Cold peak: fresh session, first multiply, tracemalloc-measured.
    def cold():
        with GemmSession(max_workers=workers) as s:
            return s.multiply(a, b, memory=memory, **kwargs)

    out, cold_peak = measure_peak(cold)
    bit_identical = bool(np.array_equal(out, ref))

    with GemmSession(max_workers=workers) as s:
        plan = s.plan(n, n, n, memory=memory, **kwargs)
        s.multiply(a, b, memory=memory, **kwargs)  # warm the pools
        secs = _timed(lambda: s.multiply(a, b, memory=memory, **kwargs))
        st = s.stats()
        row = {
            "n": n,
            "depth": plan.tilings[0].depth if plan.tilings else 0,
            "schedule": memory,
            "workers": workers,
            "mode": kwargs.get("schedule", "sequential"),
            "seconds": secs,
            "gflops": 2.0 * n**3 / secs / 1e9,
            "plan_scratch_bytes": plan.scratch_bytes,
            "session_peak_scratch_bytes": st.peak_scratch_bytes,
            "fused_adds": st.fused_adds,
            "measured_peak_bytes": cold_peak,
            "bit_identical": bit_identical,
        }
    return row


@pytest.mark.parametrize("n", SIZES)
def test_memory_schedule_grid(square_operands, report, n):
    a, b = square_operands(n)
    with GemmSession() as s:
        ref = s.multiply(a, b)
    assert np.allclose(ref, a @ b)

    rows = []
    for memory in MEMORY_SCHEDULES:
        for workers in WORKER_GRID:
            if memory == "ip_overwrite" and workers > 1:
                continue  # ip_overwrite is sequential-only by contract
            rows.append(_cell(n, a, b, ref, memory, workers))
    report["rows"].extend(rows)

    by = {(r["schedule"], r["workers"]): r for r in rows}
    classic = by[("classic", 1)]
    lean = by[("two_temp", 1)]
    ip = by[("ip_overwrite", 1)]

    # Deterministic guarantees, safe on any host.
    assert all(r["bit_identical"] for r in rows)
    assert ip["plan_scratch_bytes"] == 0
    if classic["depth"] >= 3:
        assert classic["plan_scratch_bytes"] > 0
        assert (
            lean["plan_scratch_bytes"]
            <= 0.6 * classic["plan_scratch_bytes"]
        )
        assert (
            lean["session_peak_scratch_bytes"]
            < classic["session_peak_scratch_bytes"]
        )
    assert lean["fused_adds"] > 0
    assert classic["fused_adds"] == 0

    lines = [
        f"{'sched':<13} {'wrk':>3} {'GFLOP/s':>8} {'scratch':>12} "
        f"{'peak(track)':>12} {'cold peak':>12}"
    ]
    for r in rows:
        lines.append(
            f"{r['schedule']:<13} {r['workers']:>3} {r['gflops']:>8.2f} "
            f"{r['plan_scratch_bytes']:>12} "
            f"{r['session_peak_scratch_bytes']:>12} "
            f"{r['measured_peak_bytes']:>12}"
        )
    ratio = lean["gflops"] / classic["gflops"] if classic["gflops"] else 0.0
    lines.append(
        f"two_temp/classic: scratch "
        f"{lean['plan_scratch_bytes'] / max(1, classic['plan_scratch_bytes']):.2f}x, "
        f"throughput {ratio:.2f}x"
    )
    emit(f"memory schedules n={n} depth={classic['depth']}", "\n".join(lines))
