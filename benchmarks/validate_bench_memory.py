"""Dependency-free schema validator for BENCH_memory.json.

Usage::

    python benchmarks/validate_bench_memory.py [path]

Exits non-zero (listing every problem found) when the file is missing,
is not JSON, does not match the schema the memory benchmark emits, or
violates the memory-schedule guarantees:

* every row must be bit-identical to classic,
* ``ip_overwrite`` must own zero scratch,
* ``two_temp`` peak scratch must not exceed 60 % of classic for any
  (size, workers) cell whose plan recurses to depth >= 3.

Run by ``make bench-smoke`` and CI after the benchmark itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_memory.json"

SCHEDULES = ("classic", "two_temp", "ip_overwrite")


def _check(cond: bool, message: str, problems: list) -> bool:
    if not cond:
        problems.append(message)
    return cond


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(data, problems: list) -> None:
    _check(isinstance(data, dict), "top level must be an object", problems)
    if not isinstance(data, dict):
        return
    _check(
        data.get("benchmark") == "memory-schedules",
        "benchmark must be 'memory-schedules'", problems,
    )
    _check(
        isinstance(data.get("schema_version"), int),
        "schema_version must be an int", problems,
    )
    _check(isinstance(data.get("quick"), bool), "quick must be a bool", problems)

    host = data.get("host")
    if _check(isinstance(host, dict), "host must be an object", problems):
        _check(
            isinstance(host.get("cpu_count"), int) and host["cpu_count"] >= 1,
            "host.cpu_count must be a positive int", problems,
        )

    rows = data.get("rows")
    if not _check(
        isinstance(rows, list) and rows, "rows must be a non-empty list",
        problems,
    ):
        return

    cells = {}
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not _check(isinstance(row, dict), f"{where} must be an object",
                      problems):
            continue
        for field in ("n", "workers"):
            _check(
                isinstance(row.get(field), int) and row[field] >= 1,
                f"{where}.{field} must be a positive int", problems,
            )
        _check(
            isinstance(row.get("depth"), int) and row["depth"] >= 0,
            f"{where}.depth must be a non-negative int", problems,
        )
        _check(
            row.get("schedule") in SCHEDULES,
            f"{where}.schedule must be one of {SCHEDULES}", problems,
        )
        _check(
            _number(row.get("seconds")) and row["seconds"] > 0,
            f"{where}.seconds must be a positive number", problems,
        )
        _check(
            _number(row.get("gflops")) and row["gflops"] > 0,
            f"{where}.gflops must be a positive number", problems,
        )
        for field in (
            "plan_scratch_bytes", "session_peak_scratch_bytes",
            "fused_adds", "measured_peak_bytes",
        ):
            _check(
                isinstance(row.get(field), int) and row[field] >= 0,
                f"{where}.{field} must be a non-negative int", problems,
            )
        _check(
            row.get("bit_identical") is True,
            f"{where}.bit_identical must be true", problems,
        )
        if isinstance(row.get("n"), int) and isinstance(row.get("workers"),
                                                        int):
            cells[(row["n"], row["workers"], row.get("schedule"))] = row

    # ---- memory guarantees -------------------------------------------
    for (n, workers, schedule), row in sorted(
        cells.items(), key=lambda item: str(item[0])
    ):
        if schedule == "ip_overwrite":
            _check(
                row.get("plan_scratch_bytes") == 0,
                f"ip_overwrite n={n} must report zero plan scratch", problems,
            )
        if schedule != "two_temp":
            continue
        classic = cells.get((n, workers, "classic"))
        if not _check(
            classic is not None,
            f"two_temp n={n} workers={workers} has no classic baseline row",
            problems,
        ):
            continue
        if not isinstance(row.get("depth"), int) or row["depth"] < 3:
            continue
        base = classic.get("plan_scratch_bytes")
        lean = row.get("plan_scratch_bytes")
        if not (isinstance(base, int) and isinstance(lean, int) and base > 0):
            continue  # field-level problems already reported above
        if workers == 1:
            # The recursion-schedule guarantee: two_temp's scratch must
            # stay at or below 60% of classic (analytically 50%).  Task
            # cells share schedule-independent accumulation buffers, so
            # the guard applies to the sequential cells only.
            _check(
                lean <= 0.6 * base,
                f"two_temp n={n} peak scratch {lean} exceeds 60% of "
                f"classic's {base} at depth {row['depth']}", problems,
            )
        peak_base = classic.get("session_peak_scratch_bytes")
        peak_lean = row.get("session_peak_scratch_bytes")
        if isinstance(peak_base, int) and isinstance(peak_lean, int) \
                and peak_base > 0:
            _check(
                peak_lean < peak_base,
                f"two_temp n={n} workers={workers} session peak scratch "
                f"{peak_lean} not below classic's {peak_base}", problems,
            )


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    problems: list = []
    if not path.is_file():
        print(f"FAIL: {path} does not exist (run the benchmark first)")
        return 1
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}")
        return 1
    validate(data, problems)
    if problems:
        print(f"FAIL: {path} has {len(problems)} problem(s):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"OK: {path} ({len(data['rows'])} rows, quick={data['quick']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
