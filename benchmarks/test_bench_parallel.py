"""Scaling bench: the task-DAG scheduler and plan-cached conversions.

Emits ``BENCH_parallel.json`` at the repo root with the measured modes:

* ``sequential`` — warm plan-cached session, sequential recursion;
* ``legacy_7way`` — the historical free-standing parallel path, faithfully
  re-created: a 7-worker pool spun up *per call*, fresh scratch allocated
  per call, tile-loop conversions (this is what ``parallel_multiply(a, b)``
  did before sessions owned a persistent pool);
* ``tasks_d1`` / ``tasks_d2`` — warm sessions executing the prebuilt task
  graph at expansion depth 1 / 2 on a persistent 4-worker pool;

plus a conversion section timing the per-tile loop against the
precomputed-index path at plan depth >= 4.

Hard assertions hold on any host, single-core CI included: results are
bit-identical across modes, the warm task schedule beats the
spin-up-per-call legacy path, and indexed conversion beats the tile loop
at depth >= 4.  Thread *scaling* (tasks vs sequential) is recorded always
but asserted only when the host has >= 4 CPUs — a 1-core container cannot
demonstrate it.

``BENCH_PARALLEL_QUICK=1`` shrinks sizes/rounds for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.parallel import TaskScratch, build_winograd_graph
from repro.core.scheduler import WorkerPool
from repro.core.truncation import TruncationPolicy
from repro.engine import GemmSession
from repro.layout.convert import ConversionTable, dense_to_morton, morton_to_dense
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import select_common_tiling

from conftest import emit

QUICK = os.environ.get("BENCH_PARALLEL_QUICK", "") not in ("", "0")
GEMM_SIZES = [192] if QUICK else [512, 1024]
CONVERT_SIZES = [512] if QUICK else [513, 1024]
ROUNDS = 3 if QUICK else 5
POOL_WORKERS = 4
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _timed(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _legacy_7way(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One call of the historical parallel path: everything per-call."""
    tm, tk, tn = TruncationPolicy.dynamic().plan(
        a.shape[0], a.shape[1], b.shape[1]
    )
    a_mm = MortonMatrix.zeros(a.shape[0], a.shape[1], tm, tk)
    b_mm = MortonMatrix.zeros(b.shape[0], b.shape[1], tk, tn)
    c_mm = MortonMatrix.empty(a.shape[0], b.shape[1], tm, tn)
    dense_to_morton(a, a_mm, zero_pad=False)
    dense_to_morton(b, b_mm, zero_pad=False)
    scratch = TaskScratch(
        tm.tile, tk.tile, tn.tile, tm.depth, parallel_depth=1, workers=7
    )
    graph = build_winograd_graph(a_mm, b_mm, c_mm, scratch)
    pool = WorkerPool(7, name="bench-legacy")
    try:
        pool.run(graph)
    finally:
        pool.shutdown()
    return morton_to_dense(c_mm)


@pytest.fixture(scope="module")
def report():
    """Accumulates sections; written to BENCH_parallel.json at teardown."""
    data = {
        "benchmark": "parallel-scaling",
        "schema_version": 1,
        "quick": QUICK,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "pool_workers": POOL_WORKERS,
        },
        "gemm": [],
        "conversion": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_parallel.json", f"written to {OUT_PATH}")


@pytest.mark.parametrize("n", GEMM_SIZES)
def test_scheduler_scaling(report, square_operands, n):
    a, b = square_operands(n)
    depth = select_common_tiling((n, n))[0].depth

    with GemmSession() as seq:
        ref = seq.multiply(a, b)  # compile + calibrate
        seq.multiply(a, b)
        t_seq = _timed(lambda: seq.multiply(a, b), ROUNDS)

    outputs = {}
    outputs["legacy_7way"] = _legacy_7way(a, b)
    t_legacy = _timed(lambda: _legacy_7way(a, b), ROUNDS)

    times = {"sequential": t_seq, "legacy_7way": t_legacy}
    stats = {}
    for label, sched in (("tasks_d1", "tasks:1"), ("tasks_d2", "tasks:2")):
        with GemmSession(max_workers=POOL_WORKERS) as s:
            outputs[label] = s.multiply(a, b, schedule=sched)
            s.multiply(a, b, schedule=sched)
            times[label] = _timed(
                lambda: s.multiply(a, b, schedule=sched), ROUNDS
            )
            st = s.stats()
            stats[label] = {
                "tasks_run": st.tasks_run,
                "worker_utilization": round(st.worker_utilization, 4),
                "indexed_conversions": st.indexed_conversions,
                "convert_seconds_saved": st.convert_seconds_saved,
            }

    bit_identical = all(np.array_equal(out, ref) for out in outputs.values())
    row = {
        "n": n,
        "depth": depth,
        "rounds": ROUNDS,
        "seconds": {k: round(v, 6) for k, v in times.items()},
        "bit_identical": bit_identical,
        "stats": stats,
    }
    report["gemm"].append(row)
    emit(
        f"Scheduler scaling n={n}",
        "  ".join(f"{k}={v * 1e3:.2f}ms" for k, v in times.items())
        + f"  bit_identical={bit_identical}",
    )

    assert bit_identical, "all schedules must be bit-identical"
    best_tasks = min(times["tasks_d1"], times["tasks_d2"])
    assert best_tasks < t_legacy, (
        f"warm task schedule ({best_tasks * 1e3:.2f} ms) must beat the "
        f"spin-up-per-call legacy path ({t_legacy * 1e3:.2f} ms)"
    )
    if (os.cpu_count() or 1) >= 4 and n >= 1024:
        # Thread scaling needs real cores; a 1-CPU container records the
        # numbers above but cannot demonstrate speedup over sequential.
        assert times["tasks_d2"] < t_seq and times["tasks_d2"] < t_legacy, (
            "with >= 4 CPUs the depth-2 task schedule should beat both "
            f"sequential and legacy at n={n}: {times}"
        )


@pytest.mark.parametrize("n", CONVERT_SIZES)
def test_indexed_conversion(report, square_operands, n):
    a, _ = square_operands(n)
    tiling = select_common_tiling((n, n))[0]
    assert tiling.depth >= 4, "conversion bench targets deep tilings"
    m_loop = MortonMatrix.zeros(n, n, tiling, tiling)
    m_idx = MortonMatrix.zeros(n, n, tiling, tiling)

    t0 = time.perf_counter()
    table = ConversionTable(n, n, tiling.tile, tiling.tile, tiling.depth)
    t_build = time.perf_counter() - t0

    rounds = max(ROUNDS, 5)
    t_loop = _timed(lambda: dense_to_morton(a, m_loop, zero_pad=False), rounds)
    t_idx = _timed(
        lambda: dense_to_morton(a, m_idx, zero_pad=False, table=table), rounds
    )
    assert np.array_equal(m_idx.buf, m_loop.buf)

    out_l = morton_to_dense(m_loop)
    t_back_loop = _timed(lambda: morton_to_dense(m_loop, out=out_l), rounds)
    out_i = np.empty_like(out_l)
    t_back_idx = _timed(
        lambda: morton_to_dense(m_idx, out=out_i, table=table), rounds
    )
    assert np.array_equal(out_i, out_l)

    row = {
        "n": n,
        "tile": tiling.tile,
        "depth": tiling.depth,
        "table_build_seconds": round(t_build, 6),
        "to_morton": {
            "loop_seconds": round(t_loop, 6),
            "indexed_seconds": round(t_idx, 6),
            "speedup": round(t_loop / t_idx, 3),
        },
        "to_dense": {
            "loop_seconds": round(t_back_loop, 6),
            "indexed_seconds": round(t_back_idx, 6),
            "speedup": round(t_back_loop / t_back_idx, 3),
        },
    }
    report["conversion"].append(row)
    emit(
        f"Conversion n={n} (tile {tiling.tile}, depth {tiling.depth})",
        f"to_morton loop={t_loop * 1e3:.2f}ms indexed={t_idx * 1e3:.2f}ms "
        f"({t_loop / t_idx:.2f}x)   to_dense loop={t_back_loop * 1e3:.2f}ms "
        f"indexed={t_back_idx * 1e3:.2f}ms ({t_back_loop / t_back_idx:.2f}x)",
    )
    assert t_idx < t_loop, (
        f"indexed dense->morton ({t_idx * 1e3:.2f} ms) must beat the tile "
        f"loop ({t_loop * 1e3:.2f} ms) at depth {tiling.depth}"
    )
