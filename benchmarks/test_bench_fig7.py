"""Figure 7 bench: Morton conversion cost as % of total execution.

Times the conversion in isolation and regenerates the conversion-fraction
curve (paper: ~15% small, ~5% large).
"""

import numpy as np

from repro.analysis.timing import TimingProtocol
from repro.experiments import fig7_conversion
from repro.layout.convert import dense_to_morton
from repro.layout.matrix import MortonMatrix
from repro.layout.padding import select_common_tiling

from conftest import emit

FAST = TimingProtocol(small_threshold=0, small_reps=1, trials=2)


def test_conversion_cost_513(benchmark, square_operands):
    a, _ = square_operands(513)
    plan = select_common_tiling((513, 513, 513))
    out = MortonMatrix.empty(513, 513, plan[0], plan[1])
    benchmark(dense_to_morton, np.asarray(a), out)


def test_back_conversion_cost_513(benchmark, square_operands):
    a, _ = square_operands(513)
    m = MortonMatrix.from_dense(np.asarray(a))
    benchmark(m.to_dense)


def test_fig7_fraction_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_conversion.run(sizes=[150, 300, 513, 700], protocol=FAST),
        rounds=1,
        iterations=1,
    )
    pct = result.column("convert_pct")
    # Decreasing with size (O(n^2) conversion vs O(n^2.8) compute) and a
    # modest share of the total for large operands.
    assert pct[-1] < pct[0]
    assert pct[-1] < 50.0
    emit("Figure 7 (conversion % of total)", result.to_text(with_chart=False))
