"""Figure 3 bench: tile-multiply MFLOPS vs leading dimension.

Times the trace-generation + cache-simulation pipeline for one tile
multiply and regenerates both panels' qualitative content: contiguous
tiles flat across leading dimensions, non-contiguous tiles cratering at
the power-of-two leading dimension.
"""

from repro.cachesim.machines import ALPHA_MIATA, SUN_ULTRA60
from repro.experiments import fig3_tile_locality
from repro.experiments.fig3_tile_locality import tile_multiply_mflops

from conftest import emit

LDAS = [128, 160, 192, 224, 240, 256, 272, 288, 320]


def test_fig3_pipeline_cost(benchmark):
    mflops = benchmark(tile_multiply_mflops, 32, 256, ALPHA_MIATA)
    assert mflops > 0


def test_fig3a_alpha(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_tile_locality.run(machine="alpha", tiles=(24, 28, 32), ldas=LDAS),
        rounds=1,
        iterations=1,
    )
    non = dict(zip(result.column("lda"), result.column("noncontig_T32")))
    con = result.column("contig_T32")
    assert len(set(con)) == 1, "contiguous tiles must be insensitive to lda"
    assert non[256] < 0.8 * non[224], "power-of-two lda must crater"
    emit("Figure 3a (DEC Alpha)", result.to_text(with_chart=False))


def test_fig3b_ultra(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_tile_locality.run(machine="ultra", tiles=(24, 28, 32), ldas=LDAS),
        rounds=1,
        iterations=1,
    )
    non = dict(zip(result.column("lda"), result.column("noncontig_T32")))
    assert non[256] < non[224], "instability present on the Ultra too"
    emit("Figure 3b (Sun Ultra 60)", result.to_text(with_chart=False))
