"""Figure 2 bench: padding under dynamic vs fixed tile selection.

Times the full dynamic truncation-point search over the paper's size range
and regenerates the padding table.
"""

from repro.experiments import fig2_padding
from repro.layout.padding import select_tiling

from conftest import emit


def test_fig2_dynamic_selection_sweep(benchmark):
    result = benchmark(lambda: fig2_padding.run(sizes=range(16, 1101)))
    rows = {row[0]: row for row in result.rows}
    # The paper's worked example and the headline contrast.
    assert rows[513][2] == 528 and rows[513][3] == 1024
    # Worst-case dynamic pad: 15 through n=1024, 31 for the next octave.
    assert max(r[2] - r[1] for r in result.rows if 65 <= r[0] <= 1024) <= 15
    assert max(r[2] - r[1] for r in result.rows if r[0] > 1024) <= 31
    key = [rows[n] for n in (150, 256, 500, 512, 513, 700, 1000, 1024)]
    emit(
        "Figure 2 (n, original, padded_dynamic, padded_fixed32, tile)",
        "\n".join(str(r) for r in key),
    )


def test_fig2_single_selection_cost(benchmark):
    # The per-call planning cost MODGEMM pays at its interface.
    t = benchmark(select_tiling, 513)
    assert t.padded == 528
