"""Stacked-batch benchmark: items/sec for batched vs threaded vs loop.

Runs same-geometry batches through the three dispatch paths

* **batched** — ``multiply_many(..., batch="auto")``: one stacked-Morton
  :class:`BatchPlan` recursion over the whole ``(B, ...)`` stack,
* **threaded** — ``multiply_many(..., batch=False)``: the per-item thread
  pool, where same-geometry items serialise on their shared plan's lock,
* **loop** — a plain sequential ``session.multiply`` per item,

over sizes {64, 96, 128} x batch sizes {8, 32, 128} and emits
``BENCH_batch.json`` at the repo root with per-cell items/sec, GFLOP/s,
and the batched/threaded and batched/loop speedups.

Hard assertions here are limited to deterministic claims (bit-identity of
the three paths, counter movement); the throughput guard — batched is at
least 3x the threaded path's items/sec for batches >= 32 of 96x96 — is
enforced by ``validate_bench_batch.py`` on the emitted JSON, in CI via
``make bench-smoke``.  Set ``BENCH_BATCH_QUICK=1`` for a seconds-scale
smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import emit
from repro.engine import GemmSession

QUICK = os.environ.get("BENCH_BATCH_QUICK", "") not in ("", "0")
SIZES = [64, 96] if QUICK else [64, 96, 128]
BATCHES = [8, 32] if QUICK else [8, 32, 128]
ROUNDS = 3 if QUICK else 5
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


@pytest.fixture(scope="module")
def report():
    data = {
        "benchmark": "stacked-batch",
        "schema_version": 1,
        "quick": QUICK,
        "host": {"cpu_count": os.cpu_count() or 1},
        "rows": [],
    }
    yield data
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    emit("BENCH_batch.json", f"wrote {OUT_PATH} ({len(data['rows'])} rows)")


def _best_seconds(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(pairs, runner):
    """Warm the session once, then best-of-rounds items/sec."""
    runner()  # plan compile + pool warm-up
    secs = _best_seconds(runner)
    return secs


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("batch_items", BATCHES)
def test_batch_dispatch_grid(rng, report, n, batch_items):
    pairs = [
        (
            np.asfortranarray(rng.standard_normal((n, n))),
            np.asfortranarray(rng.standard_normal((n, n))),
        )
        for _ in range(batch_items)
    ]
    flops_per_item = 2.0 * n**3

    with GemmSession() as s:
        secs_batched = _measure(pairs, lambda: s.multiply_many(pairs))
        outs_batched = s.multiply_many(pairs)
        stats = s.stats()
    with GemmSession() as s:
        secs_threaded = _measure(
            pairs, lambda: s.multiply_many(pairs, batch=False)
        )
        outs_threaded = s.multiply_many(pairs, batch=False)
    with GemmSession() as s:
        secs_loop = _measure(
            pairs, lambda: [s.multiply(a, b) for a, b in pairs]
        )
        outs_loop = [s.multiply(a, b) for a, b in pairs]

    # The three paths are the same recursion in different dispatch
    # clothing: results must be bit-identical, not merely close.
    for ob, ot, ol in zip(outs_batched, outs_threaded, outs_loop):
        assert np.array_equal(ob, ot)
        assert np.array_equal(ob, ol)
    assert stats.batched_executes >= 1
    assert stats.batch_items >= batch_items

    row = {
        "n": n,
        "batch": batch_items,
        "batched_items_per_sec": batch_items / secs_batched,
        "threaded_items_per_sec": batch_items / secs_threaded,
        "loop_items_per_sec": batch_items / secs_loop,
        "batched_gflops": flops_per_item * batch_items / secs_batched / 1e9,
        "threaded_gflops": flops_per_item * batch_items / secs_threaded / 1e9,
        "loop_gflops": flops_per_item * batch_items / secs_loop / 1e9,
        "speedup_vs_threaded": secs_threaded / secs_batched,
        "speedup_vs_loop": secs_loop / secs_batched,
        "bit_identical": True,
        "batched_executes": stats.batched_executes,
        "batch_convert_seconds_saved": stats.batch_convert_seconds_saved,
    }
    report["rows"].append(row)
    emit(
        f"batch n={n} B={batch_items}",
        f"batched {row['batched_items_per_sec']:8.0f} it/s "
        f"({row['batched_gflops']:.2f} GFLOP/s) | "
        f"threaded {row['threaded_items_per_sec']:8.0f} it/s | "
        f"loop {row['loop_items_per_sec']:8.0f} it/s | "
        f"{row['speedup_vs_threaded']:.2f}x vs threaded, "
        f"{row['speedup_vs_loop']:.2f}x vs loop",
    )
