"""Shared machinery for the per-figure experiment runners.

Every experiment returns an :class:`ExperimentResult` — a titled table of
rows plus chart series — which the CLI renders as text/ASCII charts and
the benchmark harness inspects programmatically.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..analysis.plotting import ascii_chart, format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    name: str  #: experiment id, e.g. "fig9"
    title: str
    columns: Sequence[str]
    rows: list[tuple]
    notes: str = ""
    #: chart series {label: (x column name, y column name)}
    chart: Mapping[str, tuple[str, str]] = field(default_factory=dict)
    x_label: str = ""
    y_label: str = ""

    def column(self, name: str) -> list:
        """All values of one named column."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def series(self) -> dict[str, tuple[list[float], list[float]]]:
        """Chart series resolved to concrete (xs, ys) lists."""
        return {
            label: (self.column(xc), self.column(yc))
            for label, (xc, yc) in self.chart.items()
        }

    def to_text(self, with_chart: bool = True) -> str:
        """Render title, notes, table, and (optionally) the ASCII chart."""
        parts = [f"== {self.name}: {self.title} =="]
        if self.notes:
            parts.append(self.notes.strip())
        parts.append(format_table(self.columns, self.rows))
        if with_chart and self.chart and len(self.rows) > 1:
            parts.append("")
            parts.append(
                ascii_chart(
                    self.series(),
                    title=self.title,
                    x_label=self.x_label,
                    y_label=self.y_label,
                )
            )
        return "\n".join(parts)

    def to_csv(self) -> str:
        """Render the rows as CSV (header included)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()
