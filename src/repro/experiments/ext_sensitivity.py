"""Extension experiment — cache-organisation sensitivity of the anomaly.

Two classic analyses applied to the Section 4.2 conflict regime, following
the paper's reference [11] (Hill & Smith, "Evaluating associativity in CPU
caches"):

* **Associativity sweep** — the conflicting size's MODGEMM trace through
  caches of identical capacity but associativity 1, 2, 4 and fully
  associative.  The Section 4.2 conflicts are pairwise (NW vs SW quadrant
  bases), so two ways should absorb most of them — corroborating the
  three-C classification from the replacement-policy side.

* **Working-set curve** — fully-associative miss counts for every capacity
  from one stack-distance pass, for both MODGEMM and DGEFMM.  The knees
  locate each algorithm's working sets (leaf tile pair, quadrant group,
  whole matrices); MODGEMM's contiguous tiles give it the earlier knee,
  which is Figure 3's stability argument in working-set form.
"""

from __future__ import annotations

import math

import numpy as np

from ..cachesim.cache import CacheConfig, LRUCache
from ..cachesim.classify import capacity_miss_curve
from ..cachesim.machines import ATOM_EXPERIMENT, scale_machine
from ..cachesim.trace import TraceCollector
from ..cachesim.tracegen import dgefmm_trace, modgemm_trace
from ..layout.padding import TileRange, select_common_tiling
from .runner import ExperimentResult

__all__ = ["run_associativity", "run_working_set"]


def _conflicting_traces(scale: int, paper_size: int = 512):
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    machine = scale_machine(ATOM_EXPERIMENT, scale)
    config = machine.levels[0]
    tile_range = TileRange(16 // dim_scale, 64 // dim_scale)
    n = paper_size // dim_scale  # default: the conflicting regime
    plan = select_common_tiling((n, n, n), tile_range)
    assert plan is not None
    mod = TraceCollector()
    modgemm_trace(plan, mod)
    dge = TraceCollector()
    dgefmm_trace(n, n, n, dge, truncation=64 // dim_scale)
    return config, n * dim_scale, mod.concatenate(), dge.concatenate()


def run_associativity(scale: int = 16, paper_size: int = 512) -> ExperimentResult:
    """Miss ratios of the conflicting size vs cache associativity."""
    config, n_paper, mod_trace, dge_trace = _conflicting_traces(scale, paper_size)
    rows = []
    for label, assoc in (("1-way (DM)", 1), ("2-way", 2), ("4-way", 4)):
        cfg = CacheConfig(config.size_bytes, config.block_bytes, assoc=assoc)
        ratios = []
        for trace in (mod_trace, dge_trace):
            # collapse consecutive duplicates for the LRU reference speed
            blocks = trace >> cfg.block_bits
            keep = np.empty(blocks.size, dtype=bool)
            keep[0] = True
            np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
            sub = trace[keep]
            sim = LRUCache(cfg)
            misses = sim.access(sub, return_mask=False)
            ratios.append(misses / trace.size)
        rows.append((n_paper, label, 100.0 * ratios[0], 100.0 * ratios[1]))
    # Fully associative via the capacity curve at full capacity.
    fa_mod = capacity_miss_curve(mod_trace, config.block_bytes, [config.n_blocks])[0]
    fa_dge = capacity_miss_curve(dge_trace, config.block_bytes, [config.n_blocks])[0]
    rows.append(
        (
            n_paper,
            "fully assoc.",
            100.0 * fa_mod / mod_trace.size,
            100.0 * fa_dge / dge_trace.size,
        )
    )
    return ExperimentResult(
        name="ext-assoc",
        title=f"Associativity sweep at the conflicting size (capacity "
        f"{config.size_bytes // 1024} KB)",
        columns=("n_paper", "organisation", "modgemm_miss_pct", "dgefmm_miss_pct"),
        rows=rows,
        notes=(
            "The Section 4.2 conflicts are pairwise quadrant aliases: two "
            "ways should recover most of the fully-associative miss ratio "
            "for MODGEMM."
        ),
    )


def run_working_set(scale: int = 16, paper_size: int = 512) -> ExperimentResult:
    """Fully-associative miss ratio vs capacity (working-set knees)."""
    config, n_paper, mod_trace, dge_trace = _conflicting_traces(scale, paper_size)
    capacities = [2**i for i in range(2, config.n_blocks.bit_length() + 2)]
    mod = capacity_miss_curve(mod_trace, config.block_bytes, capacities)
    dge = capacity_miss_curve(dge_trace, config.block_bytes, capacities)
    rows = [
        (
            n_paper,
            cap * config.block_bytes,
            100.0 * m / mod_trace.size,
            100.0 * d / dge_trace.size,
        )
        for cap, m, d in zip(capacities, mod, dge)
    ]
    return ExperimentResult(
        name="ext-workingset",
        title="Fully-associative miss ratio vs capacity (working sets)",
        columns=("n_paper", "capacity_bytes", "modgemm_miss_pct", "dgefmm_miss_pct"),
        rows=rows,
        notes=(
            "Mattson one-pass curve: knees mark the working sets (leaf "
            "operand pair, quadrant group, whole operands)."
        ),
        chart={
            "MODGEMM": ("capacity_bytes", "modgemm_miss_pct"),
            "DGEFMM": ("capacity_bytes", "dgefmm_miss_pct"),
        },
        x_label="capacity (bytes)",
        y_label="miss %",
    )
