"""Figure 2 — effect of tile-size selection on padding.

Four quantities versus the matrix size ``n``: the original size itself,
the padded size under dynamic tile selection from 16..64, the padded size
under a fixed tile ``T = 32``, and the dynamically selected tile.  This is
a purely arithmetic experiment — the reproduction is exact, including the
paper's worked example 513 -> 528 (tile 33, depth 4) versus 1024 fixed.
"""

from __future__ import annotations

from typing import Iterable

from ..core.truncation import TruncationPolicy
from ..layout.padding import TileRange, select_tiling
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    sizes: "Iterable[int] | None" = None,
    tile_range: TileRange = TileRange(),
    fixed_tile: int = 32,
) -> ExperimentResult:
    """Padding table across sizes: dynamic vs fixed tile selection."""
    if sizes is None:
        sizes = range(16, 1101)
    fixed = TruncationPolicy.fixed(fixed_tile)
    rows = []
    for n in sizes:
        n = int(n)
        dyn = select_tiling(n, tile_range)
        fx = fixed.plan(n, n, n)
        assert fx is not None
        rows.append((n, n, dyn.padded, fx[0].padded, dyn.tile))
    return ExperimentResult(
        name="fig2",
        title="Effect of tile size on padding",
        columns=("n", "original", "padded_dynamic", f"padded_fixed{fixed_tile}", "tile_dynamic"),
        rows=rows,
        notes=(
            f"Dynamic tile selection from [{tile_range.min_tile}, "
            f"{tile_range.max_tile}] keeps padding bounded by a small "
            "constant; a fixed tile pads proportionally to n in the worst "
            "case (513 -> 1024)."
        ),
        chart={
            "original n": ("n", "original"),
            "padded (dynamic T)": ("n", "padded_dynamic"),
            f"padded (fixed T={fixed_tile})": ("n", f"padded_fixed{fixed_tile}"),
            "tile chosen": ("n", "tile_dynamic"),
        },
        x_label="matrix size n",
        y_label="elements",
    )
