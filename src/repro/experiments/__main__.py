"""Command-line entry for the experiment suite.

Examples::

    python -m repro.experiments fig2
    python -m repro.experiments fig3 --machine ultra
    python -m repro.experiments fig5 --quick
    python -m repro.experiments fig5-model --machine alpha
    python -m repro.experiments fig9 --scale 4
    python -m repro.experiments fig9 --explain 505
    python -m repro.experiments all --quick
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.timing import TimingProtocol
from . import (
    ext_accuracy,
    ext_attribution,
    ext_conflict_aware,
    ext_miss_classification,
    ext_parameters,
    ext_sensitivity,
    fig2_padding,
    fig3_tile_locality,
    fig56_perf,
    fig7_conversion,
    fig8_noconversion,
    fig9_cache,
)

QUICK_SIZES = [150, 200, 250, 300, 400, 500, 513]
QUICK_PROTOCOL = TimingProtocol(small_threshold=0, small_reps=1, trials=1)


def _sizes(args):
    if args.sizes:
        return [int(s) for s in args.sizes.split(",")]
    if args.quick:
        return QUICK_SIZES
    return None


def _protocol(args):
    return QUICK_PROTOCOL if args.quick else None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures.",
    )
    parser.add_argument(
        "figure",
        choices=[
            "fig2", "fig3", "fig5", "fig6", "fig5-model", "fig6-model",
            "fig7", "fig8", "fig9", "ext-conflict", "ext-classify",
            "ext-parameters", "ext-accuracy", "ext-attribution",
            "ext-assoc", "ext-workingset", "all",
        ],
    )
    parser.add_argument("--machine", default=None, choices=["alpha", "ultra", "atom"])
    parser.add_argument("--sizes", default="", help="comma-separated size list")
    parser.add_argument("--scale", type=int, default=4, help="fig9/model cache scale")
    parser.add_argument("--quick", action="store_true", help="small grids, single trials")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
    parser.add_argument("--no-chart", action="store_true")
    parser.add_argument("--explain", type=int, default=0, metavar="N",
                        help="fig9: print the Section 4.2 conflict analysis for size N")
    args = parser.parse_args(argv)

    if args.figure == "fig9" and args.explain:
        print(fig9_cache.explain(args.explain))
        return 0

    results = []
    want = args.figure

    if want in ("fig2", "all"):
        sizes = _sizes(args) or (range(16, 1101, 1) if not args.quick else range(16, 1101, 7))
        results.append(fig2_padding.run(sizes=sizes))
    if want in ("fig3", "all"):
        machine = args.machine or "alpha"
        ldas = range(96, 321, 16) if args.quick else None
        results.append(fig3_tile_locality.run(machine=machine, ldas=ldas))
        if want == "all":
            results.append(fig3_tile_locality.run(machine="ultra", ldas=ldas))
    if want in ("fig5", "fig6", "all"):
        results.append(
            fig56_perf.run_measured(sizes=_sizes(args), protocol=_protocol(args))
        )
    if want in ("fig5-model", "fig6-model"):
        machine = args.machine or ("alpha" if want == "fig5-model" else "ultra")
        results.append(
            fig56_perf.run_modeled(machine=machine, sizes=_sizes(args), scale=16)
        )
    if want == "all":
        results.append(fig56_perf.run_modeled(machine="alpha", sizes=_sizes(args), scale=16))
        results.append(fig56_perf.run_modeled(machine="ultra", sizes=_sizes(args), scale=16))
    if want in ("fig7", "all"):
        results.append(
            fig7_conversion.run(sizes=_sizes(args), protocol=_protocol(args))
        )
    if want in ("fig8", "all"):
        results.append(
            fig8_noconversion.run(sizes=_sizes(args), protocol=_protocol(args))
        )
    if want in ("fig9", "all"):
        results.append(fig9_cache.run(scale=args.scale))
    if want in ("ext-conflict", "all"):
        results.append(ext_conflict_aware.run(scale=args.scale))
    if want in ("ext-attribution", "all"):
        results.append(ext_attribution.run())
    if want in ("ext-classify", "all"):
        results.append(ext_miss_classification.run())
    if want in ("ext-accuracy", "all"):
        acc_sizes = _sizes(args) if args.sizes else ([64, 150] if args.quick else None)
        results.append(ext_accuracy.run(sizes=acc_sizes, trials=1 if args.quick else 3))
    if want in ("ext-assoc",):
        results.append(ext_sensitivity.run_associativity())
    if want in ("ext-workingset",):
        results.append(ext_sensitivity.run_working_set())
    if want in ("ext-parameters", "all"):
        param_sizes = [int(s) for s in args.sizes.split(",")] if args.sizes \
            else ([300] if args.quick else None)
        results.append(
            ext_parameters.run(sizes=param_sizes, protocol=_protocol(args))
        )

    for res in results:
        if args.csv:
            sys.stdout.write(res.to_csv())
        else:
            print(res.to_text(with_chart=not args.no_chart))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
