"""Extension experiment — CProf-style miss classification (Section 4.2).

The paper: "Preliminary investigations using CProf reveal that this drop
[at 513] is due to a reduction in conflict misses."  This experiment
verifies that claim with the three-C decomposition: across the Figure 9
window, compulsory and capacity misses barely move, while the conflict
component collapses exactly when dynamic tile selection leaves the
power-of-two padded size.

Runs at the scale-16 geometry by default (the classification's
fully-associative reference is per-access work, so the smallest faithful
geometry is preferred; the conflict collapse is alignment-driven and
survives any exact geometric scale).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..cachesim.classify import classify_misses
from ..cachesim.machines import ATOM_EXPERIMENT, scale_machine
from ..cachesim.trace import TraceCollector
from ..cachesim.tracegen import modgemm_trace
from ..layout.padding import TileRange, select_common_tiling
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    scale: int = 16,
    sizes: "Iterable[int] | None" = None,
) -> ExperimentResult:
    """Three-C decomposition of MODGEMM misses across the window."""
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    machine = scale_machine(ATOM_EXPERIMENT, scale)
    config = machine.levels[0]
    tile_range = TileRange(16 // dim_scale, 64 // dim_scale)
    if sizes is None:
        # A tight window straddling the 513 analogue.
        mid = -(-513 // dim_scale)
        sizes = range(mid - 3, mid + 3)
    sizes = [int(n) for n in sizes]

    rows = []
    for n in sizes:
        plan = select_common_tiling((n, n, n), tile_range)
        assert plan is not None
        coll = TraceCollector()
        modgemm_trace(plan, coll)
        mc = classify_misses(coll.concatenate(), config)
        rows.append(
            (
                n * dim_scale,
                n,
                plan[0].tile,
                100.0 * mc.miss_ratio,
                100.0 * mc.compulsory / mc.accesses,
                100.0 * mc.capacity / mc.accesses,
                100.0 * mc.conflict / mc.accesses,
                100.0 * mc.conflict_share,
            )
        )
    return ExperimentResult(
        name="ext-classify",
        title="Three-C miss classification across the Figure 9 window (MODGEMM)",
        columns=(
            "n_paper",
            "n_scaled",
            "tile",
            "miss_pct",
            "compulsory_pct",
            "capacity_pct",
            "conflict_pct",
            "conflict_share_pct",
        ),
        rows=rows,
        notes=(
            "Expect compulsory and capacity components roughly flat while "
            "the conflict component collapses at the 513-analogue — the "
            "paper's CProf diagnosis, reproduced."
        ),
        chart={
            "total miss %": ("n_paper", "miss_pct"),
            "conflict %": ("n_paper", "conflict_pct"),
            "capacity %": ("n_paper", "capacity_pct"),
        },
        x_label="matrix size (paper scale)",
        y_label="% of accesses",
    )
