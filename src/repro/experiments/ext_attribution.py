"""Extension experiment — per-structure miss attribution (CProf's role).

The paper's Section 4.2 analysis pinpoints *which* structures conflict:
"since the NW and SW quadrants are separated by the NE quadrant, they map
to the same locations in cache ... any operations involving these two
quadrants will incur a significant number of cache misses."  CProf is the
tool that produced that insight; this experiment reproduces it with
:class:`repro.cachesim.classify.RegionMap`: every access of a full MODGEMM
trace is attributed to a named structure (operand quadrants ``A.NW`` ...
``C.SE``, workspace levels, dense interface arrays), and the per-region
miss ratios are reported for a conflicting size and its conflict-free
neighbour.
"""

from __future__ import annotations

import math

from ..cachesim.classify import RegionMap
from ..cachesim.hierarchy import CacheHierarchy
from ..cachesim.machines import ATOM_EXPERIMENT, scale_machine
from ..cachesim.trace import TraceCollector
from ..cachesim.tracegen import modgemm_trace
from ..cachesim.vectorized import DirectMappedCache
from ..layout.padding import TileRange, select_common_tiling
from .runner import ExperimentResult

__all__ = ["run"]


def run(scale: int = 16, before: "int | None" = None, after: "int | None" = None) -> ExperimentResult:
    """Per-region miss ratios at a conflicting size vs its clean neighbour."""
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    machine = scale_machine(ATOM_EXPERIMENT, scale)
    config = machine.levels[0]
    tile_range = TileRange(16 // dim_scale, 64 // dim_scale)
    if before is None:
        before = 512 // dim_scale  # the conflicting regime
    if after is None:
        after = -(-513 // dim_scale)  # the clean regime

    rows = []
    for n in (before, after):
        plan = select_common_tiling((n, n, n), tile_range)
        assert plan is not None
        regions = RegionMap()
        coll = TraceCollector()
        modgemm_trace(plan, coll, regions=regions)
        trace = coll.concatenate()
        dm = DirectMappedCache(config)
        miss_mask = dm.access(trace, return_mask=True)
        for name, (accesses, misses) in sorted(
            regions.attribute(trace, miss_mask).items()
        ):
            if accesses == 0:
                continue
            rows.append(
                (
                    n * dim_scale,
                    plan[0].tile,
                    name,
                    accesses,
                    misses,
                    100.0 * misses / accesses,
                )
            )
    return ExperimentResult(
        name="ext-attribution",
        title="Per-structure miss attribution (Section 4.2's quadrant diagnosis)",
        columns=("n_paper", "tile", "region", "accesses", "misses", "miss_pct"),
        rows=rows,
        notes=(
            "At the conflicting (power-of-two padded) size, every operand "
            "quadrant runs hot because NW/SW pairs alias in the cache; at "
            "the clean neighbour the same regions cool down together.  "
            "Workspace regions (ws0 = the largest scratch level) show the "
            "same contrast."
        ),
    )
