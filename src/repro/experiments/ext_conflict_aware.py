"""Extension experiment — conflict-aware tile selection (paper future work).

Section 4.2 ends: "We are currently examining ways to eliminate these
conflict misses."  This experiment implements and evaluates one such way:
the dynamic truncation search additionally rejects tile choices whose
Morton quadrant bases are congruent modulo the L1 cache size, accepting a
little extra padding instead (the 505..512 regime then pads to 528 with
tile 33, exactly what 513 gets for free).

The output extends Figure 9 with a third column: the conflict-aware
MODGEMM's miss ratio, which should sit at the post-513 level *throughout*
the window, at the cost of the overpadding flops also reported.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..cachesim.hierarchy import CacheHierarchy
from ..cachesim.machines import ATOM_EXPERIMENT, scale_machine
from ..cachesim.trace import SimulatorSink
from ..cachesim.tracegen import modgemm_trace
from ..layout.padding import TileRange, select_common_tiling
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    scale: int = 4,
    sizes: "Iterable[int] | None" = None,
) -> ExperimentResult:
    """Miss ratios of standard vs conflict-aware tile selection."""
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    machine = scale_machine(ATOM_EXPERIMENT, scale)
    cache_bytes = machine.levels[0].size_bytes
    tile_range = TileRange(16 // dim_scale, 64 // dim_scale)
    if sizes is None:
        sizes = range(-(-500 // dim_scale), -(-523 // dim_scale) + 1)
    sizes = [int(n) for n in sizes]

    rows = []
    for n in sizes:
        std = select_common_tiling((n, n, n), tile_range)
        aware = select_common_tiling((n, n, n), tile_range, cache_bytes=cache_bytes)
        assert std is not None and aware is not None
        h_std = CacheHierarchy(list(machine.levels))
        ops_std = modgemm_trace(std, SimulatorSink(h_std))
        h_aw = CacheHierarchy(list(machine.levels))
        ops_aw = modgemm_trace(aware, SimulatorSink(h_aw))
        rows.append(
            (
                n * dim_scale,
                n,
                std[0].tile,
                aware[0].tile,
                100.0 * h_std.miss_ratio(),
                100.0 * h_aw.miss_ratio(),
                ops_aw.flops / ops_std.flops,
            )
        )
    return ExperimentResult(
        name="ext-conflict",
        title="Conflict-aware tile selection vs standard (Figure 9 extension)",
        columns=(
            "n_paper",
            "n_scaled",
            "tile_std",
            "tile_aware",
            "std_miss_pct",
            "aware_miss_pct",
            "flop_ratio",
        ),
        rows=rows,
        notes=(
            "The conflict-aware policy should hold the post-513 miss level "
            "across the whole window; flop_ratio shows the overpadding "
            "price it pays in the power-of-two regime."
        ),
        chart={
            "standard": ("n_paper", "std_miss_pct"),
            "conflict-aware": ("n_paper", "aware_miss_pct"),
        },
        x_label="matrix size (paper scale)",
        y_label="miss %",
    )
