"""Figure 3 — tile-multiply performance vs leading dimension.

``C <- A . B`` on ``T x T`` submatrices of a base matrix ``M``:
``A[1,1] = M[1,1]``, ``B[1,1] = M[T+1,T+1]``, ``C[1,1] = M[2T+1,2T+1]``.
*Non-contiguous* submatrices inherit the base matrix's leading dimension
(the x-axis); *contiguous* ones are packed with leading dimension ``T``.

The paper measures MFLOPS on the two machines; here the trace of the tile
multiply runs through the machine's simulated cache hierarchy and the
linear time model converts miss counts to MFLOPS.  The reproduced
behaviours: contiguous tiles are flat in the leading dimension, while
non-contiguous tiles crater at power-of-two leading dimensions
(self-interference), most dramatically on the Alpha's small 8 KB
direct-mapped L1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..cachesim.hierarchy import CacheHierarchy
from ..cachesim.machines import MACHINES, Machine
from ..cachesim.timemodel import TimingModel
from ..cachesim.trace import ELEM, SimulatorSink
from ..cachesim.tracegen import matmul_trace
from .runner import ExperimentResult

__all__ = ["run", "tile_multiply_mflops"]


def tile_multiply_mflops(
    tile: int, lda: "int | None", machine: Machine, base: int = 1 << 20
) -> float:
    """Modelled MFLOPS of one ``T x T`` submatrix multiply.

    ``lda=None`` packs the three tiles contiguously (leading dimension
    ``T``); otherwise the operands sit inside a base matrix with the given
    leading dimension at offsets (0,0), (T,T) and (2T,2T).
    """
    if lda is None:
        base_a = base
        base_b = base + tile * tile * ELEM
        base_c = base + 2 * tile * tile * ELEM
        ld = tile
    else:
        if lda < 3 * tile:
            raise ValueError(f"lda={lda} cannot hold three diagonal {tile}-tiles")
        base_a = base
        base_b = base + ELEM * (tile + lda * tile)
        base_c = base + ELEM * (2 * tile + lda * 2 * tile)
        ld = lda
    hierarchy = CacheHierarchy(list(machine.levels))
    accesses = matmul_trace(
        tile, tile, tile, base_a, ld, base_b, ld, base_c, ld,
        SimulatorSink(hierarchy),
    )
    flops = 2 * tile**3
    model = TimingModel(machine)
    run_ = model.run_trace(flops, accesses, hierarchy)
    return run_.mflops


def run(
    machine: "str | Machine" = "alpha",
    tiles: Sequence[int] = (24, 28, 32),
    ldas: "Iterable[int] | None" = None,
) -> ExperimentResult:
    """MFLOPS of T x T submatrix multiplies vs leading dimension."""
    m = MACHINES[machine] if isinstance(machine, str) else machine
    if ldas is None:
        ldas = range(96, 321, 4)
    ldas = [int(x) for x in ldas]
    rows = []
    for lda in ldas:
        row: list = [lda]
        for t in tiles:
            row.append(tile_multiply_mflops(t, lda, m))
        for t in tiles:
            row.append(tile_multiply_mflops(t, None, m))
        rows.append(tuple(row))
    columns = (
        ["lda"]
        + [f"noncontig_T{t}" for t in tiles]
        + [f"contig_T{t}" for t in tiles]
    )
    chart = {f"non-contiguous T={t}": ("lda", f"noncontig_T{t}") for t in tiles}
    chart.update({f"contiguous T={t}": ("lda", f"contig_T{t}") for t in tiles})
    return ExperimentResult(
        name="fig3",
        title=f"Tile multiply MFLOPS vs leading dimension ({m.name})",
        columns=tuple(columns),
        rows=rows,
        notes=(
            "Contiguous tiles (leading dimension = T) are insensitive to "
            "the base matrix; non-contiguous tiles self-interfere when the "
            "leading dimension is a power of two (256 here), which is what "
            "justifies Morton order internally (Section 3.3)."
        ),
        chart=chart,
        x_label="base-matrix leading dimension",
        y_label="MFLOPS",
    )
