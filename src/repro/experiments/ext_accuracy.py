"""Extension experiment — numerical accuracy of the fast algorithms.

The paper defers numerical analysis to Higham ("we do not discuss ...
numerical issues concerning these fast matrix multiplication algorithms",
Section 2), but a usable library should surface them: Strassen-type
algorithms satisfy a weaker *normwise* error bound than the conventional
algorithm, with the coefficient growing with the number of recursion
levels.

This experiment measures the max relative error of MODGEMM (both
schedules), DGEFMM, DGEMMW and the conventional product against a
float128-free reference (numpy's dgemm) across sizes, and checks every
measurement against the conservative Higham-style bound in
:mod:`repro.analysis.accuracy`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.accuracy import higham_bound_factor, max_relative_error
from ..baselines.dgefmm import dgefmm
from ..baselines.dgemmw import dgemmw
from ..core.modgemm import modgemm
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    sizes: "Iterable[int] | None" = None,
    seed: int = 0,
    trials: int = 3,
) -> ExperimentResult:
    """Worst-case relative errors of all variants vs the Higham bound."""
    if sizes is None:
        sizes = [64, 128, 256, 513, 1024]
    sizes = [int(n) for n in sizes]
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        worst = {
            "modgemm": 0.0,
            "strassen": 0.0,
            "dgefmm": 0.0,
            "dgemmw": 0.0,
        }
        for _ in range(trials):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            ref = a @ b
            worst["modgemm"] = max(
                worst["modgemm"], max_relative_error(modgemm(a, b), ref)
            )
            worst["strassen"] = max(
                worst["strassen"],
                max_relative_error(modgemm(a, b, variant="strassen"), ref),
            )
            worst["dgefmm"] = max(
                worst["dgefmm"], max_relative_error(dgefmm(a, b), ref)
            )
            worst["dgemmw"] = max(
                worst["dgemmw"], max_relative_error(dgemmw(a, b), ref)
            )
        bound = higham_bound_factor(n, 16)
        rows.append(
            (
                n,
                worst["modgemm"],
                worst["strassen"],
                worst["dgefmm"],
                worst["dgemmw"],
                bound,
            )
        )
    return ExperimentResult(
        name="ext-accuracy",
        title="Max relative error vs numpy dgemm (worst of trials)",
        columns=(
            "n",
            "modgemm",
            "modgemm_strassen",
            "dgefmm",
            "dgemmw",
            "higham_bound",
        ),
        rows=rows,
        notes=(
            "Strassen-type errors grow polynomially faster than the "
            "conventional algorithm's but stay far below the conservative "
            "Higham coefficient; all implementations agree to ~1e-13 at "
            "the paper's largest sizes."
        ),
        chart={
            "MODGEMM": ("n", "modgemm"),
            "DGEFMM": ("n", "dgefmm"),
            "bound": ("n", "higham_bound"),
        },
        x_label="matrix size n",
        y_label="max relative error",
    )
