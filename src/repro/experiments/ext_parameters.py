"""Extension experiment — dgemm parameter variety (paper future work).

Section 6: "Our implementation supports the same interface as Level 3
BLAS dgemm routine; we plan to examine its performance for a variety of
input parameters."  This experiment does exactly that: it sweeps the
transpose flags and the alpha/beta scalars and reports each combination's
time normalised to the plain ``C <- A.B`` case.

Expected shape: transposition is nearly free (it is fused into the Morton
conversion, Section 3.5 — no extra pass), while ``beta != 0`` costs one
post-processing sweep over C and nonunit ``alpha`` one scaling pass.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.timing import TimingProtocol
from ..core.modgemm import modgemm
from ..core.truncation import TruncationPolicy
from .runner import ExperimentResult

__all__ = ["run", "CASES"]

#: (label, op_a, op_b, alpha, beta)
CASES = [
    ("C=A.B", "n", "n", 1.0, 0.0),
    ("C=A'.B", "t", "n", 1.0, 0.0),
    ("C=A.B'", "n", "t", 1.0, 0.0),
    ("C=A'.B'", "t", "t", 1.0, 0.0),
    ("C=2.5*A.B", "n", "n", 2.5, 0.0),
    ("C=A.B+C", "n", "n", 1.0, 1.0),
    ("C=2.5*A.B-0.5*C", "n", "n", 2.5, -0.5),
]


def run(
    sizes: "Iterable[int] | None" = None,
    protocol: TimingProtocol | None = None,
    policy: "TruncationPolicy | None" = None,
    seed: int = 0,
) -> ExperimentResult:
    """Times for the dgemm parameter combinations, normalised per size."""
    from .tuning import HOST_POLICY

    if sizes is None:
        sizes = [300, 513]
    sizes = [int(n) for n in sizes]
    protocol = protocol or TimingProtocol()
    policy = policy or HOST_POLICY
    rng = np.random.default_rng(seed)

    rows = []
    for n in sizes:
        a = np.asfortranarray(rng.standard_normal((n, n)))
        b = np.asfortranarray(rng.standard_normal((n, n)))
        c0 = np.asfortranarray(rng.standard_normal((n, n)))
        base = None
        for label, op_a, op_b, alpha, beta in CASES:
            def call():
                c = c0.copy() if beta != 0.0 else None
                return modgemm(
                    a, b, c=c, alpha=alpha, beta=beta,
                    op_a=op_a, op_b=op_b, policy=policy,
                )

            t = protocol.run(call, n)
            if base is None:
                base = t
            rows.append((n, label, op_a, op_b, alpha, beta, t, t / base))
    return ExperimentResult(
        name="ext-parameters",
        title="dgemm parameter variety (normalised to C=A.B per size)",
        columns=("n", "case", "op_a", "op_b", "alpha", "beta", "seconds", "vs_plain"),
        rows=rows,
        notes=(
            "Transposes fuse into the Morton conversion and should be "
            "nearly free; beta != 0 adds a copy of C plus one accumulation "
            "pass, alpha != 1 one scaling pass."
        ),
    )
