"""Figures 5 & 6 — execution time of the three implementations.

Both figures plot execution time normalised to DGEFMM (dynamic peeling)
across matrix sizes 150..1024, alpha=1, beta=0; Figure 5 on the DEC Alpha,
Figure 6 on the Sun Ultra 60.  Panel (a) is MODGEMM/DGEFMM, panel (b)
DGEMMW/DGEFMM.

Two modes reproduce them here (see DESIGN.md substitutions):

* :func:`run_measured` — wall-clock on the host under the paper's timing
  protocol.  The host plays the role of one platform.
* :func:`run_modeled` — the address traces of all three implementations
  through a geometry-scaled simulation of the Alpha or Ultra hierarchy
  plus the linear time model; matrix dimensions scale with the square
  root of the byte-scale factor so every cache-congruence is preserved.
  This supplies the cross-platform axis the paper's hardware provided.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..analysis.timing import TimingProtocol
from ..baselines.dgefmm import dgefmm
from ..baselines.dgemmw import dgemmw
from ..cachesim.machines import MACHINES, Machine, scale_machine
from ..cachesim.timemodel import TimingModel
from ..cachesim.trace import SimulatorSink
from ..cachesim.tracegen import dgefmm_trace, dgemmw_trace, modgemm_trace
from ..core.modgemm import modgemm
from ..core.truncation import TruncationPolicy
from ..layout.padding import TileRange, select_common_tiling
from .runner import ExperimentResult

__all__ = ["run_measured", "run_modeled", "default_sizes"]


def default_sizes(step: int = 50) -> list[int]:
    """The paper's 150..1024 sweep, including the interesting 500s."""
    sizes = sorted(set(list(range(150, 1025, step)) + [500, 512, 513, 528, 1024]))
    return sizes


def _norm_rows(sizes, times: dict[str, list[float]]):
    rows = []
    for i, n in enumerate(sizes):
        t_mod = times["modgemm"][i]
        t_dge = times["dgefmm"][i]
        t_gw = times["dgemmw"][i]
        rows.append(
            (n, t_mod, t_dge, t_gw, t_mod / t_dge, t_gw / t_dge)
        )
    return rows


_COLUMNS = (
    "n",
    "t_modgemm",
    "t_dgefmm",
    "t_dgemmw",
    "modgemm/dgefmm",
    "dgemmw/dgefmm",
)

_CHART = {
    "MODGEMM / DGEFMM": ("n", "modgemm/dgefmm"),
    "DGEMMW / DGEFMM": ("n", "dgemmw/dgefmm"),
}


def run_measured(
    sizes: "Iterable[int] | None" = None,
    protocol: TimingProtocol | None = None,
    seed: int = 0,
    policy: "TruncationPolicy | None" = None,
    dgefmm_truncation: "int | None" = None,
    dgemmw_truncation: "int | None" = None,
) -> ExperimentResult:
    """Wall-clock comparison on the host (alpha=1, beta=0).

    Truncation parameters default to the host-tuned values of
    :mod:`repro.experiments.tuning`, mirroring the paper's use of
    empirically determined truncation points per machine.
    """
    from .tuning import HOST_DGEFMM_TRUNCATION, HOST_DGEMMW_TRUNCATION, HOST_POLICY

    if sizes is None:
        sizes = default_sizes()
    sizes = [int(n) for n in sizes]
    protocol = protocol or TimingProtocol()
    policy = policy or HOST_POLICY
    t_dge = dgefmm_truncation or HOST_DGEFMM_TRUNCATION
    t_gw = dgemmw_truncation or HOST_DGEMMW_TRUNCATION
    rng = np.random.default_rng(seed)
    times: dict[str, list[float]] = {"modgemm": [], "dgefmm": [], "dgemmw": []}
    for n in sizes:
        a = np.asfortranarray(rng.standard_normal((n, n)))
        b = np.asfortranarray(rng.standard_normal((n, n)))
        times["modgemm"].append(
            protocol.run(lambda: modgemm(a, b, policy=policy), n)
        )
        times["dgefmm"].append(
            protocol.run(lambda: dgefmm(a, b, policy=t_dge), n)
        )
        times["dgemmw"].append(
            protocol.run(lambda: dgemmw(a, b, policy=t_gw), n)
        )
    return ExperimentResult(
        name="fig5_6_measured",
        title="Strassen-Winograd implementations, host wall-clock (normalised to DGEFMM)",
        columns=_COLUMNS,
        rows=_norm_rows(sizes, times),
        notes=(
            "Paper protocol: avg of 10 invocations below size 500, min of "
            "3 experiments.  Values < 1 mean faster than DGEFMM."
        ),
        chart=_CHART,
        x_label="matrix size n",
        y_label="time / DGEFMM",
    )


def run_modeled(
    machine: "str | Machine" = "alpha",
    sizes: "Iterable[int] | None" = None,
    scale: int = 16,
) -> ExperimentResult:
    """Cache-model comparison on a scaled Alpha/Ultra hierarchy.

    ``scale`` divides every cache capacity; matrix dimensions, tile range
    and truncation points divide by ``sqrt(scale)`` so buffer footprints
    shrink in step and all cache-size congruences survive.
    """
    m = MACHINES[machine] if isinstance(machine, str) else machine
    if sizes is None:
        sizes = default_sizes()
    sizes = [int(n) for n in sizes]
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    scaled = scale_machine(m, scale)
    tile_range = TileRange(
        max(2, 16 // dim_scale), max(4, 64 // dim_scale)
    )
    trunc = max(4, 64 // dim_scale)
    model = TimingModel(scaled)

    times: dict[str, list[float]] = {"modgemm": [], "dgefmm": [], "dgemmw": []}
    used_sizes = []
    for n in sizes:
        ns = max(tile_range.max_tile + 1, -(-n // dim_scale))
        used_sizes.append(ns)
        plan = select_common_tiling((ns, ns, ns), tile_range)
        assert plan is not None

        h = model.hierarchy()
        ops = modgemm_trace(plan, SimulatorSink(h))
        times["modgemm"].append(model.run_trace(ops.flops, ops.accesses, h).seconds)

        h = model.hierarchy()
        tr = dgefmm_trace(ns, ns, ns, SimulatorSink(h), truncation=trunc)
        times["dgefmm"].append(model.run_trace(tr.flops, tr.accesses, h).seconds)

        h = model.hierarchy()
        tw = dgemmw_trace(ns, ns, ns, SimulatorSink(h), truncation=trunc)
        times["dgemmw"].append(model.run_trace(tw.flops, tw.accesses, h).seconds)

    rows = [
        (orig,) + row[1:]
        for orig, row in zip(sizes, _norm_rows(used_sizes, times))
    ]
    return ExperimentResult(
        name=f"fig{'5' if m.name.startswith('alpha') else '6'}_modeled",
        title=f"Strassen-Winograd implementations, modelled on {m.name} (normalised to DGEFMM)",
        columns=_COLUMNS,
        rows=rows,
        notes=(
            f"Geometry-scaled by {scale} (dimensions by {dim_scale}); "
            "modelled seconds are for the scaled problem — only the ratios "
            "are meaningful, matching the paper's normalised presentation."
        ),
        chart=_CHART,
        x_label="matrix size n (paper scale)",
        y_label="time / DGEFMM",
    )
