"""Per-figure experiment runners (the paper's evaluation, Section 4).

Each module reproduces one figure; ``python -m repro.experiments <name>``
runs it from the command line.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for paper-vs-measured outcomes.
"""

from . import (
    ext_accuracy,
    ext_attribution,
    ext_conflict_aware,
    ext_miss_classification,
    ext_parameters,
    ext_sensitivity,
    fig2_padding,
    fig3_tile_locality,
    fig56_perf,
    fig7_conversion,
    fig8_noconversion,
    fig9_cache,
)
from .runner import ExperimentResult

__all__ = [
    "ExperimentResult",
    "fig2_padding",
    "fig3_tile_locality",
    "fig56_perf",
    "fig7_conversion",
    "fig8_noconversion",
    "fig9_cache",
    "ext_accuracy",
    "ext_attribution",
    "ext_conflict_aware",
    "ext_miss_classification",
    "ext_parameters",
    "ext_sensitivity",
]
