"""Figure 9 — cache miss ratios, MODGEMM vs DGEFMM (16 KB DM, 32 B blocks).

The paper traces both implementations with ATOM for matrix sizes 500..523
through a 16 KB direct-mapped cache with 32-byte blocks, finding (a)
MODGEMM's miss ratio below DGEFMM's throughout, and (b) a dramatic drop in
MODGEMM's ratio at size 513 — the sizes 505..512 pad to 512 with tile 32,
whose 8 KB leaf quadrant groups collide in the cache (NW and SW quadrant
bases sit exactly one cache-size apart), while 513 pads to 528 with tile
33, which breaks the power-of-two alignment.

The default run is geometry-scaled (cache capacity by ``scale``, matrix
dimensions and tile range by ``sqrt(scale)``) so it completes in seconds
while preserving every base-address congruence and therefore the anomaly;
``scale=1`` runs the paper's exact sizes (a few minutes of simulation).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..cachesim.machines import ATOM_EXPERIMENT, scale_machine
from ..cachesim.trace import SimulatorSink
from ..cachesim.tracegen import dgefmm_trace, modgemm_trace
from ..cachesim.hierarchy import CacheHierarchy
from ..layout.padding import TileRange, select_common_tiling, select_tiling
from .runner import ExperimentResult

__all__ = ["run", "explain"]


def run(
    scale: int = 4,
    sizes: "Iterable[int] | None" = None,
) -> ExperimentResult:
    """Miss ratios of MODGEMM and DGEFMM across the anomaly window."""
    dim_scale = math.isqrt(scale)
    if dim_scale * dim_scale != scale:
        raise ValueError(f"scale must be a perfect square, got {scale}")
    machine = scale_machine(ATOM_EXPERIMENT, scale)
    tile_range = TileRange(16 // dim_scale, 64 // dim_scale)
    trunc = 64 // dim_scale
    if sizes is None:
        sizes = range(-(-500 // dim_scale), -(-523 // dim_scale) + 1)
    sizes = [int(n) for n in sizes]

    rows = []
    for n in sizes:
        plan = select_common_tiling((n, n, n), tile_range)
        assert plan is not None
        h_mod = CacheHierarchy(list(machine.levels))
        modgemm_trace(plan, SimulatorSink(h_mod))
        h_dge = CacheHierarchy(list(machine.levels))
        dgefmm_trace(n, n, n, SimulatorSink(h_dge), truncation=trunc)
        rows.append(
            (
                n * dim_scale,
                n,
                plan[0].padded,
                plan[0].tile,
                100.0 * h_mod.miss_ratio(),
                100.0 * h_dge.miss_ratio(),
            )
        )
    cache = machine.levels[0]
    return ExperimentResult(
        name="fig9",
        title=(
            f"Miss ratios, {cache.size_bytes // 1024} KB direct-mapped, "
            f"{cache.block_bytes} B blocks (scale 1/{scale})"
        ),
        columns=(
            "n_paper",
            "n_scaled",
            "padded",
            "tile",
            "modgemm_miss_pct",
            "dgefmm_miss_pct",
        ),
        rows=rows,
        notes=(
            "Expect MODGEMM below DGEFMM throughout, with MODGEMM dropping "
            f"sharply at the {513}-analogue (n_scaled="
            f"{-(-513 // dim_scale)}), where dynamic tile selection leaves "
            "the power-of-two padded size and its quadrant conflicts behind."
        ),
        chart={
            "MODGEMM": ("n_paper", "modgemm_miss_pct"),
            "DGEFMM": ("n_paper", "dgefmm_miss_pct"),
        },
        x_label="matrix size (paper scale)",
        y_label="miss %",
    )


def explain(
    n: int = 505,
    cache_bytes: int = 16 * 1024,
    tile_range: TileRange = TileRange(),
) -> str:
    """The Section 4.2 conflict arithmetic for a given size, as text."""
    t = select_tiling(n, tile_range)
    leaf_bytes = t.tile * t.tile * 8
    group = 4 * leaf_bytes
    lines = [
        f"n = {n}: padded to {t.padded} with tile {t.tile} (depth {t.depth}).",
        f"A leaf tile is {t.tile}x{t.tile}x8B = {leaf_bytes} bytes; the four",
        f"quadrants of a {2 * t.tile}x{2 * t.tile} submatrix are contiguous, "
        f"so the group spans {group} bytes.",
    ]
    if group % cache_bytes == 0 or (2 * leaf_bytes) % cache_bytes == 0:
        lines.append(
            f"NW and SW quadrant bases are separated by {2 * leaf_bytes} bytes "
            f"= a multiple of the {cache_bytes}-byte cache: they map to the "
            "same sets and conflict on every paired access."
        )
    else:
        lines.append(
            f"NW and SW quadrant bases are separated by {2 * leaf_bytes} bytes, "
            f"not a multiple of the {cache_bytes}-byte cache: no systematic "
            "quadrant conflicts (this is the post-513 regime)."
        )
    return "\n".join(lines)
