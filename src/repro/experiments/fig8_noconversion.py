"""Figure 8 — performance with Morton conversion cost excluded.

"Assuming the matrices are already in Morton order": the inputs are
converted once outside the timed region and :func:`repro.core.modgemm_morton`
multiplies them with no interface conversions; DGEFMM (which has no
conversion to skip) is timed as usual and the ratio reported.  The paper
finds MODGEMM then outperforms DGEFMM for nearly all sizes on the Ultra
and most sizes above 500 on the Alpha.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.timing import TimingProtocol
from ..baselines.dgefmm import dgefmm
from ..core.modgemm import modgemm, modgemm_morton
from ..core.truncation import TruncationPolicy
from ..core.workspace import Workspace
from ..layout.matrix import MortonMatrix
from .runner import ExperimentResult
from .fig56_perf import default_sizes

__all__ = ["run"]


def run(
    sizes: "Iterable[int] | None" = None,
    protocol: TimingProtocol | None = None,
    policy: "TruncationPolicy | None" = None,
    seed: int = 0,
    dgefmm_truncation: "int | None" = None,
) -> ExperimentResult:
    """Normalised times with operands pre-converted to Morton order."""
    from .tuning import HOST_DGEFMM_TRUNCATION, HOST_POLICY

    policy = policy or HOST_POLICY
    t_dge = dgefmm_truncation or HOST_DGEFMM_TRUNCATION
    if sizes is None:
        sizes = default_sizes()
    sizes = [int(n) for n in sizes]
    protocol = protocol or TimingProtocol()
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        a = np.asfortranarray(rng.standard_normal((n, n)))
        b = np.asfortranarray(rng.standard_normal((n, n)))
        plan = policy.plan(n, n, n)
        assert plan is not None, "square problems always have a common tiling"
        tm, tk, tn = plan
        a_mm = MortonMatrix.from_dense(a, tilings=(tm, tk))
        b_mm = MortonMatrix.from_dense(b, tilings=(tk, tn))
        c_mm = MortonMatrix.empty(n, n, tm, tn)
        ws = Workspace(tm.depth, tm.tile, tk.tile, tn.tile, with_q=True)

        t_mod_noconv = protocol.run(
            lambda: modgemm_morton(a_mm, b_mm, c_mm, workspace=ws), n
        )
        t_mod_full = protocol.run(lambda: modgemm(a, b, policy=policy), n)
        t_dge_time = protocol.run(lambda: dgefmm(a, b, policy=t_dge), n)
        rows.append(
            (
                n,
                t_mod_noconv,
                t_mod_full,
                t_dge_time,
                t_mod_noconv / t_dge_time,
                t_mod_full / t_dge_time,
            )
        )
    return ExperimentResult(
        name="fig8",
        title="MODGEMM without conversion cost vs DGEFMM",
        columns=(
            "n",
            "t_modgemm_noconv",
            "t_modgemm_full",
            "t_dgefmm",
            "noconv/dgefmm",
            "full/dgefmm",
        ),
        rows=rows,
        notes=(
            "Operands pre-converted to Morton order outside the timed "
            "region; compare the two normalised columns to see the "
            "conversion penalty Figure 7 quantifies."
        ),
        chart={
            "MODGEMM (no conversion) / DGEFMM": ("n", "noconv/dgefmm"),
            "MODGEMM (full) / DGEFMM": ("n", "full/dgefmm"),
        },
        x_label="matrix size n",
        y_label="time / DGEFMM",
    )
