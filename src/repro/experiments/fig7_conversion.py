"""Figure 7 — Morton conversion time as a percentage of total execution.

The paper converts inputs to Morton order and the output back at the
interface level and measures the cost at roughly 15% of execution time for
small matrices, falling to ~5% for very large ones.  Here
:class:`repro.core.modgemm.PhaseTimings` records the same phase breakdown
under the paper's timing protocol.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.timing import TimingProtocol
from ..core.modgemm import PhaseTimings, modgemm
from ..core.truncation import TruncationPolicy
from .runner import ExperimentResult
from .fig56_perf import default_sizes

__all__ = ["run"]


def run(
    sizes: "Iterable[int] | None" = None,
    protocol: TimingProtocol | None = None,
    seed: int = 0,
    policy: "TruncationPolicy | None" = None,
) -> ExperimentResult:
    """Conversion-time share of modgemm across matrix sizes."""
    from .tuning import HOST_POLICY

    policy = policy or HOST_POLICY
    if sizes is None:
        sizes = default_sizes()
    sizes = [int(n) for n in sizes]
    protocol = protocol or TimingProtocol()
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        a = np.asfortranarray(rng.standard_normal((n, n)))
        b = np.asfortranarray(rng.standard_normal((n, n)))
        # Accumulate phase times over the protocol's best trial by running
        # a fresh breakdown per invocation and keeping the fastest total.
        best: PhaseTimings | None = None
        for _ in range(protocol.trials):
            for _ in range(protocol.reps(n)):
                t = PhaseTimings()
                modgemm(a, b, policy=policy, timings=t)
                if best is None or t.total < best.total:
                    best = t
        assert best is not None
        rows.append(
            (
                n,
                best.to_morton,
                best.compute,
                best.from_morton,
                best.total,
                100.0 * best.convert_fraction,
            )
        )
    return ExperimentResult(
        name="fig7",
        title="Morton conversion time as % of total execution",
        columns=("n", "t_to_morton", "t_compute", "t_from_morton", "t_total", "convert_pct"),
        rows=rows,
        notes=(
            "Paper: ~15% for small matrices dropping to ~5% for large ones "
            "(the conversion is O(n^2) against O(n^2.8) compute)."
        ),
        chart={"conversion %": ("n", "convert_pct")},
        x_label="matrix size n",
        y_label="% of total",
    )
