"""Host-tuned truncation parameters for the wall-clock experiments.

The paper tunes each implementation's recursion truncation point
empirically per machine ("for DGEFMM we use the empirically determined
recursion truncation point of 64", Section 4); the 16..64 tile range
likewise reflects the 1998 L1 sizes.  On this package's numpy substrate
the per-leaf dispatch cost is far higher than a C loop's, which moves the
empirical sweet spot upward; the values below were measured on
representative hosts (see ``examples/tuning_explorer.py`` to re-derive
them for yours).

The *cache-simulation* experiments (Figures 3 and 9, and the modelled 5/6)
keep the paper's original 16..64 range — there the substrate is the
simulated 1998 cache, not the host.
"""

from __future__ import annotations

from ..core.truncation import TruncationPolicy

__all__ = ["HOST_POLICY", "HOST_DGEFMM_TRUNCATION", "HOST_DGEMMW_TRUNCATION"]

#: Dynamic tile range for MODGEMM wall-clock runs on the host.
HOST_POLICY = TruncationPolicy.dynamic(64, 256)

#: Empirically determined truncation for the peeling baseline on the host.
HOST_DGEFMM_TRUNCATION = 128

#: Empirically determined truncation for the overlap baseline on the host.
HOST_DGEMMW_TRUNCATION = 128
