"""repro — reproduction of *Tuning Strassen's Matrix Multiplication for
Memory Efficiency* (Thottethodi, Chatterjee & Lebeck, SC 1998).

Quick start::

    import numpy as np
    import repro

    a = np.random.default_rng(0).standard_normal((513, 513))
    b = np.random.default_rng(1).standard_normal((513, 513))
    c = repro.modgemm(a, b)            # Morton-order Strassen-Winograd
    assert np.allclose(c, a @ b)

Package map (see DESIGN.md for the full architecture):

* :mod:`repro.core` — MODGEMM: the Strassen-Winograd recursion over
  Morton-ordered buffers with dynamic truncation-point selection.
* :mod:`repro.layout` — the Morton (quadtree) layout engine and the
  padding-minimising tile search.
* :mod:`repro.baselines` — DGEFMM (dynamic peeling), DGEMMW (dynamic
  overlap), and conventional kernels.
* :mod:`repro.cachesim` — trace-driven cache simulation of the paper's
  platforms (the ATOM substitute).
* :mod:`repro.engine` — the plan-caching GEMM execution engine:
  :class:`GemmSession` memoises compiled plans (tilings, pooled Morton
  buffers, workspaces, resolved kernels) across repeated multiplies.
* :mod:`repro.analysis` — timing protocol, operation counts, accuracy.
* :mod:`repro.experiments` — one runner per paper figure
  (``python -m repro.experiments all``).

Sessions are the serving-workload API::

    session = repro.GemmSession()
    c = session.multiply(a, b)          # plans once per geometry
    cs = session.multiply_many([(a1, b1), (a2, b2)])
"""

from .errors import (
    ReproError, ShapeError, PlanError, KernelError, BatchItemError,
    InvariantError,
)
from .observe import TraceEvent, Tracer, validate_trace
from .blas.dgemm import GemmProblem, OpKind, dgemm_reference
from .core.modgemm import modgemm, modgemm_morton, PhaseTimings
from .core.truncation import TruncationPolicy
from .layout.matrix import MortonMatrix
from .layout.padding import TileRange, Tiling, select_tiling, select_common_tiling
from .baselines.dgefmm import dgefmm
from .baselines.dgemmw import dgemmw
from .engine import (
    CompiledPlan,
    GemmSession,
    GemmSpec,
    Mat,
    SessionStats,
    default_session,
    reset_default_session,
)
from .tune import PlanStore, StoredDecision, autotune

__version__ = "1.1.0"

__all__ = [
    "modgemm",
    "modgemm_morton",
    "PhaseTimings",
    "TruncationPolicy",
    "MortonMatrix",
    "TileRange",
    "Tiling",
    "select_tiling",
    "select_common_tiling",
    "GemmProblem",
    "OpKind",
    "dgemm_reference",
    "dgefmm",
    "dgemmw",
    "GemmSession",
    "GemmSpec",
    "Mat",
    "CompiledPlan",
    "SessionStats",
    "default_session",
    "reset_default_session",
    "ReproError",
    "ShapeError",
    "PlanError",
    "KernelError",
    "BatchItemError",
    "InvariantError",
    "Tracer",
    "TraceEvent",
    "validate_trace",
    "PlanStore",
    "StoredDecision",
    "autotune",
    "__version__",
]
