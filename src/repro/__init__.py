"""repro — reproduction of *Tuning Strassen's Matrix Multiplication for
Memory Efficiency* (Thottethodi, Chatterjee & Lebeck, SC 1998).

Quick start::

    import numpy as np
    import repro

    a = np.random.default_rng(0).standard_normal((513, 513))
    b = np.random.default_rng(1).standard_normal((513, 513))
    c = repro.modgemm(a, b)            # Morton-order Strassen-Winograd
    assert np.allclose(c, a @ b)

Package map (see DESIGN.md for the full architecture):

* :mod:`repro.core` — MODGEMM: the Strassen-Winograd recursion over
  Morton-ordered buffers with dynamic truncation-point selection.
* :mod:`repro.layout` — the Morton (quadtree) layout engine and the
  padding-minimising tile search.
* :mod:`repro.baselines` — DGEFMM (dynamic peeling), DGEMMW (dynamic
  overlap), and conventional kernels.
* :mod:`repro.cachesim` — trace-driven cache simulation of the paper's
  platforms (the ATOM substitute).
* :mod:`repro.analysis` — timing protocol, operation counts, accuracy.
* :mod:`repro.experiments` — one runner per paper figure
  (``python -m repro.experiments all``).
"""

from .blas.dgemm import GemmProblem, OpKind, dgemm_reference
from .core.modgemm import modgemm, modgemm_morton, PhaseTimings
from .core.truncation import TruncationPolicy
from .layout.matrix import MortonMatrix
from .layout.padding import TileRange, Tiling, select_tiling, select_common_tiling
from .baselines.dgefmm import dgefmm
from .baselines.dgemmw import dgemmw

__version__ = "1.0.0"

__all__ = [
    "modgemm",
    "modgemm_morton",
    "PhaseTimings",
    "TruncationPolicy",
    "MortonMatrix",
    "TileRange",
    "Tiling",
    "select_tiling",
    "select_common_tiling",
    "GemmProblem",
    "OpKind",
    "dgemm_reference",
    "dgefmm",
    "dgemmw",
    "__version__",
]
