"""Compiled GEMM plans: frozen geometry decisions plus pooled buffers.

A :class:`CompiledPlan` captures everything :func:`repro.modgemm` used to
recompute per call for a fixed problem geometry:

* the ``(Tiling, Tiling, Tiling)`` from :meth:`TruncationPolicy.plan`
  (or, for highly rectangular problems, the Figure-4 panel decomposition
  and one sub-plan per panel geometry);
* the Morton-order operand and product buffers, allocated once with their
  pads zeroed once — repeated conversions then touch only logical
  elements (``dense_to_morton(..., zero_pad=False)``);
* the per-level :class:`Workspace` (sequential schedule) or the
  :class:`TaskScratch` plus prebuilt task graph (``tasks`` schedule, see
  :mod:`repro.core.scheduler`) shared across executions;
* for deep tilings, per-operand :class:`ConversionTable` index tables
  that turn layout conversion into vectorised gather/scatter copies.  The
  plan *calibrates* each conversion site: execution 1 times the tile
  loop, execution 2 times the indexed path, and the winner serves every
  later execution (a losing table is freed immediately);
* the resolved leaf kernel and recursion variant.

``plan.execute(a, b, ...)`` then runs the full BLAS contract against the
frozen geometry, allocating only the dense output.  Plans serialise their
own executions with an internal lock, so one plan shared by many threads
(e.g. via :meth:`GemmSession.multiply_many`) never corrupts its pooled
buffers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel
from ..core.modgemm import PhaseTimings
from ..core.ops import NumpyOps
from ..core.parallel import TaskScratch, build_winograd_graph, run_batch_stripes
from ..core.rectangular import plan_panels
from ..core.scheduler import Schedule, TaskGraph
from ..core.strassen import strassen_multiply
from ..core.truncation import TruncationPolicy
from ..core.winograd import (
    CONVERT_QUADS_A,
    CONVERT_QUADS_B,
    FUSED_PACKS_A,
    FUSED_PACKS_B,
    resolve_memory,
    winograd_multiply,
)
from ..core.workspace import BatchWorkspace, Workspace
from ..errors import BatchItemError, InvariantError, KernelError, PlanError, ShapeError
from ..layout.convert import (
    ConversionTable,
    calibration_key,
    conversion_table,
    dense_to_morton,
    dense_to_morton_batch,
    dense_to_morton_quadrants,
    morton_to_dense,
    morton_to_dense_batch,
    pack_morton_quarter,
    pack_morton_quarter_batch,
)
from ..layout.matrix import BatchMortonMatrix, MortonMatrix
from ..layout.padding import Tiling
from ..layout.relabel import transposed_view
from ..observe.validate import check_pad_zero, check_quiescent
from .spec import GemmSpec

__all__ = [
    "PlanKey", "CompiledPlan", "BatchPlan", "batch_size_class",
    "resolve_variant", "VARIANTS", "BATCH_CAP_MAX",
]

#: Largest stacked-batch capacity class; bigger batches execute in chunks
#: of this size, so one cached :class:`BatchPlan` serves any batch length
#: while its pooled stacks stay bounded (3 operand stacks + workspace).
BATCH_CAP_MAX = 32


def batch_size_class(n_items: int) -> int:
    """The pooled-buffer capacity class serving a batch of ``n_items``.

    The next power of two, capped at :data:`BATCH_CAP_MAX` — so a session
    caches at most ``log2(BATCH_CAP_MAX)+1`` stack sizes per geometry
    instead of one per distinct batch length.
    """
    if n_items < 1:
        raise ValueError(f"batch must have >= 1 item, got {n_items}")
    return min(1 << (n_items - 1).bit_length(), BATCH_CAP_MAX)

#: Canonical recursion-variant names and their multiply entry points.
VARIANTS = {"winograd": winograd_multiply, "strassen": strassen_multiply}

#: Shallowest tiling depth worth a conversion index table: below this the
#: tile loop's per-tile Python overhead is already negligible.
CONVERT_TABLE_MIN_DEPTH = 3

#: Largest logical element count to build a table for (int64 offsets, two
#: ravellings -> 16 bytes/element of pooled index memory).
CONVERT_TABLE_MAX_ELEMS = 1 << 21


def resolve_variant(variant) -> str:
    """Normalise a recursion-variant argument to its canonical name.

    Accepts the canonical strings (``"winograd"``, ``"strassen"``,
    case-insensitive) or the multiply functions themselves
    (:func:`winograd_multiply` / :func:`strassen_multiply`), mirroring the
    string-or-object convention of ``kernel`` and ``op_a``/``op_b``.
    """
    if isinstance(variant, str):
        name = variant.lower()
        if name in VARIANTS:
            return name
    else:
        for name, fn in VARIANTS.items():
            if variant is fn:
                return name
    raise KernelError(
        f"unknown variant {variant!r}; expected {sorted(VARIANTS)}"
    )


@dataclass(frozen=True)
class PlanKey:
    """The memoisation key of one compiled plan.

    Two multiplies share a plan exactly when every field matches: the
    logical GEMM dimensions, the truncation policy, the resolved leaf
    kernel (by identity — named kernels resolve to module-level
    functions, so equal names compare equal), the recursion variant, the
    execution :class:`Schedule`, the memory schedule (see
    :data:`repro.core.winograd.MEMORY_SCHEDULES`) and the full operation
    :class:`~repro.engine.spec.GemmSpec`.  The spec is load-bearing:
    ``alpha`` is baked into a plan's final U-adds (and its prebuilt task
    graph), ``beta`` into its output-conversion epilogue, and the
    transpose flags decide each operand buffer's *orientation* — so two
    calls differing in any of them genuinely need different compiled
    artefacts.
    """

    m: int
    k: int
    n: int
    policy: TruncationPolicy
    kernel: LeafKernel
    variant: str
    schedule: Schedule
    memory: str = "classic"
    spec: GemmSpec = GemmSpec()

    @property
    def parallel(self) -> bool:
        """True when the plan executes on the task scheduler."""
        return self.schedule.parallel

    # Accessors mirroring the pre-spec field layout, so call sites (and
    # the BLAS boundary) keep reading key.op_a / key.dtype / ...

    @property
    def op_a(self) -> OpKind:
        return OpKind.TRANS if self.spec.trans_a else OpKind.NOTRANS

    @property
    def op_b(self) -> OpKind:
        return OpKind.TRANS if self.spec.trans_b else OpKind.NOTRANS

    @property
    def trans_a(self) -> bool:
        return self.spec.trans_a

    @property
    def trans_b(self) -> bool:
        return self.spec.trans_b

    @property
    def alpha(self) -> float:
        return self.spec.alpha

    @property
    def beta(self) -> float:
        return self.spec.beta

    @property
    def dtype(self) -> str:
        return self.spec.dtype

    @property
    def np_dtype(self) -> np.dtype:
        """The computation dtype as a numpy dtype object."""
        return self.spec.np_dtype


class _ConvertSite:
    """Adaptive loop-vs-indexed choice for one conversion site of a plan.

    State machine: execution 1 runs the tile loop and records the
    baseline; execution 2 runs the indexed path; the faster one then
    serves every later execution.  ``observe`` returns the seconds saved
    relative to the baseline whenever the indexed path ran (negative if
    a run regressed — the counters stay honest).

    A site can also be *preseeded* from a plan store: constructing it
    with ``mode="indexed"`` replays a persisted decision with no trial
    executions at all, and ``on_decide`` (when a live calibration does
    run) reports the final verdict so the store can persist it for the
    next plan/session with this geometry.
    """

    __slots__ = ("table", "baseline", "mode", "on_decide")

    def __init__(
        self,
        table: ConversionTable,
        mode: str = "baseline",
        baseline: float = 0.0,
        on_decide=None,
    ) -> None:
        self.table = table
        self.baseline = baseline
        self.mode = mode  # "baseline" -> "trial" -> "indexed" | "loop"
        self.on_decide = on_decide

    def pick(self) -> ConversionTable | None:
        """Table to use for this execution (``None`` = tile loop)."""
        return self.table if self.mode in ("trial", "indexed") else None

    def observe(self, elapsed: float) -> float:
        """Fold in this execution's conversion time; return seconds saved."""
        if self.mode == "baseline":
            self.baseline = elapsed
            self.mode = "trial"
            return 0.0
        if self.mode == "trial":
            if elapsed <= self.baseline:
                self.mode = "indexed"
                saved = self.baseline - elapsed
            else:
                self.mode = "loop"
                self.table = None  # free the losing table
                saved = 0.0
            if self.on_decide is not None:
                self.on_decide(self.mode, self.baseline)
            return saved
        if self.mode == "indexed":
            return self.baseline - elapsed
        return 0.0


class _ExecExtras:
    """Per-execution scheduler/conversion counters, folded into the session."""

    __slots__ = (
        "tasks_run", "worker_busy", "graph_wall", "pool_workers",
        "indexed_conversions", "convert_seconds_saved", "fused_adds",
        "fused_packs",
    )

    def __init__(self) -> None:
        self.tasks_run = 0
        self.worker_busy = 0.0
        self.graph_wall = 0.0
        self.pool_workers = 0
        self.indexed_conversions = 0
        self.convert_seconds_saved = 0.0
        self.fused_adds = 0
        self.fused_packs = 0


class CompiledPlan:
    """A ready-to-execute GEMM for one frozen problem geometry.

    Created by :meth:`GemmSession.plan`; execute with
    :meth:`execute` (full dgemm semantics) as many times as desired.
    """

    def __init__(self, key: PlanKey, session) -> None:
        self.key = key
        self.session = session
        self._lock = threading.Lock()
        self._cache_hit = False  # updated by the session on each lookup
        self._debug = bool(getattr(session, "debug", False))
        self._poisoned = False  # scratch poison-filled since the last run
        self._ops = NumpyOps(
            key.kernel,
            trace=getattr(session, "trace", None),
            validate=self._debug,
        )
        #: np.float64 buffers allocated while compiling (operands, product,
        #: workspace levels, task scratch) — constant afterwards.
        self.buffers_allocated = 0
        self.tilings: tuple[Tiling, Tiling, Tiling] | None = key.policy.plan(
            key.m, key.k, key.n
        )
        self._a_mm = self._b_mm = self._c_mm = None
        self._a_eff = self._b_eff = None
        self._relabel_a = self._relabel_b = False
        self._workspace: Workspace | None = None
        self._tscratch: TaskScratch | None = None
        self._graph: TaskGraph | None = None
        self._rezero_operands = False
        self._sites: dict[str, _ConvertSite] = {}
        self._fused = False
        self._ftables: dict[str, ConversionTable] = {}
        self._fdsts: dict[str, np.ndarray] = {}
        self._pend = None
        self._panels = None
        self._panel_plans = None
        if self.tilings is not None:
            self._compile_well_behaved()
        else:
            self._compile_panels()

    # ------------------------------------------------------------- compile

    def _compile_well_behaved(self) -> None:
        tm, tk, tn = self.tilings
        key = self.key
        memory = resolve_memory(key.memory)
        if memory == "ip_overwrite" and tm.depth > 0 and not (
            tm.tile == tk.tile == tn.tile
        ):
            raise PlanError(
                "memory='ip_overwrite' needs uniform tile geometry; the "
                f"policy chose tiles {tm.tile}/{tk.tile}/{tn.tile} for "
                f"{key.m}x{key.k}x{key.n}"
            )
        # Operand pads are zeroed here, once; every later conversion uses
        # zero_pad=False and writes only the logical region.
        #
        # A transposed operand of a Winograd plan is served by quadrant
        # *relabeling*: its Morton buffer keeps the operand's native
        # orientation (so the dense->Morton conversion is the same
        # straight copy a non-transposed run pays — zero extra passes)
        # and the recursion sees it through a TransposedView.  Strassen
        # and ip_overwrite plans are not relabel-threaded; they keep the
        # legacy transpose-fused conversion.
        dt = key.np_dtype
        relabel_ok = key.variant == "winograd" and memory != "ip_overwrite"
        self._relabel_a = bool(key.trans_a and relabel_ok)
        self._relabel_b = bool(key.trans_b and relabel_ok)
        if self._relabel_a:
            self._a_mm = MortonMatrix.zeros(key.k, key.m, tk, tm, dtype=dt)
            self._a_eff = transposed_view(self._a_mm)
        else:
            self._a_mm = MortonMatrix.zeros(key.m, key.k, tm, tk, dtype=dt)
            self._a_eff = self._a_mm
        if self._relabel_b:
            self._b_mm = MortonMatrix.zeros(key.n, key.k, tn, tk, dtype=dt)
            self._b_eff = transposed_view(self._b_mm)
        else:
            self._b_mm = MortonMatrix.zeros(key.k, key.n, tk, tn, dtype=dt)
            self._b_eff = self._b_mm
        self._c_mm = MortonMatrix.empty(key.m, key.n, tm, tn, dtype=dt)
        self.buffers_allocated += 3
        # ip_overwrite leaves garbage in the operand pads after every
        # execution; such plans must re-zero A/B before each conversion.
        self._rezero_operands = memory == "ip_overwrite" and (
            self._a_mm.size > key.m * key.k or self._b_mm.size > key.k * key.n
        )
        depth = tm.depth
        sched = key.schedule
        # Fused convert-and-add packing: the top level's S1/S3/T1/T3 sums
        # are produced *during* the dense->Morton gather (one read of each
        # source quadrant yields both the converted quadrant and the
        # packed sum), so the recursion skips its four standalone
        # top-level add passes and one quadrant copy per operand.
        # Requires the plain Morton permutation (no relabeled transposes
        # — dense-side transposes fold into the gather as usual) and an
        # index table per operand.  The gather is elementwise, so fusion
        # only pays where the table already beats the tile loop — the
        # same CONVERT_TABLE_MIN_DEPTH regime as the adaptive sites (at
        # shallow depth the loop's few large contiguous tile copies win
        # by a wide margin); ``fused_pack="always"`` overrides the depth
        # threshold for any depth >= 1 (tests, A/B measurement).
        fmode = getattr(self.session, "fused_pack", True)
        self._fused = (
            bool(fmode)
            and key.variant == "winograd"
            and depth >= (1 if fmode == "always" else CONVERT_TABLE_MIN_DEPTH)
            and not self._relabel_a
            and not self._relabel_b
            and self._a_mm.rows * self._a_mm.cols <= CONVERT_TABLE_MAX_ELEMS
            and self._b_mm.rows * self._b_mm.cols <= CONVERT_TABLE_MAX_ELEMS
        )
        self._ftables: dict[str, ConversionTable] = {}
        self._fdsts: dict[str, np.ndarray] = {}
        self._pend = None  # (a, trans_a, b, trans_b) of the running execute
        if sched.parallel and depth >= 1:
            self._tscratch = TaskScratch(
                tm.tile, tk.tile, tn.tile, depth,
                parallel_depth=sched.depth,
                workers=sched.workers or self.session._pool_size(),
                memory=memory,
                dtype=dt,
            )
            self.buffers_allocated += self._tscratch.buffer_count
            self._graph = build_winograd_graph(
                self._a_eff, self._b_eff, self._c_mm, self._tscratch,
                ops=self._ops, alpha=key.alpha,
                pack_a=self._graph_pack_a if self._fused else None,
                pack_b=self._graph_pack_b if self._fused else None,
            )
        elif memory == "two_temp":
            self._workspace = Workspace(
                depth, tm.tile, tk.tile, tn.tile, schedule="two_temp", dtype=dt
            )
            self.buffers_allocated += 2 * depth
        elif memory == "classic":
            self._workspace = Workspace(
                depth, tm.tile, tk.tile, tn.tile, with_q=True, dtype=dt
            )
            self.buffers_allocated += 4 * depth
        # ip_overwrite: no workspace at all.
        if self._fused:
            # Fused conversion always gathers through a table (the shared
            # module-level cache — several plans of one geometry reuse
            # it), so the a/b sites skip loop-vs-indexed calibration.
            for name, mm in (("a", self._a_mm), ("b", self._b_mm)):
                self._ftables[name] = conversion_table(
                    mm.rows, mm.cols, mm.tile_r, mm.tile_c, mm.depth
                )
            self._fdsts = self._pack_destinations(memory)
        if depth >= CONVERT_TABLE_MIN_DEPTH:
            # A plan store, when the session has one, replays persisted
            # loop-vs-indexed verdicts: a "loop" record skips building the
            # O(n^2) table entirely, an "indexed" record preseeds the site
            # past both trial executions, and an unseen geometry gets an
            # ``on_decide`` hook that writes the live verdict back.  This
            # is what makes the calibration survive plan eviction — the
            # store, not the evicted plan object, owns the answer.
            store = getattr(self.session, "_plan_store", None)
            for name, mm in (("a", self._a_mm), ("b", self._b_mm),
                             ("c", self._c_mm)):
                if name in self._ftables:
                    continue
                if mm.rows * mm.cols > CONVERT_TABLE_MAX_ELEMS:
                    continue
                site_key = calibration_key(
                    mm.rows, mm.cols, mm.tile_r, mm.tile_c, mm.depth,
                    dtype=key.dtype,
                )
                cal = (
                    store.lookup_calibration(site_key)
                    if store is not None else None
                )
                if cal is not None and cal["mode"] == "loop":
                    continue  # the loop path won; no table, no trials
                table = ConversionTable(
                    mm.rows, mm.cols, mm.tile_r, mm.tile_c, mm.depth
                )
                if cal is not None:  # mode == "indexed"
                    self._sites[name] = _ConvertSite(
                        table, mode="indexed",
                        baseline=float(cal.get("baseline", 0.0)),
                    )
                elif store is not None:
                    self._sites[name] = _ConvertSite(
                        table,
                        on_decide=(
                            lambda mode, baseline, _sk=site_key:
                            store.record_calibration(_sk, mode, baseline)
                        ),
                    )
                else:
                    self._sites[name] = _ConvertSite(table)

    def _pack_destinations(self, memory: str) -> dict[str, np.ndarray]:
        """Flat quarter buffers receiving the four top-level packed sums.

        ``S1``/``T1`` land in the A21/B12 quadrant slots of the pooled
        operand buffers — those quadrants are never consumed as plain
        Morton operands at the top level, so the slots are free.
        ``S3``/``T3`` go where the selected schedule's top recursion
        level reads them: the outermost workspace level's S/T scratch
        (classic/two_temp), the C11/C12 quadrant slots (ip_overwrite —
        the product P5 is computed from them before either is
        overwritten), or the task graph's root ``s[2]``/``t[2]`` buffers.
        """
        qa = self._a_mm.size // 4
        qb = self._b_mm.size // 4
        dsts = {
            "S1": self._a_mm.buf[2 * qa : 3 * qa],
            "T1": self._b_mm.buf[1 * qb : 2 * qb],
        }
        if self._tscratch is not None:
            dsts["S3"] = self._tscratch.root.s[2].buf
            dsts["T3"] = self._tscratch.root.t[2].buf
        elif memory == "ip_overwrite":
            qc = self._c_mm.size // 4
            dsts["S3"] = self._c_mm.buf[0:qc]
            dsts["T3"] = self._c_mm.buf[qc : 2 * qc]
        else:
            lv = self._workspace.at(self.tilings[0].depth - 1)
            dsts["S3"] = lv.s.buf
            dsts["T3"] = lv.t.buf
        return dsts

    def _fused_convert_side(
        self, name: str, dense, mm, quads, packs, transpose: bool,
        extras: "_ExecExtras | None",
    ) -> None:
        """Convert one operand's consumed quadrants, then pack its sums."""
        table = self._ftables[name]
        tr = self._ops.trace
        t0 = time.perf_counter()
        dense_to_morton_quadrants(
            dense, mm, quads, transpose=transpose, zero_pad=False,
            table=table,
        )
        if tr is not None and tr.enabled:
            tr.emit(
                "convert", label=name, seconds=time.perf_counter() - t0,
                indexed=True, fused=True,
            )
        for label, op, q0, q1 in packs:
            t0 = time.perf_counter()
            pack_morton_quarter(
                self._fdsts[label], dense, op, q0, q1, table,
                transpose=transpose,
            )
            if tr is not None and tr.enabled:
                tr.emit(
                    "pack", label=label, seconds=time.perf_counter() - t0
                )
        if extras is not None:
            extras.fused_packs += len(packs)

    # The graph's two root tasks (run on pool workers; the per-execute
    # dense operands are stashed in self._pend under the plan lock, which
    # is held for the whole execution).  Extras are folded in by the
    # caller after the graph completes — two concurrent pack tasks must
    # not race on one counter object.

    def _graph_pack_a(self) -> None:
        a, trans_a, _, _ = self._pend
        self._fused_convert_side(
            "a", a, self._a_mm, CONVERT_QUADS_A, FUSED_PACKS_A, trans_a,
            None,
        )

    def _graph_pack_b(self) -> None:
        _, _, b, trans_b = self._pend
        self._fused_convert_side(
            "b", b, self._b_mm, CONVERT_QUADS_B, FUSED_PACKS_B, trans_b,
            None,
        )

    def _compile_panels(self) -> None:
        key = self.key
        policy = key.policy
        self._panels = plan_panels(key.m, key.k, key.n, policy.tile_range) \
            if policy.tile_range else plan_panels(key.m, key.k, key.n)
        # One sub-plan per panel geometry, shared through the session's
        # cache (panels of equal size — the common case — compile once).
        self._panel_plans = []
        for panel in self._panels:
            dims = (panel.m1 - panel.m0, panel.k1 - panel.k0, panel.n1 - panel.n0)
            if policy.plan(*dims) is None:
                # Degenerate residue (e.g. a 1-wide strip): conventional
                # product, nothing to pool.
                self._panel_plans.append(None)
            else:
                self._panel_plans.append(
                    self.session.plan(
                        *dims,
                        op_a=OpKind.NOTRANS,
                        op_b=OpKind.NOTRANS,
                        policy=policy,
                        kernel=key.kernel,
                        variant=key.variant,
                        schedule=key.schedule,
                        memory=key.memory,
                        dtype=key.dtype,
                    )
                )

    # ------------------------------------------------------------- execute

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        alpha: float | None = None,
        beta: float | None = None,
        timings: PhaseTimings | None = None,
    ) -> np.ndarray:
        """``C <- alpha * op(A) . op(B) + beta * C`` with this plan's spec.

        The transposition ops, scaling factors and dtype are the plan's
        (``alpha``/``beta`` default to the spec's values; passing
        different ones raises :class:`PlanError` — compile a plan for the
        new spec instead, the scales are baked into this one's U-adds and
        epilogue).  Operand shapes must produce exactly the planned
        ``(m, k, n)`` (:class:`ShapeError` otherwise).
        """
        key = self.key
        if alpha is not None and float(alpha) != key.alpha:
            raise PlanError(
                f"alpha={alpha} does not match this plan's spec "
                f"(alpha={key.alpha}); plan the new spec instead"
            )
        if beta is not None and float(beta) != key.beta:
            raise PlanError(
                f"beta={beta} does not match this plan's spec "
                f"(beta={key.beta}); plan the new spec instead"
            )
        p = GemmProblem.create(
            a, b, op_a=key.op_a, op_b=key.op_b,
            alpha=key.alpha, beta=key.beta, c=c, dtype=key.dtype,
        )
        return self.execute_problem(p, c=c, timings=timings)

    def execute_problem(
        self,
        p: GemmProblem,
        c: np.ndarray | None = None,
        timings: PhaseTimings | None = None,
    ) -> np.ndarray:
        """Run a pre-validated :class:`GemmProblem` through the plan."""
        key = self.key
        if (p.m, p.k, p.n) != (key.m, key.k, key.n):
            raise ShapeError(
                f"operands give GEMM dims {(p.m, p.k, p.n)}, but this plan "
                f"is compiled for {(key.m, key.k, key.n)}"
            )
        if (p.op_a, p.op_b) != (key.op_a, key.op_b):
            raise PlanError(
                f"ops {(p.op_a.value, p.op_b.value)} do not match the plan's "
                f"{(key.op_a.value, key.op_b.value)}"
            )
        if (p.alpha, p.beta) != (key.alpha, key.beta):
            raise PlanError(
                f"alpha/beta {(p.alpha, p.beta)} do not match the plan "
                f"spec's {(key.alpha, key.beta)}; plan the new spec instead"
            )
        rec = PhaseTimings()
        extras = _ExecExtras()
        if self.tilings is not None:
            # alpha is folded into the recursion's final U-adds and beta
            # into the output conversion — no separate scaling pass.  A
            # caller C of the computation dtype receives the conversion
            # directly; beta != 0 guarantees that (GemmProblem.create
            # rejects a mismatched-dtype C when beta != 0).
            c_out = c if c is not None and c.dtype == key.np_dtype else None
            d = self._well_behaved_product(
                p.a, p.b,
                transpose_a=(p.op_a is OpKind.TRANS),
                transpose_b=(p.op_b is OpKind.TRANS),
                rec=rec,
                extras=extras,
                c_out=c_out,
            )
            if timings is not None:
                timings.to_morton += rec.to_morton
                timings.compute += rec.compute
                timings.from_morton += rec.from_morton
            self.session._record_execution(self, rec, extras)
            if c is not None and d is not c:
                c[...] = d
                return c
            return d
        d = self._panelled_product(p, rec, extras)
        rec.panels = len(self._panels)
        if timings is not None:
            timings.to_morton += rec.to_morton
            timings.compute += rec.compute
            timings.from_morton += rec.from_morton
            timings.panels = rec.panels
        self.session._record_execution(self, rec, extras)
        # Panelled plans accumulate sub-products into one dense D and keep
        # the legacy post-scaling (per-panel alpha folding would change
        # the bit pattern of the accumulation).
        result = p.apply_scaling(d, c)
        if c is not None and result is not c:
            c[...] = result
            return c
        return result

    def _convert_site(
        self, name: str, extras: "_ExecExtras | None", run_loop, run_indexed
    ) -> None:
        """Run one conversion through the site's calibrated path choice."""
        site = self._sites.get(name)
        table = site.pick() if site is not None else None
        t0 = time.perf_counter()
        if table is None:
            run_loop()
        else:
            run_indexed(table)
        elapsed = time.perf_counter() - t0
        tr = self._ops.trace
        if tr is not None and tr.enabled:
            tr.emit(
                "convert", label=name, seconds=elapsed,
                indexed=table is not None,
            )
        if site is not None:
            saved = site.observe(elapsed)
            if table is not None and extras is not None:
                extras.indexed_conversions += 1
                extras.convert_seconds_saved += saved

    def _well_behaved_product(
        self, a, b, transpose_a: bool, transpose_b: bool, rec: PhaseTimings,
        extras: "_ExecExtras | None" = None,
        c_out: np.ndarray | None = None,
    ) -> np.ndarray:
        """One conversion-recursion-conversion pass through the pooled buffers.

        ``c_out`` is the caller's computation-dtype output array, when it
        has one: the final conversion writes into it directly, fusing the
        spec's ``beta`` accumulate into the same sweep.  Without it the
        product lands in a fresh dense array (spec ``beta`` must be 0 —
        :meth:`execute_problem` guarantees a ``c_out`` otherwise).
        Panelled parents call this on their sub-plans with everything
        defaulted (plain product, spec-free).
        """
        key = self.key
        tr = self._ops.trace
        with self._lock:
            if self._debug:
                self._debug_pre()
            fused0 = self._ops.fused_adds
            pool = workers = None
            if self._graph is not None:
                pool = self.session._ensure_pool()
                workers = pool.workers
            if self._rezero_operands:
                # A previous ip_overwrite execution left garbage in the
                # operand pads; the zero_pad=False conversion below only
                # rewrites logical elements.
                self._a_mm.buf.fill(0.0)
                self._b_mm.buf.fill(0.0)
            # A relabel-served transpose converts the operand in its
            # native orientation (a straight copy); the recursion reads
            # the buffer through the compile-time TransposedView.
            conv_trans_a = transpose_a and not self._relabel_a
            conv_trans_b = transpose_b and not self._relabel_b
            if tr is not None and tr.enabled:
                if self._relabel_a:
                    tr.emit("relabel", label="a")
                if self._relabel_b:
                    tr.emit("relabel", label="b")
            t0 = time.perf_counter()
            if self._fused and self._graph is not None:
                # Conversion moves *into* the graph: the two root pack
                # tasks convert and pack their operand on pool workers,
                # overlapping the a/b sides (to_morton attributes ~0
                # here; the work lands in the graph's compute phase).
                self._pend = (a, conv_trans_a, b, conv_trans_b)
            elif self._fused:
                self._fused_convert_side(
                    "a", a, self._a_mm, CONVERT_QUADS_A, FUSED_PACKS_A,
                    conv_trans_a, extras,
                )
                self._fused_convert_side(
                    "b", b, self._b_mm, CONVERT_QUADS_B, FUSED_PACKS_B,
                    conv_trans_b, extras,
                )
            else:
                self._convert_site(
                    "a", extras,
                    lambda: dense_to_morton(
                        a, self._a_mm, transpose=conv_trans_a, zero_pad=False
                    ),
                    lambda tab: dense_to_morton(
                        a, self._a_mm, transpose=conv_trans_a, zero_pad=False,
                        table=tab, pool=pool, workers=workers or 1,
                    ),
                )
                self._convert_site(
                    "b", extras,
                    lambda: dense_to_morton(
                        b, self._b_mm, transpose=conv_trans_b, zero_pad=False
                    ),
                    lambda tab: dense_to_morton(
                        b, self._b_mm, transpose=conv_trans_b, zero_pad=False,
                        table=tab, pool=pool, workers=workers or 1,
                    ),
                )
            t1 = time.perf_counter()
            if self._debug and not self._fused:
                # Phase boundary: operands are converted, compute has not
                # started.  Both pads must be exactly zero here (the
                # ip_overwrite re-zero above included).  Fused plans skip
                # the check: their A21/B12 slots legitimately hold packed
                # sums whose support extends into the slot's pad region
                # (exactly the values the two-pass scratch sums held).
                check_pad_zero(self._a_mm, "a")
                check_pad_zero(self._b_mm, "b")
            if self._graph is not None:
                try:
                    run = pool.run(self._graph)
                finally:
                    self._pend = None
                if extras is not None:
                    extras.tasks_run += run.tasks
                    extras.worker_busy += run.busy
                    extras.graph_wall += run.wall
                    extras.pool_workers = run.workers
                    if self._fused:
                        extras.fused_packs += 4
            elif key.variant == "winograd":
                winograd_multiply(
                    self._a_eff, self._b_eff, self._c_mm,
                    ops=self._ops, workspace=self._workspace,
                    memory=key.memory, alpha=key.alpha,
                    prepacked=self._fused,
                )
            else:
                strassen_multiply(
                    self._a_mm, self._b_mm, self._c_mm,
                    ops=self._ops, workspace=self._workspace,
                    alpha=key.alpha,
                )
            t2 = time.perf_counter()
            beta = key.beta if c_out is not None else 0.0
            out: list = []
            self._convert_site(
                "c", extras,
                lambda: out.append(morton_to_dense(
                    self._c_mm, out=c_out, beta=beta
                )),
                lambda tab: out.append(morton_to_dense(
                    self._c_mm, out=c_out, beta=beta,
                    table=tab, pool=pool, workers=workers or 1,
                )),
            )
            d = out[0]
            if beta != 0.0 and tr is not None and tr.enabled:
                tr.emit("accumulate", label="c", beta=float(beta))
            t3 = time.perf_counter()
            if extras is not None:
                extras.fused_adds += self._ops.fused_adds - fused0
            if self._debug:
                self._debug_post()
        rec.to_morton += t1 - t0
        rec.compute += t2 - t1
        rec.from_morton += t3 - t2
        return d

    # ----------------------------------------------------- debug invariants

    def _debug_pre(self) -> None:
        """Phase-boundary checks before buffer reuse (lock held).

        Verifies the pooled scratch is exactly as the previous execution's
        :meth:`_debug_post` left it — wholly poison-filled — and that every
        leaf workspace has been returned to its pool.  A violation means
        something wrote to this plan's buffers *between* executions, which
        the per-plan locking discipline must never allow.
        """
        if self._tscratch is not None and not (
            self._tscratch.workspace_pool.all_free
        ):
            raise InvariantError(
                "leaf workspace pool is not fully free between executions: "
                "a previous run leaked a workspace or a task is still "
                "holding one"
            )
        if self._poisoned:
            if self._workspace is not None:
                check_quiescent(self._workspace, "workspace")
            if self._tscratch is not None:
                check_quiescent(self._tscratch, "task-scratch")

    def _debug_post(self) -> None:
        """Poison-fill the scratch after an execution (lock held).

        Every scratch buffer is write-before-read within an execution, so
        the fill never changes results — it only arms the next
        :meth:`_debug_pre` quiescence check.
        """
        if self._workspace is not None:
            self._workspace.poison()
        if self._tscratch is not None:
            self._tscratch.poison()
        self._poisoned = True

    def _panelled_product(
        self, p: GemmProblem, rec: PhaseTimings,
        extras: "_ExecExtras | None" = None,
    ) -> np.ndarray:
        opa = p.op_a_view
        opb = p.op_b_view
        d = np.zeros((p.m, p.n), dtype=self.key.np_dtype, order="F")
        for panel, sub in zip(self._panels, self._panel_plans):
            pa = opa[panel.m0 : panel.m1, panel.k0 : panel.k1]
            pb = opb[panel.k0 : panel.k1, panel.n0 : panel.n1]
            if sub is None:
                part = pa @ pb
            else:
                part = sub._well_behaved_product(
                    pa, pb, transpose_a=False, transpose_b=False, rec=rec,
                    extras=extras,
                )
            if panel.accumulate:
                d[panel.m0 : panel.m1, panel.n0 : panel.n1] += part
            else:
                d[panel.m0 : panel.m1, panel.n0 : panel.n1] = part
        return d

    # ----------------------------------------------------------- accounting

    @property
    def scratch_bytes(self) -> int:
        """Recursion scratch bytes this plan holds (workspace/task scratch).

        Excludes the Morton operand/product buffers and conversion tables
        — this is exactly the *extra* memory the selected ``memory``
        schedule is accountable for: the geometric series over recursion
        levels (classic ``|A|/4 + |B|/4 + 2|C|/4`` per level, two_temp
        ``max(|A|,|C|)/4 + |B|/4``, ip_overwrite zero), or the task-DAG
        expansion tree plus leaf workspace pool for parallel plans.
        Panelled plans report the sum over their distinct sub-plans.
        """
        if self.tilings is None:
            seen: set[int] = set()
            total = 0
            for sub in self._panel_plans or ():
                if sub is not None and id(sub) not in seen:
                    seen.add(id(sub))
                    total += sub.scratch_bytes
            return total
        if self._tscratch is not None:
            return self._tscratch.total_bytes
        if self._workspace is not None:
            return self._workspace.nbytes
        return 0

    @property
    def _own_scratch_bytes(self) -> int:
        """Scratch this plan itself holds (sub-plans account separately)."""
        if self.tilings is None:
            return 0
        return self.scratch_bytes

    @property
    def pooled_bytes(self) -> int:
        """Bytes held by this plan's pooled buffers, scratch and tables."""
        total = 0
        for mm in (self._a_mm, self._b_mm, self._c_mm):
            if mm is not None:
                total += mm.buf.nbytes
        if self._workspace is not None:
            total += self._workspace.total_bytes
        if self._tscratch is not None:
            total += self._tscratch.total_bytes
        for site in self._sites.values():
            if site.table is not None:
                total += site.table.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        key = self.key
        shape = "panelled" if self.tilings is None else "well-behaved"
        sched = (
            f", tasks:{key.schedule.depth}" if key.schedule.parallel else ""
        )
        return (
            f"CompiledPlan({key.m}x{key.k}x{key.n}, "
            f"op=({key.op_a.value},{key.op_b.value}), {key.variant}"
            f"{sched}, {shape})"
        )


class BatchPlan:
    """A stacked-Morton execution plan for many same-geometry problems.

    Owns pooled batch-major stacks — operand/product
    :class:`BatchMortonMatrix` buffers of capacity ``cap`` (a
    :func:`batch_size_class`) plus a :class:`BatchWorkspace` — and executes
    whole batches through **one** Winograd/Strassen recursion: every
    addition is a single ufunc over ``(B, elems)`` slabs and every leaf
    product one batched ``matmul`` over a ``(B, T, T)`` stack.  Results
    are bit-identical to per-item :meth:`CompiledPlan.execute` — the
    recursion code and addition order are literally the same, only the
    leading batch axis differs.

    ``tasks`` schedules stripe the *batch axis* across the session's
    worker pool (contiguous row stripes with disjoint workspace rows)
    instead of expanding one item's recursion into a task DAG — many small
    problems parallelise better across items than within one.

    Conversion reuses one shared :class:`ConversionTable` per side,
    broadcast over the batch: each item is a single vectorised
    gather/scatter.  The first execution times a tile-loop conversion of
    item 0 per site as the baseline that ``batch_convert_seconds_saved``
    is measured against.

    Cached in the session's LRU alongside :class:`CompiledPlan`, keyed by
    ``(PlanKey, cap)``; eviction releases the stacks.  Requires a
    well-behaved tiling and ``memory != "ip_overwrite"`` (the batched
    recursion never clobbers operands — the pooled stacks' zero pads must
    survive across executions).
    """

    def __init__(self, key: PlanKey, cap: int, session) -> None:
        self.key = key
        self.cap = cap
        self.session = session
        self._lock = threading.Lock()
        self._cache_hit = False
        memory = resolve_memory(key.memory)
        if memory == "ip_overwrite":
            raise PlanError(
                "the batched path cannot use memory='ip_overwrite' "
                "(it would clobber the pooled operand stacks)"
            )
        self.tilings = key.policy.plan(key.m, key.k, key.n)
        if self.tilings is None:
            raise PlanError(
                f"{key.m}x{key.k}x{key.n} needs the panelled path; "
                "the batched path serves well-behaved tilings only"
            )
        tm, tk, tn = self.tilings
        dt = key.np_dtype
        self._debug = bool(getattr(session, "debug", False))
        self._poisoned = False
        self._ops = NumpyOps(
            key.kernel,
            trace=getattr(session, "trace", None),
            validate=self._debug,
        )
        # Stacks are large power-of-two-multiple allocations; distinct
        # stagger indices keep same-item rows of A/B/C (and the workspace
        # buffers, which continue the sequence) from ever landing
        # cache-set-congruent — the paper's Section 4 conflict problem
        # resurfacing at the batch level.
        #
        # As on the per-item path, a transposed operand of a Winograd
        # plan keeps its stack in *native* orientation (straight-copy
        # conversion) and the striped recursion reads it through a
        # TransposedView; Strassen stays transpose-fused-conversion.
        self._relabel_a = bool(key.trans_a and key.variant == "winograd")
        self._relabel_b = bool(key.trans_b and key.variant == "winograd")
        if self._relabel_a:
            self._a = BatchMortonMatrix.zeros(
                cap, key.k, key.m, tk, tm, dtype=dt, stagger=1
            )
        else:
            self._a = BatchMortonMatrix.zeros(
                cap, key.m, key.k, tm, tk, dtype=dt, stagger=1
            )
        if self._relabel_b:
            self._b = BatchMortonMatrix.zeros(
                cap, key.n, key.k, tn, tk, dtype=dt, stagger=2
            )
        else:
            self._b = BatchMortonMatrix.zeros(
                cap, key.k, key.n, tk, tn, dtype=dt, stagger=2
            )
        self._c = BatchMortonMatrix.zeros(
            cap, key.m, key.n, tm, tn, dtype=dt, stagger=3
        )
        self.buffers_allocated = 3
        self._ws = BatchWorkspace(
            cap, tm.depth, tm.tile, tk.tile, tn.tile,
            with_q=memory == "classic", schedule=memory, dtype=dt, stagger=4,
        )
        per_level = 2 if memory == "two_temp" else 4
        self.buffers_allocated += per_level * tm.depth
        # One shared table per side, broadcast over the batch axis.  The
        # per-item engine calibrates loop-vs-table per plan; here the
        # B-fold Python-overhead amortisation makes the table the static
        # winner whenever the recursion has any depth at all.
        self._tables: dict[str, ConversionTable] = {}
        if tm.depth >= 1:
            for name, mm in (("a", self._a), ("b", self._b), ("c", self._c)):
                if mm.rows * mm.cols <= CONVERT_TABLE_MAX_ELEMS:
                    self._tables[name] = conversion_table(
                        mm.rows, mm.cols, mm.tile_r, mm.tile_c, mm.depth
                    )
        self._baseline: dict[str, float] = {}
        # Fused convert-and-add packing over the batch axis: each row's
        # top-level S1/S3/T1/T3 sums are scattered during its
        # dense->Morton gather.  Unlike the per-item path there is no
        # depth threshold: the batched path already commits statically
        # to table gathers whenever the recursion has depth (the B-fold
        # amortisation), so packing three gathered quadrants plus sums
        # strictly beats gathering four and adding separately.
        self._fused = (
            bool(getattr(session, "fused_pack", True))
            and key.variant == "winograd"
            and tm.depth >= 1
            and not self._relabel_a
            and not self._relabel_b
            and "a" in self._tables
            and "b" in self._tables
        )
        self._fdsts: dict[str, np.ndarray] = {}
        if self._fused:
            qa = self._a.buf.shape[1] // 4
            qb = self._b.buf.shape[1] // 4
            lv = self._ws.view(0, cap).at(tm.depth - 1)
            self._fdsts = {
                # Row-stacked analogues of CompiledPlan._pack_destinations:
                # quadrant column slices of the operand stacks for S1/T1,
                # the outermost batch-workspace level's S/T stacks for
                # S3/T3 (stripe views slice the same raw arrays, so every
                # stripe reads its own packed rows).
                "S1": self._a.buf[:, 2 * qa : 3 * qa],
                "T1": self._b.buf[:, qb : 2 * qb],
                "S3": lv.s.buf,
                "T3": lv.t.buf,
            }
        # Stripe views are pure geometry; reuse them (and their memoised
        # quadrant/leaf caches) across executions.
        self._stripes: dict = {}

    # ------------------------------------------------------------- execute

    def _convert_in(
        self, name: str, arrs, out: BatchMortonMatrix, transpose: bool,
        pool, workers: int,
    ) -> float:
        """Fill ``out[:len(arrs)]``; return conversion seconds saved."""
        table = self._tables.get(name)
        if table is None:
            dense_to_morton_batch(
                arrs, out, transpose=transpose, pool=pool, workers=workers
            )
            return 0.0
        base = self._baseline.get(name)
        if base is None:
            # Calibrate: item 0 through the tile loop (timed baseline),
            # the rest through the shared table.
            t0 = time.perf_counter()
            dense_to_morton(
                arrs[0], out.item(0), transpose=transpose, zero_pad=False
            )
            base = self._baseline[name] = time.perf_counter() - t0
            t1 = time.perf_counter()
            for i in range(1, len(arrs)):
                dense_to_morton(
                    arrs[i], out.item(i), transpose=transpose,
                    zero_pad=False, table=table,
                )
            return base * (len(arrs) - 1) - (time.perf_counter() - t1)
        t0 = time.perf_counter()
        dense_to_morton_batch(
            arrs, out, transpose=transpose, table=table,
            pool=pool, workers=workers,
        )
        return base * len(arrs) - (time.perf_counter() - t0)

    def _fused_convert_in(
        self, name: str, arrs, out: BatchMortonMatrix, transpose: bool,
        quads, packs,
    ) -> None:
        """Fused fill of ``out[:len(arrs)]``: quadrant gathers plus packs."""
        table = self._tables[name]
        tr = self._ops.trace
        n = len(arrs)
        t0 = time.perf_counter()
        for i, arr in enumerate(arrs):
            dense_to_morton_quadrants(
                arr, out.item(i), quads, transpose=transpose,
                zero_pad=False, table=table,
            )
        if tr is not None and tr.enabled:
            tr.emit(
                "convert", label=f"batch-{name}",
                seconds=time.perf_counter() - t0, items=n,
                indexed=True, fused=True,
            )
        for label, op, q0, q1 in packs:
            t0 = time.perf_counter()
            pack_morton_quarter_batch(
                self._fdsts[label][:n], arrs, op, q0, q1, table,
                transpose=transpose,
            )
            if tr is not None and tr.enabled:
                tr.emit(
                    "pack", label=f"batch-{label}",
                    seconds=time.perf_counter() - t0, items=n,
                )

    def _convert_out(self, n_items: int, pool, workers: int):
        """Gather the first ``n_items`` products back to dense arrays."""
        table = self._tables.get("c")
        if table is None:
            return morton_to_dense_batch(
                self._c, n_items, pool=pool, workers=workers
            ), 0.0
        base = self._baseline.get("c")
        if base is None:
            t0 = time.perf_counter()
            first = morton_to_dense(self._c.item(0))
            base = self._baseline["c"] = time.perf_counter() - t0
            t1 = time.perf_counter()
            rest = [
                morton_to_dense(self._c.item(i), table=table)
                for i in range(1, n_items)
            ]
            saved = base * (n_items - 1) - (time.perf_counter() - t1)
            return [first, *rest], saved
        t0 = time.perf_counter()
        outs = morton_to_dense_batch(
            self._c, n_items, table=table, pool=pool, workers=workers
        )
        return outs, base * n_items - (time.perf_counter() - t0)

    def _run_stripe(self, lo: int, hi: int) -> None:
        views = self._stripes.get((lo, hi))
        if views is None:
            a = self._a.stripe(lo, hi)
            b = self._b.stripe(lo, hi)
            if self._relabel_a:
                a = transposed_view(a)
            if self._relabel_b:
                b = transposed_view(b)
            views = self._stripes[(lo, hi)] = (
                a, b,
                self._c.stripe(lo, hi),
                self._ws.view(lo, hi),
            )
        a, b, c, ws = views
        if self.key.variant == "winograd":
            winograd_multiply(
                a, b, c, ops=self._ops, workspace=ws,
                memory=self.key.memory, alpha=self.key.alpha,
                prepacked=self._fused,
            )
        else:
            strassen_multiply(
                a, b, c, ops=self._ops, workspace=ws, alpha=self.key.alpha
            )

    def execute_batch(
        self,
        problems: list[GemmProblem],
        cs: list,
        timings: PhaseTimings | None = None,
        indices=None,
    ) -> list[np.ndarray]:
        """Run validated same-geometry problems through the stacked path.

        ``cs[i]`` is item ``i``'s output operand (or ``None``); results
        come back in input order with full per-item ``alpha``/``beta``
        semantics applied.

        ``indices`` maps chunk positions back to the *caller's* item
        numbering (``indices[i]`` is the input index of ``problems[i]``;
        defaults to ``0..n-1``).  Any failure attributable to one item —
        geometry validation, output scaling — raises
        :class:`repro.errors.BatchItemError` carrying that input index
        with the original exception chained; a multi-item failure reports
        the smallest affected index.  Whatever happens, the pooled stacks
        are left quiescent (the lock is released only at phase
        boundaries), so the plan stays reusable after an error.
        """
        key = self.key
        n_items = len(problems)
        if n_items == 0:
            return []
        if indices is None:
            indices = range(n_items)
        if n_items > self.cap:
            raise PlanError(
                f"batch of {n_items} exceeds this plan's capacity {self.cap}"
            )
        for i, p in enumerate(problems):
            if (p.m, p.k, p.n) != (key.m, key.k, key.n):
                cause = ShapeError(
                    f"operands give GEMM dims {(p.m, p.k, p.n)}, but this "
                    f"batch plan is compiled for {(key.m, key.k, key.n)}"
                )
                raise BatchItemError(indices[i], cause) from cause
            if (p.op_a, p.op_b) != (key.op_a, key.op_b):
                cause = PlanError(
                    f"ops {(p.op_a.value, p.op_b.value)} do not match the "
                    f"plan's {(key.op_a.value, key.op_b.value)}"
                )
                raise BatchItemError(indices[i], cause) from cause
            # alpha is folded into the one shared recursion, so it cannot
            # vary per item; beta is a per-item epilogue and may.
            if p.alpha != key.alpha:
                cause = PlanError(
                    f"alpha={p.alpha} does not match the batch plan spec's "
                    f"alpha={key.alpha}"
                )
                raise BatchItemError(indices[i], cause) from cause
        rec = PhaseTimings()
        transpose_a = key.trans_a and not self._relabel_a
        transpose_b = key.trans_b and not self._relabel_b
        tr = self._ops.trace
        with self._lock:
            if self._debug:
                if self._poisoned:
                    check_quiescent(self._ws, "batch-workspace")
            fused0 = self._ops.fused_adds
            pool = None
            workers = 1
            if key.schedule.parallel and n_items > 1:
                pool = self.session._ensure_pool()
                workers = key.schedule.workers or pool.workers
            if tr is not None and tr.enabled:
                if self._relabel_a:
                    tr.emit("relabel", label="batch-a", items=n_items)
                if self._relabel_b:
                    tr.emit("relabel", label="batch-b", items=n_items)
            t0 = time.perf_counter()
            if self._fused:
                saved = 0.0
                self._fused_convert_in(
                    "a", [p.a for p in problems], self._a, transpose_a,
                    CONVERT_QUADS_A, FUSED_PACKS_A,
                )
                self._fused_convert_in(
                    "b", [p.b for p in problems], self._b, transpose_b,
                    CONVERT_QUADS_B, FUSED_PACKS_B,
                )
            else:
                saved = self._convert_in(
                    "a", [p.a for p in problems], self._a, transpose_a,
                    pool, workers,
                )
                saved += self._convert_in(
                    "b", [p.b for p in problems], self._b, transpose_b,
                    pool, workers,
                )
            t1 = time.perf_counter()
            if not self._fused and tr is not None and tr.enabled:
                # The fused path emitted per-side convert events above
                # (gather-only seconds, pack passes reported separately).
                tr.emit(
                    "convert", label="batch-in", seconds=t1 - t0,
                    items=n_items, indexed=bool(self._tables),
                )
            if self._debug and not self._fused:
                # Phase boundary: every occupied stack row's pad must be
                # exactly zero before the shared recursion runs over it.
                # Fused stacks skip the check — the A21/B12 column slots
                # hold packed sums whose support extends into the pad.
                for i in range(n_items):
                    check_pad_zero(self._a.item(i), f"a[{indices[i]}]")
                    check_pad_zero(self._b.item(i), f"b[{indices[i]}]")
            run_batch_stripes(
                pool, n_items, self._run_stripe, workers,
                name=f"batch-{key.m}x{key.k}x{key.n}",
                tracer=tr,
            )
            t2 = time.perf_counter()
            if key.beta == 0.0:
                # Bulk gather to fresh dense arrays; per-item beta (a
                # directly-invoked batch may carry one) is applied in the
                # post-lock epilogue below.
                outs, saved_c = self._convert_out(n_items, pool, workers)
                saved += saved_c
                results = first_err = None
            else:
                # The spec's accumulate: each item's product is folded
                # into its caller C in one fused scale-and-add sweep of
                # the conversion — never a separate full-matrix pass.
                outs = None
                results, first_err = self._fused_convert_out(
                    problems, cs, indices
                )
            t3 = time.perf_counter()
            if tr is not None and tr.enabled:
                tr.emit(
                    "convert", label="batch-out", seconds=t3 - t2,
                    items=n_items, indexed="c" in self._tables,
                )
                if key.beta != 0.0:
                    tr.emit(
                        "accumulate", label="batch-c",
                        beta=float(key.beta), items=n_items,
                    )
            fused_delta = self._ops.fused_adds - fused0
            if self._debug:
                self._ws.poison()
                self._poisoned = True
        rec.to_morton = t1 - t0
        rec.compute = t2 - t1
        rec.from_morton = t3 - t2
        if timings is not None:
            timings.to_morton += rec.to_morton
            timings.compute += rec.compute
            timings.from_morton += rec.from_morton
        self.session._record_batch_execution(
            self, n_items, rec, saved, fused_delta,
            fused_packs=4 * n_items if self._fused else 0,
        )
        if results is None:
            # beta == 0 epilogue: alpha is already folded into the
            # recursion, so only the per-item beta/copy-back remains.
            results = []
            first_err = None
            for i, (p, c, d) in enumerate(zip(problems, cs, outs)):
                try:
                    if p.beta != 0.0:
                        c *= p.beta
                        c += d
                        r = c
                    elif c is not None:
                        c[...] = d
                        r = c
                    else:
                        r = d
                except Exception as exc:  # noqa: BLE001 - re-raised with index
                    # Finish the remaining items (their outputs are
                    # already computed) before reporting the smallest
                    # failing index.
                    if first_err is None:
                        err = BatchItemError(indices[i], exc)
                        err.__cause__ = exc
                        first_err = err
                    results.append(None)
                    continue
                results.append(r)
        if first_err is not None:
            raise first_err
        return results

    def _fused_convert_out(self, problems, cs, indices):
        """Per-item fused beta conversion (lock held); returns results/error.

        Items whose ``beta`` is 0 (or whose C cannot take the computation
        dtype directly) fall back to a fresh gather plus copy-back; a
        failing item (e.g. a read-only C) is recorded and the rest still
        convert, keeping the pooled stacks quiescent.
        """
        key = self.key
        table = self._tables.get("c")
        results = []
        first_err: BatchItemError | None = None
        for i, p in enumerate(problems):
            c = cs[i]
            try:
                if c is not None and (
                    p.beta != 0.0 or c.dtype == key.np_dtype
                ):
                    r = morton_to_dense(
                        self._c.item(i), out=c, beta=p.beta, table=table
                    )
                else:
                    d = morton_to_dense(self._c.item(i), table=table)
                    if c is not None:
                        c[...] = d
                        r = c
                    else:
                        r = d
            except Exception as exc:  # noqa: BLE001 - re-raised with index
                if first_err is None:
                    err = BatchItemError(indices[i], exc)
                    err.__cause__ = exc
                    first_err = err
                results.append(None)
                continue
            results.append(r)
        return results, first_err

    # ----------------------------------------------------------- accounting

    @property
    def scratch_bytes(self) -> int:
        """Recursion scratch bytes the stacked workspace holds."""
        return self._ws.nbytes

    @property
    def _own_scratch_bytes(self) -> int:
        return self.scratch_bytes

    @property
    def pooled_bytes(self) -> int:
        """Bytes held by the stacked operand/product buffers and scratch.

        Conversion tables are excluded: they live in the module-level
        shared cache (:func:`repro.layout.convert.conversion_table`) and
        may serve several plans at once.
        """
        return (
            self._a.nbytes + self._b.nbytes + self._c.nbytes + self._ws.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        key = self.key
        return (
            f"BatchPlan({key.m}x{key.k}x{key.n} x{self.cap}, "
            f"op=({key.op_a.value},{key.op_b.value}), {key.variant}, "
            f"{key.memory}, {key.dtype})"
        )
