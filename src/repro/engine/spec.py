"""``GemmSpec``: the frozen operation descriptor of a planned GEMM.

A :class:`~repro.engine.plan.PlanKey` froze *geometry* (dims, tilings,
schedule); everything else the BLAS contract varies per call — ``alpha``,
``beta``, the transpose flags, the computation dtype — used to be applied
as an epilogue.  That split breaks down once the semantics are folded
*into* the compiled artefact (alpha into the final U-adds, beta into the
output conversion, transposes into quadrant relabels): two calls with
different specs now need different compiled plans, so the spec must be
part of the key.

:class:`GemmSpec` is that missing half: a frozen, hashable value object
with a :meth:`GemmSpec.coerce` constructor mirroring
:meth:`repro.core.truncation.TruncationPolicy.coerce` — every public
surface funnels its loose ``alpha=``/``beta=``/``op_a=``/``trans_a=``
keywords through one normalisation point, and malformed input fails with
a :class:`~repro.errors.PlanError` before any planning happens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import PlanError

__all__ = ["GemmSpec"]

#: dtypes the engine plans for (see PlanKey: float64 is the paper's
#: workload, float32 doubles the effective cache).
_SUPPORTED_DTYPES = ("float64", "float32")


def _parse_trans(name: str, value) -> bool:
    """Normalise a transpose spelling (bool or BLAS op string) to a bool."""
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        low = value.strip().lower()
        if low in ("n", "notrans", "no"):
            return False
        if low in ("t", "trans", "c"):
            return True
        raise PlanError(
            f"malformed {name} {value!r}; expected a bool or one of "
            "'n'/'notrans'/'no'/'t'/'trans'/'c'"
        )
    # OpKind is a str subclass and is caught above; anything else is junk.
    raise PlanError(f"malformed {name} {value!r}; expected a bool or op string")


def _coerce_dtype(value) -> str:
    if value is None:
        return "float64"
    name = np.dtype(value).name
    if name not in _SUPPORTED_DTYPES:
        raise PlanError(
            f"unsupported dtype {name!r}; the engine plans for "
            f"{' and '.join(_SUPPORTED_DTYPES)}"
        )
    return name


@dataclass(frozen=True)
class GemmSpec:
    """The operation half of a plan key: ``C = alpha·op(A)·op(B) + beta·C``.

    Frozen and hashable so it can live inside ``PlanKey``.  ``dtype`` is
    the *computation* dtype (operands are cast on entry); the transpose
    flags describe the logical operands, not their storage.
    """

    alpha: float = 1.0
    beta: float = 0.0
    trans_a: bool = False
    trans_b: bool = False
    dtype: str = "float64"

    def __post_init__(self) -> None:
        # Normalise through float() so specs hash/compare by value
        # (5 == 5.0 already, but numpy scalars should not leak into keys).
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(self, "beta", float(self.beta))
        object.__setattr__(self, "trans_a", bool(self.trans_a))
        object.__setattr__(self, "trans_b", bool(self.trans_b))
        if self.dtype not in _SUPPORTED_DTYPES:
            raise PlanError(
                f"unsupported dtype {self.dtype!r}; the engine plans for "
                f"{' and '.join(_SUPPORTED_DTYPES)}"
            )

    # ------------------------------------------------------------- coerce

    @classmethod
    def coerce(
        cls,
        value=None,
        *,
        alpha=None,
        beta=None,
        op_a=None,
        op_b=None,
        trans_a=None,
        trans_b=None,
        dtype=None,
    ) -> "GemmSpec":
        """Normalise loose call-site keywords into one frozen spec.

        ``value`` may be ``None`` (defaults), an existing :class:`GemmSpec`
        (passed through, then overridden by any explicit keywords), or a
        dict of the dataclass fields.  ``op_a``/``op_b`` accept the BLAS
        op spellings (``"n"``/``"t"``/...); an explicit ``trans_a``/
        ``trans_b`` wins over the corresponding op keyword.  Anything
        malformed raises :class:`~repro.errors.PlanError`.
        """
        if value is None:
            spec = cls()
        elif isinstance(value, cls):
            spec = value
        elif isinstance(value, dict):
            try:
                spec = cls(**value)
            except PlanError:
                raise
            except TypeError as exc:
                raise PlanError(f"malformed GemmSpec dict {value!r}: {exc}") from exc
        else:
            raise PlanError(
                f"cannot coerce {value!r} into a GemmSpec; expected None, "
                "a GemmSpec, or a dict of its fields"
            )

        changes: dict = {}
        if alpha is not None:
            try:
                changes["alpha"] = float(alpha)
            except (TypeError, ValueError) as exc:
                raise PlanError(f"malformed alpha {alpha!r}") from exc
        if beta is not None:
            try:
                changes["beta"] = float(beta)
            except (TypeError, ValueError) as exc:
                raise PlanError(f"malformed beta {beta!r}") from exc
        if op_a is not None:
            changes["trans_a"] = _parse_trans("op_a", op_a)
        if op_b is not None:
            changes["trans_b"] = _parse_trans("op_b", op_b)
        # explicit trans flags take precedence over op spellings
        if trans_a is not None:
            changes["trans_a"] = _parse_trans("trans_a", trans_a)
        if trans_b is not None:
            changes["trans_b"] = _parse_trans("trans_b", trans_b)
        if dtype is not None:
            changes["dtype"] = _coerce_dtype(dtype)
        return replace(spec, **changes) if changes else spec

    # --------------------------------------------------------- convenience

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype object for this spec's computation dtype."""
        return np.dtype(self.dtype)

    @property
    def is_default(self) -> bool:
        """True for the plain ``C = A·B`` float64 contract."""
        return self == _DEFAULT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ("t" if self.trans_a else "n") + ("t" if self.trans_b else "n")
        return (
            f"spec({ops}, alpha={self.alpha:g}, beta={self.beta:g}, "
            f"{self.dtype})"
        )


_DEFAULT = GemmSpec()
