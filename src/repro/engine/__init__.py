"""The plan-caching GEMM execution engine.

``repro.engine`` amortises everything :func:`repro.modgemm` decides per
call — truncation-point selection, Morton buffer and workspace allocation,
kernel/variant resolution — across repeated multiplies of the same
geometry.  This is the serving-workload fast path: create one
:class:`GemmSession`, then::

    import numpy as np
    from repro.engine import GemmSession

    session = GemmSession()
    for a, b in stream_of_same_shape_pairs:
        c = session.multiply(a, b)        # plans once, reuses thereafter

    plan = session.plan(513, 513, 513)    # or compile a plan explicitly
    c = plan.execute(a, b)

    results = session.multiply_many([(a1, b1), (a2, b2)])   # thread pool
    print(session.stats())                # hits/misses, bytes pooled, ...

:func:`repro.modgemm` and :func:`repro.modgemm_morton` are thin wrappers
over the module-level :func:`default_session`, so one-shot callers get the
cache for free while staying behaviour-identical.
"""

from ..core.scheduler import Schedule, WorkerPool
from ..core.winograd import MEMORY_SCHEDULES, resolve_memory
from .expr import Mat, MatChain, chain_order
from .spec import GemmSpec
from .plan import (
    BATCH_CAP_MAX,
    BatchPlan,
    CompiledPlan,
    PlanKey,
    batch_size_class,
    resolve_variant,
    VARIANTS,
)
from .session import (
    GemmSession,
    SessionStats,
    default_session,
    reset_default_session,
)

__all__ = [
    "BATCH_CAP_MAX",
    "BatchPlan",
    "batch_size_class",
    "chain_order",
    "CompiledPlan",
    "GemmSpec",
    "Mat",
    "MatChain",
    "PlanKey",
    "Schedule",
    "WorkerPool",
    "GemmSession",
    "SessionStats",
    "default_session",
    "reset_default_session",
    "resolve_variant",
    "VARIANTS",
    "MEMORY_SCHEDULES",
    "resolve_memory",
]
