"""Chained-expression planning over the plan-caching session.

``session.evaluate(Mat(A) @ Mat(B) @ Mat(C))`` computes a whole product
chain through the engine: association order is chosen by the classic
matrix-chain dynamic program (minimising the summed ``m*k*n`` kernel
cost), every pairwise product runs through :meth:`GemmSession.multiply`
(so each distinct geometry compiles once and is cached), and
intermediate results land in pooled per-``(shape, dtype)`` buffers that
are reused across ``evaluate`` calls.

Leaves are :class:`Mat` wrappers; ``Mat(A).T`` marks a copy-free
transpose that flows into the engine as a ``trans_a``/``trans_b`` flag
(Morton quadrant-swap relabeling — no operand copies).  Transposing a
*chain* is rejected: ``(X @ Y).T`` would need result materialisation, so
callers write ``Mat(Y).T @ Mat(X).T`` instead.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError, ShapeError

__all__ = ["Mat", "MatChain", "chain_order", "evaluate"]


class Mat:
    """A leaf operand in a matrix-product expression.

    Wraps a 2-D array plus a transpose flag.  ``.T`` toggles the flag
    without touching the data; ``@`` builds a :class:`MatChain`.
    """

    __slots__ = ("array", "trans")

    def __init__(self, array, trans: bool = False):
        array = np.asarray(array)
        if array.ndim != 2:
            raise ShapeError(
                f"expression leaves must be 2-D, got ndim {array.ndim}"
            )
        self.array = array
        self.trans = bool(trans)

    @property
    def shape(self) -> tuple[int, int]:
        r, c = self.array.shape
        return (c, r) if self.trans else (r, c)

    @property
    def T(self) -> "Mat":
        return Mat(self.array, not self.trans)

    def __matmul__(self, other):
        return MatChain.of(self) @ other

    def __rmatmul__(self, other):
        return MatChain.of(other) @ MatChain.of(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m, n = self.shape
        return f"Mat({m}x{n}{', T' if self.trans else ''})"


class MatChain:
    """A left-to-right product of :class:`Mat` leaves (no association yet)."""

    __slots__ = ("leaves",)

    def __init__(self, leaves):
        self.leaves = tuple(leaves)

    @classmethod
    def of(cls, value) -> "MatChain":
        if isinstance(value, MatChain):
            return value
        if isinstance(value, Mat):
            return cls((value,))
        return cls((Mat(value),))

    @property
    def shape(self) -> tuple[int, int]:
        return (self.leaves[0].shape[0], self.leaves[-1].shape[1])

    @property
    def T(self):
        raise PlanError(
            "transpose applies to expression leaves only — a chain "
            "transpose would force materialisation; write the reversed "
            "chain of transposed leaves instead: (A @ B).T == B.T @ A.T"
        )

    def __matmul__(self, other):
        other = MatChain.of(other)
        inner_l = self.leaves[-1].shape[1]
        inner_r = other.leaves[0].shape[0]
        if inner_l != inner_r:
            raise ShapeError(
                f"inner dimensions disagree in chain: {self.shape[0]}x"
                f"{inner_l} @ {inner_r}x{other.shape[1]}"
            )
        return MatChain(self.leaves + other.leaves)

    def __rmatmul__(self, other):
        return MatChain.of(other) @ self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return " @ ".join(repr(leaf) for leaf in self.leaves)


def chain_order(dims):
    """Matrix-chain association order for leaf ``i`` of shape
    ``dims[i] x dims[i+1]``.

    Returns ``(cost, splits)`` where ``cost`` is the minimal summed
    ``m*k*n`` over all pairwise products and ``splits[i][j]`` is the
    index after which the optimal evaluation of leaves ``i..j`` splits.
    """
    n = len(dims) - 1
    if n < 1:
        raise PlanError("chain_order needs at least one matrix")
    cost = [[0] * n for _ in range(n)]
    splits = [[0] * n for _ in range(n)]
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best = None
            for k in range(i, j):
                c = cost[i][k] + cost[k + 1][j] + dims[i] * dims[k + 1] * dims[j + 1]
                if best is None or c < best:
                    best = c
                    splits[i][j] = k
            cost[i][j] = best
    return cost[0][n - 1], splits


def _pool_key(shape, dtype):
    return (tuple(shape), np.dtype(dtype).str)


def _acquire(pool, shape, dtype):
    stack = pool.get(_pool_key(shape, dtype))
    if stack:
        return stack.pop()
    # F-order matches the engine's column-major dgemm interface contract.
    return np.empty(shape, dtype=dtype, order="F")


def _release(pool, buf):
    pool.setdefault(_pool_key(buf.shape, buf.dtype), []).append(buf)


def evaluate(
    session,
    expr,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    c=None,
    dtype=None,
    pool=None,
    **opts,
):
    """Evaluate a product chain: ``alpha * (L1 @ ... @ Ln) + beta * C``.

    ``expr`` is a :class:`MatChain` (or a single product built with
    ``@``).  Association order comes from :func:`chain_order`; every
    pairwise product runs through ``session.multiply`` so plans are
    cached per geometry.  Intermediates are drawn from ``pool`` (a dict,
    typically the session's) and returned to it before this function
    exits; ``alpha``/``beta``/``c`` apply to the *root* product only.
    Extra ``opts`` (``kernel=``, ``memory=``, ``schedule=`` ...) are
    forwarded to every ``multiply`` call.
    """
    chain = MatChain.of(expr)
    leaves = chain.leaves
    if len(leaves) < 2:
        raise PlanError(
            "expression must contain at least two operands; wrap arrays "
            "in Mat() and join them with @"
        )
    dims = [leaves[0].shape[0]] + [leaf.shape[1] for leaf in leaves]
    _, splits = chain_order(dims)
    dt = np.dtype("float64" if dtype is None else dtype)
    if pool is None:
        pool = {}

    def eval_range(i, j, root):
        if i == j:
            return leaves[i]
        k = splits[i][j]
        left = eval_range(i, k, False)
        right = eval_range(k + 1, j, False)
        la, lt = (left.array, left.trans) if isinstance(left, Mat) else (left, False)
        ra, rt = (right.array, right.trans) if isinstance(right, Mat) else (right, False)
        if root:
            r = session.multiply(
                la, ra, c=c, alpha=alpha, beta=beta,
                trans_a=lt, trans_b=rt, dtype=dt, **opts,
            )
        else:
            buf = _acquire(pool, (dims[i], dims[j + 1]), dt)
            r = session.multiply(
                la, ra, c=buf, trans_a=lt, trans_b=rt, dtype=dt, **opts,
            )
        for child in (left, right):
            if not isinstance(child, Mat):
                _release(pool, child)
        return r

    return eval_range(0, len(leaves) - 1, True)
