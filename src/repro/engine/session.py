"""Plan-caching GEMM sessions: amortise planning across repeated calls.

A :class:`GemmSession` memoises :class:`CompiledPlan` objects keyed on the
full problem geometry ``(m, k, n, op_a, op_b, policy, kernel, variant,
schedule)``.  The first multiply of a geometry pays for truncation-point
selection and buffer allocation; every later one reuses the frozen plan —
the amortisation that serving workloads (many same-shape multiplies) need.

The cache is a bounded LRU so long-lived sessions cannot leak: when more
than ``capacity`` geometries are live, the least recently used plan (and
its pooled buffers) is dropped.  A parallel pool of :class:`Workspace`
objects serves :meth:`multiply_morton` (operands already in Morton order),
sharing the same hit/miss counters and byte accounting.

Plans with a ``tasks`` :class:`Schedule` execute on the session's
persistent :class:`repro.core.scheduler.WorkerPool`, created lazily on the
first parallel execution and shared by every plan (and, via the ``pool``
constructor argument, by several sessions).  ``stats()`` reports the
scheduler counters — tasks run, worker utilisation — alongside the
adaptive-conversion savings.

All methods are thread-safe: the cache is guarded by a session lock, and
each plan serialises its own executions, so concurrent
:meth:`multiply_many` batches never corrupt pooled buffers.

``repro.modgemm`` / ``repro.modgemm_morton`` are thin wrappers over the
module-level :func:`default_session`.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel, get_kernel, set_accumulate_cap
from ..core.modgemm import PhaseTimings
from ..core.ops import NumpyOps
from ..core.scheduler import Schedule, WorkerPool
from ..core.strassen import strassen_multiply
from ..core.truncation import TruncationPolicy
from ..core.winograd import resolve_memory, winograd_multiply
from ..core.workspace import Workspace
from ..errors import BatchItemError, PlanError
from ..layout.matrix import MortonMatrix
from ..observe.trace import Tracer
from ..tune.store import UNSET, PlanStore
from .plan import (
    BATCH_CAP_MAX,
    BatchPlan,
    CompiledPlan,
    PlanKey,
    batch_size_class,
    resolve_variant,
)
from .spec import GemmSpec

__all__ = [
    "GemmSession",
    "SessionStats",
    "default_session",
    "reset_default_session",
]


@dataclass(frozen=True)
class SessionStats:
    """An immutable snapshot of one session's instrumentation counters.

    ``plan_hits`` / ``plan_misses`` count cache lookups (the Morton
    workspace pool of :meth:`GemmSession.multiply_morton` shares these);
    ``buffers_reused`` counts executions served entirely from pooled
    buffers (i.e. on a cache hit); ``buffers_allocated`` counts float64
    scratch/operand buffers allocated by plan compilation — constant while
    the hit path is in effect; ``bytes_pooled`` is the *current* total
    pooled across cached plans and workspaces; ``timings`` aggregates the
    conversion/compute phase breakdown over every execution.

    The scheduler adds ``parallel_executes`` (executions run on the task
    graph), ``tasks_run``, ``worker_busy_seconds`` (summed task execution
    time across workers) and ``worker_utilization`` (busy time over pool
    capacity, in ``[0, 1]``).  The adaptive conversion calibration adds
    ``indexed_conversions`` (conversions served by a precomputed index
    table) and ``convert_seconds_saved`` (their summed time saved against
    each site's measured tile-loop baseline).

    The memory-schedule accounting adds ``scratch_bytes_allocated``
    (cumulative recursion-scratch bytes allocated over the session's
    lifetime — workspace levels and task-DAG scratch, excluding operand
    buffers), ``peak_scratch_bytes`` (high-water mark of *live* scratch
    across cached plans and pooled workspaces) and ``fused_adds``
    (``add3`` passes executed by low-memory schedules).

    The stacked-batch path adds ``batched_executes`` (whole batches run
    through a :class:`BatchPlan`'s single recursion), ``batch_items``
    (items those batches contained — each also counts in ``executes``),
    ``batch_fallbacks`` (same-geometry groups of two or more items that
    had to fall back to the per-item thread pool — panelled geometry or
    ``ip_overwrite``) and ``batch_convert_seconds_saved`` (layout
    conversion time saved by table-driven batched gather/scatter against
    each batch plan's measured per-item tile-loop baseline).

    The fused packing path adds ``fused_packs`` (quarter-matrix operand
    sums produced during a dense->Morton gather instead of by a
    standalone add pass — 4 per fused execution, ``4 x items`` per fused
    batch), ``convert_seconds`` (wall time spent in the conversion phases
    — ``timings.to_morton + timings.from_morton``; a fused ``tasks:``
    plan's operand conversion runs inside its graph and lands in
    ``compute`` instead) and ``convert_fraction`` (``convert_seconds``
    over total execute time, in ``[0, 1]`` — the ratio the fused path
    exists to shrink).

    The persistent plan store adds ``store_hits`` / ``store_misses``
    (plan-key resolutions answered / not answered by the session's
    :class:`repro.tune.PlanStore`) and ``autotune_seconds`` (wall time
    spent inside :meth:`GemmSession.autotune`, including its trial
    executions).
    """

    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    plans_cached: int = 0
    executes: int = 0
    buffers_reused: int = 0
    buffers_allocated: int = 0
    bytes_pooled: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    parallel_executes: int = 0
    tasks_run: int = 0
    worker_busy_seconds: float = 0.0
    worker_utilization: float = 0.0
    indexed_conversions: int = 0
    convert_seconds_saved: float = 0.0
    scratch_bytes_allocated: int = 0
    peak_scratch_bytes: int = 0
    fused_adds: int = 0
    batched_executes: int = 0
    batch_items: int = 0
    batch_fallbacks: int = 0
    batch_convert_seconds_saved: float = 0.0
    fused_packs: int = 0
    convert_seconds: float = 0.0
    convert_fraction: float = 0.0
    store_hits: int = 0
    store_misses: int = 0
    autotune_seconds: float = 0.0


class GemmSession:
    """A long-lived GEMM execution context with a bounded plan cache.

    Parameters
    ----------
    capacity:
        Maximum number of cached plans (and, separately, pooled Morton
        workspaces).  Least-recently-used entries are evicted beyond it.
    policy, kernel, variant, schedule, memory:
        Session-wide defaults for :meth:`multiply` /:meth:`plan`; each call
        may override them.  They accept the same string-or-object forms as
        :func:`repro.modgemm`; ``schedule`` additionally accepts
        ``"tasks:D"`` / ``"tasks:DxW"`` strings (see
        :meth:`Schedule.coerce`).  ``memory`` selects the recursion's
        memory schedule — ``"classic"`` (default), ``"two_temp"`` (Boyer
        et al. two-temporary: ~half the scratch, bit-identical results)
        or ``"ip_overwrite"`` (zero scratch; clobbers the *internal*
        Morton operand copies, so dense-level results are unchanged, but
        requires uniform tile geometry and a sequential schedule).
    max_workers:
        Size of the session's worker pool (created lazily on the first
        ``tasks``-schedule execution).  Defaults to
        ``min(8, os.cpu_count())``.
    pool:
        An existing :class:`WorkerPool` to share between sessions; the
        session then never creates (nor shuts down) its own.
    trace:
        ``True`` starts the session with event tracing enabled.  Every
        session owns a :class:`repro.observe.Tracer` at ``session.trace``
        regardless; it can be enabled/disabled at any time
        (``session.trace.enable()``).  Disabled tracing costs one
        predicate check per instrumented site.
    trace_capacity:
        Ring-buffer capacity of the session's tracer (events beyond it
        displace the oldest, which are counted in ``trace.dropped``).
    debug:
        Arm validation mode: invariant checks at phase boundaries —
        operand-pad zeroing, workspace quiescence (poison-fill between
        executions), NaN/Inf guards on leaf products, and task-graph
        accounting checks in the worker pool.  Violations raise
        :class:`repro.errors.InvariantError`.  Results are bit-identical
        to a non-debug session; expect a substantial slowdown.  Fixed at
        construction (plans bake the guards in at compile time).
    fused_pack:
        ``True`` (default) lets Winograd plans fuse the top level's
        S1/S3/T1/T3 operand sums into the dense->Morton gather — one
        read of each source quadrant produces both the converted
        quadrant and the packed sum, eliding four standalone add passes
        and one quadrant copy per operand.  Per-item plans fuse where
        the index-table gather is already the right conversion strategy
        (``depth >= CONVERT_TABLE_MIN_DEPTH``; at shallower depths the
        tile loop's large contiguous copies win and fusing would
        regress); batch plans fuse whenever tables exist (``depth >=
        1``).  ``"always"`` drops the per-item depth threshold to 1
        (tests, A/B measurement); ``False`` disables fusion entirely.
        Results are bit-identical in all modes.  Fixed at construction
        (plans bake the fused layout in at compile time).
    accumulate_cap:
        When given, sets the leaf kernels' cached accumulate-scratch cap
        (:func:`repro.blas.set_accumulate_cap`) at construction.  The cap
        is **process-global** (the scratch is shared by every session);
        it is exposed here so serving configurations live in one place.
        An explicit value also takes precedence over a plan store's
        ``accumulate_cap`` artifact.
    plan_store:
        The persistent cross-session plan database
        (:class:`repro.tune.PlanStore`).  Accepts a ``PlanStore`` (shared
        between sessions), a path (a store is opened there, lazily), or
        ``None`` to disable persistence.  When the argument is omitted,
        the ``REPRO_PLAN_STORE`` environment variable (if set and
        non-empty) names the store path — the explicit argument always
        wins over the environment.  With a store attached, plan-key
        resolution consults it before the heuristic defaults (an
        explicit per-call ``policy=``/``schedule=``/... still wins),
        conversion-site calibration verdicts are replayed from and
        persisted to it, and :meth:`autotune` writes its winners back.
        ``close()`` flushes dirty store state to disk.
    """

    def __init__(
        self,
        capacity: int = 16,
        policy: "TruncationPolicy | int | str | None" = None,
        kernel: "str | LeafKernel" = "numpy",
        variant: str = "winograd",
        schedule: "Schedule | str | None" = None,
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        memory: "str | None" = None,
        trace: bool = False,
        trace_capacity: int = 8192,
        debug: bool = False,
        fused_pack: bool = True,
        accumulate_cap: int | None = None,
        plan_store: "PlanStore | str | os.PathLike | None" = UNSET,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.capacity = capacity
        self.trace = Tracer(capacity=trace_capacity, enabled=bool(trace))
        self.debug = bool(debug)
        if fused_pack not in (True, False, "always"):
            raise ValueError(
                f"fused_pack must be True, False or 'always', "
                f"got {fused_pack!r}"
            )
        self.fused_pack = fused_pack
        if accumulate_cap is not None:
            set_accumulate_cap(accumulate_cap)
        self._plan_store = PlanStore.resolve(plan_store)
        # An explicit accumulate_cap argument outranks the store artifact;
        # otherwise the artifact is applied once, on the first consult.
        self._store_cap_pending = (
            self._plan_store is not None and accumulate_cap is None
        )
        self.default_policy = TruncationPolicy.coerce(policy)
        self.default_kernel = get_kernel(kernel)
        self.default_variant = resolve_variant(variant)
        self.default_schedule = Schedule.coerce(schedule)
        try:
            self.default_memory = resolve_memory(memory)
        except ValueError as exc:
            raise PlanError(str(exc)) from None
        self.max_workers = max_workers
        self._pool = pool
        self._owns_pool = False
        self._lock = threading.RLock()
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
        self._batch_plans: "OrderedDict[tuple, BatchPlan]" = OrderedDict()
        self._workspaces: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._executes = 0
        self._buffers_reused = 0
        self._buffers_allocated = 0
        self._timings = PhaseTimings()
        self._timings.panels = 0
        self._parallel_executes = 0
        self._tasks_run = 0
        self._worker_busy = 0.0
        self._worker_capacity = 0.0
        self._indexed_conversions = 0
        self._convert_saved = 0.0
        self._scratch_allocated = 0
        self._scratch_live = 0
        self._scratch_peak = 0
        self._fused_adds = 0
        self._batched_executes = 0
        self._batch_items = 0
        self._batch_fallbacks = 0
        self._batch_convert_saved = 0.0
        self._fused_packs = 0
        self._store_hits = 0
        self._store_misses = 0
        self._autotune_seconds = 0.0
        # (shape, dtype) -> free F-order buffers for evaluate() intermediates.
        self._expr_pool: dict = {}

    @property
    def plan_store(self) -> "PlanStore | None":
        """The session's persistent plan store (``None`` when disabled)."""
        return self._plan_store

    # ---------------------------------------------------------- worker pool

    def _pool_size(self) -> int:
        """Worker count the pool has (or would be created with)."""
        if self._pool is not None:
            return self._pool.workers
        if self.max_workers is not None:
            return self.max_workers
        return min(8, os.cpu_count() or 1)

    def _ensure_pool(self) -> WorkerPool:
        """The session's worker pool, created lazily on first parallel use."""
        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self._pool_size(), name="repro-session",
                    validate=self.debug,
                )
                self._owns_pool = True
            return self._pool

    def close(self) -> None:
        """Release pooled resources: cached plans, workspaces, worker pool.

        A pool the session created itself is shut down; a shared ``pool``
        passed at construction is left running for its other users.  The
        session stays usable — a later parallel multiply lazily recreates
        the pool.  Dirty plan-store state is flushed to disk (failures
        warn rather than raise — closing must always succeed).
        Idempotent.
        """
        store = self._plan_store
        if store is not None:
            try:
                store.flush()
            except OSError as exc:
                warnings.warn(
                    f"could not flush plan store {store.path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        with self._lock:
            pool, owned = self._pool, self._owns_pool
            if owned:
                self._pool = None
                self._owns_pool = False
            self._plans.clear()
            self._batch_plans.clear()
            self._workspaces.clear()
            self._expr_pool.clear()
            self._scratch_live = 0
        if owned and pool is not None:
            pool.shutdown()

    def __enter__(self) -> "GemmSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- planning

    def plan(
        self,
        m: int,
        k: int,
        n: int,
        op_a: "OpKind | str | None" = None,
        op_b: "OpKind | str | None" = None,
        policy: "TruncationPolicy | int | str | None" = None,
        kernel: "str | LeafKernel | None" = None,
        variant: "str | None" = None,
        parallel: bool = False,
        schedule: "Schedule | str | None" = None,
        memory: "str | None" = None,
        dtype=None,
        alpha: float | None = None,
        beta: float | None = None,
        trans_a: bool | None = None,
        trans_b: bool | None = None,
        spec: "GemmSpec | dict | None" = None,
    ) -> CompiledPlan:
        """Return the cached plan for a geometry+spec, compiling on a miss.

        The operation semantics — ``alpha``, ``beta``, transposes, dtype
        — may be given loose (keywords) or as one ``spec``
        (:class:`~repro.engine.spec.GemmSpec` or dict); explicit keywords
        override the spec, and ``trans_a``/``trans_b`` win over
        ``op_a``/``op_b`` spellings.
        """
        key = self._make_key(
            m, k, n, op_a, op_b, policy, kernel, variant, parallel, schedule,
            memory, dtype, alpha=alpha, beta=beta,
            trans_a=trans_a, trans_b=trans_b, spec=spec,
        )
        return self._plan_from_key(key)

    def _plan_key_label(self, key: PlanKey) -> str:
        return f"{key.m}x{key.k}x{key.n}:{key.variant}:{key.memory}"

    def _plan_from_key(self, key: PlanKey) -> CompiledPlan:
        tr = self.trace
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                plan._cache_hit = True
                if tr.enabled:
                    tr.emit("plan_hit", label=self._plan_key_label(key))
                return plan
            self._misses += 1
            plan = CompiledPlan(key, self)
            plan._cache_hit = False
            self._buffers_allocated += plan.buffers_allocated
            self._track_scratch_alloc(plan._own_scratch_bytes)
            self._plans[key] = plan
            if tr.enabled:
                tr.emit(
                    "plan_compile", label=self._plan_key_label(key),
                    buffers=plan.buffers_allocated,
                )
            while len(self._plans) > self.capacity:
                ekey, evicted = self._plans.popitem(last=False)
                self._scratch_live -= evicted._own_scratch_bytes
                self._evictions += 1
                if tr.enabled:
                    tr.emit("plan_evict", label=self._plan_key_label(ekey))
            return plan

    def _batch_plan(self, key: PlanKey, cap: int) -> BatchPlan:
        """The cached stacked plan for ``(key, cap)``, compiling on a miss.

        Batch plans live in their own LRU (bounded by the same
        ``capacity``) but share the session's hit/miss/eviction counters
        and byte accounting with :meth:`plan` — ``plans_cached`` counts
        both kinds.
        """
        bkey = (key, cap)
        tr = self.trace
        with self._lock:
            bp = self._batch_plans.get(bkey)
            if bp is not None:
                self._batch_plans.move_to_end(bkey)
                self._hits += 1
                bp._cache_hit = True
                if tr.enabled:
                    tr.emit(
                        "plan_hit",
                        label=f"{self._plan_key_label(key)}x{cap}",
                    )
                return bp
            self._misses += 1
            bp = BatchPlan(key, cap, self)
            self._buffers_allocated += bp.buffers_allocated
            self._track_scratch_alloc(bp._own_scratch_bytes)
            self._batch_plans[bkey] = bp
            if tr.enabled:
                tr.emit(
                    "plan_compile",
                    label=f"{self._plan_key_label(key)}x{cap}",
                    buffers=bp.buffers_allocated,
                )
            while len(self._batch_plans) > self.capacity:
                (ekey, ecap), evicted = self._batch_plans.popitem(last=False)
                self._scratch_live -= evicted._own_scratch_bytes
                self._evictions += 1
                if tr.enabled:
                    tr.emit(
                        "plan_evict",
                        label=f"{self._plan_key_label(ekey)}x{ecap}",
                    )
            return bp

    def _track_scratch_alloc(self, nbytes: int) -> None:
        """Record newly allocated recursion scratch (caller holds the lock)."""
        self._scratch_allocated += nbytes
        self._scratch_live += nbytes
        if self._scratch_live > self._scratch_peak:
            self._scratch_peak = self._scratch_live

    def _consult_store(self, m: int, k: int, n: int, gspec, variant: str):
        """Look one shape up in the plan store, counting hit/miss.

        Also applies the store's ``accumulate_cap`` artifact once per
        session on the first consult (unless the constructor received an
        explicit ``accumulate_cap`` — user configuration outranks the
        store).
        """
        store = self._plan_store
        dec = store.lookup(
            m, k, n, dtype=gspec.dtype, variant=variant,
            fused_pack=self.fused_pack,
        )
        hit = dec is not None
        apply_cap = False
        with self._lock:
            if hit:
                self._store_hits += 1
            else:
                self._store_misses += 1
            if self._store_cap_pending:
                self._store_cap_pending = False
                apply_cap = True
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "store_lookup",
                label=f"{m}x{k}x{n}:{gspec.dtype}:{variant}",
                hit=hit,
            )
        if apply_cap:
            cap = store.get_artifact("accumulate_cap")
            if cap is not None:
                try:
                    set_accumulate_cap(int(cap))
                except (TypeError, ValueError):
                    pass  # malformed artifact: keep the process default
        return dec

    def _make_key(
        self, m, k, n, op_a, op_b, policy, kernel, variant, parallel, schedule,
        memory=None, dtype=None, *, alpha=None, beta=None,
        trans_a=None, trans_b=None, spec=None,
    ) -> PlanKey:
        variant = (
            self.default_variant if variant is None else resolve_variant(variant)
        )
        gspec = GemmSpec.coerce(
            spec, alpha=alpha, beta=beta, op_a=op_a, op_b=op_b,
            trans_a=trans_a, trans_b=trans_b, dtype=dtype,
        )
        # The plan store answers before the heuristic defaults kick in,
        # but never over an explicit caller choice: a stored decision is
        # consulted only when the caller left ``policy`` unset, and its
        # schedule/memory/kernel components fill only the parameters the
        # caller also left unset.
        if policy is None and self._plan_store is not None:
            dec = self._consult_store(int(m), int(k), int(n), gspec, variant)
            if dec is not None:
                try:
                    policy = dec.policy(int(m), int(k), int(n))
                except (ValueError, PlanError):
                    policy = None  # unusable record: fall back silently
                else:
                    if schedule is None and not parallel:
                        schedule = dec.schedule
                    if memory is None:
                        memory = dec.memory
                    if kernel is None:
                        kernel = dec.kernel
        sched = Schedule.coerce(schedule, default=self.default_schedule)
        if parallel and not sched.parallel:
            # Historical boolean form: the seven top-level products on a
            # pool sized for them.
            sched = Schedule.tasks(depth=1, workers=7)
        if sched.parallel and variant != "winograd":
            raise PlanError(
                "task-scheduled execution supports only the winograd "
                f"variant; got variant={variant!r}"
            )
        if memory is None:
            mem = self.default_memory
        else:
            try:
                mem = resolve_memory(memory)
            except ValueError as exc:
                raise PlanError(str(exc)) from None
        if mem != "classic" and variant != "winograd":
            raise PlanError(
                f"memory={mem!r} is a Winograd schedule; "
                f"variant={variant!r} supports only memory='classic'"
            )
        if mem == "ip_overwrite" and sched.parallel:
            raise PlanError(
                "memory='ip_overwrite' cannot run on the task scheduler "
                "(leaf recursions would clobber shared operand quadrants); "
                "use memory='two_temp' for a low-memory parallel schedule"
            )
        return PlanKey(
            m=int(m),
            k=int(k),
            n=int(n),
            policy=self.default_policy if policy is None
            else TruncationPolicy.coerce(policy),
            kernel=self.default_kernel if kernel is None else get_kernel(kernel),
            variant=variant,
            schedule=sched,
            memory=mem,
            spec=gspec,
        )

    # ------------------------------------------------------------ execution

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        op_a: "OpKind | str" = "n",
        op_b: "OpKind | str" = "n",
        policy: "TruncationPolicy | int | str | None" = None,
        kernel: "str | LeafKernel | None" = None,
        variant: "str | None" = None,
        parallel: bool = False,
        schedule: "Schedule | str | None" = None,
        timings: PhaseTimings | None = None,
        memory: "str | None" = None,
        dtype=None,
        trans_a: bool | None = None,
        trans_b: bool | None = None,
    ) -> np.ndarray:
        """``C <- alpha * op(A) . op(B) + beta * C`` through the plan cache.

        Identical contract to :func:`repro.modgemm`; repeated same-spec
        calls skip planning and buffer allocation entirely.  ``schedule``
        selects the execution mode, ``memory`` the recursion's scratch
        schedule (all modes produce bit-identical results) and ``dtype``
        the computation precision — ``float64`` (default) or ``float32``.
        The full operation spec (``alpha``, ``beta``, transposes, dtype)
        is part of the plan key, so the semantics compile *into* the
        cached plan: alpha into its final U-adds, beta into its output
        conversion, transposes into a zero-copy quadrant relabel.
        ``trans_a``/``trans_b`` are boolean aliases winning over the
        ``op_a``/``op_b`` spellings.
        """
        p = GemmProblem.create(
            a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c,
            dtype=dtype, trans_a=trans_a, trans_b=trans_b,
        )
        key = self._make_key(
            p.m, p.k, p.n, p.op_a, p.op_b, policy, kernel, variant,
            parallel, schedule, memory, dtype, alpha=alpha, beta=beta,
        )
        plan = self._plan_from_key(key)
        return plan.execute_problem(p, c=c, timings=timings)

    #: Option names an item dict (or ``**kwargs``) may carry in
    #: :meth:`multiply_many`, beyond the operands ``a``/``b``/``c``.
    _MANY_OPTS = frozenset((
        "alpha", "beta", "op_a", "op_b", "trans_a", "trans_b", "policy",
        "kernel", "variant", "parallel", "schedule", "memory", "dtype",
        "timings",
    ))

    def multiply_many(
        self,
        problems,
        max_workers: int | None = None,
        batch: "str | bool" = "auto",
        **kwargs,
    ) -> list[np.ndarray]:
        """Batched dispatch: multiply many problems, results in input order.

        Items are ``(a, b)`` / ``(a, b, c)`` tuples or dicts with ``a``,
        ``b``, optional ``c``, and optional per-item overrides of any
        ``kwargs`` option (``alpha``, ``beta``, ``op_a``, ``policy``,
        ``memory``, ``dtype``, ...); ``kwargs`` apply to every item that
        does not override them.

        With ``batch="auto"`` (default) items are grouped by their full
        plan key; every group of two or more well-behaved same-geometry
        problems executes through one stacked :class:`BatchPlan` — a
        *single* Winograd recursion over ``(B, ...)`` Morton stacks, with
        ``tasks:`` schedules striping the batch axis across the worker
        pool — bit-identical to per-item results.  Groups that cannot
        stack (singletons, panelled geometries, ``memory="ip_overwrite"``)
        fall back to the per-item thread pool (BLAS leaf kernels and
        large ufuncs release the GIL); ``batch=False`` forces that legacy
        path for every item.  On the fallback path, items of *different*
        geometries overlap across threads, while same-geometry items
        serialise on their shared plan's lock — that contention is exactly
        what the stacked path removes.

        A failing item raises :class:`BatchItemError` carrying its input
        ``index`` — the position of the item in ``problems``, on *both*
        the stacked and the fallback path, whatever chunk or group the
        item landed in (the original exception is chained).  Other items
        are unaffected: every remaining group and chunk still executes,
        fallback threads are drained, and with several failures the
        smallest input index is the one reported — so the error is
        deterministic and the session's pooled stacks are quiescent when
        it propagates.
        """
        if batch not in ("auto", True, False):
            raise ValueError(
                f"batch must be 'auto', True or False, got {batch!r}"
            )
        items = list(problems)
        specs = []
        for i, item in enumerate(items):
            try:
                opts = dict(kwargs)
                if isinstance(item, dict):
                    opts.update(item)
                    a = opts.pop("a")
                    b = opts.pop("b")
                    c = opts.pop("c", None)
                else:
                    if len(item) == 2:
                        (a, b), c = item, None
                    elif len(item) == 3:
                        a, b, c = item
                    else:
                        raise ValueError(
                            "expected an (a, b) or (a, b, c) item, got "
                            f"{len(item)} elements"
                        )
                unknown = set(opts) - self._MANY_OPTS
                if unknown:
                    raise ValueError(
                        f"unknown multiply_many option(s) {sorted(unknown)}"
                    )
                p = GemmProblem.create(
                    a, b,
                    op_a=opts.get("op_a", "n"), op_b=opts.get("op_b", "n"),
                    alpha=opts.get("alpha", 1.0), beta=opts.get("beta", 0.0),
                    c=c, dtype=opts.get("dtype"),
                    trans_a=opts.get("trans_a"), trans_b=opts.get("trans_b"),
                )
                key = self._make_key(
                    p.m, p.k, p.n, p.op_a, p.op_b,
                    opts.get("policy"), opts.get("kernel"),
                    opts.get("variant"), opts.get("parallel", False),
                    opts.get("schedule"), opts.get("memory"),
                    opts.get("dtype"),
                    alpha=p.alpha, beta=p.beta,
                )
                specs.append((p, key, c, opts.get("timings")))
            except Exception as exc:
                raise BatchItemError(i, exc) from exc

        results: list = [None] * len(items)
        groups: "OrderedDict[PlanKey, list[int]]" = OrderedDict()
        for i, (_, key, _, _) in enumerate(specs):
            groups.setdefault(key, []).append(i)

        errors: dict[int, BatchItemError] = {}

        def record(exc: BaseException, default_index: int) -> None:
            """File an item failure under its input index (keep the first)."""
            if not isinstance(exc, BatchItemError):
                wrapped = BatchItemError(default_index, exc)
                wrapped.__cause__ = exc
                exc = wrapped
            errors.setdefault(exc.index, exc)

        fallback: list[int] = []
        for key, idxs in groups.items():
            stackable = (
                batch is not False
                and len(idxs) > 1
                and resolve_memory(key.memory) != "ip_overwrite"
                and key.policy.plan(key.m, key.k, key.n) is not None
            )
            if not stackable:
                if batch is not False and len(idxs) > 1:
                    with self._lock:
                        self._batch_fallbacks += 1
                fallback.extend(idxs)
                continue
            for lo in range(0, len(idxs), BATCH_CAP_MAX):
                chunk = idxs[lo : lo + BATCH_CAP_MAX]
                try:
                    bp = self._batch_plan(key, batch_size_class(len(chunk)))
                    outs = bp.execute_batch(
                        [specs[i][0] for i in chunk],
                        [specs[i][2] for i in chunk],
                        timings=specs[chunk[0]][3],
                        indices=chunk,
                    )
                except Exception as exc:  # noqa: BLE001 - filed per item
                    # Keep draining the remaining chunks and groups: their
                    # items are independent, and completing them leaves
                    # every pooled stack quiescent before we raise.
                    record(exc, chunk[0])
                    continue
                for i, out in zip(chunk, outs):
                    results[i] = out

        if fallback:

            def run(i: int) -> np.ndarray:
                p, key, c, timings = specs[i]
                try:
                    plan = self._plan_from_key(key)
                    return plan.execute_problem(p, c=c, timings=timings)
                except Exception as exc:
                    raise BatchItemError(i, exc) from exc

            if max_workers == 1 or len(fallback) <= 1:
                for i in fallback:
                    try:
                        results[i] = run(i)
                    except BatchItemError as exc:
                        record(exc, i)
            else:
                workers = (
                    max_workers if max_workers is not None
                    else min(8, len(fallback))
                )
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(run, i) for i in fallback]
                    # Drain everything before raising so a failing item
                    # never leaves sibling threads orphaned mid-execute.
                    for i, fut in zip(fallback, futures):
                        exc = fut.exception()
                        if exc is None:
                            results[i] = fut.result()
                        else:
                            record(exc, i)
        if errors:
            raise errors[min(errors)]
        return results

    def multiply_morton(
        self,
        a_mm: MortonMatrix,
        b_mm: MortonMatrix,
        c_mm: MortonMatrix | None = None,
        kernel: "str | LeafKernel | None" = None,
        variant: "str | None" = None,
        workspace: Workspace | None = None,
        memory: "str | None" = None,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
    ) -> MortonMatrix:
        """Multiply operands already in Morton order (Figure 8 regime).

        Pools the recursion :class:`Workspace` *and the output buffer* per
        geometry when the caller supplies neither: with ``c_mm=None`` the
        result is written into a pooled buffer that stays valid until the
        next same-geometry call with ``c_mm=None`` — copy it (or pass your
        own ``c_mm``) to keep results across calls.  An explicit
        ``workspace`` bypasses the pool (and its lock) exactly as the
        historical API did.  With ``memory="ip_overwrite"`` the caller's
        ``a_mm``/``b_mm`` buffers are destroyed.

        ``alpha``/``beta``/``trans_a``/``trans_b`` give the full dgemm
        contract on the Morton surface: a transpose is a zero-copy
        quadrant relabel, ``beta`` stages the product and folds it into
        ``c_mm`` (which it therefore requires).  The Winograd variant
        carries all four; Strassen (the ablation baseline) supports
        ``alpha`` only, and ``ip_overwrite`` cannot consume relabeled
        operands (:class:`PlanError` either way).
        """
        variant = (
            self.default_variant if variant is None else resolve_variant(variant)
        )
        kern = self.default_kernel if kernel is None else get_kernel(kernel)
        if memory is None:
            mem = self.default_memory
        else:
            try:
                mem = resolve_memory(memory)
            except ValueError as exc:
                raise PlanError(str(exc)) from None
        if mem != "classic" and variant != "winograd":
            raise PlanError(
                f"memory={mem!r} is a Winograd schedule; "
                f"variant={variant!r} supports only memory='classic'"
            )
        if variant != "winograd" and (trans_a or trans_b or beta != 0.0):
            raise PlanError(
                "transpose relabeling and beta accumulation on the Morton "
                f"surface require variant='winograd'; got {variant!r}"
            )
        if (trans_a or trans_b) and mem == "ip_overwrite":
            raise PlanError(
                "memory='ip_overwrite' cannot consume relabeled "
                "(transposed) operands; use memory='two_temp' or 'classic'"
            )
        if beta != 0.0 and c_mm is None:
            raise PlanError("beta != 0 requires an existing c_mm operand")
        ops = NumpyOps(kern, trace=self.trace, validate=self.debug)

        # op(A) is (ar x ak) with (atr x atk) tiles; op(B) contributes the
        # output's column geometry.
        if trans_a:
            ar, atr, atk = a_mm.cols, a_mm.tile_c, a_mm.tile_r
        else:
            ar, atr, atk = a_mm.rows, a_mm.tile_r, a_mm.tile_c
        bn, btn = (
            (b_mm.rows, b_mm.tile_r) if trans_b else (b_mm.cols, b_mm.tile_c)
        )

        def run(c: MortonMatrix, ws: Workspace | None) -> None:
            if variant == "winograd":
                winograd_multiply(
                    a_mm, b_mm, c, ops=ops, workspace=ws, memory=mem,
                    alpha=alpha, beta=beta,
                    trans_a=trans_a, trans_b=trans_b,
                )
            else:
                strassen_multiply(
                    a_mm, b_mm, c, ops=ops, workspace=ws, alpha=alpha
                )

        def fresh_c() -> MortonMatrix:
            return MortonMatrix(
                buf=np.empty(
                    (atr << a_mm.depth) * (btn << b_mm.depth),
                    dtype=np.float64,
                ),
                rows=ar,
                cols=bn,
                tile_r=atr,
                tile_c=btn,
                depth=a_mm.depth,
            )

        if workspace is not None:
            if c_mm is None:
                c_mm = fresh_c()
            run(c_mm, workspace)
            self._fold_fused(ops)
            return c_mm
        ws, ws_lock, c_buf = self._pooled_workspace(
            a_mm.depth, atr, atk, btn, mem
        )
        with ws_lock:
            if c_mm is None:
                # Wrap the pooled buffer with this call's logical shape
                # (same padded geometry can serve many logical sizes).
                c_mm = MortonMatrix(
                    buf=c_buf,
                    rows=ar,
                    cols=bn,
                    tile_r=atr,
                    tile_c=btn,
                    depth=a_mm.depth,
                )
            run(c_mm, ws)
        self._fold_fused(ops)
        return c_mm

    def autotune(
        self,
        shapes,
        **kwargs,
    ):
        """Tune the given shapes and persist the winners to the plan store.

        ``shapes`` is an iterable of ``n`` (square) or ``(m, k, n)``
        problem shapes.  Delegates to :func:`repro.tune.autotune` with
        this session as the context — the session's plan store receives
        the winning decisions (a session without a store can still tune;
        the results then live only in the returned report).  Remaining
        keyword arguments are the tuner knobs (``machine=``, ``rounds=``,
        ``tiles=``, ``dtype=``, ...).  Wall time spent here is reported
        as ``autotune_seconds`` in :meth:`stats`.
        """
        from ..tune.autotune import autotune as _autotune

        t0 = time.perf_counter()
        try:
            return _autotune(self, shapes, **kwargs)
        finally:
            with self._lock:
                self._autotune_seconds += time.perf_counter() - t0

    def evaluate(
        self,
        expr,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        c: np.ndarray | None = None,
        dtype=None,
        **opts,
    ) -> np.ndarray:
        """Evaluate a product chain: ``alpha * (L1 @ ... @ Ln) + beta * C``.

        ``expr`` is built from :class:`repro.engine.expr.Mat` leaves joined
        with ``@`` (``Mat(A).T`` marks a zero-copy transpose).  The
        association order is chosen by the matrix-chain cost model, each
        pairwise product runs through :meth:`multiply` (one cached plan
        per geometry), and intermediates reuse the session's pooled
        expression buffers.  ``alpha``/``beta``/``c`` apply to the root
        product; remaining ``opts`` (``kernel=``, ``memory=``,
        ``schedule=`` ...) are forwarded to every multiply.
        """
        from .expr import evaluate as _evaluate

        return _evaluate(
            self, expr, alpha=alpha, beta=beta, c=c, dtype=dtype,
            pool=self._expr_pool, **opts,
        )

    def _fold_fused(self, ops: NumpyOps) -> None:
        """Fold one backend's fused-pass counter into the session's."""
        if ops.fused_adds:
            with self._lock:
                self._fused_adds += ops.fused_adds

    def _pooled_workspace(
        self,
        depth: int,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        memory: str = "classic",
    ) -> tuple["Workspace | None", threading.Lock, np.ndarray]:
        geom = (depth, tile_m, tile_k, tile_n, memory)
        with self._lock:
            entry = self._workspaces.get(geom)
            if entry is not None:
                self._workspaces.move_to_end(geom)
                self._hits += 1
                self._buffers_reused += 1
                return entry
            self._misses += 1
            if memory == "two_temp":
                ws = Workspace(depth, tile_m, tile_k, tile_n, schedule="two_temp")
                self._buffers_allocated += 2 * depth
            elif memory == "ip_overwrite":
                ws = None
            else:
                ws = Workspace(depth, tile_m, tile_k, tile_n, with_q=True)
                self._buffers_allocated += 4 * depth
            c_buf = np.empty(
                (tile_m << depth) * (tile_n << depth), dtype=np.float64
            )
            self._buffers_allocated += 1
            self._track_scratch_alloc(ws.nbytes if ws is not None else 0)
            entry = (ws, threading.Lock(), c_buf)
            self._workspaces[geom] = entry
            while len(self._workspaces) > self.capacity:
                _, (old_ws, _, _) = self._workspaces.popitem(last=False)
                if old_ws is not None:
                    self._scratch_live -= old_ws.nbytes
                self._evictions += 1
            return entry

    # --------------------------------------------------------- bookkeeping

    def _record_execution(
        self, plan: CompiledPlan, rec: PhaseTimings, extras=None
    ) -> None:
        """Fold one plan execution into the session counters (plan calls this)."""
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "exec",
                label=self._plan_key_label(plan.key),
                seconds=rec.to_morton + rec.compute + rec.from_morton,
                parallel=bool(extras is not None and extras.tasks_run),
            )
        with self._lock:
            self._executes += 1
            if plan._cache_hit:
                self._buffers_reused += 1
            self._timings.to_morton += rec.to_morton
            self._timings.compute += rec.compute
            self._timings.from_morton += rec.from_morton
            self._timings.panels += rec.panels if rec.panels > 1 else 0
            if extras is not None:
                if extras.tasks_run:
                    self._parallel_executes += 1
                    self._tasks_run += extras.tasks_run
                    self._worker_busy += extras.worker_busy
                    self._worker_capacity += (
                        extras.graph_wall * max(1, extras.pool_workers)
                    )
                self._indexed_conversions += extras.indexed_conversions
                self._convert_saved += extras.convert_seconds_saved
                self._fused_adds += extras.fused_adds
                self._fused_packs += extras.fused_packs

    def _record_batch_execution(
        self, plan: BatchPlan, n_items: int, rec: PhaseTimings,
        saved: float, fused_adds: int, fused_packs: int = 0,
    ) -> None:
        """Fold one stacked-batch execution into the session counters."""
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "exec",
                label=f"{self._plan_key_label(plan.key)}x{plan.cap}",
                seconds=rec.to_morton + rec.compute + rec.from_morton,
                items=n_items,
            )
        with self._lock:
            self._executes += n_items
            self._batched_executes += 1
            self._batch_items += n_items
            self._batch_convert_saved += saved
            if plan._cache_hit:
                self._buffers_reused += n_items
            self._timings.to_morton += rec.to_morton
            self._timings.compute += rec.compute
            self._timings.from_morton += rec.from_morton
            self._fused_adds += fused_adds
            self._fused_packs += fused_packs

    def stats(self) -> SessionStats:
        """A consistent snapshot of the instrumentation counters."""
        with self._lock:
            pooled = sum(p.pooled_bytes for p in self._plans.values())
            pooled += sum(bp.pooled_bytes for bp in self._batch_plans.values())
            for ws, _, c_buf in self._workspaces.values():
                pooled += c_buf.nbytes
                if ws is not None:
                    pooled += ws.nbytes
            agg = PhaseTimings(
                to_morton=self._timings.to_morton,
                compute=self._timings.compute,
                from_morton=self._timings.from_morton,
                panels=self._timings.panels,
            )
            util = (
                min(1.0, self._worker_busy / self._worker_capacity)
                if self._worker_capacity > 0
                else 0.0
            )
            convert_seconds = agg.to_morton + agg.from_morton
            total_seconds = convert_seconds + agg.compute
            convert_fraction = (
                convert_seconds / total_seconds if total_seconds > 0 else 0.0
            )
            return SessionStats(
                plan_hits=self._hits,
                plan_misses=self._misses,
                plan_evictions=self._evictions,
                plans_cached=len(self._plans) + len(self._batch_plans),
                executes=self._executes,
                buffers_reused=self._buffers_reused,
                buffers_allocated=self._buffers_allocated,
                bytes_pooled=pooled,
                timings=agg,
                parallel_executes=self._parallel_executes,
                tasks_run=self._tasks_run,
                worker_busy_seconds=self._worker_busy,
                worker_utilization=util,
                indexed_conversions=self._indexed_conversions,
                convert_seconds_saved=self._convert_saved,
                scratch_bytes_allocated=self._scratch_allocated,
                peak_scratch_bytes=self._scratch_peak,
                fused_adds=self._fused_adds,
                batched_executes=self._batched_executes,
                batch_items=self._batch_items,
                batch_fallbacks=self._batch_fallbacks,
                batch_convert_seconds_saved=self._batch_convert_saved,
                fused_packs=self._fused_packs,
                convert_seconds=convert_seconds,
                convert_fraction=convert_fraction,
                store_hits=self._store_hits,
                store_misses=self._store_misses,
                autotune_seconds=self._autotune_seconds,
            )

    def clear(self) -> None:
        """Drop every cached plan and pooled workspace (counters survive)."""
        with self._lock:
            self._plans.clear()
            self._batch_plans.clear()
            self._workspaces.clear()
            self._expr_pool.clear()
            self._scratch_live = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"GemmSession(capacity={self.capacity}, plans={s.plans_cached}, "
            f"hits={s.plan_hits}, misses={s.plan_misses}, "
            f"batched={s.batched_executes}, pooled={s.bytes_pooled} B)"
        )


_default_session: GemmSession | None = None
_default_session_lock = threading.Lock()


def default_session() -> GemmSession:
    """The module-level session backing ``repro.modgemm`` one-shot calls."""
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = GemmSession()
        return _default_session


def reset_default_session(capacity: int = 16) -> GemmSession:
    """Replace the default session (fresh cache and counters); return it."""
    global _default_session
    with _default_session_lock:
        _default_session = GemmSession(capacity=capacity)
        return _default_session
