"""Command-line autotuner: ``python -m repro.tune 513 1024 --store plans.json``.

Tunes each given shape in a fresh :class:`repro.engine.GemmSession` and
persists the winners to the plan store, printing a per-shape report.
Shapes are ``N`` (square) or ``MxKxN``.  The store path comes from
``--store`` or the ``REPRO_PLAN_STORE`` environment variable; with
neither, the run is a dry run (results printed, nothing persisted).
"""

from __future__ import annotations

import argparse
import os
import sys

from .store import PLAN_STORE_ENV


def _parse_shape(text: str):
    parts = text.lower().split("x")
    try:
        if len(parts) == 1:
            return int(parts[0])
        if len(parts) == 3:
            return tuple(int(p) for p in parts)
    except ValueError:
        pass
    raise argparse.ArgumentTypeError(
        f"shape must be N or MxKxN, got {text!r}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Tune GEMM plan decisions per shape and persist them "
        "to a cross-session plan store.",
    )
    parser.add_argument(
        "shapes", nargs="+", type=_parse_shape,
        help="problem shapes: N (square) or MxKxN",
    )
    parser.add_argument(
        "--store", default=None,
        help=f"plan store path (default: ${PLAN_STORE_ENV}, "
        "else dry run)",
    )
    parser.add_argument(
        "--machine", default="ultra", choices=("alpha", "ultra", "atom"),
        help="cachesim machine model for offline pruning (default: ultra)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="interleaved timing rounds per candidate (default: 5)",
    )
    parser.add_argument(
        "--tiles", action="store_true",
        help="also search the (T, d) truncation grid "
        "(changes result bits vs the default plan)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated leaf kernels to try "
        "(changes result bits vs the default plan)",
    )
    parser.add_argument(
        "--dtype", default="float64", choices=("float64", "float32"),
        help="computation dtype to tune for (default: float64)",
    )
    parser.add_argument(
        "--margin", type=float, default=0.01,
        help="fraction a challenger must beat the default by (default: 0.01)",
    )
    parser.add_argument(
        "--no-fused-pack", action="store_true",
        help="tune with fused convert-and-add packing disabled",
    )
    args = parser.parse_args(argv)

    from ..engine.session import GemmSession

    store_path = args.store or os.environ.get(PLAN_STORE_ENV, "").strip()
    session = GemmSession(
        plan_store=store_path or None,
        fused_pack=not args.no_fused_pack,
    )
    kernels = (
        tuple(k.strip() for k in args.kernels.split(",") if k.strip())
        if args.kernels else None
    )
    try:
        result = session.autotune(
            args.shapes,
            machine=args.machine,
            rounds=args.rounds,
            tiles=args.tiles,
            kernels=kernels,
            dtype=args.dtype,
            margin=args.margin,
        )
    finally:
        session.close()

    for rep in result.reports:
        m, k, n = rep.shape
        if rep.skipped is not None:
            print(f"{m}x{k}x{n}: skipped ({rep.skipped})")
            continue
        assert rep.winner is not None
        verdict = (
            "default confirmed" if rep.winner.is_default
            else f"improved {rep.improvement * 100.0:.1f}%"
        )
        print(
            f"{m}x{k}x{n}: {rep.candidates} candidates "
            f"({rep.survivors} tilings past the model) -> "
            f"{rep.winner.label} @ {rep.winner_seconds * 1e3:.2f} ms "
            f"({verdict})"
        )
    if result.store_path:
        print(f"store: {result.store_path} ({result.tuned} shapes tuned)")
    else:
        print("store: none (dry run; set --store or "
              f"${PLAN_STORE_ENV} to persist)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
