"""The autotuner: search plan space offline, confirm on-host, persist.

The paper tunes one knob per call — the truncation point — with a closed
form.  The engine has since grown more decision axes: recursion depth and
per-dimension tiles, execution schedule (sequential vs task graph),
memory schedule (classic / two-temporary), and the leaf kernel.  This
module searches that space per *shape class* the way a database tunes
query plans:

1. **Enumerate** candidate truncation points (the session's heuristic
   choice always included; ``tiles=True`` widens to every feasible
   common-depth split) and schedule/memory/kernel combinations.
2. **Prune offline** with :func:`repro.cachesim.rank.rank_tilings` — the
   machine models price each tiling's flops and cache misses, and only
   candidates within ``keep_ratio`` of the modelled best go on to host
   timing.  The heuristic default always survives pruning.
3. **Time on host** — each surviving candidate is compiled once in a
   scratch session and executed in *interleaved* rounds (candidate order
   round-robins, so clock drift and thermal ramps hit every candidate
   equally); the median over rounds ranks them.
4. **Persist** — the winner (which must beat the default's median by
   more than ``margin``, else the default wins — hysteresis keeps noisy
   ties on the safe side) is recorded in the plan store together with
   the leaf kernels' current accumulate-scratch cap, and every
   conversion-site calibration verdict observed during the trials rides
   along automatically (the trial session shares the store).

By default the searched space is **bit-identity preserving**: schedule
and memory variations produce bit-identical results by construction, and
``(T, d)`` stays pinned to the heuristic choice.  Passing ``tiles=True``
or a ``kernels=`` list widens the search to decisions that change result
bits (different split points reassociate the additions); the store
records whatever wins, so only opt into those axes when bit-stability
against the default plan does not matter.

Entry points: :meth:`repro.engine.GemmSession.autotune` (in-process) and
``python -m repro.tune`` (CLI).  This module imports the engine lazily —
``repro.engine.session`` imports :mod:`repro.tune.store` at module
level, and a cycle here would break both.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..cachesim.rank import rank_tilings, resolve_machine
from ..core.scheduler import Schedule
from ..core.truncation import TruncationPolicy
from ..layout.padding import Tiling
from .store import PlanStore, StoredDecision

__all__ = [
    "Candidate",
    "ShapeReport",
    "TuneResult",
    "autotune",
    "enumerate_tilings",
]

#: Widest leaf tile the ``tiles=True`` enumeration will consider; beyond
#: this the "recursion" is mostly one big conventional product and the
#: paper's regime does not apply.
MAX_ENUM_TILE = 128

#: Narrowest leaf tile worth considering (per-call overhead dominates
#: below it on any host this runs on).
MIN_ENUM_TILE = 8


@dataclass(frozen=True)
class Candidate:
    """One point of the searched plan space.

    ``schedule`` / ``memory`` / ``kernel`` are the engine's string forms
    (``None`` = leave the session default in charge); ``tilings`` is the
    pinned truncation point.
    """

    tilings: "tuple[Tiling, Tiling, Tiling]"
    schedule: str | None = None
    memory: str | None = None
    kernel: str | None = None
    is_default: bool = False

    @property
    def label(self) -> str:
        tm, tk, tn = self.tilings
        parts = [f"T={tm.tile},{tk.tile},{tn.tile}", f"d={tm.depth}"]
        if self.schedule is not None:
            parts.append(self.schedule)
        if self.memory is not None:
            parts.append(self.memory)
        if self.kernel is not None:
            parts.append(self.kernel)
        if self.is_default:
            parts.append("default")
        return ":".join(parts)

    def policy(self, m: int, k: int, n: int) -> TruncationPolicy:
        """The pinned `TruncationPolicy` realising this candidate's tiling."""
        tm, tk, tn = self.tilings
        return TruncationPolicy.pinned_tiling(
            m, k, n, (tm.tile, tk.tile, tn.tile), tm.depth
        )


@dataclass
class ShapeReport:
    """The tuning outcome for one shape."""

    shape: tuple[int, int, int]
    candidates: int
    survivors: int
    medians: dict[str, float] = field(default_factory=dict)
    winner: Candidate | None = None
    default_seconds: float = 0.0
    winner_seconds: float = 0.0
    skipped: str | None = None  # reason, when the shape was not tuned

    @property
    def improvement(self) -> float:
        """Fractional win over the default (0.0 when the default won)."""
        if not self.default_seconds or not self.winner_seconds:
            return 0.0
        return 1.0 - self.winner_seconds / self.default_seconds


@dataclass
class TuneResult:
    """Everything one :func:`autotune` invocation did."""

    reports: list[ShapeReport]
    store_path: "str | None"
    seconds: float

    @property
    def tuned(self) -> int:
        return sum(1 for r in self.reports if r.skipped is None)


def _common_depths(m: int, k: int, n: int) -> list[int]:
    """Depths at which all three dimensions split into sane leaf tiles."""
    depths = []
    for d in range(1, 1 + max(1, int(math.log2(max(m, k, n))))):
        tiles = [-(-dim // (1 << d)) for dim in (m, k, n)]
        if max(tiles) > MAX_ENUM_TILE:
            continue
        if min(tiles) < MIN_ENUM_TILE:
            break  # deeper only shrinks tiles further
        depths.append(d)
    return depths


def enumerate_tilings(
    m: int, k: int, n: int,
    default: "tuple[Tiling, Tiling, Tiling] | None" = None,
) -> list[tuple]:
    """Candidate truncation points for one shape, default (if any) first.

    One candidate per feasible common depth, each dimension taking its
    minimal padding tile ``ceil(dim / 2^d)`` — the paper's Section 3.4
    choice at that depth.  The engine's ``default`` tilings (when given)
    lead the list and are never duplicated.
    """
    out: list[tuple] = []
    seen = set()
    if default is not None:
        out.append(tuple(default))
        seen.add(tuple((t.tile, t.depth) for t in default))
    for d in _common_depths(m, k, n):
        cand = tuple(
            Tiling(n=dim, tile=-(-dim // (1 << d)), depth=d)
            for dim in (m, k, n)
        )
        sig = tuple((t.tile, t.depth) for t in cand)
        if sig not in seen:
            seen.add(sig)
            out.append(cand)
    return out


def _schedule_str(sched: Schedule) -> str:
    if not sched.parallel:
        return "sequential"
    if sched.workers is not None:
        return f"tasks:{sched.depth}x{sched.workers}"
    return f"tasks:{sched.depth}"


def _normalise_shape(shape) -> tuple[int, int, int]:
    if isinstance(shape, int):
        return (shape, shape, shape)
    m, k, n = (int(x) for x in shape)
    return (m, k, n)


def _uniform(tilings) -> bool:
    tm, tk, tn = tilings
    return tm.tile == tk.tile == tn.tile


def autotune(
    session,
    shapes,
    *,
    machine: "object | str | None" = None,
    rounds: int = 5,
    tiles: bool = False,
    schedules: "tuple | list | None" = None,
    memories: "tuple | list | None" = None,
    kernels: "tuple | list | None" = None,
    dtype: str = "float64",
    keep_ratio: float = 1.5,
    max_keep: int = 6,
    margin: float = 0.01,
    store: "PlanStore | None" = None,
    seed: int = 20260808,
) -> TuneResult:
    """Tune ``shapes`` in the context of ``session``; persist to its store.

    ``session`` provides the defaults being tuned *against* (policy,
    kernel, variant, schedule, memory, ``fused_pack``) and normally the
    :class:`~repro.tune.store.PlanStore` that receives the winners
    (``store=`` overrides it; with neither, results live only in the
    returned :class:`TuneResult`).  ``machine`` picks the offline pruning
    model (a ``repro.cachesim`` :class:`Machine` or ``MACHINES`` key;
    default the Sun Ultra 60).  ``rounds`` is the interleaved
    median-of-k depth; ``margin`` the fraction a challenger must beat the
    default by to dethrone it.

    The default search space preserves bit-identity with the default
    plan (schedule and memory axes only).  ``tiles=True`` adds the
    feasible ``(T, d)`` grid and ``kernels=`` adds leaf-kernel choices —
    both can change result bits; see the module docstring.

    Trial executions run in a *scratch* session sharing the store (so
    conversion-site calibrations persist) and the tracer (so
    ``autotune_trial`` events land in the owner's timeline).
    """
    from ..engine.session import GemmSession

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 <= margin < 1.0:
        raise ValueError(f"margin must be in [0, 1), got {margin}")
    machine = resolve_machine(machine)
    the_store = store if store is not None else session.plan_store
    variant = session.default_variant
    fused_pack = session.fused_pack

    # Bit-identity-preserving default axes.  A non-winograd session
    # default cannot vary schedule or memory at all.
    if schedules is None:
        schedules = (
            ("sequential", "tasks:1") if variant == "winograd"
            else ("sequential",)
        )
    if memories is None:
        memories = (
            ("classic", "two_temp") if variant == "winograd"
            else ("classic",)
        )
    kernel_axis: tuple = (None,) if not kernels else tuple(kernels)

    t_start = time.perf_counter()
    reports: list[ShapeReport] = []
    rng = np.random.default_rng(seed)
    tr = getattr(session, "trace", None)

    for raw_shape in shapes:
        m, k, n = _normalise_shape(raw_shape)
        default_tilings = session.default_policy.plan(m, k, n)
        if default_tilings is None:
            reports.append(ShapeReport(
                shape=(m, k, n), candidates=0, survivors=0,
                skipped="panelled geometry (no common tiling)",
            ))
            continue

        tiling_cands = (
            enumerate_tilings(m, k, n, default=default_tilings)
            if tiles else [tuple(default_tilings)]
        )
        ranked = rank_tilings(
            tiling_cands, machine,
            keep_ratio=keep_ratio, max_keep=max_keep, default_index=0,
        )
        survivors = [rc for rc in ranked if rc.kept]
        modelled = {id(rc.tilings): rc.run.seconds for rc in ranked}

        default_sched = _schedule_str(session.default_schedule)
        default_mem = session.default_memory
        cands: list[Candidate] = []
        for rc in survivors:
            for sched in schedules:
                for mem in memories:
                    parallel = sched.startswith("tasks")
                    if mem == "ip_overwrite" and (
                        parallel or not _uniform(rc.tilings)
                    ):
                        continue
                    for kern in kernel_axis:
                        is_default = (
                            rc.is_default
                            and sched == default_sched
                            and mem == default_mem
                            and kern is None
                        )
                        cands.append(Candidate(
                            tilings=rc.tilings, schedule=sched,
                            memory=mem, kernel=kern, is_default=is_default,
                        ))
        if not any(c.is_default for c in cands):
            cands.insert(0, Candidate(
                tilings=tuple(default_tilings),
                schedule=default_sched, memory=default_mem,
                kernel=None, is_default=True,
            ))

        # One scratch trial context: per-call policy always explicit, so
        # nothing here consults the store — but site calibrations made
        # during the trials are recorded through it.
        a = np.asfortranarray(rng.standard_normal((m, k)), dtype=dtype)
        b = np.asfortranarray(rng.standard_normal((k, n)), dtype=dtype)
        medians: dict[str, float] = {}
        with GemmSession(
            capacity=max(len(cands) + 1, 4),
            kernel=session.default_kernel,
            variant=variant,
            fused_pack=fused_pack,
            plan_store=the_store,
        ) as trial:
            def run_once(c: Candidate) -> float:
                t0 = time.perf_counter()
                trial.multiply(
                    a, b,
                    policy=c.policy(m, k, n),
                    schedule=c.schedule, memory=c.memory,
                    kernel=c.kernel, dtype=dtype,
                )
                return time.perf_counter() - t0

            # Warm-up: compile every plan and let the conversion-site
            # calibration settle before any timed round.
            for c in cands:
                run_once(c)
                run_once(c)
            samples: dict[str, list[float]] = {c.label: [] for c in cands}
            for rnd in range(rounds):
                # Ping-pong the candidate order between rounds: host
                # timings drift (frequency scaling, allocator warm-up),
                # and a fixed order would systematically flatter
                # whichever candidate runs later in the round.
                ordered = cands if rnd % 2 == 0 else list(reversed(cands))
                for c in ordered:
                    elapsed = run_once(c)
                    samples[c.label].append(elapsed)
                    if tr is not None and tr.enabled:
                        tr.emit(
                            "autotune_trial",
                            label=f"{m}x{k}x{n}:{c.label}",
                            seconds=elapsed, round=rnd,
                        )
            medians = {
                lbl: float(np.median(times))
                for lbl, times in samples.items()
            }

            default_cand = next(c for c in cands if c.is_default)
            default_med = medians[default_cand.label]
            winner = min(cands, key=lambda c: medians[c.label])
            # Hysteresis: a challenger must beat the default by > margin.
            if (
                winner is not default_cand
                and medians[winner.label] > default_med * (1.0 - margin)
            ):
                winner = default_cand
            if winner is not default_cand:
                # Confirmation duel: the grid medians compared the
                # challenger against a default sample taken earlier in
                # each round, so residual drift can still flatter it.
                # Re-measure strictly head-to-head and judge on the
                # median of *per-round* ratios — pairing within a round
                # cancels drift a cross-round median cannot — over at
                # least 5 rounds regardless of ``rounds``.  The default
                # is kept unless the win repeats.
                duel: dict[str, list[float]] = {
                    winner.label: [], default_cand.label: [],
                }
                pair = [winner, default_cand]
                for rnd in range(max(rounds, 5)):
                    ordered = pair if rnd % 2 == 0 else pair[::-1]
                    for c in ordered:
                        duel[c.label].append(run_once(c))
                ratios = [
                    w / d for w, d in
                    zip(duel[winner.label], duel[default_cand.label])
                ]
                win_med = float(np.median(duel[winner.label]))
                default_med = float(np.median(duel[default_cand.label]))
                medians[winner.label] = win_med
                medians[default_cand.label] = default_med
                if (
                    float(np.median(ratios)) > 1.0 - margin
                    or win_med > default_med * (1.0 - margin)
                ):
                    winner = default_cand

        report = ShapeReport(
            shape=(m, k, n),
            candidates=len(cands),
            survivors=len(survivors),
            medians=medians,
            winner=winner,
            default_seconds=default_med,
            winner_seconds=medians[winner.label],
        )
        reports.append(report)

        if the_store is not None:
            tm, tk, tn = winner.tilings
            from ..blas.kernels import get_accumulate_cap

            the_store.record(
                m, k, n,
                StoredDecision(
                    tile_m=tm.tile, tile_k=tk.tile, tile_n=tn.tile,
                    depth=tm.depth,
                    schedule=winner.schedule,
                    memory=winner.memory,
                    kernel=winner.kernel,
                    modelled_seconds=modelled.get(id(winner.tilings)),
                    measured_seconds=medians[winner.label],
                    source="autotune",
                ),
                dtype=dtype, variant=variant, fused_pack=fused_pack,
            )
            the_store.set_artifact("accumulate_cap", get_accumulate_cap())

    store_path = None
    if the_store is not None:
        the_store.flush()
        store_path = str(the_store.path)
    return TuneResult(
        reports=reports,
        store_path=store_path,
        seconds=time.perf_counter() - t_start,
    )
