"""Persistent plan tuning: the cross-session plan store and autotuner.

The paper's tuning decisions (truncation point, layout, schedule) are
per-call and ephemeral; this package makes them durable.
:class:`PlanStore` is a versioned, corruption-tolerant, advisory-locked
on-disk database of per-shape plan decisions and calibration artifacts;
:func:`autotune` searches the plan space per shape (offline machine-model
pruning via :mod:`repro.cachesim.rank`, then interleaved on-host timing)
and writes the winners back.  A :class:`repro.engine.GemmSession` opened
against a warm store replays every decision — truncation point, schedule,
memory, kernel, conversion-path calibration, accumulate-scratch cap —
with zero per-site calibration runs.

Run ``python -m repro.tune --help`` for the command-line tuner.
"""

from .autotune import (
    Candidate,
    ShapeReport,
    TuneResult,
    autotune,
    enumerate_tilings,
)
from .store import (
    PLAN_STORE_ENV,
    STORE_SCHEMA,
    STORE_VERSION,
    UNSET,
    PlanStore,
    StoredDecision,
    shape_key,
)

__all__ = [
    "PLAN_STORE_ENV",
    "STORE_SCHEMA",
    "STORE_VERSION",
    "UNSET",
    "PlanStore",
    "StoredDecision",
    "shape_key",
    "Candidate",
    "ShapeReport",
    "TuneResult",
    "autotune",
    "enumerate_tilings",
]
