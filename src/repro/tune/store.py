"""The persistent plan store: tuned GEMM decisions that outlive sessions.

Every :class:`repro.engine.GemmSession` today re-derives (or defaults) the
same per-shape decisions — truncation point ``(T, d)``, execution
schedule, memory schedule, leaf kernel — and throws them away at exit.
A production system warms up *once*: this module serializes those
decisions to a versioned on-disk JSON document shared across sessions and
processes (the query-planner pattern), alongside the calibration
artifacts the engine otherwise re-measures per plan site (the
:class:`~repro.layout.convert.ConversionTable` loop-vs-indexed outcomes
and the leaf kernels' accumulate-scratch cap).

Design constraints, in order:

* **Never crash a session.**  A truncated, garbage, or wrong-version
  store file loads as an *empty* store (garbage warns with a
  :class:`RuntimeWarning`; a clean schema/version mismatch is silently
  ignored — it is simply a store this build cannot read).  Disk errors on
  :meth:`PlanStore.flush` surface as :class:`OSError` to the caller that
  asked for persistence, but lookups never raise.
* **Concurrent writers must not corrupt.**  :meth:`PlanStore.flush`
  takes an advisory exclusive lock on a sidecar ``<path>.lock`` file
  (``fcntl.flock`` where available), re-reads the document under the
  lock, merges its own dirty entries over it, and replaces the store
  atomically (``os.replace`` of a same-directory temp file).  Two
  processes tuning different shapes therefore both land in the file.
* **Stdlib only.**  JSON on disk, ``fcntl`` locking, no third-party
  dependency.

The document schema (``version`` 1)::

    {
      "schema": "repro.plan_store",
      "version": 1,
      "entries": {
        "513x513x513:float64:winograd:fp=True": {
          "tile_m": 33, "tile_k": 33, "tile_n": 33, "depth": 4,
          "schedule": "sequential", "memory": "two_temp",
          "kernel": "numpy",
          "modelled_seconds": 0.41, "measured_seconds": 0.052,
          "source": "autotune"
        }, ...
      },
      "calibrations": {
        "513x513x513:t33x33:d4:float64": {"mode": "indexed",
                                          "baseline": 0.0021}, ...
      },
      "artifacts": {"accumulate_cap": 1048576}
    }

Entry keys are :func:`shape_key` strings — the *calling context* of a
lookup: GEMM dims, computation dtype, recursion variant and the
session's ``fused_pack`` mode.  The stored decision supplies what the
planner would otherwise choose heuristically: the per-dimension
truncation tiles and depth (applied as a pinned
:class:`~repro.core.truncation.TruncationPolicy`), the execution
schedule, the memory schedule and the leaf kernel.  Calibration keys are
:func:`repro.layout.convert.calibration_key` strings — pure conversion
geometry, shared by every plan that converts that geometry.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..core.truncation import TruncationPolicy

try:  # POSIX advisory locking; degrade to lock-free on exotic platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "PLAN_STORE_ENV",
    "STORE_SCHEMA",
    "STORE_VERSION",
    "StoredDecision",
    "PlanStore",
    "shape_key",
    "UNSET",
]

#: Environment variable naming the default store path.  Precedence:
#: an explicit ``GemmSession(plan_store=...)`` argument wins over the
#: environment; ``plan_store=None`` disables the store even when the
#: variable is set; an unset/empty variable means "no store".
PLAN_STORE_ENV = "REPRO_PLAN_STORE"

#: The document's ``schema`` marker (anything else is not a plan store).
STORE_SCHEMA = "repro.plan_store"

#: Current document version; a file with any other version is ignored
#: cleanly (treated as empty) rather than half-parsed.
STORE_VERSION = 1

#: Sentinel distinguishing "argument not given" (environment applies)
#: from an explicit ``None`` (store disabled).
UNSET = object()

#: Decision fields (beyond the tiling) a stored entry may carry; each is
#: optional — ``None`` means "keep the heuristic/session default".
_DECISION_FIELDS = (
    "schedule", "memory", "kernel", "modelled_seconds",
    "measured_seconds", "source",
)


def shape_key(
    m: int, k: int, n: int,
    dtype: str = "float64",
    variant: str = "winograd",
    fused_pack=True,
) -> str:
    """The store key of one lookup context.

    Encodes everything that changes which decision is *applicable*: the
    GEMM dims, the computation dtype, the recursion variant and the
    session's ``fused_pack`` mode (fusion shifts the conversion/add cost
    balance, so a decision tuned under one mode does not transfer).
    """
    return f"{int(m)}x{int(k)}x{int(n)}:{dtype}:{variant}:fp={fused_pack}"


@dataclass(frozen=True)
class StoredDecision:
    """One tuned plan decision: what the planner should pick for a shape.

    ``tile_m``/``tile_k``/``tile_n``/``depth`` pin the truncation point
    (the paper's per-call selection, made persistent); ``schedule``,
    ``memory`` and ``kernel`` override the session defaults *only for
    parameters the caller left unspecified* — an explicit per-call
    ``memory="classic"`` always wins over the store.
    """

    tile_m: int
    tile_k: int
    tile_n: int
    depth: int
    schedule: str | None = None
    memory: str | None = None
    kernel: str | None = None
    modelled_seconds: float | None = None
    measured_seconds: float | None = None
    source: str = "autotune"

    def policy(self, m: int, k: int, n: int) -> TruncationPolicy:
        """The pinned truncation policy realising this decision's (T, d)."""
        return TruncationPolicy.pinned_tiling(
            m, k, n, (self.tile_m, self.tile_k, self.tile_n), self.depth
        )

    def as_doc(self) -> dict:
        """The JSON-document form `PlanStore` persists (drops None fields)."""
        doc = {
            "tile_m": self.tile_m, "tile_k": self.tile_k,
            "tile_n": self.tile_n, "depth": self.depth,
        }
        for name in _DECISION_FIELDS:
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "StoredDecision":
        """Parse one entry document; raises on malformed shape fields."""
        return cls(
            tile_m=int(doc["tile_m"]),
            tile_k=int(doc["tile_k"]),
            tile_n=int(doc["tile_n"]),
            depth=int(doc["depth"]),
            schedule=doc.get("schedule"),
            memory=doc.get("memory"),
            kernel=doc.get("kernel"),
            modelled_seconds=doc.get("modelled_seconds"),
            measured_seconds=doc.get("measured_seconds"),
            source=doc.get("source", "autotune"),
        )


def _read_doc(path: Path) -> dict:
    """Best-effort read of a store document; empty dict when unusable.

    A missing file is the normal cold state (no warning); unparseable
    bytes warn (the store was probably truncated mid-write by something
    that bypassed the lock); an unrecognised schema or version is
    ignored silently — it is a store this build cannot (or must not)
    interpret, not a corruption.
    """
    try:
        raw = path.read_text()
    except FileNotFoundError:
        return {}
    except OSError as exc:
        warnings.warn(
            f"plan store {path} is unreadable ({exc}); starting empty",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    try:
        doc = json.loads(raw)
    except ValueError:
        warnings.warn(
            f"plan store {path} is not valid JSON (truncated or corrupt); "
            "starting empty",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    if not isinstance(doc, dict):
        warnings.warn(
            f"plan store {path} is not a JSON object; starting empty",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    if doc.get("schema") != STORE_SCHEMA or doc.get("version") != STORE_VERSION:
        # A different schema/version: cleanly ignored, never half-parsed.
        return {}
    return doc


class PlanStore:
    """A lazily-loaded, merge-on-flush, on-disk plan database.

    Cheap to construct — the file is read on first access, so a session
    configured with a store but never multiplying through it pays
    nothing.  All methods are thread-safe; cross-*process* safety is the
    job of :meth:`flush` (advisory lock + atomic replace).  In-memory
    state is a cache over the file: :meth:`lookup` answers from memory,
    :meth:`record`/:meth:`record_calibration`/:meth:`set_artifact` mark
    entries dirty, and :meth:`flush` merges the dirty set over whatever
    is on disk at that moment.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._loaded = False
        self._entries: dict[str, StoredDecision] = {}
        self._calibrations: dict[str, dict] = {}
        self._artifacts: dict[str, object] = {}
        self._dirty_entries: set[str] = set()
        self._dirty_calibrations: set[str] = set()
        self._dirty_artifacts: set[str] = set()

    # -------------------------------------------------------------- resolve

    @classmethod
    def resolve(cls, value=UNSET) -> "PlanStore | None":
        """Normalise the ``plan_store=`` argument forms.

        ``UNSET`` (the default) consults :data:`PLAN_STORE_ENV` — a
        non-empty value names the store path; explicit ``None`` disables
        the store regardless of the environment; a string/path builds a
        store there; a :class:`PlanStore` passes through (shared between
        sessions).
        """
        if value is UNSET:
            path = os.environ.get(PLAN_STORE_ENV, "").strip()
            return cls(path) if path else None
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        return cls(value)

    # ---------------------------------------------------------------- state

    def _ensure_loaded(self) -> None:
        with self._lock:
            if self._loaded:
                return
            self._absorb_doc(_read_doc(self.path), overwrite=False)
            self._loaded = True

    def _absorb_doc(self, doc: dict, overwrite: bool) -> None:
        """Fold a parsed document into memory (caller holds the lock).

        ``overwrite=False`` keeps any in-memory value over the disk's
        (locally recorded state is newer than what was read); malformed
        individual entries are skipped so one bad record cannot poison
        the rest of a mostly-good store.
        """
        for key, entry in (doc.get("entries") or {}).items():
            if not overwrite and key in self._entries:
                continue
            try:
                self._entries[key] = StoredDecision.from_doc(entry)
            except (KeyError, TypeError, ValueError):
                continue
        for key, cal in (doc.get("calibrations") or {}).items():
            if not overwrite and key in self._calibrations:
                continue
            if isinstance(cal, dict) and cal.get("mode") in ("indexed", "loop"):
                self._calibrations[key] = {
                    "mode": cal["mode"],
                    "baseline": float(cal.get("baseline", 0.0)),
                }
        for key, value in (doc.get("artifacts") or {}).items():
            if not overwrite and key in self._artifacts:
                continue
            self._artifacts[key] = value

    def __len__(self) -> int:
        self._ensure_loaded()
        with self._lock:
            return len(self._entries)

    @property
    def dirty(self) -> bool:
        """True when in-memory state has not been flushed to disk."""
        with self._lock:
            return bool(
                self._dirty_entries
                or self._dirty_calibrations
                or self._dirty_artifacts
            )

    # -------------------------------------------------------------- entries

    def lookup(
        self, m: int, k: int, n: int,
        dtype: str = "float64",
        variant: str = "winograd",
        fused_pack=True,
    ) -> StoredDecision | None:
        """The stored decision for one lookup context, or ``None``."""
        self._ensure_loaded()
        with self._lock:
            return self._entries.get(
                shape_key(m, k, n, dtype, variant, fused_pack)
            )

    def record(
        self, m: int, k: int, n: int,
        decision: StoredDecision,
        dtype: str = "float64",
        variant: str = "winograd",
        fused_pack=True,
    ) -> str:
        """Store a decision for one lookup context; returns its key."""
        self._ensure_loaded()
        key = shape_key(m, k, n, dtype, variant, fused_pack)
        with self._lock:
            self._entries[key] = decision
            self._dirty_entries.add(key)
        return key

    def entries(self) -> dict[str, StoredDecision]:
        """A snapshot of every stored decision by key."""
        self._ensure_loaded()
        with self._lock:
            return dict(self._entries)

    # --------------------------------------------------------- calibrations

    def lookup_calibration(self, site_key: str) -> dict | None:
        """The persisted loop-vs-indexed outcome for one conversion site.

        Returns ``{"mode": "indexed" | "loop", "baseline": seconds}`` or
        ``None`` when the site has never been calibrated.
        """
        self._ensure_loaded()
        with self._lock:
            return self._calibrations.get(site_key)

    def record_calibration(
        self, site_key: str, mode: str, baseline: float = 0.0
    ) -> None:
        """Persist one conversion site's calibration outcome."""
        if mode not in ("indexed", "loop"):
            raise ValueError(
                f"calibration mode must be 'indexed' or 'loop', got {mode!r}"
            )
        self._ensure_loaded()
        with self._lock:
            self._calibrations[site_key] = {
                "mode": mode, "baseline": float(baseline),
            }
            self._dirty_calibrations.add(site_key)

    # ------------------------------------------------------------ artifacts

    def get_artifact(self, name: str, default=None):
        """A named calibration artifact (e.g. ``"accumulate_cap"``)."""
        self._ensure_loaded()
        with self._lock:
            return self._artifacts.get(name, default)

    def set_artifact(self, name: str, value) -> None:
        """Store a named calibration artifact (JSON-scalar values only)."""
        self._ensure_loaded()
        with self._lock:
            self._artifacts[name] = value
            self._dirty_artifacts.add(name)

    # ---------------------------------------------------------------- flush

    def _locked_file(self):
        """Open (creating) the sidecar lock file and take the exclusive lock."""
        lock_path = self.path.with_name(self.path.name + ".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(lock_path, "a+")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return handle

    def flush(self) -> "Path | None":
        """Merge dirty state over the on-disk document; atomic replace.

        The advisory lock is held across read-merge-write, so concurrent
        flushers serialise and neither loses the other's entries: each
        writer folds the *current* disk contents under its own dirty
        records first.  The replacement itself is ``os.replace`` of a
        temp file created in the store's directory, so a reader never
        observes a half-written document even without taking the lock.
        No-op (returns ``None``) when nothing is dirty.
        """
        with self._lock:
            if not self.dirty:
                return None
            self._ensure_loaded()
            entries = {k: self._entries[k] for k in self._dirty_entries
                       if k in self._entries}
            calibrations = {
                k: self._calibrations[k] for k in self._dirty_calibrations
                if k in self._calibrations
            }
            artifacts = {k: self._artifacts[k] for k in self._dirty_artifacts
                         if k in self._artifacts}
        handle = self._locked_file()
        try:
            disk = _read_doc(self.path)
            doc = {
                "schema": STORE_SCHEMA,
                "version": STORE_VERSION,
                "entries": dict(disk.get("entries") or {}),
                "calibrations": dict(disk.get("calibrations") or {}),
                "artifacts": dict(disk.get("artifacts") or {}),
            }
            # Drop disk records that fail to parse — they would survive
            # every future merge otherwise.
            doc["entries"] = {
                k: v for k, v in doc["entries"].items()
                if _parses_as_decision(v)
            }
            doc["entries"].update(
                {k: d.as_doc() for k, d in entries.items()}
            )
            doc["calibrations"].update(calibrations)
            doc["artifacts"].update(artifacts)
            fd, tmp_name = tempfile.mkstemp(
                prefix=self.path.name + ".", suffix=".tmp",
                dir=str(self.path.parent or Path(".")),
            )
            try:
                with os.fdopen(fd, "w") as tmp:
                    json.dump(doc, tmp, indent=1, sort_keys=True)
                    tmp.write("\n")
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                # Fold the merged view back so later lookups see siblings'
                # entries too, then clear the dirty sets.
                self._absorb_doc(doc, overwrite=False)
                self._dirty_entries.clear()
                self._dirty_calibrations.clear()
                self._dirty_artifacts.clear()
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
        return self.path

    def refresh(self) -> None:
        """Re-read the file, folding new sibling entries into memory."""
        with self._lock:
            self._absorb_doc(_read_doc(self.path), overwrite=False)
            self._loaded = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            n = len(self._entries) if self._loaded else "?"
        return f"PlanStore({str(self.path)!r}, entries={n})"


def _parses_as_decision(doc) -> bool:
    if not isinstance(doc, dict):
        return False
    try:
        StoredDecision.from_doc(doc)
    except (KeyError, TypeError, ValueError):
        return False
    return True
