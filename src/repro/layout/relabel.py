"""Copy-free Morton transposition by quadrant relabeling.

The transpose of a quadtree-decomposed matrix is the same quadtree with
the off-diagonal children swapped and every child transposed::

    (X^T)11 = (X11)^T   (X^T)12 = (X21)^T
    (X^T)21 = (X12)^T   (X^T)22 = (X22)^T

Because a Morton buffer stores each quadrant contiguously, that identity
needs *no data movement at any level*: :class:`TransposedView` wraps a
:class:`~repro.layout.matrix.MortonMatrix` (or a
:class:`~repro.layout.matrix.BatchMortonMatrix`) and serves the recursion
the (12 <-> 21)-relabeled descent, bottoming out in a transposed
``leaf_view`` — the leaf kernel receives the same buffer through swapped
strides and lets BLAS handle the orientation.  An ``op(A)`` operand is
therefore one wrapper object, zero copies, and the Winograd additions
(flat ufuncs over whole quadrant buffers) are untouched: a flat add over
a relabeled operand adds exactly the same logical element pairs, just
enumerated in the base matrix's Morton permutation.

The one subtlety is *mixing* permutations: an S-intermediate computed
from transposed quadrants inherits the base (native) Morton permutation,
so the scratch that receives it must be descended with the same relabel.
:func:`relabel_scratch` reinterprets a plain scratch matrix in the
transposed operand's native geometry and wraps it — the recursion calls
it per level for whichever operand side is transposed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransposedView", "transposed_view", "relabel_scratch"]


class TransposedView:
    """Zero-copy logical transpose of a Morton(-batch) matrix.

    Presents the duck-typed surface the Winograd recursion and
    ``core.ops`` use — swapped ``rows``/``cols``/``tile_r``/``tile_c``,
    relabeled ``quadrants()``, transposed ``leaf_view()``, forwarded
    ``buf``/``size``/``depth``/``batch`` — plus the ``transposed`` marker
    the recursion keys its per-level scratch relabeling on.
    """

    __slots__ = ("base", "_leaf")

    #: Marker checked via ``getattr(x, "transposed", False)`` at sites
    #: that must not pay an isinstance import.
    transposed = True

    def __init__(self, base) -> None:
        self.base = base
        self._leaf = None

    # ---------------------------------------------------------------- shape

    @property
    def buf(self) -> np.ndarray:
        return self.base.buf

    @property
    def rows(self) -> int:
        return self.base.cols

    @property
    def cols(self) -> int:
        return self.base.rows

    @property
    def tile_r(self) -> int:
        return self.base.tile_c

    @property
    def tile_c(self) -> int:
        return self.base.tile_r

    @property
    def depth(self) -> int:
        return self.base.depth

    @property
    def size(self) -> int:
        return self.base.size

    @property
    def padded_rows(self) -> int:
        return self.base.padded_cols

    @property
    def padded_cols(self) -> int:
        return self.base.padded_rows

    @property
    def shape(self) -> tuple[int, int]:
        return (self.base.cols, self.base.rows)

    @property
    def batch(self):
        """Batch size when wrapping a batch stack, else ``None`` — keeps
        ``getattr(x, "batch", None)`` dispatch in ``core.ops`` working."""
        return getattr(self.base, "batch", None)

    # ------------------------------------------------------------ structure

    def quadrant(self, qr: int, qc: int) -> "TransposedView":
        """Quadrant ``(qr, qc)`` of the transpose: the base's ``(qc, qr)``
        quadrant, transposed."""
        return TransposedView(self.base.quadrant(qc, qr))

    def quadrants(self) -> tuple["TransposedView", ...]:
        """(11, 12, 21, 22) of the transpose — the base's quadrants in
        (11, 21, 12, 22) order, each transposed."""
        q11, q12, q21, q22 = self.base.quadrants()
        return (
            TransposedView(q11),
            TransposedView(q21),
            TransposedView(q12),
            TransposedView(q22),
        )

    def leaf_view(self) -> np.ndarray:
        """The base leaf through swapped strides (no copy).

        2-D: the base's Fortran-order ``(tile_r, tile_c)`` view transposed
        to C-order ``(tile_c, tile_r)``.  Batch: the base's
        ``(batch, tile_c, tile_r)`` stack with the tile axes swapped, so
        each slice keeps the "C-order image of the transposed tile"
        convention the batched kernel expects — here the transposed tile's
        transpose, i.e. the base tile itself.
        """
        if self._leaf is None:
            lv = self.base.leaf_view()
            self._leaf = lv.T if lv.ndim == 2 else lv.transpose(0, 2, 1)
        return self._leaf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransposedView({self.base!r})"


def transposed_view(mm):
    """The logical transpose of ``mm``, with no data movement.

    Transposing a :class:`TransposedView` unwraps it back to the base.
    """
    if getattr(mm, "transposed", False):
        return mm.base
    return TransposedView(mm)


def relabel_scratch(mm):
    """Reinterpret a plan-geometry scratch matrix for a transposed operand.

    ``mm`` is a scratch buffer allocated in the *operation* geometry
    (``op(A)``-shaped: ``tile_r x tile_c`` tiles).  When the operand it
    mirrors is a :class:`TransposedView`, intermediates written into the
    scratch by flat ufuncs carry the operand's *native* Morton
    permutation, so the scratch must be read back the same way: as a
    native-geometry matrix (tiles swapped) seen through a transpose.
    Same buffer, zero copies — only the descent labels change.
    """
    native = type(mm)(
        buf=mm.buf,
        rows=mm.tile_c << mm.depth,
        cols=mm.tile_r << mm.depth,
        tile_r=mm.tile_c,
        tile_c=mm.tile_r,
        depth=mm.depth,
    )
    return TransposedView(native)
