"""The Morton-ordered matrix container.

A :class:`MortonMatrix` owns (or views) a flat float64 buffer holding the
padded matrix in the layout of the paper's Figure 1: quadrants in NW, NE,
SW, SE order recursively, with ``tile_r x tile_c`` column-major leaf tiles.

The crucial structural property — the reason the whole design works — is
that *every quadrant at every recursion level occupies a contiguous slice of
the buffer*.  ``quadrant()`` therefore returns a zero-copy view, Winograd's
matrix additions reduce to 1-D vector operations on whole buffers, and leaf
tiles are contiguous no matter which tile size the truncation search picked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .padding import TileRange, Tiling, select_tiling

__all__ = ["MortonMatrix"]


@dataclass
class MortonMatrix:
    """A (possibly padded) matrix stored in Morton order.

    Attributes
    ----------
    buf:
        Flat float64 array of length ``padded_rows * padded_cols``.  May be
        a view into a larger buffer (quadrants are such views).
    rows, cols:
        Logical (unpadded) dimensions.  The padded region, when present,
        holds zeros so that redundant arithmetic on it is harmless
        (Section 3.5: "we explicitly padded out the matrix with zeros and
        performed redundant computation on the pad").
    tile_r, tile_c:
        Leaf tile edges chosen by the truncation-point search.
    depth:
        Recursion depth; the padded matrix is ``tile_r * 2**depth`` by
        ``tile_c * 2**depth``.
    """

    buf: np.ndarray
    rows: int
    cols: int
    tile_r: int
    tile_c: int
    depth: int

    # ---------------------------------------------------------------- shape

    @property
    def padded_rows(self) -> int:
        return self.tile_r << self.depth

    @property
    def padded_cols(self) -> int:
        return self.tile_c << self.depth

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (unpadded) shape."""
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Buffer length (padded element count)."""
        return self.padded_rows * self.padded_cols

    def __post_init__(self) -> None:
        if self.buf.ndim != 1:
            raise ValueError("MortonMatrix buffer must be 1-D")
        if self.buf.size != self.size:
            raise ValueError(
                f"buffer has {self.buf.size} elements; tiling "
                f"({self.tile_r}x{self.tile_c}, depth {self.depth}) needs {self.size}"
            )
        if not (0 < self.rows <= self.padded_rows):
            raise ValueError(f"rows={self.rows} not in (0, {self.padded_rows}]")
        if not (0 < self.cols <= self.padded_cols):
            raise ValueError(f"cols={self.cols} not in (0, {self.padded_cols}]")

    # ------------------------------------------------------------ factories

    @classmethod
    def empty(
        cls, rows: int, cols: int, tiling_r: Tiling, tiling_c: Tiling
    ) -> "MortonMatrix":
        """Uninitialised Morton matrix for the given per-dimension tilings."""
        if tiling_r.depth != tiling_c.depth:
            raise ValueError(
                f"row depth {tiling_r.depth} != column depth {tiling_c.depth}; "
                "use layout.padding.select_common_tiling"
            )
        depth = tiling_r.depth
        buf = np.empty((tiling_r.padded * tiling_c.padded,), dtype=np.float64)
        return cls(
            buf=buf,
            rows=rows,
            cols=cols,
            tile_r=tiling_r.tile,
            tile_c=tiling_c.tile,
            depth=depth,
        )

    @classmethod
    def zeros(
        cls, rows: int, cols: int, tiling_r: Tiling, tiling_c: Tiling
    ) -> "MortonMatrix":
        out = cls.empty(rows, cols, tiling_r, tiling_c)
        out.buf[:] = 0.0
        return out

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_range: TileRange = TileRange(),
        transpose: bool = False,
        tilings: tuple[Tiling, Tiling] | None = None,
    ) -> "MortonMatrix":
        """Convert a dense 2-D array to Morton order (interface-level copy).

        ``transpose=True`` fuses the transposition into the conversion, as
        Section 3.5 prescribes for handling the BLAS ``op(X)`` parameter
        with a single core routine.  ``tilings`` overrides the per-dimension
        truncation search (needed when a GEMM imposes a common depth).
        """
        from .convert import dense_to_morton  # local import to avoid cycle

        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={a.ndim}")
        rows, cols = (a.shape[1], a.shape[0]) if transpose else a.shape
        if tilings is None:
            from .padding import Tiling, select_common_tiling

            found = select_common_tiling((rows, cols), tile_range)
            if found is None:
                # Extreme aspect ratio (> the tile range's span): no common
                # recursion depth exists.  For a standalone conversion store
                # the matrix as one degenerate leaf tile — depth-0 Morton
                # order coincides with plain column-major.  (A GEMM instead
                # splits such operands into panels; see core.rectangular.)
                found = (
                    Tiling(n=rows, tile=rows, depth=0),
                    Tiling(n=cols, tile=cols, depth=0),
                )
            tilings = found
        out = cls.empty(rows, cols, tilings[0], tilings[1])
        dense_to_morton(a, out, transpose=transpose)
        return out

    def to_dense(self) -> np.ndarray:
        """Copy back to a dense (logical-shape, Fortran-order) array."""
        from .convert import morton_to_dense

        return morton_to_dense(self)

    def copy(self) -> "MortonMatrix":
        """Deep copy with an owned buffer."""
        return MortonMatrix(
            buf=self.buf.copy(),
            rows=self.rows,
            cols=self.cols,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth,
        )

    # ------------------------------------------------------------ structure

    def quadrant(self, qr: int, qc: int) -> "MortonMatrix":
        """Zero-copy view of quadrant ``(qr, qc)`` (0=N/W, 1=S/E).

        Quadrants of a padded matrix are always "full": their logical size
        equals their padded size except that the original logical boundary
        is *not* tracked below the top level — by construction the pad holds
        zeros and participates harmlessly in the arithmetic, so recursion
        levels treat quadrants as dense.
        """
        if self.depth == 0:
            raise ValueError("a leaf tile has no quadrants")
        if qr not in (0, 1) or qc not in (0, 1):
            raise ValueError(f"quadrant indices must be 0 or 1, got ({qr}, {qc})")
        quarter = self.size // 4
        z = (qr << 1) | qc  # NW, NE, SW, SE
        sub = self.buf[z * quarter : (z + 1) * quarter]
        return MortonMatrix(
            buf=sub,
            rows=self.padded_rows // 2,
            cols=self.padded_cols // 2,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth - 1,
        )

    def quadrants(self) -> tuple["MortonMatrix", ...]:
        """All four quadrant views in (11, 12, 21, 22) paper numbering."""
        return (
            self.quadrant(0, 0),
            self.quadrant(0, 1),
            self.quadrant(1, 0),
            self.quadrant(1, 1),
        )

    def leaf_view(self) -> np.ndarray:
        """2-D Fortran-order view of a leaf tile (depth must be 0)."""
        if self.depth != 0:
            raise ValueError(f"leaf_view requires depth 0, got {self.depth}")
        return self.buf.reshape(self.tile_c, self.tile_r).T

    def pad_is_zero(self) -> bool:
        """True iff every buffer element outside the logical region is 0.

        Holds for freshly *converted* matrices (the conversion zero-fills
        the pad, Section 3.5).  It does **not** generally hold for the
        outputs of the Winograd recursion: the schedule's intermediates
        (e.g. ``T1 = B12 - B11``) are nonzero at pad positions, and the
        redundant pad arithmetic cancels only up to roundoff.  The residue
        is discarded by ``to_dense()``.
        """
        from .tiles import iter_tiles

        tr, tc = self.tile_r, self.tile_c
        tile_elems = tr * tc
        for t in iter_tiles(self.depth, tr, tc):
            r1 = min(t.row0 + tr, self.rows)
            c1 = min(t.col0 + tc, self.cols)
            tile2d = self.buf[t.offset : t.offset + tile_elems].reshape(tc, tr).T
            if r1 <= t.row0 or c1 <= t.col0:
                if np.any(tile2d != 0.0):
                    return False
                continue
            rr, cc = r1 - t.row0, c1 - t.col0
            if rr < tr and np.any(tile2d[rr:, :] != 0.0):
                return False
            if cc < tc and np.any(tile2d[:, cc:] != 0.0):
                return False
        return True

    # ---------------------------------------------------------- convenience

    def __getitem__(self, idx) -> float:
        """Element access by logical (row, col) — for tests and debugging."""
        from .morton import element_offsets

        i, j = idx
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i}, {j}) outside logical shape {self.shape}")
        return float(
            self.buf[element_offsets(i, j, self.tile_r, self.tile_c, self.depth)]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MortonMatrix({self.rows}x{self.cols}, padded "
            f"{self.padded_rows}x{self.padded_cols}, tile "
            f"{self.tile_r}x{self.tile_c}, depth {self.depth})"
        )
