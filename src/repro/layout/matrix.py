"""The Morton-ordered matrix container.

A :class:`MortonMatrix` owns (or views) a flat float buffer holding the
padded matrix in the layout of the paper's Figure 1: quadrants in NW, NE,
SW, SE order recursively, with ``tile_r x tile_c`` column-major leaf tiles.

The crucial structural property — the reason the whole design works — is
that *every quadrant at every recursion level occupies a contiguous slice of
the buffer*.  ``quadrant()`` therefore returns a zero-copy view, Winograd's
matrix additions reduce to 1-D vector operations on whole buffers, and leaf
tiles are contiguous no matter which tile size the truncation search picked.

The same property makes a *batch* of same-geometry problems stackable:
:class:`BatchMortonMatrix` stores ``batch`` Morton images as the rows of
one ``(batch, padded_elems)`` array.  Every quadrant of the stack is then
a ``(batch, quarter)`` column slice whose rows stay contiguous, so the
Winograd additions remain single ufunc calls — now over the whole batch —
and the stacked leaf tiles form a ``(batch, T, T)`` array that one batched
``np.matmul`` multiplies in a single call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .padding import TileRange, Tiling, select_tiling

__all__ = ["MortonMatrix", "BatchMortonMatrix", "staggered_buffer"]

#: Base-address offset between sibling staggered allocations, in bytes:
#: an odd multiple of the 64-byte cache line (65 lines), so that buffers
#: whose mmap bases happen to land cache-congruent are shifted apart by
#: an amount that is non-zero modulo every power-of-two cache size up to
#: 2 MiB.  This is the paper's Section 4 conflict phenomenon applied to
#: sibling buffers rather than quadrants: batch stacks are large
#: power-of-two-multiple allocations, so without the stagger the same
#: item's A/B/C rows (and workspace rows) can alias in every cache level.
STAGGER_BYTES = 65 * 64


def staggered_buffer(
    shape: tuple, dtype, stagger: int = 0, zeros: bool = False,
) -> np.ndarray:
    """Allocate a C-contiguous array offset by ``stagger * STAGGER_BYTES``.

    The returned array is a view into a slightly larger allocation (kept
    alive through ``.base``) whose start is shifted by the stagger index —
    give sibling buffers distinct indices and their base addresses can
    never be mutually cache-set-congruent, whatever the allocator does.
    ``stagger=0`` is a plain allocation.
    """
    dt = np.dtype(dtype)
    offset = stagger * STAGGER_BYTES // dt.itemsize
    if offset == 0:
        return (np.zeros if zeros else np.empty)(shape, dtype=dt)
    n = 1
    for dim in shape:
        n *= dim
    raw = (np.zeros if zeros else np.empty)(n + offset, dtype=dt)
    return raw[offset : offset + n].reshape(shape)


@dataclass
class MortonMatrix:
    """A (possibly padded) matrix stored in Morton order.

    Attributes
    ----------
    buf:
        Flat float64 array of length ``padded_rows * padded_cols``.  May be
        a view into a larger buffer (quadrants are such views).
    rows, cols:
        Logical (unpadded) dimensions.  The padded region, when present,
        holds zeros so that redundant arithmetic on it is harmless
        (Section 3.5: "we explicitly padded out the matrix with zeros and
        performed redundant computation on the pad").
    tile_r, tile_c:
        Leaf tile edges chosen by the truncation-point search.
    depth:
        Recursion depth; the padded matrix is ``tile_r * 2**depth`` by
        ``tile_c * 2**depth``.
    """

    buf: np.ndarray
    rows: int
    cols: int
    tile_r: int
    tile_c: int
    depth: int

    # ---------------------------------------------------------------- shape

    @property
    def padded_rows(self) -> int:
        return self.tile_r << self.depth

    @property
    def padded_cols(self) -> int:
        return self.tile_c << self.depth

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (unpadded) shape."""
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Buffer length (padded element count)."""
        return self.padded_rows * self.padded_cols

    def __post_init__(self) -> None:
        if self.buf.ndim != 1:
            raise ValueError("MortonMatrix buffer must be 1-D")
        if self.buf.size != self.size:
            raise ValueError(
                f"buffer has {self.buf.size} elements; tiling "
                f"({self.tile_r}x{self.tile_c}, depth {self.depth}) needs {self.size}"
            )
        if not (0 < self.rows <= self.padded_rows):
            raise ValueError(f"rows={self.rows} not in (0, {self.padded_rows}]")
        if not (0 < self.cols <= self.padded_cols):
            raise ValueError(f"cols={self.cols} not in (0, {self.padded_cols}]")

    # ------------------------------------------------------------ factories

    @classmethod
    def empty(
        cls, rows: int, cols: int, tiling_r: Tiling, tiling_c: Tiling,
        dtype=np.float64,
    ) -> "MortonMatrix":
        """Uninitialised Morton matrix for the given per-dimension tilings."""
        if tiling_r.depth != tiling_c.depth:
            raise ValueError(
                f"row depth {tiling_r.depth} != column depth {tiling_c.depth}; "
                "use layout.padding.select_common_tiling"
            )
        depth = tiling_r.depth
        buf = np.empty((tiling_r.padded * tiling_c.padded,), dtype=dtype)
        return cls(
            buf=buf,
            rows=rows,
            cols=cols,
            tile_r=tiling_r.tile,
            tile_c=tiling_c.tile,
            depth=depth,
        )

    @classmethod
    def zeros(
        cls, rows: int, cols: int, tiling_r: Tiling, tiling_c: Tiling,
        dtype=np.float64,
    ) -> "MortonMatrix":
        out = cls.empty(rows, cols, tiling_r, tiling_c, dtype=dtype)
        out.buf[:] = 0.0
        return out

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_range: TileRange = TileRange(),
        transpose: bool = False,
        tilings: tuple[Tiling, Tiling] | None = None,
    ) -> "MortonMatrix":
        """Convert a dense 2-D array to Morton order (interface-level copy).

        ``transpose=True`` fuses the transposition into the conversion, as
        Section 3.5 prescribes for handling the BLAS ``op(X)`` parameter
        with a single core routine.  ``tilings`` overrides the per-dimension
        truncation search (needed when a GEMM imposes a common depth).
        """
        from .convert import dense_to_morton  # local import to avoid cycle

        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={a.ndim}")
        rows, cols = (a.shape[1], a.shape[0]) if transpose else a.shape
        if tilings is None:
            from .padding import Tiling, select_common_tiling

            found = select_common_tiling((rows, cols), tile_range)
            if found is None:
                # Extreme aspect ratio (> the tile range's span): no common
                # recursion depth exists.  For a standalone conversion store
                # the matrix as one degenerate leaf tile — depth-0 Morton
                # order coincides with plain column-major.  (A GEMM instead
                # splits such operands into panels; see core.rectangular.)
                found = (
                    Tiling(n=rows, tile=rows, depth=0),
                    Tiling(n=cols, tile=cols, depth=0),
                )
            tilings = found
        out = cls.empty(rows, cols, tilings[0], tilings[1])
        dense_to_morton(a, out, transpose=transpose)
        return out

    def to_dense(self) -> np.ndarray:
        """Copy back to a dense (logical-shape, Fortran-order) array."""
        from .convert import morton_to_dense

        return morton_to_dense(self)

    def copy(self) -> "MortonMatrix":
        """Deep copy with an owned buffer."""
        return MortonMatrix(
            buf=self.buf.copy(),
            rows=self.rows,
            cols=self.cols,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth,
        )

    # ------------------------------------------------------------ structure

    def quadrant(self, qr: int, qc: int) -> "MortonMatrix":
        """Zero-copy view of quadrant ``(qr, qc)`` (0=N/W, 1=S/E).

        Quadrants of a padded matrix are always "full": their logical size
        equals their padded size except that the original logical boundary
        is *not* tracked below the top level — by construction the pad holds
        zeros and participates harmlessly in the arithmetic, so recursion
        levels treat quadrants as dense.
        """
        if self.depth == 0:
            raise ValueError("a leaf tile has no quadrants")
        if qr not in (0, 1) or qc not in (0, 1):
            raise ValueError(f"quadrant indices must be 0 or 1, got ({qr}, {qc})")
        quarter = self.size // 4
        z = (qr << 1) | qc  # NW, NE, SW, SE
        sub = self.buf[z * quarter : (z + 1) * quarter]
        return MortonMatrix(
            buf=sub,
            rows=self.padded_rows // 2,
            cols=self.padded_cols // 2,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth - 1,
        )

    def quadrants(self) -> tuple["MortonMatrix", ...]:
        """All four quadrant views in (11, 12, 21, 22) paper numbering."""
        return (
            self.quadrant(0, 0),
            self.quadrant(0, 1),
            self.quadrant(1, 0),
            self.quadrant(1, 1),
        )

    def leaf_view(self) -> np.ndarray:
        """2-D Fortran-order view of a leaf tile (depth must be 0)."""
        if self.depth != 0:
            raise ValueError(f"leaf_view requires depth 0, got {self.depth}")
        return self.buf.reshape(self.tile_c, self.tile_r).T

    def pad_is_zero(self) -> bool:
        """True iff every buffer element outside the logical region is 0.

        Holds for freshly *converted* matrices (the conversion zero-fills
        the pad, Section 3.5).  It does **not** generally hold for the
        outputs of the Winograd recursion: the schedule's intermediates
        (e.g. ``T1 = B12 - B11``) are nonzero at pad positions, and the
        redundant pad arithmetic cancels only up to roundoff.  The residue
        is discarded by ``to_dense()``.
        """
        from .tiles import iter_tiles

        tr, tc = self.tile_r, self.tile_c
        tile_elems = tr * tc
        for t in iter_tiles(self.depth, tr, tc):
            r1 = min(t.row0 + tr, self.rows)
            c1 = min(t.col0 + tc, self.cols)
            tile2d = self.buf[t.offset : t.offset + tile_elems].reshape(tc, tr).T
            if r1 <= t.row0 or c1 <= t.col0:
                if np.any(tile2d != 0.0):
                    return False
                continue
            rr, cc = r1 - t.row0, c1 - t.col0
            if rr < tr and np.any(tile2d[rr:, :] != 0.0):
                return False
            if cc < tc and np.any(tile2d[:, cc:] != 0.0):
                return False
        return True

    # ---------------------------------------------------------- convenience

    def __getitem__(self, idx) -> float:
        """Element access by logical (row, col) — for tests and debugging."""
        from .morton import element_offsets

        i, j = idx
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i}, {j}) outside logical shape {self.shape}")
        return float(
            self.buf[element_offsets(i, j, self.tile_r, self.tile_c, self.depth)]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MortonMatrix({self.rows}x{self.cols}, padded "
            f"{self.padded_rows}x{self.padded_cols}, tile "
            f"{self.tile_r}x{self.tile_c}, depth {self.depth})"
        )


@dataclass
class BatchMortonMatrix:
    """A stack of same-geometry Morton matrices, one per buffer row.

    ``buf`` is ``(batch, padded_elems)`` with each row holding one item's
    Morton image.  Because a quadrant is a contiguous element range of every
    item, the stacked quadrant is the column slice ``buf[:, lo:hi]`` — still
    a single strided array, so the Winograd additions stay single ufunc
    calls over the whole batch.  Duck-types the subset of
    :class:`MortonMatrix` the recursion uses (``quadrants``, ``depth``,
    ``size``, ``leaf_view``); ``core.ops`` dispatches leaf products on the
    ``batch`` attribute.
    """

    buf: np.ndarray  # (batch, padded_elems), rows contiguous
    rows: int
    cols: int
    tile_r: int
    tile_c: int
    depth: int

    # ---------------------------------------------------------------- shape

    @property
    def batch(self) -> int:
        return self.buf.shape[0]

    @property
    def padded_rows(self) -> int:
        return self.tile_r << self.depth

    @property
    def padded_cols(self) -> int:
        return self.tile_c << self.depth

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (unpadded) per-item shape."""
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Per-item buffer length (padded element count, cached)."""
        return self._size

    @property
    def nbytes(self) -> int:
        return self.buf.shape[0] * self.buf.shape[1] * self.buf.itemsize

    def __post_init__(self) -> None:
        if self.buf.ndim != 2:
            raise ValueError("BatchMortonMatrix buffer must be 2-D")
        # Quadrant/leaf views and the padded size are pure functions of the
        # (immutable) geometry; they sit on every recursion step's hot
        # path, so memoise them per instance — batch plans reuse the same
        # stack objects across executions.
        self._size = self.padded_rows * self.padded_cols
        self._quads: "tuple[BatchMortonMatrix, ...] | None" = None
        self._leaf: np.ndarray | None = None
        if self.buf.shape[1] != self._size:
            raise ValueError(
                f"buffer rows have {self.buf.shape[1]} elements; tiling "
                f"({self.tile_r}x{self.tile_c}, depth {self.depth}) needs {self.size}"
            )

    # ------------------------------------------------------------ factories

    @classmethod
    def zeros(
        cls, batch: int, rows: int, cols: int,
        tiling_r: Tiling, tiling_c: Tiling, dtype=np.float64,
        stagger: int = 0,
    ) -> "BatchMortonMatrix":
        if tiling_r.depth != tiling_c.depth:
            raise ValueError(
                f"row depth {tiling_r.depth} != column depth {tiling_c.depth}; "
                "use layout.padding.select_common_tiling"
            )
        buf = staggered_buffer(
            (batch, tiling_r.padded * tiling_c.padded), dtype, stagger,
            zeros=True,
        )
        return cls(
            buf=buf,
            rows=rows,
            cols=cols,
            tile_r=tiling_r.tile,
            tile_c=tiling_c.tile,
            depth=tiling_r.depth,
        )

    # ------------------------------------------------------------ structure

    def quadrant(self, qr: int, qc: int) -> "BatchMortonMatrix":
        """Zero-copy column-slice view of quadrant ``(qr, qc)`` for every item."""
        if self.depth == 0:
            raise ValueError("a leaf tile has no quadrants")
        if qr not in (0, 1) or qc not in (0, 1):
            raise ValueError(f"quadrant indices must be 0 or 1, got ({qr}, {qc})")
        quarter = self.size // 4
        z = (qr << 1) | qc  # NW, NE, SW, SE
        sub = self.buf[:, z * quarter : (z + 1) * quarter]
        return BatchMortonMatrix(
            buf=sub,
            rows=self.padded_rows // 2,
            cols=self.padded_cols // 2,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth - 1,
        )

    def quadrants(self) -> tuple["BatchMortonMatrix", ...]:
        """All four stacked quadrant views in (11, 12, 21, 22) numbering.

        Memoised: repeated recursions over a pooled stack reuse the same
        view objects (and, transitively, their cached leaf views).
        """
        if self._quads is None:
            self._quads = (
                self.quadrant(0, 0),
                self.quadrant(0, 1),
                self.quadrant(1, 0),
                self.quadrant(1, 1),
            )
        return self._quads

    def leaf_view(self) -> np.ndarray:
        """``(batch, tile_c, tile_r)`` view: item ``i``'s slice is the
        C-order image of that item's *transposed* leaf tile (the same
        representation ``MortonMatrix.leaf_view().T`` exposes), which is
        exactly what the batched kernel's ``matmul(Bt, At)`` trick wants.
        May be a non-contiguous batch-stride view (two_temp aliasing slices
        columns out of a wider buffer); rows themselves stay contiguous.
        Memoised per instance (every leaf product re-requests it).
        """
        if self._leaf is not None:
            return self._leaf
        if self.depth != 0:
            raise ValueError(f"leaf_view requires depth 0, got {self.depth}")
        b = self.buf
        elems = self.tile_r * self.tile_c
        self._leaf = as_strided(
            b,
            shape=(b.shape[0], self.tile_c, self.tile_r),
            strides=(b.strides[0], self.tile_r * b.strides[1], b.strides[1]),
        ) if b.shape[1] != elems or not b.flags.c_contiguous else b.reshape(
            b.shape[0], self.tile_c, self.tile_r
        )
        return self._leaf

    def item(self, i: int) -> MortonMatrix:
        """Per-item :class:`MortonMatrix` view of row ``i`` (zero-copy when
        the batch rows are themselves contiguous)."""
        row = self.buf[i]
        if not row.flags.c_contiguous:  # pragma: no cover - defensive
            row = np.ascontiguousarray(row)
        return MortonMatrix(
            buf=row,
            rows=self.rows,
            cols=self.cols,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth,
        )

    def stripe(self, lo: int, hi: int) -> "BatchMortonMatrix":
        """Zero-copy view of batch rows ``[lo, hi)`` — the unit the
        task-schedule path hands to each worker."""
        return BatchMortonMatrix(
            buf=self.buf[lo:hi],
            rows=self.rows,
            cols=self.cols,
            tile_r=self.tile_r,
            tile_c=self.tile_c,
            depth=self.depth,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchMortonMatrix(batch={self.batch}, {self.rows}x{self.cols}, "
            f"padded {self.padded_rows}x{self.padded_cols}, tile "
            f"{self.tile_r}x{self.tile_c}, depth {self.depth})"
        )
