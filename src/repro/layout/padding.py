"""Dynamic recursion-truncation-point selection (paper Sections 3.1, 3.4).

A Strassen recursion of depth ``d`` over leaf tiles of edge ``T`` requires
the (padded) matrix dimension to be exactly ``T * 2**d``.  With a *fixed*
``T`` the padding ``T*2**d - n`` can approach ``n`` itself (513 -> 1024 at
``T = 32``).  The paper instead selects ``T`` from a range (16..64) and the
depth ``d`` jointly so the padding is minimised; the Morton layout then
guarantees that leaf-kernel performance is insensitive to the exact ``T``
chosen, which is what makes this flexibility safe (Figure 3).

Worst-case padding for the paper's range is 15 elements per dimension for
all ``n <= 1024`` (the paper's "our worst case amount"); see the unit tests
for the exhaustive check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TileRange",
    "Tiling",
    "feasible_depths",
    "padded_size",
    "select_tiling",
    "select_common_tiling",
    "min_padding_curve",
    "conflict_levels",
]

def _preferred_tile(tile_range: "TileRange") -> float:
    """Tie-break target for the leaf tile edge.

    When several (tile, depth) pairs achieve the same minimal padding, we
    prefer the tile closest to the geometric midpoint of the admissible
    range — 32 for the paper's 16..64, reproducing the paper's observation
    that the padded sizes 505..512 all truncate at tile size 32
    (Section 4.2), and scaling correctly with the range in the
    geometry-scaled experiments.
    """
    return (tile_range.min_tile * tile_range.max_tile) ** 0.5


@dataclass(frozen=True)
class TileRange:
    """Inclusive range of admissible leaf-tile edges.

    The paper uses 16..64 (Figure 2).  The range must span at least a factor
    of two, otherwise some matrix sizes admit no tiling at all.  The span
    also bounds the aspect ratios that share a recursion depth: a common
    depth is guaranteed for ratios up to span/2 (i.e. 2 for the paper's
    range) and possible — depending on rounding — up to the span itself.
    """

    min_tile: int = 16
    max_tile: int = 64

    def __post_init__(self) -> None:
        if self.min_tile < 1:
            raise ValueError(f"min_tile must be >= 1, got {self.min_tile}")
        if self.max_tile < 2 * self.min_tile:
            raise ValueError(
                "max_tile must be at least 2*min_tile so that every size "
                f"admits a tiling; got [{self.min_tile}, {self.max_tile}]"
            )

    @property
    def span(self) -> float:
        return self.max_tile / self.min_tile


@dataclass(frozen=True)
class Tiling:
    """A concrete (tile edge, recursion depth) choice for one dimension."""

    n: int  #: logical (unpadded) size
    tile: int  #: leaf tile edge T
    depth: int  #: recursion depth d

    @property
    def padded(self) -> int:
        """Padded size ``n' = T * 2**d``."""
        return self.tile << self.depth

    @property
    def pad(self) -> int:
        """Number of padded elements, ``n' - n``."""
        return self.padded - self.n

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"matrix dimension must be >= 1, got {self.n}")
        if self.depth < 0:
            raise ValueError(f"depth must be >= 0, got {self.depth}")
        if self.padded < self.n:
            raise ValueError(
                f"tile {self.tile} * 2^{self.depth} = {self.padded} cannot hold n={self.n}"
            )


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def feasible_depths(n: int, tile_range: TileRange = TileRange()) -> list[Tiling]:
    """All (tile, depth) pairs with ``ceil(n / 2**d)`` inside the tile range.

    Depth 0 is additionally feasible whenever ``n <= max_tile`` (a matrix at
    or below the truncation point is a single leaf, multiplied by the
    conventional kernel with no padding and no recursion), including tiny
    matrices below ``min_tile``.
    """
    if n < 1:
        raise ValueError(f"matrix dimension must be >= 1, got {n}")
    out: list[Tiling] = []
    if n <= tile_range.max_tile:
        out.append(Tiling(n=n, tile=n, depth=0))
    d = 1
    while True:
        t = _ceil_div(n, 1 << d)
        if t < tile_range.min_tile:
            break
        if t <= tile_range.max_tile:
            out.append(Tiling(n=n, tile=t, depth=d))
        d += 1
    return out


def conflict_levels(tiling: Tiling, cache_bytes: int, elem: int = 8) -> int:
    """Number of recursion levels with systematic quadrant conflicts.

    The Section 4.2 anomaly: with contiguous Morton quadrants, the NW and
    SW quadrant bases at level ``l`` (0 = leaves) are separated by
    ``2 * (T * 2**l)**2 * elem`` bytes.  Whenever that separation is a
    multiple of a direct-mapped cache's size, the two quadrants map to the
    same sets and every paired access conflicts.  Returns how many levels
    of ``tiling`` suffer this (0 = conflict-free).
    """
    if cache_bytes <= 0:
        raise ValueError(f"cache_bytes must be positive, got {cache_bytes}")
    count = 0
    sep = 2 * tiling.tile * tiling.tile * elem
    for _ in range(tiling.depth):
        if sep % cache_bytes == 0:
            count += 1
        sep *= 4
    return count


def _conflict_score(tiling: Tiling, cache_bytes: int, elem: int = 8) -> float:
    """Level-weighted conflict badness (leaf conflicts dominate).

    A congruent level ``l`` contributes ``2**-l``: the leaf level hosts the
    heavily-reused kernel working set, while coarser levels only see the
    streaming additions, whose conflicts cost a single extra miss per
    block.
    """
    score = 0.0
    sep = 2 * tiling.tile * tiling.tile * elem
    for level in range(tiling.depth):
        if sep % cache_bytes == 0:
            score += 2.0**-level
        sep *= 4
    return score


#: How far past the minimal tile the conflict-aware search may overpad.
#: The power-of-two regimes (505..512 -> padded 512) have no conflict-free
#: minimal-padding candidate at all — every power-of-two tile is congruent
#: at some level — so escaping them requires padding past the power of two
#: (e.g. tile 33, padded 528), exactly what sizes >= 513 get for free.
_CONFLICT_OVERPAD = 3


def select_tiling(
    n: int,
    tile_range: TileRange = TileRange(),
    cache_bytes: "int | None" = None,
) -> Tiling:
    """Choose the (tile, depth) minimising padding for one dimension.

    Ties on padding break toward the tile edge closest to the range's
    geometric midpoint, then toward the shallower recursion.  Example from
    the paper (Section 3.4): ``select_tiling(513)`` yields tile 33, depth
    4, padded size 528 (pad 15) instead of the fixed-``T=32`` padded size
    1024.

    ``cache_bytes``, when given, enables *conflict-aware* selection — the
    paper's stated future work ("we are currently examining ways to
    eliminate these conflict misses"): candidates whose quadrant layout is
    congruent modulo the cache size (see :func:`conflict_levels`) are
    avoided even at the price of extra padding, trading a few percent more
    flops for the elimination of the Section 4.2 conflict regime.
    """
    candidates = feasible_depths(n, tile_range)
    if not candidates:
        raise ValueError(
            f"no feasible tiling for n={n} with tile range "
            f"[{tile_range.min_tile}, {tile_range.max_tile}]"
        )
    if cache_bytes:
        candidates = _with_overpadded(candidates, tile_range)
    preferred = _preferred_tile(tile_range)

    def cost(t: Tiling):
        conflicts = _conflict_score(t, cache_bytes) if cache_bytes else 0.0
        return (conflicts, t.pad, abs(t.tile - preferred), t.depth)

    return min(candidates, key=cost)


def _with_overpadded(
    candidates: list[Tiling], tile_range: TileRange
) -> list[Tiling]:
    """Extend each depth's minimal tile with slightly larger alternatives."""
    out = list(candidates)
    for t in candidates:
        if t.depth == 0:
            continue
        for extra in range(1, _CONFLICT_OVERPAD + 1):
            bigger = t.tile + extra
            if bigger > tile_range.max_tile:
                break
            out.append(Tiling(n=t.n, tile=bigger, depth=t.depth))
    return out


def padded_size(n: int, tile_range: TileRange = TileRange()) -> int:
    """Minimal padded size ``n'`` for dimension ``n`` (Figure 2's 'dynamic' line)."""
    return select_tiling(n, tile_range).padded


def select_common_tiling(
    dims: tuple[int, ...],
    tile_range: TileRange = TileRange(),
    cache_bytes: "int | None" = None,
) -> tuple[Tiling, ...] | None:
    """Choose one recursion depth shared by all dimensions of a product.

    A GEMM ``C(m,n) = A(m,k) . B(k,n)`` halves *all three* dimensions at
    every recursion level, so m, k and n must unfold to the same depth, each
    with its own tile edge (Section 3.5).  Returns ``None`` when no common
    depth exists (the highly-rectangular case of Section 3.5, e.g.
    2048 x 256, or unlucky in-between ratios like 100 x 399);
    :mod:`repro.core.rectangular` then splits the operands into
    well-behaved panels first.  Note that the paper's own 1024 x 256
    example *is* jointly feasible (depth 4, tiles 64 and 16) — the paper
    discusses it under independent per-dimension selection at T=32.

    The selected depth minimises the total padding across the dimensions,
    with the same tie-breaks (and the same optional conflict-awareness)
    as :func:`select_tiling`.
    """
    if not dims:
        raise ValueError("dims must be non-empty")
    preferred = _preferred_tile(tile_range)

    def tile_key(t: Tiling):
        conflicts = _conflict_score(t, cache_bytes) if cache_bytes else 0.0
        return (conflicts, t.pad, abs(t.tile - preferred))

    # Per dimension and per depth, keep only the best tile choice (the
    # minimal one, or — conflict-aware — possibly a slightly overpadded
    # alternative that breaks the cache congruence).
    per_dim: list[dict[int, Tiling]] = []
    for n in dims:
        candidates = feasible_depths(n, tile_range)
        if cache_bytes:
            candidates = _with_overpadded(candidates, tile_range)
        by_depth: dict[int, Tiling] = {}
        for t in candidates:
            cur = by_depth.get(t.depth)
            if cur is None or tile_key(t) < tile_key(cur):
                by_depth[t.depth] = t
        per_dim.append(by_depth)

    common = set(per_dim[0])
    for options in per_dim[1:]:
        common &= set(options)
    if not common:
        return None

    def cost(d: int):
        ts = [options[d] for options in per_dim]
        conflicts = (
            sum(_conflict_score(t, cache_bytes) for t in ts) if cache_bytes else 0.0
        )
        return (
            conflicts,
            sum(t.pad for t in ts),
            sum(abs(t.tile - preferred) for t in ts),
            d,
        )

    best = min(common, key=cost)
    return tuple(options[best] for options in per_dim)


def min_padding_curve(
    sizes, tile_range: TileRange = TileRange()
) -> list[tuple[int, int, int]]:
    """``(n, padded_n, tile)`` rows for Figure 2's dynamic-selection lines."""
    rows = []
    for n in sizes:
        t = select_tiling(int(n), tile_range)
        rows.append((int(n), t.padded, t.tile))
    return rows
