"""Interface-level conversion between dense (column-major) and Morton order.

The paper converts the input matrices to Morton order at the top level and
the result back at the end (Section 3.5), measuring the cost at 5-15% of
total execution time (Figure 7).  Transposition — the BLAS ``op(X)``
parameter — is fused into the conversion so a single core routine suffices.

Two implementations coexist, selected per call site:

* The **tile loop** walks the ``4**depth`` leaf tiles in z-order and
  block-copies each as one 2-D slice assignment (zero-filling tiles that
  straddle the logical boundary).  No setup cost; per-tile Python overhead.
* The **index table** path (:class:`ConversionTable`) precomputes the
  Morton-buffer offset of every logical element once, after which a
  conversion is a handful of vectorised gather/scatter copies with no
  Python loop at all.  This is what a cached :class:`repro.engine`
  plan amortises: the O(n^2) int64 table is built at plan-compile time, so
  the warm path pays only the copies.  It wins when the tile count is
  large (depth >= ~4) and the operand is not far beyond cache; the engine
  calibrates both paths per plan and keeps the faster one.

A table can also drive a **parallel** conversion: its flat index arrays
split into contiguous chunks that gather/scatter independently on a
:class:`repro.core.scheduler.WorkerPool` (any object with ``run_all``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.scheduler import stripe_ranges
from .matrix import BatchMortonMatrix, MortonMatrix
from .morton import element_offsets
from .tiles import iter_tiles

__all__ = [
    "dense_to_morton",
    "morton_to_dense",
    "dense_to_morton_batch",
    "morton_to_dense_batch",
    "ConversionTable",
    "conversion_table",
]

#: Fewest elements per chunk worth dispatching to a worker pool.
PARALLEL_CONVERT_MIN = 1 << 20


class ConversionTable:
    """Precomputed Morton offsets of every logical element of one geometry.

    ``offsets[i, j]`` is the flat Morton-buffer position of logical element
    ``(i, j)``; ``flat_c`` / ``flat_f`` are its row-major / column-major
    ravellings, paired with same-order ravellings of the dense side so a
    whole conversion becomes one ``take``/scatter.  Immutable and shareable
    across threads.
    """

    def __init__(self, rows: int, cols: int, tile_r: int, tile_c: int,
                 depth: int) -> None:
        self.rows, self.cols = rows, cols
        self.tile_r, self.tile_c, self.depth = tile_r, tile_c, depth
        ii = np.arange(rows, dtype=np.int64)[:, None]
        jj = np.arange(cols, dtype=np.int64)[None, :]
        offs = element_offsets(ii, jj, tile_r, tile_c, depth)
        offs.setflags(write=False)
        self.offsets = offs
        self.flat_c = offs.reshape(-1)  # row-major pairing (view)
        self.flat_f = np.ascontiguousarray(offs.T).reshape(-1)
        self.flat_f.setflags(write=False)
    @property
    def padded_size(self) -> int:
        """Flat Morton-buffer length of this geometry (pads included)."""
        return (self.tile_r << self.depth) * (self.tile_c << self.depth)

    @property
    def nbytes(self) -> int:
        return self.offsets.nbytes + self.flat_f.nbytes

    def chunks(self, n: int) -> list[slice]:
        """Split the element range into ``n`` roughly equal slices."""
        total = self.rows * self.cols
        n = max(1, min(n, total))
        step = -(-total // n)
        return [slice(i, min(i + step, total)) for i in range(0, total, step)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConversionTable({self.rows}x{self.cols}, tile "
            f"{self.tile_r}x{self.tile_c}, depth {self.depth}, "
            f"{self.nbytes >> 10} KiB)"
        )


@lru_cache(maxsize=8)
def conversion_table(rows: int, cols: int, tile_r: int, tile_c: int,
                     depth: int) -> ConversionTable:
    """Small shared cache of tables; engine plans hold their own references."""
    return ConversionTable(rows, cols, tile_r, tile_c, depth)


def _indexed_to_morton(src: np.ndarray, out: MortonMatrix,
                       table: ConversionTable, pool, workers: int) -> None:
    """Scatter ``src`` (logical orientation) into ``out`` via the table."""
    buf = out.buf
    if src.flags.f_contiguous:
        flat_idx, flat_src = table.flat_f, src.T.reshape(-1)
    elif src.flags.c_contiguous:
        flat_idx, flat_src = table.flat_c, src.reshape(-1)
    else:
        buf[table.offsets] = src  # exotic strides: 2-D fancy scatter
        return
    if pool is not None and flat_src.size >= workers * PARALLEL_CONVERT_MIN:
        def scatter(sl):
            return lambda: buf.__setitem__(flat_idx[sl], flat_src[sl])
        pool.run_all([scatter(sl) for sl in table.chunks(workers)],
                     name="dense_to_morton")
    else:
        buf[flat_idx] = flat_src


def dense_to_morton(
    a: np.ndarray, out: MortonMatrix, transpose: bool = False,
    zero_pad: bool = True, table: ConversionTable | None = None,
    pool=None, workers: int = 1,
) -> MortonMatrix:
    """Copy dense ``a`` (or its transpose) into Morton matrix ``out``.

    ``out.shape`` must equal the logical shape of ``op(a)``.  Returns
    ``out`` for chaining.  ``zero_pad=False`` skips re-zeroing the pad
    region — valid only when the caller guarantees it is already zero and
    has stayed zero since (the engine's pooled operand buffers maintain
    exactly this invariant, so repeated conversions touch only the logical
    elements).

    ``table`` switches to the precomputed-index path (it must describe
    ``out``'s geometry); with a ``pool`` (and ``workers`` > 1) large
    conversions additionally split across pool workers.
    """
    a = np.asarray(a, dtype=out.buf.dtype)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D input, got ndim={a.ndim}")
    src = a.T if transpose else a
    if src.shape != out.shape:
        raise ValueError(f"op(a) shape {src.shape} != destination {out.shape}")

    if table is not None:
        if (table.rows, table.cols) != out.shape or (
            table.tile_r, table.tile_c, table.depth
        ) != (out.tile_r, out.tile_c, out.depth):
            raise ValueError(f"{table!r} does not describe destination {out!r}")
        if zero_pad and out.size != out.rows * out.cols:
            out.buf[:] = 0.0  # indexed writes touch only logical elements
        _indexed_to_morton(src, out, table, pool, workers)
        return out

    rows, cols = out.rows, out.cols
    tr, tc = out.tile_r, out.tile_c
    buf = out.buf
    tile_elems = tr * tc
    for t in iter_tiles(out.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        dest = buf[t.offset : t.offset + tile_elems]
        r1 = min(r0 + tr, rows)
        c1 = min(c0 + tc, cols)
        if r1 <= r0 or c1 <= c0:
            # Tile entirely inside the pad.
            if zero_pad:
                dest[:] = 0.0
            continue
        tile2d = dest.reshape(tc, tr).T  # Fortran-order view of the tile
        if r1 - r0 == tr and c1 - c0 == tc:
            tile2d[:, :] = src[r0:r1, c0:c1]
        else:
            if zero_pad:
                dest[:] = 0.0
            tile2d[: r1 - r0, : c1 - c0] = src[r0:r1, c0:c1]
    return out


def morton_to_dense(
    m: MortonMatrix, out: np.ndarray | None = None,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
    beta: float = 0.0,
) -> np.ndarray:
    """Copy Morton matrix ``m`` back to a dense array of its logical shape.

    A fresh destination is allocated in Fortran order (the layout the BLAS
    interface traffics in); pass ``out`` to write into an existing array.
    ``table``/``pool``/``workers`` behave as in :func:`dense_to_morton`.

    ``beta`` fuses the GEMM accumulate into the conversion: the result is
    ``out = m + beta * out`` — elementwise identical to the legacy
    ``out *= beta; out += dense(m)`` two-pass (each element is scaled then
    added independently), but the destination is traversed once instead of
    three times.  Requires ``out``; the pooled split is skipped so the
    scale/add pair stays a single-threaded, deterministic sweep.
    """
    if out is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires an existing out array")
        out = np.empty((m.rows, m.cols), dtype=m.buf.dtype, order="F")
    elif out.shape != m.shape:
        raise ValueError(f"out shape {out.shape} != logical shape {m.shape}")

    if table is not None:
        if (table.rows, table.cols) != m.shape or (
            table.tile_r, table.tile_c, table.depth
        ) != (m.tile_r, m.tile_c, m.depth):
            raise ValueError(f"{table!r} does not describe source {m!r}")
        buf = m.buf
        if out.flags.f_contiguous:
            flat_idx, flat_out = table.flat_f, out.T.reshape(-1)
        elif out.flags.c_contiguous:
            flat_idx, flat_out = table.flat_c, out.reshape(-1)
        else:
            if beta != 0.0:
                out *= beta
                out += buf[table.offsets]
            else:
                out[...] = buf[table.offsets]
            return out
        if beta != 0.0:
            flat_out *= beta
            flat_out += buf[flat_idx]
        elif pool is not None and (
            flat_out.size >= workers * PARALLEL_CONVERT_MIN
        ):
            def gather(sl):
                return lambda: np.take(buf, flat_idx[sl], out=flat_out[sl])
            pool.run_all([gather(sl) for sl in table.chunks(workers)],
                         name="morton_to_dense")
        else:
            np.take(buf, flat_idx, out=flat_out)
        return out

    tr, tc = m.tile_r, m.tile_c
    tile_elems = tr * tc
    for t in iter_tiles(m.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        if r0 >= m.rows or c0 >= m.cols:
            continue
        r1 = min(r0 + tr, m.rows)
        c1 = min(c0 + tc, m.cols)
        tile2d = m.buf[t.offset : t.offset + tile_elems].reshape(tc, tr).T
        if beta != 0.0:
            out[r0:r1, c0:c1] *= beta
            out[r0:r1, c0:c1] += tile2d[: r1 - r0, : c1 - c0]
        else:
            out[r0:r1, c0:c1] = tile2d[: r1 - r0, : c1 - c0]
    return out


def dense_to_morton_batch(
    arrs, out: BatchMortonMatrix, transpose: bool = False,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
) -> BatchMortonMatrix:
    """Convert ``len(arrs)`` same-geometry dense arrays into a Morton stack.

    One :class:`ConversionTable` (built once per plan) is broadcast over
    the batch axis: every item is one lean vectorised scatter through the
    shared index vector — no per-item table build, calibration, tile
    loop, or validation re-run.  ``out``'s rows must already have zeroed
    pads (the pooled batch buffers maintain this invariant: the batched
    recursion never writes operand stacks); indexed writes touch only
    logical elements.  With a ``pool``, the *batch axis* stripes across
    workers — each worker scatters a contiguous run of rows.  Without a
    table, falls back to the per-item tile loop.
    """
    n = len(arrs)
    if n > out.batch:
        raise ValueError(f"{n} items exceed batch capacity {out.batch}")

    if table is not None:
        dtype = out.buf.dtype
        shape = (out.rows, out.cols)

        def scatter_rows(lo: int, hi: int) -> None:
            for i in range(lo, hi):
                src = np.asarray(arrs[i], dtype=dtype)
                if transpose:
                    src = src.T
                if src.shape != shape:
                    raise ValueError(
                        f"op(a) shape {src.shape} != destination {shape}"
                    )
                row = out.buf[i]
                if src.flags.f_contiguous:
                    row[table.flat_f] = src.T.reshape(-1)
                elif src.flags.c_contiguous:
                    row[table.flat_c] = src.reshape(-1)
                else:
                    row[table.offsets] = src

        if pool is not None and workers > 1 and n > 1 and (
            n * out.rows * out.cols >= PARALLEL_CONVERT_MIN
        ):
            def job(lo, hi):
                return lambda: scatter_rows(lo, hi)
            pool.run_all(
                [job(lo, hi) for lo, hi in stripe_ranges(n, workers)],
                name="dense_to_morton_batch",
            )
        else:
            scatter_rows(0, n)
        return out

    def convert_range(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            dense_to_morton(arrs[i], out.item(i), transpose=transpose)

    if pool is not None and workers > 1 and n > 1 and (
        n * out.rows * out.cols >= PARALLEL_CONVERT_MIN
    ):
        def job(lo, hi):
            return lambda: convert_range(lo, hi)
        pool.run_all(
            [job(lo, hi) for lo, hi in stripe_ranges(n, workers)],
            name="dense_to_morton_batch",
        )
    else:
        convert_range(0, n)
    return out


def morton_to_dense_batch(
    m: BatchMortonMatrix, n_items: int,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
) -> list:
    """Convert the first ``n_items`` rows of a Morton stack back to dense.

    Returns Fortran-order arrays (the BLAS interface layout), one per
    item.  With a table, the whole batch is gathered in **one** 2-D
    advanced-indexing call — ``buf[:n, idx]`` — which runs a single C
    loop over the stack (~6x faster than per-item ``take`` calls); the
    returned arrays are F-contiguous per-item views of that one freshly
    allocated block, owned by the caller (nothing aliases the stack).
    Striping splits the gather over batch-row ranges; the tile-loop
    fallback mirrors :func:`dense_to_morton_batch`.
    """
    if table is not None:
        idx = table.flat_f
        sub = m.buf[:n_items]
        if pool is not None and workers > 1 and n_items > 1 and (
            n_items * m.rows * m.cols >= PARALLEL_CONVERT_MIN
        ):
            blk = np.empty((n_items, m.rows * m.cols), dtype=m.buf.dtype)

            def job(lo, hi):
                return lambda: blk.__setitem__(
                    slice(lo, hi), sub[lo:hi][:, idx]
                )
            pool.run_all(
                [job(lo, hi) for lo, hi in stripe_ranges(n_items, workers)],
                name="morton_to_dense_batch",
            )
        else:
            blk = sub[:, idx]
        return [
            blk[i].reshape(m.cols, m.rows).T for i in range(n_items)
        ]

    outs = [
        np.empty((m.rows, m.cols), dtype=m.buf.dtype, order="F")
        for _ in range(n_items)
    ]

    def convert_range(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            morton_to_dense(m.item(i), out=outs[i])

    if pool is not None and workers > 1 and n_items > 1 and (
        n_items * m.rows * m.cols >= PARALLEL_CONVERT_MIN
    ):
        def job(lo, hi):
            return lambda: convert_range(lo, hi)
        pool.run_all(
            [job(lo, hi) for lo, hi in stripe_ranges(n_items, workers)],
            name="morton_to_dense_batch",
        )
    else:
        convert_range(0, n_items)
    return outs
