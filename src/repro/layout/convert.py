"""Interface-level conversion between dense (column-major) and Morton order.

The paper converts the input matrices to Morton order at the top level and
the result back at the end (Section 3.5), measuring the cost at 5-15% of
total execution time (Figure 7).  Transposition — the BLAS ``op(X)``
parameter — is fused into the conversion so a single core routine suffices.

Two implementations coexist, selected per call site:

* The **tile loop** walks the ``4**depth`` leaf tiles in z-order and
  block-copies each as one 2-D slice assignment (zero-filling tiles that
  straddle the logical boundary).  No setup cost; per-tile Python overhead.
* The **index table** path (:class:`ConversionTable`) precomputes the
  Morton-buffer offset of every logical element once, after which a
  conversion is a handful of vectorised gather/scatter copies with no
  Python loop at all.  This is what a cached :class:`repro.engine`
  plan amortises: the O(n^2) int64 table is built at plan-compile time, so
  the warm path pays only the copies.  It wins when the tile count is
  large (depth >= ~4) and the operand is not far beyond cache; the engine
  calibrates both paths per plan and keeps the faster one.

A table can also drive a **parallel** conversion: its flat index arrays
split into contiguous chunks that gather/scatter independently on a
:class:`repro.core.scheduler.WorkerPool` (any object with ``run_all``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.scheduler import stripe_ranges
from .matrix import BatchMortonMatrix, MortonMatrix
from .morton import element_offsets
from .tiles import iter_tiles

__all__ = [
    "dense_to_morton",
    "morton_to_dense",
    "dense_to_morton_batch",
    "morton_to_dense_batch",
    "dense_to_morton_quadrants",
    "pack_morton_quarter",
    "pack_morton_quarter_batch",
    "ConversionTable",
    "conversion_table",
    "calibration_key",
]

#: Fewest elements per chunk worth dispatching to a worker pool.
PARALLEL_CONVERT_MIN = 1 << 20


class ConversionTable:
    """Precomputed Morton offsets of every logical element of one geometry.

    ``offsets[i, j]`` is the flat Morton-buffer position of logical element
    ``(i, j)``; ``flat_c`` / ``flat_f`` are its row-major / column-major
    ravellings, paired with same-order ravellings of the dense side so a
    whole conversion becomes one ``take``/scatter.  Immutable and shareable
    across threads.
    """

    def __init__(self, rows: int, cols: int, tile_r: int, tile_c: int,
                 depth: int) -> None:
        self.rows, self.cols = rows, cols
        self.tile_r, self.tile_c, self.depth = tile_r, tile_c, depth
        ii = np.arange(rows, dtype=np.int64)[:, None]
        jj = np.arange(cols, dtype=np.int64)[None, :]
        offs = element_offsets(ii, jj, tile_r, tile_c, depth)
        offs.setflags(write=False)
        self.offsets = offs
        self.flat_c = offs.reshape(-1)  # row-major pairing (view)
        self.flat_f = np.ascontiguousarray(offs.T).reshape(-1)
        self.flat_f.setflags(write=False)
        self._quad: np.ndarray | None = None
        self._qpairs: dict = {}

    @property
    def padded_size(self) -> int:
        """Flat Morton-buffer length of this geometry (pads included)."""
        return (self.tile_r << self.depth) * (self.tile_c << self.depth)

    @property
    def quad_offsets(self) -> np.ndarray:
        """Morton offsets of one quadrant's *relative* element grid.

        A quadrant of a depth-``d`` Morton matrix is a contiguous quarter
        of the buffer holding the same recursive layout one level down, so
        the within-quadrant offset of relative element ``(i, j)`` is the
        depth ``d - 1`` Morton offset — identical for all four quadrants.
        One ``(padded_rows/2, padded_cols/2)`` table therefore serves
        every quadrant destination of the fused packing path.  Built
        lazily (only fused plans pay for it) and cached; requires
        ``depth >= 1``.
        """
        if self.depth < 1:
            raise ValueError("quad_offsets needs depth >= 1")
        quad = self._quad
        if quad is None:
            h2 = (self.tile_r << self.depth) >> 1
            w2 = (self.tile_c << self.depth) >> 1
            ii = np.arange(h2, dtype=np.int64)[:, None]
            jj = np.arange(w2, dtype=np.int64)[None, :]
            quad = element_offsets(ii, jj, self.tile_r, self.tile_c,
                                   self.depth - 1)
            quad.setflags(write=False)
            self._quad = quad
        return quad

    def quarter_pairs(self, quad, order: str):
        """Paired flat (Morton, source) indices of one quadrant's elements.

        ``buf[morton_idx] = flat_src[src_idx]`` scatters the logical
        elements of quadrant ``quad`` from a flattened dense source —
        ``src.reshape(-1)`` for ``order="C"``, ``src.T.reshape(-1)`` for
        ``order="F"`` — into their Morton positions.  Lets the fused
        packing path convert the one quadrant left over after its
        contiguous-half scatter with two 1-D fancy operations instead of
        a strided 2-D one.  Built lazily per ``(quad, order)`` and
        cached; empty arrays for a fully-padded quadrant.
        """
        key = (tuple(quad), order)
        pairs = self._qpairs.get(key)
        if pairs is None:
            qr, qc = quad
            h2 = (self.tile_r << self.depth) >> 1
            w2 = (self.tile_c << self.depth) >> 1
            r0, c0 = qr * h2, qc * w2
            h = min(max(self.rows - r0, 0), h2)
            w = min(max(self.cols - c0, 0), w2)
            offs = self.offsets[r0 : r0 + h, c0 : c0 + w]
            ii = np.arange(r0, r0 + h, dtype=np.int64)[:, None]
            jj = np.arange(c0, c0 + w, dtype=np.int64)[None, :]
            src_pos = ii * self.cols + jj if order == "C" \
                else jj * self.rows + ii
            if order == "F":
                offs, src_pos = offs.T, src_pos.T
            idx_m = np.ascontiguousarray(offs).reshape(-1)
            idx_s = np.ascontiguousarray(src_pos).reshape(-1)
            idx_m.setflags(write=False)
            idx_s.setflags(write=False)
            pairs = (idx_m, idx_s)
            self._qpairs[key] = pairs
        return pairs

    @property
    def nbytes(self) -> int:
        quad = self._quad
        return (
            self.offsets.nbytes
            + self.flat_f.nbytes
            + (0 if quad is None else quad.nbytes)
            + sum(m.nbytes + s.nbytes for m, s in self._qpairs.values())
        )

    def chunks(self, n: int) -> list[slice]:
        """Split the element range into ``n`` roughly equal slices."""
        total = self.rows * self.cols
        n = max(1, min(n, total))
        step = -(-total // n)
        return [slice(i, min(i + step, total)) for i in range(0, total, step)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConversionTable({self.rows}x{self.cols}, tile "
            f"{self.tile_r}x{self.tile_c}, depth {self.depth}, "
            f"{self.nbytes >> 10} KiB)"
        )


@lru_cache(maxsize=8)
def conversion_table(rows: int, cols: int, tile_r: int, tile_c: int,
                     depth: int) -> ConversionTable:
    """Small shared cache of tables; engine plans hold their own references."""
    return ConversionTable(rows, cols, tile_r, tile_c, depth)


def calibration_key(rows: int, cols: int, tile_r: int, tile_c: int,
                    depth: int, dtype: str = "float64") -> str:
    """Stable identity of one conversion site's loop-vs-indexed question.

    The engine calibrates each plan site (loop path vs index-table path)
    by timing; the answer depends only on the conversion geometry and the
    element width, so this key lets the outcome persist across plans,
    evictions, sessions and processes (the plan store's ``calibrations``
    section).
    """
    return (
        f"{int(rows)}x{int(cols)}:t{int(tile_r)}x{int(tile_c)}:"
        f"d{int(depth)}:{dtype}"
    )


def _indexed_to_morton(src: np.ndarray, out: MortonMatrix,
                       table: ConversionTable, pool, workers: int) -> None:
    """Scatter ``src`` (logical orientation) into ``out`` via the table."""
    buf = out.buf
    if src.flags.f_contiguous:
        flat_idx, flat_src = table.flat_f, src.T.reshape(-1)
    elif src.flags.c_contiguous:
        flat_idx, flat_src = table.flat_c, src.reshape(-1)
    else:
        buf[table.offsets] = src  # exotic strides: 2-D fancy scatter
        return
    if pool is not None and flat_src.size >= workers * PARALLEL_CONVERT_MIN:
        def scatter(sl):
            return lambda: buf.__setitem__(flat_idx[sl], flat_src[sl])
        pool.run_all([scatter(sl) for sl in table.chunks(workers)],
                     name="dense_to_morton")
    else:
        buf[flat_idx] = flat_src


def dense_to_morton(
    a: np.ndarray, out: MortonMatrix, transpose: bool = False,
    zero_pad: bool = True, table: ConversionTable | None = None,
    pool=None, workers: int = 1,
) -> MortonMatrix:
    """Copy dense ``a`` (or its transpose) into Morton matrix ``out``.

    ``out.shape`` must equal the logical shape of ``op(a)``.  Returns
    ``out`` for chaining.  ``zero_pad=False`` skips re-zeroing the pad
    region — valid only when the caller guarantees it is already zero and
    has stayed zero since (the engine's pooled operand buffers maintain
    exactly this invariant, so repeated conversions touch only the logical
    elements).

    ``table`` switches to the precomputed-index path (it must describe
    ``out``'s geometry); with a ``pool`` (and ``workers`` > 1) large
    conversions additionally split across pool workers.
    """
    a = np.asarray(a, dtype=out.buf.dtype)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D input, got ndim={a.ndim}")
    src = a.T if transpose else a
    if src.shape != out.shape:
        raise ValueError(f"op(a) shape {src.shape} != destination {out.shape}")

    if table is not None:
        if (table.rows, table.cols) != out.shape or (
            table.tile_r, table.tile_c, table.depth
        ) != (out.tile_r, out.tile_c, out.depth):
            raise ValueError(f"{table!r} does not describe destination {out!r}")
        if zero_pad and out.size != out.rows * out.cols:
            out.buf[:] = 0.0  # indexed writes touch only logical elements
        _indexed_to_morton(src, out, table, pool, workers)
        return out

    rows, cols = out.rows, out.cols
    tr, tc = out.tile_r, out.tile_c
    buf = out.buf
    tile_elems = tr * tc
    for t in iter_tiles(out.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        dest = buf[t.offset : t.offset + tile_elems]
        r1 = min(r0 + tr, rows)
        c1 = min(c0 + tc, cols)
        if r1 <= r0 or c1 <= c0:
            # Tile entirely inside the pad.
            if zero_pad:
                dest[:] = 0.0
            continue
        tile2d = dest.reshape(tc, tr).T  # Fortran-order view of the tile
        if r1 - r0 == tr and c1 - c0 == tc:
            tile2d[:, :] = src[r0:r1, c0:c1]
        else:
            if zero_pad:
                dest[:] = 0.0
            tile2d[: r1 - r0, : c1 - c0] = src[r0:r1, c0:c1]
    return out


def morton_to_dense(
    m: MortonMatrix, out: np.ndarray | None = None,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
    beta: float = 0.0,
) -> np.ndarray:
    """Copy Morton matrix ``m`` back to a dense array of its logical shape.

    A fresh destination is allocated in Fortran order (the layout the BLAS
    interface traffics in); pass ``out`` to write into an existing array.
    ``table``/``pool``/``workers`` behave as in :func:`dense_to_morton`.

    ``beta`` fuses the GEMM accumulate into the conversion: the result is
    ``out = m + beta * out`` — elementwise identical to the legacy
    ``out *= beta; out += dense(m)`` two-pass (each element is scaled then
    added independently), but the destination is traversed once instead of
    three times.  Requires ``out``; the pooled split is skipped so the
    scale/add pair stays a single-threaded, deterministic sweep.
    """
    if out is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires an existing out array")
        out = np.empty((m.rows, m.cols), dtype=m.buf.dtype, order="F")
    elif out.shape != m.shape:
        raise ValueError(f"out shape {out.shape} != logical shape {m.shape}")

    if table is not None:
        if (table.rows, table.cols) != m.shape or (
            table.tile_r, table.tile_c, table.depth
        ) != (m.tile_r, m.tile_c, m.depth):
            raise ValueError(f"{table!r} does not describe source {m!r}")
        buf = m.buf
        if out.flags.f_contiguous:
            flat_idx, flat_out = table.flat_f, out.T.reshape(-1)
        elif out.flags.c_contiguous:
            flat_idx, flat_out = table.flat_c, out.reshape(-1)
        else:
            if beta != 0.0:
                out *= beta
                out += buf[table.offsets]
            else:
                out[...] = buf[table.offsets]
            return out
        if beta != 0.0:
            flat_out *= beta
            flat_out += buf[flat_idx]
        elif pool is not None and (
            flat_out.size >= workers * PARALLEL_CONVERT_MIN
        ):
            def gather(sl):
                return lambda: np.take(buf, flat_idx[sl], out=flat_out[sl])
            pool.run_all([gather(sl) for sl in table.chunks(workers)],
                         name="morton_to_dense")
        else:
            np.take(buf, flat_idx, out=flat_out)
        return out

    tr, tc = m.tile_r, m.tile_c
    tile_elems = tr * tc
    for t in iter_tiles(m.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        if r0 >= m.rows or c0 >= m.cols:
            continue
        r1 = min(r0 + tr, m.rows)
        c1 = min(c0 + tc, m.cols)
        tile2d = m.buf[t.offset : t.offset + tile_elems].reshape(tc, tr).T
        if beta != 0.0:
            out[r0:r1, c0:c1] *= beta
            out[r0:r1, c0:c1] += tile2d[: r1 - r0, : c1 - c0]
        else:
            out[r0:r1, c0:c1] = tile2d[: r1 - r0, : c1 - c0]
    return out


def dense_to_morton_batch(
    arrs, out: BatchMortonMatrix, transpose: bool = False,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
) -> BatchMortonMatrix:
    """Convert ``len(arrs)`` same-geometry dense arrays into a Morton stack.

    One :class:`ConversionTable` (built once per plan) is broadcast over
    the batch axis: every item is one lean vectorised scatter through the
    shared index vector — no per-item table build, calibration, tile
    loop, or validation re-run.  ``out``'s rows must already have zeroed
    pads (the pooled batch buffers maintain this invariant: the batched
    recursion never writes operand stacks); indexed writes touch only
    logical elements.  With a ``pool``, the *batch axis* stripes across
    workers — each worker scatters a contiguous run of rows.  Without a
    table, falls back to the per-item tile loop.
    """
    n = len(arrs)
    if n > out.batch:
        raise ValueError(f"{n} items exceed batch capacity {out.batch}")

    if table is not None:
        dtype = out.buf.dtype
        shape = (out.rows, out.cols)

        def scatter_rows(lo: int, hi: int) -> None:
            for i in range(lo, hi):
                src = np.asarray(arrs[i], dtype=dtype)
                if transpose:
                    src = src.T
                if src.shape != shape:
                    raise ValueError(
                        f"op(a) shape {src.shape} != destination {shape}"
                    )
                row = out.buf[i]
                if src.flags.f_contiguous:
                    row[table.flat_f] = src.T.reshape(-1)
                elif src.flags.c_contiguous:
                    row[table.flat_c] = src.reshape(-1)
                else:
                    row[table.offsets] = src

        if pool is not None and workers > 1 and n > 1 and (
            n * out.rows * out.cols >= PARALLEL_CONVERT_MIN
        ):
            def job(lo, hi):
                return lambda: scatter_rows(lo, hi)
            pool.run_all(
                [job(lo, hi) for lo, hi in stripe_ranges(n, workers)],
                name="dense_to_morton_batch",
            )
        else:
            scatter_rows(0, n)
        return out

    def convert_range(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            dense_to_morton(arrs[i], out.item(i), transpose=transpose)

    if pool is not None and workers > 1 and n > 1 and (
        n * out.rows * out.cols >= PARALLEL_CONVERT_MIN
    ):
        def job(lo, hi):
            return lambda: convert_range(lo, hi)
        pool.run_all(
            [job(lo, hi) for lo, hi in stripe_ranges(n, workers)],
            name="dense_to_morton_batch",
        )
    else:
        convert_range(0, n)
    return out


def morton_to_dense_batch(
    m: BatchMortonMatrix, n_items: int,
    table: ConversionTable | None = None, pool=None, workers: int = 1,
) -> list:
    """Convert the first ``n_items`` rows of a Morton stack back to dense.

    Returns Fortran-order arrays (the BLAS interface layout), one per
    item.  With a table, the whole batch is gathered in **one** 2-D
    advanced-indexing call — ``buf[:n, idx]`` — which runs a single C
    loop over the stack (~6x faster than per-item ``take`` calls); the
    returned arrays are F-contiguous per-item views of that one freshly
    allocated block, owned by the caller (nothing aliases the stack).
    Striping splits the gather over batch-row ranges; the tile-loop
    fallback mirrors :func:`dense_to_morton_batch`.
    """
    if table is not None:
        idx = table.flat_f
        sub = m.buf[:n_items]
        if pool is not None and workers > 1 and n_items > 1 and (
            n_items * m.rows * m.cols >= PARALLEL_CONVERT_MIN
        ):
            blk = np.empty((n_items, m.rows * m.cols), dtype=m.buf.dtype)

            def job(lo, hi):
                return lambda: blk.__setitem__(
                    slice(lo, hi), sub[lo:hi][:, idx]
                )
            pool.run_all(
                [job(lo, hi) for lo, hi in stripe_ranges(n_items, workers)],
                name="morton_to_dense_batch",
            )
        else:
            blk = sub[:, idx]
        return [
            blk[i].reshape(m.cols, m.rows).T for i in range(n_items)
        ]

    outs = [
        np.empty((m.rows, m.cols), dtype=m.buf.dtype, order="F")
        for _ in range(n_items)
    ]

    def convert_range(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            morton_to_dense(m.item(i), out=outs[i])

    if pool is not None and workers > 1 and n_items > 1 and (
        n_items * m.rows * m.cols >= PARALLEL_CONVERT_MIN
    ):
        def job(lo, hi):
            return lambda: convert_range(lo, hi)
        pool.run_all(
            [job(lo, hi) for lo, hi in stripe_ranges(n_items, workers)],
            name="morton_to_dense_batch",
        )
    else:
        convert_range(0, n_items)
    return outs


# ------------------------------------------------------- fused packing

_ALL_QUADS = {(0, 0), (0, 1), (1, 0), (1, 1)}


def _quad_extent(table: ConversionTable, qr: int, qc: int):
    """Padded half-dims and the quadrant's logical extent (may be 0)."""
    h2 = (table.tile_r << table.depth) >> 1
    w2 = (table.tile_c << table.depth) >> 1
    h = min(max(table.rows - qr * h2, 0), h2)
    w = min(max(table.cols - qc * w2, 0), w2)
    return h2, w2, h, w


def _check_fused_geometry(a: np.ndarray, out_shape, table: ConversionTable,
                          geo, transpose: bool) -> np.ndarray:
    if a.ndim != 2:
        raise ValueError(f"expected 2-D input, got ndim={a.ndim}")
    src = a.T if transpose else a
    if src.shape != out_shape:
        raise ValueError(f"op(a) shape {src.shape} != destination {out_shape}")
    if (table.rows, table.cols) != out_shape or (
        table.tile_r, table.tile_c, table.depth
    ) != geo:
        raise ValueError(f"{table!r} does not describe the destination")
    if table.depth < 1:
        raise ValueError("fused packing needs depth >= 1")
    return src


def dense_to_morton_quadrants(
    a: np.ndarray, out: MortonMatrix, quads, transpose: bool = False,
    zero_pad: bool = True, table: ConversionTable | None = None,
) -> MortonMatrix:
    """Convert only the listed quadrants of ``op(a)`` into ``out``.

    The fused packing path's partner to :func:`dense_to_morton`: the
    quadrants an execution actually consumes as plain Morton operands are
    scattered here, while the remaining quadrant's buffer slot receives a
    packed operand sum (:func:`pack_morton_quarter`) instead of a copy —
    the reason the fused path converts one quarter less per operand.
    ``quads`` is an iterable of ``(qr, qc)`` quadrant coordinates; each
    converted quadrant's buffer slot is written exactly as
    :func:`dense_to_morton` would have written it (same elements, same
    zero pads — a pure copy either way, so results are bit-identical).
    Requires a ``table`` describing ``out``.
    """
    a = np.asarray(a, dtype=out.buf.dtype)
    if table is None:
        raise ValueError("dense_to_morton_quadrants requires a table")
    geo = (out.tile_r, out.tile_c, out.depth)
    src = _check_fused_geometry(a, out.shape, table, geo, transpose)
    rows, cols = out.rows, out.cols
    quarter = out.size // 4
    buf = out.buf
    quads = tuple(quads)
    if zero_pad:
        for qr, qc in quads:
            h2, w2, h, w = _quad_extent(table, qr, qc)
            if h < h2 or w < w2:
                z = (qr << 1) | qc
                buf[z * quarter : (z + 1) * quarter] = 0.0

    skip = _ALL_QUADS - set(quads)
    if len(quads) == 3 and len(skip) == 1 and (
        src.flags.c_contiguous or src.flags.f_contiguous
    ):
        # Fast path for the fused-packing shape (all quadrants but one):
        # the included region is one contiguous half of the source — the
        # row half (C order) or column half (F order) not containing the
        # skipped quadrant — plus one quadrant.  The half scatters
        # through a contiguous slice of the full flat pairing at the
        # same per-element cost as a whole-matrix indexed conversion;
        # the leftover quadrant uses its cached index pairs.
        (sr, sc), = skip
        if src.flags.c_contiguous:
            flat_idx, flat_src = table.flat_c, src.reshape(-1)
            hh = min((table.tile_r << table.depth) >> 1, rows)
            sl = (slice(0, hh * cols) if sr == 1
                  else slice(hh * cols, rows * cols))
            rem = (sr, 1 - sc)
        else:
            flat_idx, flat_src = table.flat_f, src.T.reshape(-1)
            ww = min((table.tile_c << table.depth) >> 1, cols)
            sl = (slice(0, ww * rows) if sc == 1
                  else slice(ww * rows, rows * cols))
            rem = (1 - sr, sc)
        buf[flat_idx[sl]] = flat_src[sl]
        order = "C" if src.flags.c_contiguous else "F"
        idx_m, idx_s = table.quarter_pairs(rem, order)
        if idx_m.size:
            buf[idx_m] = flat_src[idx_s]
        return out

    for qr, qc in quads:
        h2, w2, h, w = _quad_extent(table, qr, qc)
        if h and w:
            r0, c0 = qr * h2, qc * w2
            buf[table.offsets[r0 : r0 + h, c0 : c0 + w]] = (
                src[r0 : r0 + h, c0 : c0 + w]
            )
    return out


def pack_morton_quarter(
    dst: np.ndarray, a: np.ndarray, op: str, quad0, quad1,
    table: ConversionTable, transpose: bool = False,
) -> None:
    """Fused convert-and-add: scatter ``Q0 <op> Q1`` into a quarter buffer.

    ``Q0``/``Q1`` are quadrants (``(qr, qc)`` coordinates) of the *dense*
    operand ``op(a)``; ``dst`` is a flat Morton quarter buffer (an operand
    quadrant slot or one level of recursion scratch).  One read of each
    source quadrant produces the Winograd operand sum directly in Morton
    order — the separate full-size add pass over already-converted
    quadrants disappears.

    Bit-identity with the two-pass path is maintained region by region:
    where both quadrants have logical elements the scatter stores
    ``np.add``/``np.subtract`` of the same two values the two-pass ufunc
    saw; where exactly one side is pad the literal ``x + 0.0`` /
    ``0.0 - x`` is computed (matching IEEE-754 signed-zero behaviour of
    adding a zeroed pad); where both are pad the destination holds the
    ``+0.0`` that ``0 +/- 0`` produces.
    """
    a = np.asarray(a, dtype=dst.dtype)
    geo = (table.tile_r, table.tile_c, table.depth)
    src = _check_fused_geometry(a, (table.rows, table.cols), table, geo,
                                transpose)
    ufunc = np.add if op == "+" else np.subtract
    quad = table.quad_offsets
    (qr0, qc0), (qr1, qc1) = quad0, quad1
    h2, w2, h0, w0 = _quad_extent(table, qr0, qc0)
    _, _, h1, w1 = _quad_extent(table, qr1, qc1)
    s0 = src[qr0 * h2 : qr0 * h2 + h0, qc0 * w2 : qc0 * w2 + w0]
    s1 = src[qr1 * h2 : qr1 * h2 + h1, qc1 * w2 : qc1 * w2 + w1]
    hc, wc = min(h0, h1), min(w0, w1)
    dst[:] = 0.0
    if hc and wc:
        dst[quad[:hc, :wc]] = ufunc(s0[:hc, :wc], s1[:hc, :wc])

    # The two quadrants' logical regions share the (hc, wc) core; each
    # remainder (disjoint from the other's) pairs with the other side's
    # zeroed pad.
    def remainder(s, h, w, left):
        if h and w > wc:
            part = s[:, wc:w]
            dst[quad[:h, wc:w]] = (
                ufunc(part, 0.0) if left else ufunc(0.0, part)
            )
        if wc and h > hc:
            part = s[hc:h, :wc]
            dst[quad[hc:h, :wc]] = (
                ufunc(part, 0.0) if left else ufunc(0.0, part)
            )

    remainder(s0, h0, w0, True)
    remainder(s1, h1, w1, False)


def pack_morton_quarter_batch(
    dst: np.ndarray, arrs, op: str, quad0, quad1,
    table: ConversionTable, transpose: bool = False,
) -> None:
    """Per-item :func:`pack_morton_quarter` over rows of a quarter stack.

    ``dst`` is a 2-D ``(cap, quarter)`` stack — an operand-stack quadrant
    column slice or one level of batch workspace scratch; row ``i``
    receives item ``i``'s packed quarter through the shared table.
    """
    for i, a in enumerate(arrs):
        pack_morton_quarter(dst[i], a, op, quad0, quad1, table,
                            transpose=transpose)
