"""Interface-level conversion between dense (column-major) and Morton order.

The paper converts the input matrices to Morton order at the top level and
the result back at the end (Section 3.5), measuring the cost at 5-15% of
total execution time (Figure 7).  Transposition — the BLAS ``op(X)``
parameter — is fused into the conversion so a single core routine suffices.

The conversion walks the ``4**depth`` leaf tiles in z-order and block-copies
each as one 2-D slice assignment; a tile that straddles the logical boundary
is zero-filled first so the pad participates harmlessly in later redundant
arithmetic.  With at most ~1-4k tiles for the paper's sizes this is a short
Python loop over large vectorised copies, which is the appropriate numpy
idiom (the per-element index-permutation alternative allocates O(n^2) int64
scratch and is several times slower).
"""

from __future__ import annotations

import numpy as np

from .matrix import MortonMatrix
from .tiles import iter_tiles

__all__ = ["dense_to_morton", "morton_to_dense"]


def dense_to_morton(
    a: np.ndarray, out: MortonMatrix, transpose: bool = False,
    zero_pad: bool = True,
) -> MortonMatrix:
    """Copy dense ``a`` (or its transpose) into Morton matrix ``out``.

    ``out.shape`` must equal the logical shape of ``op(a)``.  Returns
    ``out`` for chaining.  ``zero_pad=False`` skips re-zeroing the pad
    region — valid only when the caller guarantees it is already zero and
    has stayed zero since (the engine's pooled operand buffers maintain
    exactly this invariant, so repeated conversions touch only the logical
    elements).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected 2-D input, got ndim={a.ndim}")
    src = a.T if transpose else a
    if src.shape != out.shape:
        raise ValueError(f"op(a) shape {src.shape} != destination {out.shape}")

    rows, cols = out.rows, out.cols
    tr, tc = out.tile_r, out.tile_c
    buf = out.buf
    tile_elems = tr * tc
    for t in iter_tiles(out.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        dest = buf[t.offset : t.offset + tile_elems]
        r1 = min(r0 + tr, rows)
        c1 = min(c0 + tc, cols)
        if r1 <= r0 or c1 <= c0:
            # Tile entirely inside the pad.
            if zero_pad:
                dest[:] = 0.0
            continue
        tile2d = dest.reshape(tc, tr).T  # Fortran-order view of the tile
        if r1 - r0 == tr and c1 - c0 == tc:
            tile2d[:, :] = src[r0:r1, c0:c1]
        else:
            if zero_pad:
                dest[:] = 0.0
            tile2d[: r1 - r0, : c1 - c0] = src[r0:r1, c0:c1]
    return out


def morton_to_dense(m: MortonMatrix, out: np.ndarray | None = None) -> np.ndarray:
    """Copy Morton matrix ``m`` back to a dense array of its logical shape.

    A fresh destination is allocated in Fortran order (the layout the BLAS
    interface traffics in); pass ``out`` to write into an existing array.
    """
    if out is None:
        out = np.empty((m.rows, m.cols), dtype=np.float64, order="F")
    elif out.shape != m.shape:
        raise ValueError(f"out shape {out.shape} != logical shape {m.shape}")

    tr, tc = m.tile_r, m.tile_c
    tile_elems = tr * tc
    for t in iter_tiles(m.depth, tr, tc):
        r0, c0 = t.row0, t.col0
        if r0 >= m.rows or c0 >= m.cols:
            continue
        r1 = min(r0 + tr, m.rows)
        c1 = min(c0 + tc, m.cols)
        tile2d = m.buf[t.offset : t.offset + tile_elems].reshape(tc, tr).T
        out[r0:r1, c0:c1] = tile2d[: r1 - r0, : c1 - c0]
    return out
