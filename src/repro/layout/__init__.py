"""Morton-order (quadtree) matrix layout engine.

This package implements the paper's internal data layout (Section 3.3):
matrices are decomposed by quadrants (NW, NE, SW, SE) down to ``T x T``
tiles, each tile stored contiguously in column-major order.  It also
implements the dynamic recursion-truncation-point selection of Section 3.4,
which picks the tile size from a range so as to minimise padding.

Public surface:

* :func:`repro.layout.padding.select_tiling` / ``select_common_tiling`` —
  tile-size & depth search minimising padding.
* :class:`repro.layout.matrix.MortonMatrix` — the Morton-ordered container,
  with contiguous quadrant views at every level.
* :func:`repro.layout.convert.dense_to_morton` /
  :func:`repro.layout.convert.morton_to_dense` — interface-level layout
  conversion, with transposition fused in (Section 3.5).
* :mod:`repro.layout.morton` — bit-interleaving index arithmetic.
"""

from .padding import (
    TileRange,
    Tiling,
    select_tiling,
    select_common_tiling,
    feasible_depths,
    padded_size,
    conflict_levels,
)
from .morton import (
    spread_bits,
    compact_bits,
    interleave2,
    deinterleave2,
    zorder_coords,
    element_offsets,
)
from .matrix import MortonMatrix
from .convert import dense_to_morton, morton_to_dense

__all__ = [
    "TileRange",
    "Tiling",
    "select_tiling",
    "select_common_tiling",
    "feasible_depths",
    "padded_size",
    "conflict_levels",
    "spread_bits",
    "compact_bits",
    "interleave2",
    "deinterleave2",
    "zorder_coords",
    "element_offsets",
    "MortonMatrix",
    "dense_to_morton",
    "morton_to_dense",
]
