"""Tile-grid enumeration helpers shared by conversion and trace generation.

The tile grid of a depth-``d`` Morton matrix is always square,
``2**d x 2**d`` (a GEMM unfolds every dimension to the same depth), so the
z-order enumeration depends only on the depth and is cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, NamedTuple

import numpy as np

from .morton import zorder_coords

__all__ = ["TileSpan", "zorder_table", "iter_tiles"]


class TileSpan(NamedTuple):
    """One leaf tile's position in both coordinate systems."""

    z: int  #: rank in the Morton sequence (== tile index in the buffer)
    ti: int  #: tile-grid row
    tj: int  #: tile-grid column
    row0: int  #: first padded-matrix row covered
    col0: int  #: first padded-matrix column covered
    offset: int  #: start offset of the tile in the flat Morton buffer


@lru_cache(maxsize=32)
def zorder_table(depth: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(ti, tj)`` arrays for the ``4**depth`` tiles in z-order."""
    ti, tj = zorder_coords(depth)
    ti.setflags(write=False)
    tj.setflags(write=False)
    return ti, tj


def iter_tiles(depth: int, tile_r: int, tile_c: int) -> Iterator[TileSpan]:
    """Iterate leaf tiles in Morton (memory) order."""
    ti, tj = zorder_table(depth)
    tile_elems = tile_r * tile_c
    for z in range(ti.shape[0]):
        r, c = int(ti[z]), int(tj[z])
        yield TileSpan(
            z=z,
            ti=r,
            tj=c,
            row0=r * tile_r,
            col0=c * tile_c,
            offset=z * tile_elems,
        )
