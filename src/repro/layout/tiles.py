"""Tile-grid enumeration helpers shared by conversion and trace generation.

The tile grid of a depth-``d`` Morton matrix is always square,
``2**d x 2**d`` (a GEMM unfolds every dimension to the same depth), so the
z-order enumeration depends only on the depth and is cached.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, NamedTuple

import numpy as np

from .morton import zorder_coords

__all__ = ["TileSpan", "zorder_table", "tile_spans", "iter_tiles"]


class TileSpan(NamedTuple):
    """One leaf tile's position in both coordinate systems."""

    z: int  #: rank in the Morton sequence (== tile index in the buffer)
    ti: int  #: tile-grid row
    tj: int  #: tile-grid column
    row0: int  #: first padded-matrix row covered
    col0: int  #: first padded-matrix column covered
    offset: int  #: start offset of the tile in the flat Morton buffer


@lru_cache(maxsize=32)
def zorder_table(depth: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``(ti, tj)`` arrays for the ``4**depth`` tiles in z-order."""
    ti, tj = zorder_coords(depth)
    ti.setflags(write=False)
    tj.setflags(write=False)
    return ti, tj


@lru_cache(maxsize=32)
def tile_spans(
    depth: int, tile_r: int, tile_c: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(row0, col0, offset)`` arrays for all tiles in z-order.

    The vectorised twin of :func:`iter_tiles`: one array triple instead of
    ``4**depth`` ``TileSpan`` objects, shared by the conversion loop and
    the precomputed-index conversion tables.
    """
    ti, tj = zorder_table(depth)
    row0 = ti * tile_r
    col0 = tj * tile_c
    offset = np.arange(ti.shape[0], dtype=np.int64) * (tile_r * tile_c)
    for arr in (row0, col0, offset):
        arr.setflags(write=False)
    return row0, col0, offset


def iter_tiles(depth: int, tile_r: int, tile_c: int) -> Iterator[TileSpan]:
    """Iterate leaf tiles in Morton (memory) order."""
    ti, tj = zorder_table(depth)
    row0, col0, offset = tile_spans(depth, tile_r, tile_c)
    for z in range(ti.shape[0]):
        yield TileSpan(
            z=z,
            ti=int(ti[z]),
            tj=int(tj[z]),
            row0=int(row0[z]),
            col0=int(col0[z]),
            offset=int(offset[z]),
        )
