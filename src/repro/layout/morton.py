"""Bit-interleaving arithmetic for Morton (Z-order) indexing.

The paper lays out quadrants in the order NW, NE, SW, SE (Figure 1), i.e.
the *row* bit is the more significant bit of each interleaved pair.  For a
tile-grid coordinate ``(ti, tj)`` in a ``2^d x 2^d`` grid, the tile's rank in
the Morton sequence is::

    z(ti, tj) = ... r1 c1 r0 c0   (binary; r = row bits, c = column bits)

All functions are vectorised over numpy integer arrays and also accept
Python ints (returned as numpy scalars / ints).

The implementation uses the classic "magic numbers" bit-spreading technique,
which runs in O(log bits) numpy operations instead of a per-bit loop — this
is the vectorised idiom the address-trace generators rely on, where millions
of offsets are computed per call.
"""

from __future__ import annotations

import numpy as np

# Spread masks for 32-bit inputs producing 64-bit outputs.
_SPREAD_MASKS = (
    (16, 0x0000FFFF0000FFFF),
    (8, 0x00FF00FF00FF00FF),
    (4, 0x0F0F0F0F0F0F0F0F),
    (2, 0x3333333333333333),
    (1, 0x5555555555555555),
)

_MAX_COORD = (1 << 31) - 1


def spread_bits(x):
    """Spread the low 32 bits of ``x`` so bit ``k`` moves to bit ``2k``.

    ``spread_bits(0b111) == 0b010101``.  Accepts ints or numpy integer
    arrays; always computes in int64.
    """
    v = np.asarray(x, dtype=np.int64)
    if np.any(v < 0) or np.any(v > _MAX_COORD):
        raise ValueError("spread_bits requires coordinates in [0, 2^31)")
    for shift, mask in _SPREAD_MASKS:
        v = (v | (v << shift)) & mask
    if np.isscalar(x) or np.ndim(x) == 0:
        return int(v)
    return v


def compact_bits(z):
    """Inverse of :func:`spread_bits`: gather even-position bits of ``z``."""
    v = np.asarray(z, dtype=np.int64)
    v = v & 0x5555555555555555
    for shift, mask in reversed(_SPREAD_MASKS):
        v = (v | (v >> shift)) & _next_mask(mask, shift)
    if np.isscalar(z) or np.ndim(z) == 0:
        return int(v)
    return v


def _next_mask(mask: int, shift: int) -> int:
    # After undoing one spreading step the bits occupy runs twice as long.
    # Reconstruct the corresponding mask from the spreading tables.
    table = {
        1: 0x3333333333333333,
        2: 0x0F0F0F0F0F0F0F0F,
        4: 0x00FF00FF00FF00FF,
        8: 0x0000FFFF0000FFFF,
        16: 0x00000000FFFFFFFF,
    }
    return table[shift]


def interleave2(row, col):
    """Morton rank of grid coordinate ``(row, col)``, row bit significant.

    NW=(0,0) -> 0, NE=(0,1) -> 1, SW=(1,0) -> 2, SE=(1,1) -> 3, matching the
    quadrant order of the paper's Figure 1.
    """
    r = spread_bits(row)
    c = spread_bits(col)
    if isinstance(r, int) and isinstance(c, int):
        return (r << 1) | c
    return (np.asarray(r, dtype=np.int64) << 1) | np.asarray(c, dtype=np.int64)


def deinterleave2(z):
    """Inverse of :func:`interleave2`: return ``(row, col)``."""
    zz = np.asarray(z, dtype=np.int64)
    col = compact_bits(zz)
    row = compact_bits(zz >> 1)
    if np.isscalar(z) or np.ndim(z) == 0:
        return int(row), int(col)
    return row, col


def zorder_coords(depth: int):
    """Tile-grid coordinates of the ``4**depth`` tiles in Morton sequence.

    Returns ``(ti, tj)`` int64 arrays such that the ``k``-th tile visited in
    memory order sits at grid position ``(ti[k], tj[k])``.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    z = np.arange(4**depth, dtype=np.int64)
    if depth == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64)
    return deinterleave2(z)


def element_offsets(i, j, tile_r: int, tile_c: int, depth: int):
    """Morton-buffer offsets of elements ``(i, j)`` of the padded matrix.

    ``i``/``j`` may be ints or broadcastable numpy arrays of row/column
    indices into the *padded* matrix (``tile_r * 2**depth`` by
    ``tile_c * 2**depth``).  The offset combines the Morton rank of the tile
    with the column-major position inside the tile::

        off = z(i // tile_r, j // tile_c) * tile_r*tile_c + (j % tile_c)*tile_r + (i % tile_r)
    """
    ii = np.asarray(i, dtype=np.int64)
    jj = np.asarray(j, dtype=np.int64)
    nrows = tile_r << depth
    ncols = tile_c << depth
    if np.any(ii < 0) or np.any(ii >= nrows) or np.any(jj < 0) or np.any(jj >= ncols):
        raise IndexError("element index out of padded-matrix bounds")
    ti, ri = np.divmod(ii, tile_r)
    tj, rj = np.divmod(jj, tile_c)
    z = interleave2(ti, tj)
    off = np.asarray(z, dtype=np.int64) * (tile_r * tile_c) + rj * tile_r + ri
    if np.isscalar(i) and np.isscalar(j):
        return int(off)
    return off
