"""Handling of highly rectangular operands (paper Section 3.5, Figure 4).

Tile edges are chosen independently per dimension, but all three GEMM
dimensions must unfold to the *same* recursion depth.  When the aspect
ratio exceeds the tile range's span (4x for 16..64) no common depth exists
— the paper's 1024 x 256 example wants depth 5 for the rows and depth 3 for
the columns.  The fix is to divide the operands into panels "such that all
submatrices require the same depth of recursion unfolding" and reconstruct
the product from panel products:

* a *wide* operand (cols/rows too large) is split along its columns,
* a *lean* operand (rows/cols too large) along its rows,
* a *well-behaved* operand is left whole.

Splitting dimension d into ``ceil(d / ref)`` near-equal chunks (ref = the
smallest GEMM dimension) bounds every panel's aspect ratio by ~2, so each
panel GEMM admits a common depth.  Panels that share a k-chunk accumulate
into the same C panel, which is exactly the block-matrix reconstruction of
Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..layout.padding import TileRange

__all__ = ["Shape", "classify", "split_dim", "plan_panels", "PanelProduct"]


class Shape(str, enum.Enum):
    """The paper's three aspect-ratio classes."""

    WIDE = "wide"
    LEAN = "lean"
    WELL_BEHAVED = "well-behaved"


def classify(rows: int, cols: int, max_ratio: float = 4.0) -> Shape:
    """Classify a matrix per Section 3.5.

    ``max_ratio`` defaults to the span of the paper's tile range (64/16),
    the largest ratio for which a common recursion depth is guaranteed.
    """
    if cols > max_ratio * rows:
        return Shape.WIDE
    if rows > max_ratio * cols:
        return Shape.LEAN
    return Shape.WELL_BEHAVED


def split_dim(dim: int, ref: int) -> list[tuple[int, int]]:
    """Near-equal chunks ``(start, stop)`` of size about ``ref``.

    The chunk count is ``ceil(dim / ref)``; chunk sizes differ by at most
    one, so every chunk lies in ``[ref // 2, ref]`` whenever ``dim >= ref``.
    """
    if dim < 1 or ref < 1:
        raise ValueError(f"dim and ref must be >= 1, got {dim}, {ref}")
    q = -(-dim // ref)
    base, extra = divmod(dim, q)
    spans = []
    start = 0
    for i in range(q):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    assert start == dim
    return spans


@dataclass(frozen=True)
class PanelProduct:
    """One well-behaved sub-GEMM of the block reconstruction.

    ``C[m0:m1, n0:n1] (+)= op(A)[m0:m1, k0:k1] . op(B)[k0:k1, n0:n1]``;
    ``accumulate`` is True for every k-chunk after the first.
    """

    m0: int
    m1: int
    k0: int
    k1: int
    n0: int
    n1: int
    accumulate: bool


def plan_panels(
    m: int, k: int, n: int, tile_range: TileRange = TileRange()
) -> list[PanelProduct]:
    """Panel decomposition for a GEMM with no common recursion depth.

    The reference chunk size is the smallest dimension: splitting every
    larger dimension into near-``ref`` chunks makes all panel dimension
    triples mutually within a factor ~2, inside the tile range's span.
    Panels are emitted k-outermost so the ``accumulate`` flags match a
    left-to-right evaluation.
    """
    ref = min(m, k, n)
    m_spans = split_dim(m, ref)
    k_spans = split_dim(k, ref)
    n_spans = split_dim(n, ref)
    panels: list[PanelProduct] = []
    for m0, m1 in m_spans:
        for n0, n1 in n_spans:
            for idx, (k0, k1) in enumerate(k_spans):
                panels.append(
                    PanelProduct(
                        m0=m0, m1=m1, k0=k0, k1=k1, n0=n0, n1=n1,
                        accumulate=idx > 0,
                    )
                )
    return panels
