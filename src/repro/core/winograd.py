"""The Strassen-Winograd recursion on Morton-ordered operands.

This implements the paper's Section 2 equation set verbatim — the Winograd
variant with 7 recursive products and the minimum 15 matrix additions::

    S1 = A21 + A22      T1 = B12 - B11
    S2 = S1  - A11      T2 = B22 - T1
    S3 = A11 - A21      T3 = B22 - B12
    S4 = A12 - S2       T4 = B21 - T2

    P1 = A11.B11  P2 = A12.B21  P3 = S1.T1  P4 = S2.T2
    P5 = S3.T3    P6 = S4.B22   P7 = A22.T4

    C11 = U1 = P1 + P2          U2 = P1 + P4        U3 = U2 + P5
    C21 = U4 = U3 + P7          C22 = U5 = U3 + P3
    U6 = U2 + P3                C12 = U7 = U6 + P6

The concrete schedule below linearises those equations so that each level
needs only four scratch quarter-matrices besides the C quadrants — S
(A-shaped sums), T (B-shaped sums), and P/Q (C-shaped products) — with
every intermediate written exactly once and every addition an in-place
whole-buffer vector operation.  The sequencing was verified
symbolically (each C quadrant expands to exactly the four conventional
product terms) and is enforced by the property-based tests.

The recursion never descends below the Morton leaf tiles: by construction
(dynamic truncation, Section 3.4) the operands' depth *is* the recursion
depth, and leaves are multiplied by the conventional kernel.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import MortonMatrix
from .ops import NumpyOps, WinogradOps
from .workspace import Workspace

__all__ = ["winograd_multiply", "multiply_morton"]


def _check_conformable(a: MortonMatrix, b: MortonMatrix, c: MortonMatrix) -> None:
    if not (a.depth == b.depth == c.depth):
        raise ValueError(
            f"operand depths differ: A={a.depth}, B={b.depth}, C={c.depth}; "
            "a GEMM must use a common recursion depth (select_common_tiling)"
        )
    if a.tile_c != b.tile_r:
        raise ValueError(
            f"inner tile edges disagree: A tiles {a.tile_r}x{a.tile_c}, "
            f"B tiles {b.tile_r}x{b.tile_c}"
        )
    if c.tile_r != a.tile_r or c.tile_c != b.tile_c:
        raise ValueError(
            f"C tiles {c.tile_r}x{c.tile_c} do not match product "
            f"{a.tile_r}x{b.tile_c}"
        )


def winograd_multiply(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps | None = None,
    workspace: Workspace | None = None,
) -> MortonMatrix:
    """Compute ``C = A . B`` over padded Morton operands (alpha/beta-free core).

    ``c``'s buffer is overwritten entirely (including its pad).  ``ops``
    selects the backend (arithmetic or trace emission); ``workspace`` may be
    shared across calls of the same geometry.
    """
    _check_conformable(a, b, c)
    if ops is None:
        ops = NumpyOps()
    if workspace is None:
        workspace = Workspace(a.depth, a.tile_r, a.tile_c, b.tile_c, with_q=True)
    elif a.depth > 0 and workspace.at(a.depth - 1).q is None:
        raise ValueError("winograd_multiply needs a workspace built with with_q=True")
    _recurse(a, b, c, ops, workspace)
    return c


def _recurse(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps,
    ws: Workspace,
) -> None:
    if a.depth == 0:
        ops.leaf_mult(a, b, c)
        return

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    lv = ws.at(a11.depth)
    s, t, p, q = lv.s, lv.t, lv.p, lv.q
    assert q is not None

    # Phase 1: the five products that consume the S/T chains.  Each S_i/T_i
    # is formed in place in the shared scratch the moment its predecessors
    # are no longer needed — this is the common-subexpression reuse that
    # gives Winograd its 15-addition count.
    ops.sub(s, a11, a21)            # S3
    ops.sub(t, b22, b12)            # T3
    _recurse(s, t, p, ops, ws)      # P  <- P5 = S3.T3
    ops.add(s, a21, a22)            # S1
    ops.sub(t, b12, b11)            # T1
    _recurse(s, t, c22, ops, ws)    # C22 <- P3 = S1.T1
    ops.sub(s, s, a11)              # S2 = S1 - A11
    ops.sub(t, b22, t)              # T2 = B22 - T1
    _recurse(s, t, c11, ops, ws)    # C11 <- P4 = S2.T2
    ops.sub(s, a12, s)              # S4 = A12 - S2
    ops.sub(t, b21, t)              # T4 = B21 - T2
    _recurse(s, b22, c12, ops, ws)  # C12 <- P6 = S4.B22
    _recurse(a22, t, c21, ops, ws)  # C21 <- P7 = A22.T4

    # Phase 2: the two plain products and the U-chain combinations.  P1 and
    # P2 are C-shaped, so they stage in the C-shaped scratch: P1 in Q, and
    # P2 reuses P once U3 has been consumed.
    _recurse(a11, b11, q, ops, ws)  # Q <- P1
    ops.iadd(c11, q)                # C11 = U2 = P1 + P4
    ops.iadd(p, c11)                # P   = U3 = U2 + P5
    ops.iadd(c12, c11)              # C12 = P6 + U2
    ops.iadd(c12, c22)              # C12 = U7 = U6 + P6   (U6 = U2 + P3)
    ops.iadd(c21, p)                # C21 = U4 = U3 + P7
    ops.iadd(c22, p)                # C22 = U5 = U3 + P3
    _recurse(a12, b21, p, ops, ws)  # P <- P2
    ops.add(c11, q, p)              # C11 = U1 = P1 + P2


def multiply_morton(
    a: MortonMatrix,
    b: MortonMatrix,
    ops: WinogradOps | None = None,
) -> MortonMatrix:
    """Convenience wrapper: allocate C, run the recursion.

    With the default arithmetic backend the call routes through the
    default session's pooled per-geometry workspace
    (:meth:`repro.engine.GemmSession.multiply_morton`) instead of
    allocating fresh scratch per call; a custom ``ops`` backend (e.g. the
    trace emitter) cannot share pooled numeric scratch and keeps the
    direct path.
    """
    c = MortonMatrix(
        buf=np.empty(
            (a.tile_r << a.depth) * (b.tile_c << b.depth), dtype=np.float64
        ),
        rows=a.rows,
        cols=b.cols,
        tile_r=a.tile_r,
        tile_c=b.tile_c,
        depth=a.depth,
    )
    if ops is None:
        from ..engine.session import default_session  # avoid import cycle

        return default_session().multiply_morton(a, b, c)
    return winograd_multiply(a, b, c, ops=ops)
