"""The Strassen-Winograd recursion on Morton-ordered operands.

This implements the paper's Section 2 equation set verbatim — the Winograd
variant with 7 recursive products and the minimum 15 matrix additions::

    S1 = A21 + A22      T1 = B12 - B11
    S2 = S1  - A11      T2 = B22 - T1
    S3 = A11 - A21      T3 = B22 - B12
    S4 = A12 - S2       T4 = B21 - T2

    P1 = A11.B11  P2 = A12.B21  P3 = S1.T1  P4 = S2.T2
    P5 = S3.T3    P6 = S4.B22   P7 = A22.T4

    C11 = U1 = P1 + P2          U2 = P1 + P4        U3 = U2 + P5
    C21 = U4 = U3 + P7          C22 = U5 = U3 + P3
    U6 = U2 + P3                C12 = U7 = U6 + P6

The concrete schedule below linearises those equations so that each level
needs only four scratch quarter-matrices besides the C quadrants — S
(A-shaped sums), T (B-shaped sums), and P/Q (C-shaped products) — with
every intermediate written exactly once and every addition an in-place
whole-buffer vector operation.  The sequencing was verified
symbolically (each C quadrant expands to exactly the four conventional
product terms) and is enforced by the property-based tests.

The recursion never descends below the Morton leaf tiles: by construction
(dynamic truncation, Section 3.4) the operands' depth *is* the recursion
depth, and leaves are multiplied by the conventional kernel.

Memory schedules
----------------
Three linearisations of the same equation set are provided, selected by
``memory=``:

* ``classic`` — the schedule above: S/T/P (+Q) scratch per level.
* ``two_temp`` — Boyer, Dumas, Pernet & Zhou's two-temporary schedule:
  the C quadrants receive the products directly and only an A-shaped X
  and a B-shaped Y temporary remain per level (X doubles as the C-shaped
  slot for P1; see :mod:`repro.core.workspace`).
* ``ip_overwrite`` — the fully in-place variant: **A and B are
  clobbered** and no scratch at all is allocated.  Requires uniform tile
  geometry (``tile_m == tile_k == tile_n``) because A-, B- and C-shaped
  intermediates share each other's quadrant slots.

All three perform the identical floating-point operations modulo
*commuting* the operands of two additions (U4's ``U3 + P7`` vs
``P7 + U3``, and the staging of U2/U3), which IEEE-754 addition renders
bit-identical — the property tests assert exact equality, not closeness.
The low-memory schedules additionally fuse the three-operand U7 chain
into a single :meth:`~repro.core.ops.NumpyOps.add3` pass.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import MortonMatrix
from ..layout.relabel import relabel_scratch, transposed_view
from .ops import NumpyOps, WinogradOps
from .workspace import BatchWorkspace, Workspace

__all__ = [
    "winograd_multiply",
    "multiply_morton",
    "MEMORY_SCHEDULES",
    "resolve_memory",
    "FUSED_PACKS_A",
    "FUSED_PACKS_B",
    "FUSED_SKIP_A",
    "FUSED_SKIP_B",
    "CONVERT_QUADS_A",
    "CONVERT_QUADS_B",
]

#: Selectable memory schedules, in decreasing scratch order.
MEMORY_SCHEDULES = ("classic", "two_temp", "ip_overwrite")

#: Quadrant algebra of the top-level fused packs (consumed by
#: :func:`repro.layout.convert.pack_morton_quarter`): name, sign, and the
#: two dense quadrants combined.  ``S1 = A21 + A22`` lands in the A21
#: buffer slot and ``T1 = B12 - B11`` in the B12 slot — those quadrants
#: are never consumed as plain Morton operands at the top level (they
#: appear only inside S/T sums), so no extra memory is needed; ``S3`` /
#: ``T3`` land in schedule-specific scratch (level scratch, or the
#: C11/C12 slots for ``ip_overwrite``).
FUSED_PACKS_A = (("S1", "+", (1, 0), (1, 1)), ("S3", "-", (0, 0), (1, 0)))
FUSED_PACKS_B = (("T1", "-", (0, 1), (0, 0)), ("T3", "-", (1, 1), (0, 1)))
#: The skipped (never-converted) quadrant per operand side, and the
#: complementary lists a fused conversion does copy.
FUSED_SKIP_A = (1, 0)
FUSED_SKIP_B = (0, 1)
CONVERT_QUADS_A = ((0, 0), (0, 1), (1, 1))
CONVERT_QUADS_B = ((0, 0), (1, 0), (1, 1))


def resolve_memory(memory: "str | None") -> str:
    """Canonicalise a ``memory=`` schedule name (``None`` -> ``classic``)."""
    if memory is None:
        return "classic"
    m = str(memory).strip().lower().replace("-", "_")
    if m == "ip":
        m = "ip_overwrite"
    if m not in MEMORY_SCHEDULES:
        raise ValueError(
            f"unknown memory schedule {memory!r}; "
            f"expected one of {MEMORY_SCHEDULES} (or the alias 'ip')"
        )
    return m


def _check_conformable(a: MortonMatrix, b: MortonMatrix, c: MortonMatrix) -> None:
    if not (a.depth == b.depth == c.depth):
        raise ValueError(
            f"operand depths differ: A={a.depth}, B={b.depth}, C={c.depth}; "
            "a GEMM must use a common recursion depth (select_common_tiling)"
        )
    if a.tile_c != b.tile_r:
        raise ValueError(
            f"inner tile edges disagree: A tiles {a.tile_r}x{a.tile_c}, "
            f"B tiles {b.tile_r}x{b.tile_c}"
        )
    if c.tile_r != a.tile_r or c.tile_c != b.tile_c:
        raise ValueError(
            f"C tiles {c.tile_r}x{c.tile_c} do not match product "
            f"{a.tile_r}x{b.tile_c}"
        )


def winograd_multiply(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps | None = None,
    workspace: Workspace | None = None,
    memory: "str | None" = "classic",
    alpha: float = 1.0,
    beta: float = 0.0,
    trans_a: bool = False,
    trans_b: bool = False,
    prepacked: bool = False,
) -> MortonMatrix:
    """Compute ``C = alpha . op(A) . op(B) + beta . C`` over Morton operands.

    ``prepacked=True`` declares that the caller already performed the
    top level's fused convert-and-add packing: ``S3``/``T3`` sit in the
    outermost level's S/T scratch (the C11/C12 slots for
    ``ip_overwrite``), and ``S1``/``T1`` occupy the A21/B12 quadrant
    slots (see :data:`FUSED_PACKS_A`).  The top recursion level then
    skips its four standalone S1/S3/T1/T3 addition passes and reads the
    packed buffers instead — every remaining floating-point operation is
    unchanged, so results are bit-identical to the two-pass path.
    Requires ``depth >= 1`` and plain (non-relabeled) operands.

    With the default spec (``alpha=1, beta=0``, no transposes) ``c``'s
    buffer is overwritten entirely (including its pad).  ``alpha`` is
    folded into the recursion's final U-adds (or the leaf product at
    depth 0) — never a separate scaling pass.  ``beta != 0`` stages the
    product in a same-geometry temporary and folds it into the live ``c``
    with one streaming :meth:`~repro.core.ops.NumpyOps.accumulate` pass.
    ``trans_a``/``trans_b`` wrap the operand in a zero-copy
    :class:`~repro.layout.relabel.TransposedView` (quadrant relabeling;
    rejected for ``ip_overwrite``, whose slot-reuse schedule requires the
    plain permutation — transpose during conversion there instead).

    ``ops`` selects the backend (arithmetic or trace emission);
    ``workspace`` may be shared across calls of the same geometry and
    must have been built for the requested ``memory`` schedule.  With
    ``memory="ip_overwrite"`` **the contents of** ``a`` **and** ``b``
    **are destroyed** and no workspace is used.

    The operands may equally be same-shape
    :class:`~repro.layout.matrix.BatchMortonMatrix` stacks (with a
    batch-stacked workspace view): the recursion is written against the
    duck-typed quadrant/ops vocabulary, so one call then multiplies the
    whole batch — every addition a single ufunc over ``(B, elems)`` slabs,
    every leaf product one batched ``matmul`` — with per-item results
    bit-identical to the unbatched path (same addition order throughout).
    ``ip_overwrite`` is not offered for batches (the batched path never
    clobbers operands).
    """
    memory = resolve_memory(memory)
    if trans_a:
        a = transposed_view(a)
    if trans_b:
        b = transposed_view(b)
    if memory == "ip_overwrite" and (
        getattr(a, "transposed", False) or getattr(b, "transposed", False)
    ):
        raise ValueError(
            "memory='ip_overwrite' cannot consume relabeled (transposed) "
            "operands: the in-place schedule writes products into A/B "
            "quadrant slots, which live in the plain Morton permutation; "
            "fold the transpose into the conversion instead"
        )
    _check_conformable(a, b, c)
    if prepacked:
        if a.depth < 1:
            raise ValueError("prepacked=True needs depth >= 1")
        if getattr(a, "transposed", False) or getattr(b, "transposed", False):
            raise ValueError(
                "prepacked=True cannot consume relabeled (transposed) "
                "operands: the pack layout lives in the plain Morton "
                "permutation"
            )
    if ops is None:
        ops = NumpyOps()
    if memory != "classic" and a.depth > 0 and not hasattr(ops, "add3"):
        raise ValueError(
            f"ops backend {type(ops).__name__} lacks the fused add3/sub_into "
            f"passes required by the {memory!r} schedule; use memory='classic'"
        )
    if beta != 0.0 and not hasattr(ops, "accumulate"):
        raise ValueError(
            f"ops backend {type(ops).__name__} lacks the accumulate pass "
            "required by beta != 0"
        )
    batch = getattr(a, "batch", None)
    if batch is not None:
        if memory == "ip_overwrite":
            raise ValueError(
                "memory='ip_overwrite' is not supported for batched operands"
            )
        if workspace is None:
            ws = BatchWorkspace(
                batch, a.depth, a.tile_r, a.tile_c, b.tile_c,
                with_q=memory == "classic", schedule=memory,
                dtype=a.buf.dtype,
            )
            workspace = ws.view(0, batch)

    # beta: the recursion always produces a *fresh* product, so a live C
    # is preserved by computing alpha.op(A).op(B) into a same-geometry
    # staging matrix and folding it in with one streaming accumulate pass
    # (elementwise identical to the reference ``c *= beta; c += d``).
    target = c if beta == 0.0 else _staging_like(c)

    if memory == "ip_overwrite":
        if prepacked and beta != 0.0:
            raise ValueError(
                "prepacked=True with beta != 0 is unsupported for "
                "ip_overwrite: the S3/T3 packs live in C quadrant slots, "
                "but beta stages the product in a private temporary"
            )
        if a.depth > 0 and not (a.tile_r == a.tile_c == b.tile_c):
            raise ValueError(
                "ip_overwrite needs uniform tile geometry (tile_m == tile_k "
                f"== tile_n); got {a.tile_r}x{a.tile_c} . {b.tile_r}x{b.tile_c}"
            )
        _recurse_ip(a, b, target, ops, alpha, prepacked=prepacked)
    elif memory == "two_temp":
        if workspace is None:
            workspace = Workspace(
                a.depth, a.tile_r, a.tile_c, b.tile_c, schedule="two_temp"
            )
        elif getattr(workspace, "schedule", "classic") != "two_temp":
            raise ValueError(
                "winograd_multiply(memory='two_temp') needs a workspace "
                "built with schedule='two_temp'"
            )
        _recurse_two_temp(a, b, target, ops, workspace, alpha,
                          prepacked=prepacked)
    else:
        if workspace is None:
            workspace = Workspace(
                a.depth, a.tile_r, a.tile_c, b.tile_c, with_q=True
            )
        elif a.depth > 0 and workspace.at(a.depth - 1).q is None:
            raise ValueError(
                "winograd_multiply needs a workspace built with with_q=True"
            )
        _recurse(a, b, target, ops, workspace, alpha, prepacked=prepacked)

    if beta != 0.0:
        ops.accumulate(c, target, beta)
    return c


def _staging_like(c):
    """A fresh Morton(-batch) matrix congruent with ``c`` (for beta staging)."""
    return type(c)(
        buf=np.empty_like(c.buf),
        rows=c.rows,
        cols=c.cols,
        tile_r=c.tile_r,
        tile_c=c.tile_c,
        depth=c.depth,
    )


def _recurse(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps,
    ws: Workspace,
    alpha: float = 1.0,
    prepacked: bool = False,
) -> None:
    if a.depth == 0:
        if alpha == 1.0:
            ops.leaf_mult(a, b, c)
        else:
            ops.leaf_mult(a, b, c, alpha)
        return

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    lv = ws.at(a11.depth)
    s, t, p, q = lv.s, lv.t, lv.p, lv.q
    assert q is not None
    # S-intermediates of a relabeled operand are written (by flat ufuncs)
    # in that operand's *native* Morton permutation; descend the scratch
    # holding them with the same relabel.  Products (P/Q, C quadrants)
    # always land in the plain output permutation.
    if getattr(a, "transposed", False):
        s = relabel_scratch(s)
    if getattr(b, "transposed", False):
        t = relabel_scratch(t)

    # Phase 1: the five products that consume the S/T chains.  Each S_i/T_i
    # is formed in place in the shared scratch the moment its predecessors
    # are no longer needed — this is the common-subexpression reuse that
    # gives Winograd its 15-addition count.
    if prepacked:
        # Fused packing put S3/T3 in this level's scratch and S1/T1 in
        # the A21/B12 quadrant slots; only S2/T2 remain to be formed.
        _recurse(s, t, p, ops, ws)        # P  <- P5 = S3.T3
        _recurse(a21, b12, c22, ops, ws)  # C22 <- P3 = S1.T1
        ops.sub(s, a21, a11)              # S2 = S1 - A11
        ops.sub(t, b22, b12)              # T2 = B22 - T1
    else:
        ops.sub(s, a11, a21)            # S3
        ops.sub(t, b22, b12)            # T3
        _recurse(s, t, p, ops, ws)      # P  <- P5 = S3.T3
        ops.add(s, a21, a22)            # S1
        ops.sub(t, b12, b11)            # T1
        _recurse(s, t, c22, ops, ws)    # C22 <- P3 = S1.T1
        ops.sub(s, s, a11)              # S2 = S1 - A11
        ops.sub(t, b22, t)              # T2 = B22 - T1
    _recurse(s, t, c11, ops, ws)    # C11 <- P4 = S2.T2
    ops.sub(s, a12, s)              # S4 = A12 - S2
    ops.sub(t, b21, t)              # T4 = B21 - T2
    _recurse(s, b22, c12, ops, ws)  # C12 <- P6 = S4.B22
    _recurse(a22, t, c21, ops, ws)  # C21 <- P7 = A22.T4

    # Phase 2: the two plain products and the U-chain combinations.  P1 and
    # P2 are C-shaped, so they stage in the C-shaped scratch: P1 in Q, and
    # P2 reuses P once U3 has been consumed.
    _recurse(a11, b11, q, ops, ws)  # Q <- P1
    ops.iadd(c11, q)                # C11 = U2 = P1 + P4
    ops.iadd(p, c11)                # P   = U3 = U2 + P5
    ops.iadd(c12, c11)              # C12 = P6 + U2
    if alpha == 1.0:
        ops.iadd(c12, c22)              # C12 = U7 = U6 + P3
        ops.iadd(c21, p)                # C21 = U4 = U3 + P7
        ops.iadd(c22, p)                # C22 = U5 = U3 + P3
        _recurse(a12, b21, p, ops, ws)  # P <- P2
        ops.add(c11, q, p)              # C11 = U1 = P1 + P2
    else:
        # alpha rides the four final U-adds (each C quadrant's last
        # write); the ordering above guarantees no scaled quadrant is
        # read again (U7 consumes P3 before U5 scales C22).
        ops.iadd_scale(c12, c22, alpha)
        ops.iadd_scale(c21, p, alpha)
        ops.iadd_scale(c22, p, alpha)
        _recurse(a12, b21, p, ops, ws)  # P <- P2
        ops.add_scale(c11, q, p, alpha)


def _recurse_two_temp(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps,
    ws: Workspace,
    alpha: float = 1.0,
    prepacked: bool = False,
) -> None:
    """Boyer et al.'s two-temporary schedule: C quadrants double as scratch.

    Per level only X (A-shaped, ``lv.s``) and Y (B-shaped, ``lv.t``)
    temporaries exist; ``lv.p`` is a C-shaped *view of X's buffer* used to
    stage P1 once the S-chain is dead.  Every floating-point operation
    matches :func:`_recurse` exactly except U4 and U1/U2 staging, whose
    additions are merely commuted — hence bit-identical results.  A and B
    are never written.
    """
    if a.depth == 0:
        if alpha == 1.0:
            ops.leaf_mult(a, b, c)
        else:
            ops.leaf_mult(a, b, c, alpha)
        return

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    lv = ws.at(a11.depth)
    x, y, xc = lv.s, lv.t, lv.p  # xc aliases x's buffer (C-shaped view)
    # Relabel the temporary that mirrors a transposed operand (see
    # _recurse).  xc stays plain: it stages P1, a *product*, which always
    # lands in the output permutation (the buffers overlap but are used
    # at disjoint times, so the two descents never mix).
    if getattr(a, "transposed", False):
        x = relabel_scratch(x)
    if getattr(b, "transposed", False):
        y = relabel_scratch(y)

    if prepacked:
        # Fused packing: S3/T3 in X/Y, S1/T1 in the A21/B12 slots (see
        # _recurse) — only S2/T2 remain, read from the packed slots.
        _recurse_two_temp(x, y, c21, ops, ws)      # C21 <- P5 = S3.T3
        _recurse_two_temp(a21, b12, c22, ops, ws)  # C22 <- P3 = S1.T1
        ops.sub(x, a21, a11)                       # S2 = S1 - A11
        ops.sub(y, b22, b12)                       # T2 = B22 - T1
    else:
        ops.sub(x, a11, a21)                     # S3
        ops.sub(y, b22, b12)                     # T3
        _recurse_two_temp(x, y, c21, ops, ws)    # C21 <- P5 = S3.T3
        ops.add(x, a21, a22)                     # S1
        ops.sub(y, b12, b11)                     # T1
        _recurse_two_temp(x, y, c22, ops, ws)    # C22 <- P3 = S1.T1
        ops.sub(x, x, a11)                       # S2 = S1 - A11
        ops.sub_into(y, b22)                     # T2 = B22 - T1
    _recurse_two_temp(x, y, c12, ops, ws)    # C12 <- P4 = S2.T2
    ops.sub(x, a12, x)                       # S4 = A12 - S2
    _recurse_two_temp(x, b22, c11, ops, ws)  # C11 <- P6 = S4.B22
    _recurse_two_temp(a11, b11, xc, ops, ws)  # X <- P1 (S-chain is dead)

    ops.iadd(c12, xc)            # C12 = U2 = P4 + P1
    ops.iadd(c21, c12)           # C21 = U3 = P5 + U2
    if alpha == 1.0:
        ops.add3(c12, c11, c12, c22)  # C12 = U7 = (P6 + U2) + P3
        ops.iadd(c22, c21)           # C22 = U5 = P3 + U3
    else:
        # the four final U-adds carry alpha; U7 reads P3 (c22) and U5
        # reads U3 (c21) before either is scaled, and P7/P2 below are
        # staged in c11 unscaled until their own finals.
        ops.add3_scale(c12, c11, c12, c22, alpha)
        ops.iadd_scale(c22, c21, alpha)
    ops.sub_into(y, b21)         # T4 = B21 - T2
    _recurse_two_temp(a22, y, c11, ops, ws)   # C11 <- P7 (P6 consumed)
    if alpha == 1.0:
        ops.iadd(c21, c11)           # C21 = U4 = U3 + P7
        _recurse_two_temp(a12, b21, c11, ops, ws)  # C11 <- P2 (P7 consumed)
        ops.add(c11, xc, c11)        # C11 = U1 = P1 + P2
    else:
        ops.iadd_scale(c21, c11, alpha)
        _recurse_two_temp(a12, b21, c11, ops, ws)
        ops.add_scale(c11, xc, c11, alpha)


def _recurse_ip(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps,
    alpha: float = 1.0,
    prepacked: bool = False,
) -> None:
    """Fully in-place schedule: zero scratch, A and B quadrants are consumed.

    Each S/T intermediate and each product lands in a quadrant slot whose
    previous value is provably dead; requires uniform tile geometry so A-,
    B- and C-shaped values are interchangeable.  Same floating-point
    operations as :func:`_recurse` modulo commuted additions (see
    :func:`_recurse_two_temp`).
    """
    if a.depth == 0:
        if alpha == 1.0:
            ops.leaf_mult(a, b, c)
        else:
            ops.leaf_mult(a, b, c, alpha)
        return

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()

    if prepacked:
        # Fused packing: S3/T3 already sit in the C11/C12 slots, S1/T1
        # in the A21/B12 slots — the four slot-filling passes are gone.
        _recurse_ip(c11, c12, c21, ops)  # C21 <- P5 (consumes S3, T3)
        ops.sub(c12, a21, a11)        # C12 <- S2 = S1 - A11
        _recurse_ip(a11, b11, c11, ops)  # C11 <- P1 (A11, B11 die)
        ops.sub(b11, b22, b12)        # B11 <- T2 = B22 - T1
        _recurse_ip(a21, b12, c22, ops)  # C22 <- P3 (S1, T1 die)
    else:
        ops.sub(c11, a11, a21)        # C11 <- S3
        ops.sub(c12, b22, b12)        # C12 <- T3
        _recurse_ip(c11, c12, c21, ops)  # C21 <- P5 (consumes S3, T3 copies)
        ops.add(a21, a21, a22)        # A21 <- S1
        ops.sub(b12, b12, b11)        # B12 <- T1
        ops.sub(c12, a21, a11)        # C12 <- S2 = S1 - A11
        _recurse_ip(a11, b11, c11, ops)  # C11 <- P1 (A11, B11 die)
        ops.sub(b11, b22, b12)        # B11 <- T2 = B22 - T1
        _recurse_ip(a21, b12, c22, ops)  # C22 <- P3 (S1, T1 die)
    ops.sub(a21, a12, c12)        # A21 <- S4 = A12 - S2
    ops.sub(b12, b21, b11)        # B12 <- T4 = B21 - T2
    _recurse_ip(c12, b11, a11, ops)  # A11 <- P4 (S2, T2 die)
    _recurse_ip(a21, b22, c12, ops)  # C12 <- P6 (S4, B22 die)
    _recurse_ip(a22, b12, b22, ops)  # B22 <- P7 (A22, T4 die)
    _recurse_ip(a12, b21, a22, ops)  # A22 <- P2 (A12, B21 die)

    ops.iadd(a11, c11)            # A11 = U2 = P4 + P1
    ops.iadd(c21, a11)            # C21 = U3 = P5 + U2
    if alpha == 1.0:
        ops.add3(c12, c12, a11, c22)  # C12 = U7 = (P6 + U2) + P3
        ops.iadd(c22, c21)            # C22 = U5 = P3 + U3
        ops.iadd(c21, b22)            # C21 = U4 = U3 + P7
        ops.iadd(c11, a22)            # C11 = U1 = P1 + P2
    else:
        # alpha on the four finals; each reads only unscaled values (U7
        # consumes P3 before U5 scales it, U5 consumes U3 before U4).
        ops.add3_scale(c12, c12, a11, c22, alpha)
        ops.iadd_scale(c22, c21, alpha)
        ops.iadd_scale(c21, b22, alpha)
        ops.iadd_scale(c11, a22, alpha)


def multiply_morton(
    a: MortonMatrix,
    b: MortonMatrix,
    ops: WinogradOps | None = None,
) -> MortonMatrix:
    """Convenience wrapper: allocate C, run the recursion.

    With the default arithmetic backend the call routes through the
    default session's pooled per-geometry workspace *and output buffer*
    (:meth:`repro.engine.GemmSession.multiply_morton`) instead of
    allocating fresh scratch per call — the returned matrix stays valid
    until the next same-geometry call, so copy it to keep results across
    calls.  A custom ``ops`` backend (e.g. the trace emitter) cannot
    share pooled numeric scratch and keeps the direct allocating path.
    """
    if ops is None:
        from ..engine.session import default_session  # avoid import cycle

        return default_session().multiply_morton(a, b)
    c = MortonMatrix(
        buf=np.empty(
            (a.tile_r << a.depth) * (b.tile_c << b.depth), dtype=np.float64
        ),
        rows=a.rows,
        cols=b.cols,
        tile_r=a.tile_r,
        tile_c=b.tile_c,
        depth=a.depth,
    )
    return winograd_multiply(a, b, c, ops=ops)
