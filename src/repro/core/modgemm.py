"""MODGEMM: the paper's Morton-order Strassen-Winograd dgemm.

The public entry point :func:`modgemm` follows the Level-3 BLAS dgemm
contract (Section 2.1) and stitches together the full pipeline of
Section 3.5:

1. plan a common recursion depth and per-dimension leaf tiles that minimise
   padding (dynamic truncation-point selection) — or, for highly
   rectangular operands with no common depth, split into well-behaved
   panels first (Figure 4);
2. convert the inputs from column-major to Morton order at the interface
   level, fusing any requested transposition into the conversion;
3. run the Strassen-Winograd recursion entirely on contiguous Morton
   buffers (redundant arithmetic on the zero pad included);
4. convert the product back and post-process ``alpha``/``beta`` only when
   they differ from the common values 1 and 0.

Since the :mod:`repro.engine` redesign both entry points are thin wrappers
over the module-level plan-caching :class:`repro.engine.GemmSession`:
repeated same-geometry calls skip steps 1's search and all buffer
allocation while remaining bit-identical to the historical per-call path.

:func:`modgemm_morton` is the conversion-free variant used for Figure 8
("assuming matrices are already in Morton order").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..blas.dgemm import OpKind
from ..blas.kernels import LeafKernel
from ..layout.matrix import MortonMatrix
from .truncation import TruncationPolicy
from .workspace import Workspace

__all__ = ["modgemm", "modgemm_morton", "PhaseTimings"]


@dataclass
class PhaseTimings:
    """Wall-clock breakdown of one modgemm call (drives Figure 7).

    All values in seconds; ``convert`` covers both input conversions plus
    the output conversion back to column-major, mirroring what the paper's
    conversion-cost figure measures.
    """

    to_morton: float = 0.0
    compute: float = 0.0
    from_morton: float = 0.0
    panels: int = field(default=1)

    @property
    def convert(self) -> float:
        return self.to_morton + self.from_morton

    @property
    def total(self) -> float:
        return self.to_morton + self.compute + self.from_morton

    @property
    def convert_fraction(self) -> float:
        t = self.total
        return self.convert / t if t > 0 else 0.0


def modgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = "n",
    op_b: "OpKind | str" = "n",
    policy: "TruncationPolicy | int | str | None" = None,
    kernel: "str | LeafKernel" = "numpy",
    variant: str = "winograd",
    timings: PhaseTimings | None = None,
    parallel: bool = False,
    schedule=None,
    memory: "str | None" = None,
    trans_a: bool | None = None,
    trans_b: bool | None = None,
) -> np.ndarray:
    """``C <- alpha * op(A) . op(B) + beta * C`` via Morton-order Strassen-Winograd.

    Parameters mirror BLAS dgemm.  ``c`` is updated in place (and returned)
    when given; otherwise a fresh array is returned and ``beta`` must be 0.
    ``trans_a``/``trans_b`` are boolean aliases for the ``op_a``/``op_b``
    spellings and win over them when supplied.
    ``policy`` selects truncation (a :class:`TruncationPolicy`, an int
    static truncation point, or ``"dynamic"``/``"fixed"``); ``variant`` the
    Winograd (default) or original Strassen schedule — by name or by
    function; ``kernel`` the leaf multiply; ``timings``, when supplied, is
    filled with the conversion/compute phase breakdown.  ``schedule``
    selects the execution mode (see :class:`repro.engine.Schedule`;
    e.g. ``"tasks:2"`` expands two recursion levels onto the session's
    worker pool — useful on multi-core hosts only); the boolean
    ``parallel`` is the historical shorthand for ``tasks`` at depth 1.
    Both are rejected with a :class:`repro.errors.PlanError` for
    non-Winograd variants.  ``memory`` selects the recursion's scratch
    schedule (``"classic"``/``"two_temp"``/``"ip_overwrite"``; see
    :data:`repro.core.winograd.MEMORY_SCHEDULES`).  Every mode returns
    bit-identical results.

    Calls are served by the module-level plan-caching session
    (:func:`repro.engine.default_session`): one-shot behaviour is
    unchanged, repeated same-geometry calls reuse the compiled plan.
    """
    from ..engine.session import default_session

    return default_session().multiply(
        a, b, c=c, alpha=alpha, beta=beta, op_a=op_a, op_b=op_b,
        policy=policy, kernel=kernel, variant=variant,
        parallel=parallel, schedule=schedule, timings=timings,
        memory=memory, trans_a=trans_a, trans_b=trans_b,
    )


def modgemm_morton(
    a_mm: MortonMatrix,
    b_mm: MortonMatrix,
    c_mm: MortonMatrix | None = None,
    kernel: "str | LeafKernel" = "numpy",
    variant: str = "winograd",
    workspace: Workspace | None = None,
    memory: "str | None" = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans_a: bool = False,
    trans_b: bool = False,
) -> MortonMatrix:
    """Multiply operands already in Morton order; no conversions (Figure 8).

    Operands must share the recursion depth and have conformable tile
    edges — i.e. they were created from a single
    :meth:`TruncationPolicy.plan`.  Returns the Morton-ordered product.
    When ``workspace`` is omitted the default session pools one per
    geometry (an explicit workspace bypasses the pool, as before); when
    ``c_mm`` is also omitted the result lives in the session's pooled
    output buffer and stays valid until the next same-geometry call.
    ``memory`` selects the scratch schedule; ``"ip_overwrite"`` destroys
    the contents of ``a_mm``/``b_mm``.  ``trans_a``/``trans_b`` consume the
    operands through Morton quadrant-swap relabeling (no copies; Winograd
    only), and ``alpha``/``beta`` follow the dgemm contract — ``beta != 0``
    requires ``c_mm`` and accumulates into it.
    """
    from ..engine.session import default_session

    return default_session().multiply_morton(
        a_mm, b_mm, c_mm, kernel=kernel, variant=variant, workspace=workspace,
        memory=memory, alpha=alpha, beta=beta, trans_a=trans_a, trans_b=trans_b,
    )
