"""MODGEMM: the paper's Morton-order Strassen-Winograd dgemm.

The public entry point :func:`modgemm` follows the Level-3 BLAS dgemm
contract (Section 2.1) and stitches together the full pipeline of
Section 3.5:

1. plan a common recursion depth and per-dimension leaf tiles that minimise
   padding (dynamic truncation-point selection) — or, for highly
   rectangular operands with no common depth, split into well-behaved
   panels first (Figure 4);
2. convert the inputs from column-major to Morton order at the interface
   level, fusing any requested transposition into the conversion;
3. run the Strassen-Winograd recursion entirely on contiguous Morton
   buffers (redundant arithmetic on the zero pad included);
4. convert the product back and post-process ``alpha``/``beta`` only when
   they differ from the common values 1 and 0.

:func:`modgemm_morton` is the conversion-free variant used for Figure 8
("assuming matrices are already in Morton order").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel
from ..layout.matrix import MortonMatrix
from ..layout.padding import Tiling
from .ops import NumpyOps
from .rectangular import plan_panels
from .strassen import strassen_multiply
from .truncation import DEFAULT_POLICY, TruncationPolicy
from .winograd import winograd_multiply
from .workspace import Workspace

__all__ = ["modgemm", "modgemm_morton", "PhaseTimings"]

_VARIANTS = {"winograd": winograd_multiply, "strassen": strassen_multiply}


@dataclass
class PhaseTimings:
    """Wall-clock breakdown of one modgemm call (drives Figure 7).

    All values in seconds; ``convert`` covers both input conversions plus
    the output conversion back to column-major, mirroring what the paper's
    conversion-cost figure measures.
    """

    to_morton: float = 0.0
    compute: float = 0.0
    from_morton: float = 0.0
    panels: int = field(default=1)

    @property
    def convert(self) -> float:
        return self.to_morton + self.from_morton

    @property
    def total(self) -> float:
        return self.to_morton + self.compute + self.from_morton

    @property
    def convert_fraction(self) -> float:
        t = self.total
        return self.convert / t if t > 0 else 0.0


def modgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = "n",
    op_b: "OpKind | str" = "n",
    policy: TruncationPolicy = DEFAULT_POLICY,
    kernel: "str | LeafKernel" = "numpy",
    variant: str = "winograd",
    timings: PhaseTimings | None = None,
    parallel: bool = False,
) -> np.ndarray:
    """``C <- alpha * op(A) . op(B) + beta * C`` via Morton-order Strassen-Winograd.

    Parameters mirror BLAS dgemm.  ``c`` is updated in place (and returned)
    when given; otherwise a fresh array is returned and ``beta`` must be 0.
    ``variant`` selects the Winograd (default) or original Strassen
    schedule; ``kernel`` the leaf multiply; ``timings``, when supplied, is
    filled with the conversion/compute phase breakdown.  ``parallel`` runs
    the seven top-level Winograd products on a thread pool (see
    :mod:`repro.core.parallel`; useful on multi-core hosts only).
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected {sorted(_VARIANTS)}")
    if parallel and variant != "winograd":
        raise ValueError("parallel execution supports only the winograd variant")
    if parallel:
        variant = "parallel"
    p = GemmProblem.create(a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c)
    d = _product(p, policy, kernel, variant, timings)
    result = p.apply_scaling(d, c)
    if c is not None and result is not c:
        c[...] = result
        return c
    return result


def _product(
    p: GemmProblem,
    policy: TruncationPolicy,
    kernel: "str | LeafKernel",
    variant: str,
    timings: PhaseTimings | None,
) -> np.ndarray:
    """``D = op(A) . op(B)`` (the alpha/beta-free core of Section 3.5)."""
    plan = policy.plan(p.m, p.k, p.n)
    if plan is not None:
        return _well_behaved_product(
            p.a, p.b, p.op_a, p.op_b, plan, kernel, variant, timings
        )

    # Highly rectangular: no common recursion depth exists.  Reconstruct
    # from well-behaved panel products (Figure 4).
    opa = p.op_a_view
    opb = p.op_b_view
    d = np.zeros((p.m, p.n), dtype=np.float64, order="F")
    panels = plan_panels(p.m, p.k, p.n, policy.tile_range) if policy.tile_range \
        else plan_panels(p.m, p.k, p.n)
    if timings is not None:
        timings.panels = len(panels)
    for panel in panels:
        pa = opa[panel.m0 : panel.m1, panel.k0 : panel.k1]
        pb = opb[panel.k0 : panel.k1, panel.n0 : panel.n1]
        sub_plan = policy.plan(*_panel_dims(panel))
        if sub_plan is None:
            # Degenerate residue (e.g. a 1-wide strip): conventional product.
            part = pa @ pb
        else:
            part = _well_behaved_product(
                pa, pb, OpKind.NOTRANS, OpKind.NOTRANS, sub_plan,
                kernel, variant, timings,
            )
        if panel.accumulate:
            d[panel.m0 : panel.m1, panel.n0 : panel.n1] += part
        else:
            d[panel.m0 : panel.m1, panel.n0 : panel.n1] = part
    return d


def _panel_dims(panel) -> tuple[int, int, int]:
    return (panel.m1 - panel.m0, panel.k1 - panel.k0, panel.n1 - panel.n0)


def _well_behaved_product(
    a: np.ndarray,
    b: np.ndarray,
    op_a: OpKind,
    op_b: OpKind,
    plan: tuple[Tiling, Tiling, Tiling],
    kernel: "str | LeafKernel",
    variant: str,
    timings: PhaseTimings | None,
) -> np.ndarray:
    tm, tk, tn = plan
    t0 = time.perf_counter()
    a_mm = MortonMatrix.from_dense(
        a, transpose=(op_a is OpKind.TRANS), tilings=(tm, tk)
    )
    b_mm = MortonMatrix.from_dense(
        b, transpose=(op_b is OpKind.TRANS), tilings=(tk, tn)
    )
    c_mm = MortonMatrix.empty(tm.n, tn.n, tm, tn)
    t1 = time.perf_counter()
    _multiply_variant(a_mm, b_mm, c_mm, kernel, variant)
    t2 = time.perf_counter()
    d = c_mm.to_dense()
    t3 = time.perf_counter()
    if timings is not None:
        timings.to_morton += t1 - t0
        timings.compute += t2 - t1
        timings.from_morton += t3 - t2
    return d


def _multiply_variant(
    a_mm: MortonMatrix,
    b_mm: MortonMatrix,
    c_mm: MortonMatrix,
    kernel: "str | LeafKernel",
    variant: str,
) -> None:
    if variant == "parallel":
        from .parallel import parallel_multiply

        parallel_multiply(a_mm, b_mm, c_mm, kernel=kernel)
        return
    ops = NumpyOps(kernel)
    if variant == "winograd":
        winograd_multiply(a_mm, b_mm, c_mm, ops=ops)
    else:
        strassen_multiply(a_mm, b_mm, c_mm, ops=ops)


def modgemm_morton(
    a_mm: MortonMatrix,
    b_mm: MortonMatrix,
    c_mm: MortonMatrix | None = None,
    kernel: "str | LeafKernel" = "numpy",
    variant: str = "winograd",
    workspace: Workspace | None = None,
) -> MortonMatrix:
    """Multiply operands already in Morton order; no conversions (Figure 8).

    Operands must share the recursion depth and have conformable tile
    edges — i.e. they were created from a single
    :meth:`TruncationPolicy.plan`.  Returns the Morton-ordered product.
    """
    if c_mm is None:
        c_mm = MortonMatrix(
            buf=np.empty(
                (a_mm.tile_r << a_mm.depth) * (b_mm.tile_c << b_mm.depth),
                dtype=np.float64,
            ),
            rows=a_mm.rows,
            cols=b_mm.cols,
            tile_r=a_mm.tile_r,
            tile_c=b_mm.tile_c,
            depth=a_mm.depth,
        )
    ops = NumpyOps(kernel)
    if variant == "winograd":
        winograd_multiply(a_mm, b_mm, c_mm, ops=ops, workspace=workspace)
    elif variant == "strassen":
        strassen_multiply(a_mm, b_mm, c_mm, ops=ops, workspace=workspace)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return c_mm
