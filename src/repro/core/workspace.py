"""Preallocated scratch buffers for the Strassen recursions.

Each level of the Winograd recursion needs three quarter-size scratch
matrices (S for A-shaped sums, T for B-shaped sums, P for one C-shaped
product); the original Strassen variant needs a fourth (Q, C-shaped).
Because the seven recursive products at a level execute sequentially, the
deeper levels can all share one set of buffers — so total scratch is a
geometric series bounded by ~1/3 of the operand sizes per shape, allocated
once up front rather than churned per recursive call.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import MortonMatrix

__all__ = ["Workspace"]


class _Level:
    """Scratch Morton matrices for one recursion level."""

    __slots__ = ("s", "t", "p", "q")

    def __init__(
        self,
        depth: int,
        tiles_a: tuple[int, int],
        tiles_b: tuple[int, int],
        tiles_c: tuple[int, int],
        with_q: bool,
    ) -> None:
        def make(tile_r: int, tile_c: int) -> MortonMatrix:
            n = (tile_r << depth) * (tile_c << depth)
            return MortonMatrix(
                buf=np.empty(n, dtype=np.float64),
                rows=tile_r << depth,
                cols=tile_c << depth,
                tile_r=tile_r,
                tile_c=tile_c,
                depth=depth,
            )

        self.s = make(*tiles_a)
        self.t = make(*tiles_b)
        self.p = make(*tiles_c)
        self.q = make(*tiles_c) if with_q else None


class Workspace:
    """Scratch for a depth-``d`` recursion over a given tile geometry.

    ``levels[j]`` serves the recursion level whose *children* have depth
    ``d - 1 - j`` (i.e. the scratch matrices at ``levels[j]`` are quarter
    matrices of a depth-``d - j`` problem).
    """

    def __init__(
        self,
        depth: int,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        with_q: bool = False,
    ) -> None:
        self.depth = depth
        self.levels = [
            _Level(
                d,
                tiles_a=(tile_m, tile_k),
                tiles_b=(tile_k, tile_n),
                tiles_c=(tile_m, tile_n),
                with_q=with_q,
            )
            for d in range(depth - 1, -1, -1)
        ]

    def at(self, child_depth: int) -> _Level:
        """Scratch whose matrices have the given (child) depth."""
        return self.levels[self.depth - 1 - child_depth]

    @property
    def total_bytes(self) -> int:
        total = 0
        for lv in self.levels:
            total += lv.s.buf.nbytes + lv.t.buf.nbytes + lv.p.buf.nbytes
            if lv.q is not None:
                total += lv.q.buf.nbytes
        return total
