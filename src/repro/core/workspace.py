"""Preallocated scratch buffers for the Strassen recursions.

Each level of the classic Winograd recursion needs three quarter-size
scratch matrices (S for A-shaped sums, T for B-shaped sums, P for one
C-shaped product); the original Strassen variant needs a fourth (Q,
C-shaped).  Because the seven recursive products at a level execute
sequentially, the deeper levels can all share one set of buffers — so
total scratch is a geometric series bounded by ~1/3 of the operand sizes
per shape, allocated once up front rather than churned per recursive call.

The low-memory schedules of Boyer, Dumas, Pernet & Zhou shrink the per
level footprint further:

* ``two_temp`` keeps only two temporaries per level — one A-shaped X and
  one B-shaped Y — and lets the C quadrants hold the products directly.
  X also has to hold one C-shaped product (P1), so its backing buffer is
  sized ``max(|A quarter|, |C quarter|)`` and exposed through two aliased
  Morton views (``s`` A-shaped, ``p`` C-shaped).
* ``ip_overwrite`` needs **no** scratch at all: the recursion clobbers the
  A and B quadrants themselves.

``Workspace.nbytes`` reports the true allocation (aliased views counted
once); ``total_bytes`` is kept as a backwards-compatible alias.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import BatchMortonMatrix, MortonMatrix, staggered_buffer
from ..observe.validate import POISON

__all__ = ["Workspace", "BatchWorkspace", "WORKSPACE_SCHEDULES"]

#: Scratch layouts a :class:`Workspace` can be built for.
WORKSPACE_SCHEDULES = ("classic", "two_temp", "ip_overwrite")


def _view(buf: np.ndarray, depth: int, tile_r: int, tile_c: int) -> MortonMatrix:
    n = (tile_r << depth) * (tile_c << depth)
    return MortonMatrix(
        buf=buf[:n],
        rows=tile_r << depth,
        cols=tile_c << depth,
        tile_r=tile_r,
        tile_c=tile_c,
        depth=depth,
    )


class _Level:
    """Scratch Morton matrices for one recursion level.

    ``classic``: ``s``/``t``/``p`` (and ``q`` when ``with_q``) are four
    independent buffers.  ``two_temp``: ``s`` and ``p`` are two views of
    the *same* buffer (the schedule never needs both shapes live at once);
    ``q`` is ``None``.  ``ip_overwrite`` levels are never built.
    """

    __slots__ = ("s", "t", "p", "q", "nbytes")

    def __init__(
        self,
        depth: int,
        tiles_a: tuple[int, int],
        tiles_b: tuple[int, int],
        tiles_c: tuple[int, int],
        with_q: bool,
        schedule: str,
        dtype=np.float64,
    ) -> None:
        def elems(tile_r: int, tile_c: int) -> int:
            return (tile_r << depth) * (tile_c << depth)

        if schedule == "two_temp":
            x = np.empty(max(elems(*tiles_a), elems(*tiles_c)), dtype=dtype)
            y = np.empty(elems(*tiles_b), dtype=dtype)
            self.s = _view(x, depth, *tiles_a)
            self.t = _view(y, depth, *tiles_b)
            self.p = _view(x, depth, *tiles_c)  # aliases s — by design
            self.q = None
            self.nbytes = x.nbytes + y.nbytes
        else:
            self.s = _view(np.empty(elems(*tiles_a), dtype=dtype), depth, *tiles_a)
            self.t = _view(np.empty(elems(*tiles_b), dtype=dtype), depth, *tiles_b)
            self.p = _view(np.empty(elems(*tiles_c), dtype=dtype), depth, *tiles_c)
            self.q = (
                _view(np.empty(elems(*tiles_c), dtype=dtype), depth, *tiles_c)
                if with_q
                else None
            )
            self.nbytes = self.s.buf.nbytes + self.t.buf.nbytes + self.p.buf.nbytes
            if self.q is not None:
                self.nbytes += self.q.buf.nbytes


class Workspace:
    """Scratch for a depth-``d`` recursion over a given tile geometry.

    ``levels[j]`` serves the recursion level whose *children* have depth
    ``d - 1 - j`` (i.e. the scratch matrices at ``levels[j]`` are quarter
    matrices of a depth-``d - j`` problem).

    ``schedule`` selects the per-level layout (see module docstring); an
    ``ip_overwrite`` workspace owns no levels and no bytes.
    """

    def __init__(
        self,
        depth: int,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        with_q: bool = False,
        schedule: str = "classic",
        dtype=np.float64,
    ) -> None:
        if schedule not in WORKSPACE_SCHEDULES:
            raise ValueError(
                f"unknown workspace schedule {schedule!r}; "
                f"expected one of {WORKSPACE_SCHEDULES}"
            )
        if with_q and schedule != "classic":
            raise ValueError(
                "with_q (Strassen's Q buffer) is only meaningful for the "
                f"classic schedule, not {schedule!r}"
            )
        self.depth = depth
        self.schedule = schedule
        if schedule == "ip_overwrite":
            self.levels = []
        else:
            self.levels = [
                _Level(
                    d,
                    tiles_a=(tile_m, tile_k),
                    tiles_b=(tile_k, tile_n),
                    tiles_c=(tile_m, tile_n),
                    with_q=with_q,
                    schedule=schedule,
                    dtype=dtype,
                )
                for d in range(depth - 1, -1, -1)
            ]

    def at(self, child_depth: int) -> _Level:
        """Scratch whose matrices have the given (child) depth."""
        return self.levels[self.depth - 1 - child_depth]

    @property
    def nbytes(self) -> int:
        """Bytes actually allocated (aliased two_temp views counted once)."""
        return sum(lv.nbytes for lv in self.levels)

    @property
    def total_bytes(self) -> int:
        """Backwards-compatible alias for :attr:`nbytes`."""
        return self.nbytes

    def _buffers(self):
        for lv in self.levels:
            for mm in (lv.s, lv.t, lv.p, lv.q):
                if mm is not None:
                    yield mm.buf

    def poison(self, value: float = POISON) -> None:
        """Fill every scratch buffer with the quiescence sentinel.

        Debug mode calls this after each execution; every buffer is
        write-before-read within an execution, so the fill never changes
        results.  Aliased ``two_temp`` views are filled twice, harmlessly.
        """
        for buf in self._buffers():
            buf.fill(value)

    def poison_intact(self, value: float = POISON) -> bool:
        """True iff no scratch element changed since :meth:`poison`."""
        return all(bool((buf == value).all()) for buf in self._buffers())


class _BatchLevel:
    """Stacked scratch views for one recursion level of a batch stripe."""

    __slots__ = ("s", "t", "p", "q")

    def __init__(self, s, t, p, q) -> None:
        self.s, self.t, self.p, self.q = s, t, p, q


class _BatchWorkspaceView:
    """Duck-types :class:`Workspace` for one ``[lo, hi)`` row range.

    Each view's levels are row slices of the shared raw arrays, so
    disjoint batch stripes can recurse concurrently over the same
    :class:`BatchWorkspace` with no contention and no extra memory.
    """

    __slots__ = ("schedule", "depth", "levels")

    def __init__(self, schedule: str, depth: int, levels: list) -> None:
        self.schedule = schedule
        self.depth = depth
        self.levels = levels

    def at(self, child_depth: int) -> _BatchLevel:
        return self.levels[self.depth - 1 - child_depth]


class BatchWorkspace:
    """Batch-stacked scratch for ``cap`` same-geometry recursions at once.

    The raw backing arrays are ``(cap, elems)`` — one scratch row per batch
    item — and :meth:`view` carves ``[lo, hi)`` row-range adapters whose
    levels hold :class:`~repro.layout.matrix.BatchMortonMatrix` views.  The
    ``two_temp`` aliasing (A-shaped X doubling as the C-shaped P1 slot)
    carries over as two column-prefix views of the same rows.
    ``ip_overwrite`` is rejected: the batched path never clobbers operands.
    """

    def __init__(
        self,
        cap: int,
        depth: int,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        with_q: bool = False,
        schedule: str = "classic",
        dtype=np.float64,
        stagger: int = 0,
    ) -> None:
        if schedule not in ("classic", "two_temp"):
            raise ValueError(
                f"BatchWorkspace supports 'classic' and 'two_temp', not {schedule!r}"
            )
        if with_q and schedule != "classic":
            raise ValueError("with_q requires the classic schedule")
        self.cap = cap
        self.depth = depth
        self.schedule = schedule
        self.dtype = np.dtype(dtype)
        self._tiles = (tile_m, tile_k, tile_n)
        self._raw: list[dict] = []  # per level, outermost first
        self._views: dict[tuple[int, int], _BatchWorkspaceView] = {}
        # Stack rows are large power-of-two-multiple allocations, so give
        # every buffer a distinct stagger index (continuing from the
        # caller's base) to keep their rows off common cache sets.
        def alloc(elems: int) -> np.ndarray:
            nonlocal stagger
            buf = staggered_buffer((cap, elems), dtype, stagger)
            stagger += 1 if stagger else 0
            return buf

        for d in range(depth - 1, -1, -1):
            ea = (tile_m << d) * (tile_k << d)
            eb = (tile_k << d) * (tile_n << d)
            ec = (tile_m << d) * (tile_n << d)
            if schedule == "two_temp":
                raw = {
                    "x": alloc(max(ea, ec)),
                    "y": alloc(eb),
                }
            else:
                raw = {
                    "s": alloc(ea),
                    "t": alloc(eb),
                    "p": alloc(ec),
                }
                if with_q:
                    raw["q"] = alloc(ec)
            raw["_depth"] = d
            self._raw.append(raw)

    def _bmm(self, buf2d, depth: int, tile_r: int, tile_c: int) -> BatchMortonMatrix:
        elems = (tile_r << depth) * (tile_c << depth)
        return BatchMortonMatrix(
            buf=buf2d[:, :elems],
            rows=tile_r << depth,
            cols=tile_c << depth,
            tile_r=tile_r,
            tile_c=tile_c,
            depth=depth,
        )

    def view(self, lo: int, hi: int) -> _BatchWorkspaceView:
        """Workspace adapter over batch rows ``[lo, hi)`` (cached)."""
        if not (0 <= lo < hi <= self.cap):
            raise ValueError(f"stripe [{lo}, {hi}) outside capacity {self.cap}")
        key = (lo, hi)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        tile_m, tile_k, tile_n = self._tiles
        levels = []
        for raw in self._raw:
            d = raw["_depth"]
            if self.schedule == "two_temp":
                x, y = raw["x"][lo:hi], raw["y"][lo:hi]
                levels.append(
                    _BatchLevel(
                        s=self._bmm(x, d, tile_m, tile_k),
                        t=self._bmm(y, d, tile_k, tile_n),
                        p=self._bmm(x, d, tile_m, tile_n),  # aliases s
                        q=None,
                    )
                )
            else:
                levels.append(
                    _BatchLevel(
                        s=self._bmm(raw["s"][lo:hi], d, tile_m, tile_k),
                        t=self._bmm(raw["t"][lo:hi], d, tile_k, tile_n),
                        p=self._bmm(raw["p"][lo:hi], d, tile_m, tile_n),
                        q=self._bmm(raw["q"][lo:hi], d, tile_m, tile_n)
                        if "q" in raw
                        else None,
                    )
                )
        view = _BatchWorkspaceView(self.schedule, self.depth, levels)
        self._views[key] = view
        return view

    @property
    def nbytes(self) -> int:
        """Bytes actually allocated (aliased two_temp views counted once)."""
        return sum(
            arr.nbytes
            for raw in self._raw
            for name, arr in raw.items()
            if name != "_depth"
        )

    @property
    def total_bytes(self) -> int:
        return self.nbytes

    def _buffers(self):
        for raw in self._raw:
            for name, arr in raw.items():
                if name != "_depth":
                    yield arr

    def poison(self, value: float = POISON) -> None:
        """Fill every stacked scratch row with the quiescence sentinel."""
        for arr in self._buffers():
            arr.fill(value)

    def poison_intact(self, value: float = POISON) -> bool:
        """True iff no stacked scratch element changed since :meth:`poison`."""
        return all(bool((arr == value).all()) for arr in self._buffers())
