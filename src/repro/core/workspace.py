"""Preallocated scratch buffers for the Strassen recursions.

Each level of the classic Winograd recursion needs three quarter-size
scratch matrices (S for A-shaped sums, T for B-shaped sums, P for one
C-shaped product); the original Strassen variant needs a fourth (Q,
C-shaped).  Because the seven recursive products at a level execute
sequentially, the deeper levels can all share one set of buffers — so
total scratch is a geometric series bounded by ~1/3 of the operand sizes
per shape, allocated once up front rather than churned per recursive call.

The low-memory schedules of Boyer, Dumas, Pernet & Zhou shrink the per
level footprint further:

* ``two_temp`` keeps only two temporaries per level — one A-shaped X and
  one B-shaped Y — and lets the C quadrants hold the products directly.
  X also has to hold one C-shaped product (P1), so its backing buffer is
  sized ``max(|A quarter|, |C quarter|)`` and exposed through two aliased
  Morton views (``s`` A-shaped, ``p`` C-shaped).
* ``ip_overwrite`` needs **no** scratch at all: the recursion clobbers the
  A and B quadrants themselves.

``Workspace.nbytes`` reports the true allocation (aliased views counted
once); ``total_bytes`` is kept as a backwards-compatible alias.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import MortonMatrix

__all__ = ["Workspace", "WORKSPACE_SCHEDULES"]

#: Scratch layouts a :class:`Workspace` can be built for.
WORKSPACE_SCHEDULES = ("classic", "two_temp", "ip_overwrite")


def _view(buf: np.ndarray, depth: int, tile_r: int, tile_c: int) -> MortonMatrix:
    n = (tile_r << depth) * (tile_c << depth)
    return MortonMatrix(
        buf=buf[:n],
        rows=tile_r << depth,
        cols=tile_c << depth,
        tile_r=tile_r,
        tile_c=tile_c,
        depth=depth,
    )


class _Level:
    """Scratch Morton matrices for one recursion level.

    ``classic``: ``s``/``t``/``p`` (and ``q`` when ``with_q``) are four
    independent buffers.  ``two_temp``: ``s`` and ``p`` are two views of
    the *same* buffer (the schedule never needs both shapes live at once);
    ``q`` is ``None``.  ``ip_overwrite`` levels are never built.
    """

    __slots__ = ("s", "t", "p", "q", "nbytes")

    def __init__(
        self,
        depth: int,
        tiles_a: tuple[int, int],
        tiles_b: tuple[int, int],
        tiles_c: tuple[int, int],
        with_q: bool,
        schedule: str,
    ) -> None:
        def elems(tile_r: int, tile_c: int) -> int:
            return (tile_r << depth) * (tile_c << depth)

        if schedule == "two_temp":
            x = np.empty(max(elems(*tiles_a), elems(*tiles_c)), dtype=np.float64)
            y = np.empty(elems(*tiles_b), dtype=np.float64)
            self.s = _view(x, depth, *tiles_a)
            self.t = _view(y, depth, *tiles_b)
            self.p = _view(x, depth, *tiles_c)  # aliases s — by design
            self.q = None
            self.nbytes = x.nbytes + y.nbytes
        else:
            self.s = _view(np.empty(elems(*tiles_a), dtype=np.float64), depth, *tiles_a)
            self.t = _view(np.empty(elems(*tiles_b), dtype=np.float64), depth, *tiles_b)
            self.p = _view(np.empty(elems(*tiles_c), dtype=np.float64), depth, *tiles_c)
            self.q = (
                _view(np.empty(elems(*tiles_c), dtype=np.float64), depth, *tiles_c)
                if with_q
                else None
            )
            self.nbytes = self.s.buf.nbytes + self.t.buf.nbytes + self.p.buf.nbytes
            if self.q is not None:
                self.nbytes += self.q.buf.nbytes


class Workspace:
    """Scratch for a depth-``d`` recursion over a given tile geometry.

    ``levels[j]`` serves the recursion level whose *children* have depth
    ``d - 1 - j`` (i.e. the scratch matrices at ``levels[j]`` are quarter
    matrices of a depth-``d - j`` problem).

    ``schedule`` selects the per-level layout (see module docstring); an
    ``ip_overwrite`` workspace owns no levels and no bytes.
    """

    def __init__(
        self,
        depth: int,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        with_q: bool = False,
        schedule: str = "classic",
    ) -> None:
        if schedule not in WORKSPACE_SCHEDULES:
            raise ValueError(
                f"unknown workspace schedule {schedule!r}; "
                f"expected one of {WORKSPACE_SCHEDULES}"
            )
        if with_q and schedule != "classic":
            raise ValueError(
                "with_q (Strassen's Q buffer) is only meaningful for the "
                f"classic schedule, not {schedule!r}"
            )
        self.depth = depth
        self.schedule = schedule
        if schedule == "ip_overwrite":
            self.levels = []
        else:
            self.levels = [
                _Level(
                    d,
                    tiles_a=(tile_m, tile_k),
                    tiles_b=(tile_k, tile_n),
                    tiles_c=(tile_m, tile_n),
                    with_q=with_q,
                    schedule=schedule,
                )
                for d in range(depth - 1, -1, -1)
            ]

    def at(self, child_depth: int) -> _Level:
        """Scratch whose matrices have the given (child) depth."""
        return self.levels[self.depth - 1 - child_depth]

    @property
    def nbytes(self) -> int:
        """Bytes actually allocated (aliased two_temp views counted once)."""
        return sum(lv.nbytes for lv in self.levels)

    @property
    def total_bytes(self) -> int:
        """Backwards-compatible alias for :attr:`nbytes`."""
        return self.nbytes
