"""Task-parallel Strassen-Winograd over the seven independent products.

Winograd's seven recursive products P1..P7 have no mutual dependencies —
only the S/T operand sums before them and the U-chain combinations after
them are ordered.  This module exploits that with a thread pool at the top
recursion level: each product runs the ordinary sequential recursion of
:mod:`repro.core.winograd` into its own scratch quarter-matrix with its
own workspace, and the combination phase then reduces them into the C
quadrants with flat vector additions.

Threads (not processes) are the right tool here: the leaf kernels are BLAS
calls and the additions large-array numpy ufuncs, both of which release
the GIL, so the 7 products genuinely overlap.  Memory cost: 4 + 4 operand
sums and 7 product buffers, all quarter-size — about 3.75x one quadrant,
versus the sequential schedule's 4 scratch quarters.

This realises the "parallel computing" thread of the paper's related work
(Morton ordering originated partly in parallel load balancing) and is the
natural first step beyond the paper's single-processor evaluation (it used
one processor of the two-CPU Ultra 60).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..blas.kernels import LeafKernel
from ..layout.matrix import MortonMatrix
from ..layout.padding import Tiling
from .ops import NumpyOps
from .winograd import _check_conformable, winograd_multiply
from .workspace import Workspace

__all__ = ["parallel_multiply", "ParallelScratch"]


def _scratch(rows_tile: int, cols_tile: int, depth: int) -> MortonMatrix:
    n = (rows_tile << depth) * (cols_tile << depth)
    return MortonMatrix(
        buf=np.empty(n, dtype=np.float64),
        rows=rows_tile << depth,
        cols=cols_tile << depth,
        tile_r=rows_tile,
        tile_c=cols_tile,
        depth=depth,
    )


class ParallelScratch:
    """Reusable scratch for :func:`parallel_multiply` at one geometry.

    Holds the 4 + 4 operand-sum quarters, the 7 product quarters, and one
    :class:`Workspace` per product thread — everything the thread-pool
    schedule would otherwise allocate per call.  A scratch is bound to the
    top-level operand geometry ``(tile_m, tile_k, tile_n, depth)``; the
    engine pools one per compiled plan so repeated same-geometry multiplies
    allocate nothing.
    """

    def __init__(self, tile_m: int, tile_k: int, tile_n: int, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"ParallelScratch needs depth >= 1, got {depth}")
        d = depth - 1
        self.depth = depth
        self.s = [_scratch(tile_m, tile_k, d) for _ in range(4)]
        self.t = [_scratch(tile_k, tile_n, d) for _ in range(4)]
        self.p = [_scratch(tile_m, tile_n, d) for _ in range(7)]
        self.workspaces = (
            [Workspace(d, tile_m, tile_k, tile_n, with_q=True) for _ in range(7)]
            if d > 0 else [None] * 7
        )

    def matches(self, a: MortonMatrix, b: MortonMatrix) -> bool:
        """True when this scratch serves the given operand pair."""
        s, t = self.s[0], self.t[0]
        return (
            a.depth == self.depth
            and s.tile_r == a.tile_r and s.tile_c == a.tile_c
            and t.tile_r == b.tile_r and t.tile_c == b.tile_c
        )

    @property
    def total_bytes(self) -> int:
        """Bytes held across all pooled quarters and workspaces."""
        total = sum(m.buf.nbytes for m in self.s + self.t + self.p)
        for ws in self.workspaces:
            if ws is not None:
                total += ws.total_bytes
        return total


def parallel_multiply(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix | None = None,
    kernel: "str | LeafKernel" = "numpy",
    max_workers: int = 7,
    scratch: ParallelScratch | None = None,
) -> MortonMatrix:
    """``C = A . B`` with the 7 top-level products on a thread pool.

    Falls back to the sequential recursion for depth-0 operands.  Returns
    the (possibly freshly allocated) Morton product.  ``scratch`` supplies
    pooled intermediate buffers (see :class:`ParallelScratch`); when absent
    a fresh set is allocated, matching the historical behaviour.
    """
    if c is None:
        c = _scratch(a.tile_r, b.tile_c, a.depth)
        c.rows, c.cols = a.rows, b.cols
    _check_conformable(a, b, c)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    ops = NumpyOps(kernel)
    if a.depth == 0:
        ops.leaf_mult(a, b, c)
        return c
    if scratch is None:
        scratch = ParallelScratch(a.tile_r, a.tile_c, b.tile_c, a.depth)
    elif not scratch.matches(a, b):
        raise ValueError("scratch geometry does not match the operands")

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    d = a11.depth

    s1, s2, s3, s4 = scratch.s
    t1, t2, t3, t4 = scratch.t
    ops.add(s1, a21, a22)
    ops.sub(s2, s1, a11)
    ops.sub(s3, a11, a21)
    ops.sub(s4, a12, s2)
    ops.sub(t1, b12, b11)
    ops.sub(t2, b22, t1)
    ops.sub(t3, b22, b12)
    ops.sub(t4, b21, t2)

    products = [
        (a11, b11),  # P1
        (a12, b21),  # P2
        (s1, t1),    # P3
        (s2, t2),    # P4
        (s3, t3),    # P5
        (s4, b22),   # P6
        (a22, t4),   # P7
    ]
    results = scratch.p

    def run(i: int) -> None:
        x, y = products[i]
        ws = scratch.workspaces[i]
        if ws is None and d > 0:
            ws = Workspace(d, x.tile_r, x.tile_c, y.tile_c, with_q=True)
        winograd_multiply(x, y, results[i], ops=NumpyOps(kernel), workspace=ws)

    if max_workers == 1:
        for i in range(7):
            run(i)
    else:
        with ThreadPoolExecutor(max_workers=min(max_workers, 7)) as pool:
            list(pool.map(run, range(7)))

    p1, p2, p3, p4, p5, p6, p7 = results
    ops.add(c11, p1, p2)       # U1
    ops.add(c12, p1, p4)       # U2 staged in C12
    ops.add(c21, c12, p5)      # U3 staged in C21
    ops.add(c22, c21, p3)      # U5 = C22 final
    ops.iadd(c12, p3)          # U6
    ops.iadd(c12, p6)          # U7 = C12 final
    ops.iadd(c21, p7)          # U4 = C21 final
    return c
