"""The Strassen-Winograd recursion as an explicit task DAG.

The recursion's parallelism is richer than "run the seven top-level
products on a pool": at expansion depth ``d`` there are ``7**d``
independent recursive products, and the S/T operand sums and U-chain
combinations around them form a dependency graph whose edges are exactly
the data flow of the Section 2 equation set.  This module builds that
graph (:func:`build_winograd_graph`) over preallocated scratch
(:class:`TaskScratch`) for execution on a persistent
:class:`repro.core.scheduler.WorkerPool`.

Bit-identity with the sequential schedule
-----------------------------------------
Every task performs the *same* numpy operation on the *same* operand
values as one step of :func:`repro.core.winograd.winograd_multiply` — the
only freedoms taken are (a) writing sums/products to dedicated buffers
instead of the sequential schedule's recycled scratch and (b) commuting
the two inputs of some U-chain additions.  IEEE-754 addition is
commutative (identical rounding either way), so results are bitwise equal
to the sequential recursion regardless of worker count or interleaving —
the property the engine's tests pin down.  Each combination's dependency
edges include both its data inputs and the earlier *readers* of the
quadrant it overwrites (write-after-read hazards), so any topological
execution order is equivalent.

Memory: level 1 of the expansion holds 4+4 operand-sum quarters and 7
product quarters (~3.75x one quadrant); each further level adds the same
shape one size down for each of its 7 nodes.  Leaf tasks below the
expansion run the ordinary sequential recursion with a :class:`Workspace`
drawn from a pool sized to the concurrency hint, so no allocation happens
on the warm path.

The historical :func:`parallel_multiply` survives as a thin deprecated
wrapper over this machinery.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from ..blas.kernels import LeafKernel
from ..layout.matrix import MortonMatrix
from ..layout.relabel import relabel_scratch
from .ops import NumpyOps, WinogradOps
from .scheduler import TaskGraph, WorkerPool, stripe_ranges
from ..observe.validate import POISON
from .winograd import _check_conformable, _recurse, _recurse_two_temp, resolve_memory
from .workspace import Workspace

__all__ = [
    "TaskScratch",
    "ParallelScratch",
    "build_winograd_graph",
    "run_batch_stripes",
    "parallel_multiply",
]


def _scratch(
    rows_tile: int, cols_tile: int, depth: int, dtype=np.float64
) -> MortonMatrix:
    n = (rows_tile << depth) * (cols_tile << depth)
    return MortonMatrix(
        buf=np.empty(n, dtype=dtype),
        rows=rows_tile << depth,
        cols=cols_tile << depth,
        tile_r=rows_tile,
        tile_c=cols_tile,
        depth=depth,
    )


class _NodeScratch:
    """Sum/product buffers for one expanded node, with child nodes below."""

    __slots__ = ("s", "t", "p", "children")

    def __init__(
        self, tile_m: int, tile_k: int, tile_n: int, depth: int, levels: int,
        dtype=np.float64,
    ) -> None:
        d = depth - 1
        self.s = [_scratch(tile_m, tile_k, d, dtype) for _ in range(4)]
        self.t = [_scratch(tile_k, tile_n, d, dtype) for _ in range(4)]
        self.p = [_scratch(tile_m, tile_n, d, dtype) for _ in range(7)]
        self.children = (
            [
                _NodeScratch(tile_m, tile_k, tile_n, d, levels - 1, dtype)
                for _ in range(7)
            ]
            if levels > 1 and d >= 1
            else None
        )

    @property
    def total_bytes(self) -> int:
        total = sum(m.buf.nbytes for m in self.s + self.t + self.p)
        if self.children is not None:
            total += sum(child.total_bytes for child in self.children)
        return total

    @property
    def buffer_count(self) -> int:
        n = 15
        if self.children is not None:
            n += sum(child.buffer_count for child in self.children)
        return n


class _WorkspacePool:
    """A blocking free-list of leaf :class:`Workspace` objects.

    Sized to the concurrency hint, so a leaf task never waits unless more
    workers than planned are executing leaves at once — and even then the
    wait is deadlock-free: holders are running tasks that always release.
    """

    def __init__(self, workspaces: list[Workspace]) -> None:
        self._free = list(workspaces)
        self._cond = threading.Condition()
        self.size = len(workspaces)

    def acquire(self) -> Workspace:
        with self._cond:
            while not self._free:
                self._cond.wait()
            return self._free.pop()

    def release(self, ws: Workspace) -> None:
        with self._cond:
            self._free.append(ws)
            self._cond.notify()

    @property
    def all_free(self) -> bool:
        """True when every workspace has been returned (pool quiescent)."""
        with self._cond:
            return len(self._free) == self.size

    @property
    def total_bytes(self) -> int:
        # Stable: workspaces in flight return before anyone reads stats.
        return sum(ws.total_bytes for ws in self._free)


class TaskScratch:
    """Pooled intermediates for the task-DAG schedule at one geometry.

    Holds the expansion tree of operand-sum and product buffers down to
    ``parallel_depth`` levels, plus ``min(workers, 7**parallel_depth)``
    leaf workspaces for the sequential recursions below the expansion.
    Bound to the operand geometry ``(tile_m, tile_k, tile_n, depth)``; the
    engine pools one per compiled plan.

    ``memory`` selects the leaf recursion's schedule: ``"two_temp"``
    halves every pooled leaf :class:`Workspace` (the per-worker footprint
    that dominates at high worker counts).  ``"ip_overwrite"`` is
    rejected — leaf tasks share operand quadrant views with concurrent
    tasks, which an in-place recursion would clobber.
    """

    def __init__(
        self,
        tile_m: int,
        tile_k: int,
        tile_n: int,
        depth: int,
        parallel_depth: int = 1,
        workers: int = 7,
        memory: "str | None" = "classic",
        dtype=np.float64,
    ) -> None:
        if depth < 1:
            raise ValueError(f"TaskScratch needs depth >= 1, got {depth}")
        if parallel_depth < 1:
            raise ValueError(
                f"parallel_depth must be >= 1, got {parallel_depth}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        memory = resolve_memory(memory)
        if memory == "ip_overwrite":
            raise ValueError(
                "memory='ip_overwrite' cannot run under the task scheduler: "
                "leaf recursions would clobber operand quadrants shared "
                "with concurrent tasks; use 'classic' or 'two_temp'"
            )
        self.depth = depth
        self.parallel_depth = min(parallel_depth, depth)
        self.workers = workers
        self.memory = memory
        self.root = _NodeScratch(
            tile_m, tile_k, tile_n, depth, self.parallel_depth, dtype
        )
        leaf_depth = depth - self.parallel_depth
        n_ws = min(workers, 7**self.parallel_depth) if leaf_depth > 0 else 0
        if memory == "two_temp":
            leaf_ws = [
                Workspace(
                    leaf_depth, tile_m, tile_k, tile_n,
                    schedule="two_temp", dtype=dtype,
                )
                for _ in range(n_ws)
            ]
        else:
            leaf_ws = [
                Workspace(
                    leaf_depth, tile_m, tile_k, tile_n, with_q=True, dtype=dtype
                )
                for _ in range(n_ws)
            ]
        self.workspace_pool = _WorkspacePool(leaf_ws)

    def matches(self, a: MortonMatrix, b: MortonMatrix) -> bool:
        """True when this scratch serves the given operand pair."""
        s, t = self.root.s[0], self.root.t[0]
        return (
            a.depth == self.depth
            and s.tile_r == a.tile_r and s.tile_c == a.tile_c
            and t.tile_r == b.tile_r and t.tile_c == b.tile_c
        )

    def _buffers(self):
        stack = [self.root]
        while stack:
            node = stack.pop()
            for mm in node.s + node.t + node.p:
                yield mm.buf
            if node.children is not None:
                stack.extend(node.children)

    def poison(self, value: float = POISON) -> None:
        """Fill the expansion-tree buffers and idle leaf workspaces.

        Call only between executions (the workspace pool must be fully
        free): every one of these buffers is write-before-read within a
        run, so the fill cannot perturb results.
        """
        for buf in self._buffers():
            buf.fill(value)
        for ws in self.workspace_pool._free:
            ws.poison(value)

    def poison_intact(self, value: float = POISON) -> bool:
        """True iff no pooled buffer changed since :meth:`poison`."""
        return all(
            bool((buf == value).all()) for buf in self._buffers()
        ) and all(ws.poison_intact(value) for ws in self.workspace_pool._free)

    @property
    def total_bytes(self) -> int:
        """Bytes held across all pooled buffers and leaf workspaces."""
        return self.root.total_bytes + self.workspace_pool.total_bytes

    @property
    def buffer_count(self) -> int:
        """Morton scratch buffers held (for session allocation counters)."""
        leaf_depth = self.depth - self.parallel_depth
        per_level = 2 if self.memory == "two_temp" else 4
        return (
            self.root.buffer_count
            + per_level * leaf_depth * self.workspace_pool.size
        )


class ParallelScratch(TaskScratch):
    """Deprecated alias of :class:`TaskScratch` at expansion depth 1.

    Kept for callers of the historical ``parallel_multiply(scratch=...)``
    form; new code should let a :class:`repro.engine.GemmSession` pool a
    :class:`TaskScratch` inside its compiled plans.
    """

    def __init__(self, tile_m: int, tile_k: int, tile_n: int, depth: int) -> None:
        super().__init__(tile_m, tile_k, tile_n, depth, parallel_depth=1, workers=7)


def build_winograd_graph(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    scratch: TaskScratch,
    ops: WinogradOps | None = None,
    alpha: float = 1.0,
    pack_a=None,
    pack_b=None,
) -> TaskGraph:
    """Build the reusable task DAG computing ``C = alpha . A . B``.

    The graph closes over the operand/product buffers and the scratch, so
    it is built once per (plan, scratch) pair and re-run without touching
    the allocator — ``alpha`` is baked into the outermost U-add closures
    (a plan's spec is frozen, so this costs nothing per run).  Requires
    ``a.depth >= 1`` (use the sequential path for leaf-only operands).
    The operands may be :class:`~repro.layout.relabel.TransposedView`
    wrappers; the expansion relabels its per-node scratch to match.

    ``pack_a``/``pack_b`` (both or neither) are fused convert-and-pack
    closures that become the graph's two root tasks: each converts its
    operand's consumed quadrants and packs the S1/S3 (T1/T3) sums —
    S1/T1 into the A21/B12 quadrant slots, S3/T3 into ``root.s[2]`` /
    ``root.t[2]`` (the graph's S3/T3 buffers).  The outermost expansion
    then skips its four S1/S3/T1/T3 sum tasks and every consumer gains a
    dependency edge on the pack task of the operand side it reads; the
    two operand conversions also overlap on the pool instead of running
    sequentially before the graph.  Requires plain (non-relabeled)
    operands.
    """
    _check_conformable(a, b, c)
    if not scratch.matches(a, b):
        raise ValueError("scratch geometry does not match the operands")
    if (pack_a is None) != (pack_b is None):
        raise ValueError("pack_a and pack_b must be given together")
    prepacked = pack_a is not None
    if prepacked and (
        getattr(a, "transposed", False) or getattr(b, "transposed", False)
    ):
        raise ValueError(
            "fused packing cannot consume relabeled (transposed) operands"
        )
    if ops is None:
        ops = NumpyOps()
    graph = TaskGraph(name=f"winograd-{a.rows}x{a.cols}x{b.cols}")
    graph.tracer = getattr(ops, "trace", None)
    deps_a: tuple = ()
    deps_b: tuple = ()
    if prepacked:
        deps_a = (graph.add(pack_a, label="pack_a"),)
        deps_b = (graph.add(pack_b, label="pack_b"),)
    _expand(graph, ops, scratch, a, b, c, scratch.root,
            scratch.parallel_depth, deps_a, deps_b, alpha,
            prepacked=prepacked)
    return graph


def _expand(
    graph: TaskGraph,
    ops: WinogradOps,
    scratch: TaskScratch,
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    node: _NodeScratch | None,
    levels: int,
    deps_a: tuple,
    deps_b: tuple,
    alpha: float = 1.0,
    prepacked: bool = False,
) -> list:
    """Emit tasks computing ``c = alpha . a . b``; return c's final tasks.

    Sub-products recurse with ``alpha=1``: only the outermost expansion's
    final U-adds (or its leaf closure, if the whole product is one task)
    carry the scale, mirroring the sequential schedules.
    """
    if levels == 0 or a.depth == 0:
        ws_pool = scratch.workspace_pool
        recurse = (
            _recurse_two_temp if scratch.memory == "two_temp" else _recurse
        )

        if a.depth == 0:
            def leaf(x=a, y=b, out=c):
                if alpha == 1.0:
                    ops.leaf_mult(x, y, out)
                else:
                    ops.leaf_mult(x, y, out, alpha)
        else:
            def leaf(x=a, y=b, out=c):
                ws = ws_pool.acquire()
                try:
                    recurse(x, y, out, ops, ws, alpha)
                finally:
                    ws_pool.release(ws)

        return [graph.add(leaf, deps=(*deps_a, *deps_b), label="product")]

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    s1, s2, s3, s4 = node.s
    t1, t2, t3, t4 = node.t
    p = node.p
    # Mirror the sequential recursions: S/T sums of a relabeled operand
    # carry its native Morton permutation, so the node scratch receiving
    # them is descended through the same relabel (products stay plain).
    if getattr(a, "transposed", False):
        s1, s2, s3, s4 = (relabel_scratch(m) for m in node.s)
    if getattr(b, "transposed", False):
        t1, t2, t3, t4 = (relabel_scratch(m) for m in node.t)

    def op2(fn, dst, x, y):
        return lambda: fn(dst, x, y)

    # Operand sums (Section 2): chained in dataflow order.  Dedicated
    # destination buffers replace the sequential schedule's recycled S/T
    # scratch, so the four sums per side can proceed concurrently.
    if prepacked:
        # The root pack tasks (in deps_a/deps_b) already materialised
        # S1/T1 in the A21/B12 quadrant slots and S3/T3 in this node's
        # s[2]/t[2] buffers; only the S2/S4 and T2/T4 chains remain.
        s1 = a.quadrant(1, 0)
        t1 = b.quadrant(0, 1)
        ts2 = graph.add(op2(ops.sub, s2, s1, a11), deps=deps_a, label="S2")
        ts4 = graph.add(
            op2(ops.sub, s4, a12, s2), deps=(ts2, *deps_a), label="S4"
        )
        tt2 = graph.add(op2(ops.sub, t2, b22, t1), deps=deps_b, label="T2")
        tt4 = graph.add(
            op2(ops.sub, t4, b21, t2), deps=(tt2, *deps_b), label="T4"
        )
        p3_deps = (deps_a, deps_b)
        p5_deps = (deps_a, deps_b)
    else:
        ts1 = graph.add(op2(ops.add, s1, a21, a22), deps=deps_a, label="S1")
        ts2 = graph.add(
            op2(ops.sub, s2, s1, a11), deps=(ts1, *deps_a), label="S2"
        )
        ts3 = graph.add(op2(ops.sub, s3, a11, a21), deps=deps_a, label="S3")
        ts4 = graph.add(
            op2(ops.sub, s4, a12, s2), deps=(ts2, *deps_a), label="S4"
        )
        tt1 = graph.add(op2(ops.sub, t1, b12, b11), deps=deps_b, label="T1")
        tt2 = graph.add(
            op2(ops.sub, t2, b22, t1), deps=(tt1, *deps_b), label="T2"
        )
        tt3 = graph.add(op2(ops.sub, t3, b22, b12), deps=deps_b, label="T3")
        tt4 = graph.add(
            op2(ops.sub, t4, b21, t2), deps=(tt2, *deps_b), label="T4"
        )
        p3_deps = ((ts1,), (tt1,))
        p5_deps = ((ts3,), (tt3,))

    kids = node.children or [None] * 7

    def product(i, x, y, dx, dy):
        return _expand(graph, ops, scratch, x, y, p[i], kids[i],
                       levels - 1, dx, dy)

    p1 = product(0, a11, b11, deps_a, deps_b)
    p2 = product(1, a12, b21, deps_a, deps_b)
    p3 = product(2, s1, t1, *p3_deps)
    p4 = product(3, s2, t2, (ts2,), (tt2,))
    p5 = product(4, s3, t3, *p5_deps)
    p6 = product(5, s4, b22, (ts4,), deps_b)
    p7 = product(6, a22, t4, deps_a, (tt4,))

    # U-chain combinations.  Values match the sequential schedule bitwise
    # (see module docstring); edges beyond the data inputs order the
    # staged writes: u3 reads C12 before u7a overwrites it, u5 reads C21
    # before u4 does.
    u2 = graph.add(op2(ops.add, c12, p[0], p[3]), deps=(*p1, *p4), label="U2")
    u3 = graph.add(op2(ops.add, c21, c12, p[4]), deps=(u2, *p5), label="U3")
    u7a = graph.add(lambda: ops.iadd(c12, p[5]), deps=(u3, *p6), label="U7a")
    if alpha == 1.0:
        u1 = graph.add(
            op2(ops.add, c11, p[0], p[1]), deps=(*p1, *p2), label="U1"
        )
        u5 = graph.add(
            op2(ops.add, c22, c21, p[2]), deps=(u3, *p3), label="U5"
        )
        u7b = graph.add(
            lambda: ops.iadd(c12, p[2]), deps=(u7a, *p3), label="U7b"
        )
        u4 = graph.add(
            lambda: ops.iadd(c21, p[6]), deps=(u5, *p7), label="U4"
        )
    else:
        # Each quadrant's *final* U-add carries alpha; every final reads
        # only staged (unscaled) values — the (u5, *p7) edge on u4 already
        # orders u5's read of C21 before u4 scales it in place.
        u1 = graph.add(
            lambda: ops.add_scale(c11, p[0], p[1], alpha),
            deps=(*p1, *p2), label="U1",
        )
        u5 = graph.add(
            lambda: ops.add_scale(c22, c21, p[2], alpha),
            deps=(u3, *p3), label="U5",
        )
        u7b = graph.add(
            lambda: ops.iadd_scale(c12, p[2], alpha),
            deps=(u7a, *p3), label="U7b",
        )
        u4 = graph.add(
            lambda: ops.iadd_scale(c21, p[6], alpha),
            deps=(u5, *p7), label="U4",
        )
    return [u1, u7b, u4, u5]


def run_batch_stripes(
    pool: "WorkerPool | None",
    batch: int,
    stripe_fn,
    workers: int,
    name: str = "batch-stripes",
    tracer=None,
) -> int:
    """Run ``stripe_fn(lo, hi)`` over even stripes of ``range(batch)``.

    The batched GEMM's parallel schedule: instead of expanding one item's
    recursion into a 7-way task DAG, the *batch axis* splits into
    contiguous row stripes — one task per stripe, each running the
    sequential batched recursion over its rows.  Stripes touch disjoint
    batch rows of the operand, output, and workspace stacks, so tasks need
    no ordering edges and results are bit-identical to the unstriped run
    (each item's arithmetic is unchanged; only which rows share a ufunc
    call varies).  Returns the number of stripes executed.  With no pool
    (or a single stripe) the stripes run inline.

    ``tracer`` (a :class:`repro.observe.Tracer`) receives one
    ``batch_stripe`` event per completed stripe and, on the pooled path,
    the worker start/steal/finish events of the throwaway stripe graph.
    """
    stripes = stripe_ranges(batch, workers)

    def job(lo: int, hi: int):
        def run():
            stripe_fn(lo, hi)
            if tracer is not None and tracer.enabled:
                tracer.emit("batch_stripe", label=name, lo=lo, hi=hi)

        return run

    if pool is None or len(stripes) <= 1:
        for lo, hi in stripes:
            job(lo, hi)()
        return len(stripes)
    pool.run_all([job(lo, hi) for lo, hi in stripes], name=name, tracer=tracer)
    return len(stripes)


# --------------------------------------------------------------- legacy API

_legacy_pools: dict[int, WorkerPool] = {}
_legacy_lock = threading.Lock()


def _legacy_pool(workers: int) -> WorkerPool:
    with _legacy_lock:
        pool = _legacy_pools.get(workers)
        if pool is None:
            pool = _legacy_pools[workers] = WorkerPool(
                workers, name=f"repro-legacy-{workers}"
            )
        return pool


def parallel_multiply(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix | None = None,
    kernel: "str | LeafKernel" = "numpy",
    max_workers: int = 7,
    scratch: TaskScratch | None = None,
) -> MortonMatrix:
    """``C = A . B`` on a worker pool (deprecated free-standing form).

    .. deprecated::
        Use a :class:`repro.engine.GemmSession` with
        ``schedule=Schedule.tasks(...)`` (or ``parallel=True``) instead:
        sessions own a persistent worker pool and pool all scratch inside
        compiled plans, where this wrapper rebuilds the task graph per
        call.  Results are bit-identical to the session's task schedule
        (and to the sequential recursion).

    Falls back to the sequential leaf multiply for depth-0 operands.
    ``scratch`` supplies pooled intermediate buffers (see
    :class:`TaskScratch`); when absent a fresh set is allocated, matching
    the historical behaviour.
    """
    warnings.warn(
        "parallel_multiply is deprecated; use GemmSession with a "
        "tasks schedule (parallel=True or schedule='tasks:...')",
        DeprecationWarning,
        stacklevel=2,
    )
    if c is None:
        c = _scratch(a.tile_r, b.tile_c, a.depth)
        c.rows, c.cols = a.rows, b.cols
    _check_conformable(a, b, c)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    ops = NumpyOps(kernel)
    if a.depth == 0:
        ops.leaf_mult(a, b, c)
        return c
    if scratch is None:
        scratch = TaskScratch(
            a.tile_r, a.tile_c, b.tile_c, a.depth,
            parallel_depth=1, workers=max_workers,
        )
    graph = build_winograd_graph(a, b, c, scratch, ops=ops)
    if max_workers == 1:
        graph.run_inline()
    else:
        _legacy_pool(min(max_workers, 7)).run(graph)
    return c
