"""Truncation policy: how the recursion depth and leaf tiles are chosen.

Two policies reproduce the paper's comparison:

* :meth:`TruncationPolicy.dynamic` — the paper's contribution: pick the
  tile edge from a range (default 16..64) to minimise padding
  (Section 3.4).
* :meth:`TruncationPolicy.fixed` — the conventional scheme with one static
  tile size (Figure 2's fixed line uses 32): the padded size is forced to
  ``T * 2**d``, which in the worst case nearly doubles the matrix
  (513 -> 1024 at T = 32).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlanError
from ..layout.padding import TileRange, Tiling, select_common_tiling

__all__ = ["TruncationPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class TruncationPolicy:
    """Selects the common recursion depth and per-dimension tiles for a GEMM.

    Exactly one of ``tile_range`` (dynamic selection) or ``fixed_tile``
    (static truncation point) is set.  ``cache_bytes``, when set on a
    dynamic policy, additionally avoids tile choices whose quadrant layout
    is congruent modulo that (direct-mapped L1) cache size — the paper's
    Section 4.2 future work, implemented; see
    :func:`repro.layout.padding.conflict_levels`.
    """

    tile_range: TileRange | None
    fixed_tile: int | None
    label: str
    cache_bytes: int | None = None
    #: A pre-selected tiling pinned to specific GEMM dimensions (the plan
    #: store's decision replay).  When the planned dims match, ``plan``
    #: returns these tilings without searching; otherwise the policy falls
    #: back to its dynamic range like any other dynamic policy.
    pinned: tuple[Tiling, Tiling, Tiling] | None = None

    @classmethod
    def dynamic(cls, min_tile: int = 16, max_tile: int = 64) -> "TruncationPolicy":
        return cls(
            tile_range=TileRange(min_tile, max_tile),
            fixed_tile=None,
            label=f"dynamic[{min_tile},{max_tile}]",
        )

    @classmethod
    def conflict_aware(
        cls, cache_bytes: int, min_tile: int = 16, max_tile: int = 64
    ) -> "TruncationPolicy":
        """Dynamic selection that also dodges cache-congruent quadrants.

        Accepts a little extra padding (e.g. 512 -> 528 with tile 33) when
        that breaks the quadrant-base congruence that causes the paper's
        505..512 conflict regime.  ``cache_bytes`` should be the L1 size
        of the machine the multiply will run on.
        """
        if cache_bytes < 1:
            raise PlanError(f"cache_bytes must be >= 1, got {cache_bytes}")
        return cls(
            tile_range=TileRange(min_tile, max_tile),
            fixed_tile=None,
            label=f"conflict-aware[{min_tile},{max_tile};{cache_bytes}B]",
            cache_bytes=cache_bytes,
        )

    @classmethod
    def pinned_tiling(
        cls,
        m: int,
        k: int,
        n: int,
        tiles: tuple[int, int, int],
        depth: int,
        min_tile: int = 16,
        max_tile: int = 64,
    ) -> "TruncationPolicy":
        """A policy that replays a known-good (T, d) for specific dims.

        This is how a plan-store decision re-enters the planner: the
        stored per-dimension tiles and common depth are returned verbatim
        when :meth:`plan` is asked about exactly ``(m, k, n)``.  Any
        *other* dims (the policy object leaking onto a different call
        site) fall back to dynamic selection over ``min_tile..max_tile``
        rather than mis-applying the pin.
        """
        if depth < 0:
            raise PlanError(f"pinned depth must be >= 0, got {depth}")
        if len(tiles) != 3 or min(tiles) < 1:
            raise PlanError(f"pinned tiles must be 3 positive ints, got {tiles}")
        pinned = tuple(
            Tiling(n=dim, tile=tile, depth=depth)
            for dim, tile in zip((m, k, n), tiles)
        )
        return cls(
            tile_range=TileRange(min_tile, max_tile),
            fixed_tile=None,
            label=(
                f"pinned[{m}x{k}x{n};"
                f"T={tiles[0]},{tiles[1]},{tiles[2]};d={depth}]"
            ),
            pinned=pinned,  # type: ignore[arg-type]
        )

    @classmethod
    def fixed(cls, tile: int = 32) -> "TruncationPolicy":
        """Static truncation point ``tile`` (Figure 2's fixed line)."""
        if tile < 1:
            raise PlanError(f"fixed tile must be >= 1, got {tile}")
        return cls(tile_range=None, fixed_tile=tile, label=f"fixed[{tile}]")

    @classmethod
    def coerce(cls, value: "TruncationPolicy | int | str | None") -> "TruncationPolicy":
        """Normalise the policy argument forms every entry point accepts.

        * ``None`` — the package default (dynamic 16..64);
        * a :class:`TruncationPolicy` — passed through;
        * an ``int`` — a static truncation point, i.e. ``fixed(value)``
          (the spelling the baselines historically used);
        * a ``str`` — ``"dynamic"``, ``"fixed"``, or a parameterised form
          ``"dynamic:16,64"`` / ``"fixed:48"``.
        """
        if value is None:
            return DEFAULT_POLICY
        if isinstance(value, TruncationPolicy):
            return value
        if isinstance(value, bool):
            raise PlanError(f"cannot interpret {value!r} as a truncation policy")
        if isinstance(value, int):
            return cls.fixed(value)
        if isinstance(value, str):
            name, _, params = value.partition(":")
            name = name.strip().lower()
            try:
                if name == "dynamic":
                    if not params:
                        return cls.dynamic()
                    lo, hi = (int(p) for p in params.split(","))
                    return cls.dynamic(lo, hi)
                if name == "fixed":
                    return cls.fixed(int(params)) if params else cls.fixed()
            except (TypeError, ValueError) as exc:
                if isinstance(exc, PlanError):
                    raise
                raise PlanError(f"malformed policy string {value!r}") from None
        raise PlanError(
            f"cannot interpret {value!r} as a truncation policy; expected a "
            "TruncationPolicy, an int truncation point, or 'dynamic'/'fixed'"
        )

    def truncation_point(self) -> int:
        """The scalar recursion crossover this policy implies.

        The baselines (DGEFMM/DGEMMW) have no per-dimension tile search —
        they stop recursing below a single crossover.  A fixed policy maps
        to its tile; a dynamic policy to the top of its tile range (64 for
        the paper's 16..64, matching the baselines' published value).
        """
        if self.pinned is not None:
            return max(t.tile for t in self.pinned)
        if self.fixed_tile is not None:
            return self.fixed_tile
        assert self.tile_range is not None
        return self.tile_range.max_tile

    def plan(self, m: int, k: int, n: int) -> tuple[Tiling, Tiling, Tiling] | None:
        """Common tiling for all three GEMM dimensions, or None (split needed).

        Dynamic policy: minimise total padding over the common feasible
        depths (may be None for highly rectangular problems — the caller
        then panels the operands, Section 3.5).

        Fixed policy: every dimension pads up to ``T * 2**d`` with the
        single depth ``d`` forced by the largest dimension (a matrix no
        larger than T in every dimension is a single conventional leaf).
        Never None — static padding always "works", just expensively.
        """
        if min(m, k, n) < 1:
            raise PlanError(f"GEMM dimensions must be >= 1, got {(m, k, n)}")
        if self.pinned is not None and (m, k, n) == tuple(
            t.n for t in self.pinned
        ):
            return self.pinned
        if self.tile_range is not None:
            return select_common_tiling(
                (m, k, n), self.tile_range, cache_bytes=self.cache_bytes
            )
        t = self.fixed_tile
        assert t is not None
        dims = (m, k, n)
        depth = max(
            (math.ceil(math.log2(-(-d // t))) if d > t else 0) for d in dims
        )
        if depth == 0:
            return tuple(Tiling(n=d, tile=d, depth=0) for d in dims)  # type: ignore[return-value]
        return tuple(Tiling(n=d, tile=t, depth=depth) for d in dims)  # type: ignore[return-value]


DEFAULT_POLICY = TruncationPolicy.dynamic()
