"""Task-DAG execution: a persistent worker pool for the Winograd recursion.

The Strassen-Winograd recursion is an instance of a series-parallel task
graph: the S/T operand sums feed seven mutually independent products, which
feed an ordered chain of U-combinations.  Expanding the recursion ``d``
levels deep yields ``7**d`` independent product tasks — enough to balance
load on hosts with more than 7 cores, which the fixed top-level split of
the historical ``parallel_multiply`` could not.

This module supplies the two execution primitives, deliberately free of any
matrix knowledge so the layout/conversion code can reuse them:

* :class:`TaskGraph` — an explicit dependency graph of nullary callables.
  Built once (e.g. at plan-compile time, with every scratch buffer already
  bound into the closures) and re-run many times; ``prepare()`` resets the
  dependency counters so the warm path allocates nothing.
* :class:`WorkerPool` — a persistent pool of daemon worker threads with
  per-worker LIFO deques and FIFO stealing (the classic work-stealing
  discipline: depth-first locally for cache reuse, breadth-first steals for
  load balance).  Owned by a :class:`repro.engine.GemmSession` and shared
  by all of its plans — no executor spin-up per multiply.

Threads are the right grain: the task bodies are BLAS leaf products and
whole-buffer numpy ufuncs, both of which release the GIL.

A :class:`Schedule` names how a compiled plan executes: the sequential
recursion, or the task graph at a given expansion depth and worker hint.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter

from ..errors import InvariantError

__all__ = [
    "Schedule", "Task", "TaskGraph", "GraphRun", "WorkerPool", "stripe_ranges",
]


def stripe_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous ``(lo, hi)`` runs.

    The unit of batch-axis parallelism: a stack of ``n`` same-geometry
    problems splits into even row stripes, one independent task per stripe
    (used by the batched GEMM path and the batched conversions).
    """
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    step = -(-n // parts)
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


@dataclass(frozen=True)
class Schedule:
    """A plan's execution mode: ``sequential`` or ``tasks(depth, workers)``.

    ``depth`` is the number of recursion levels expanded into the task
    graph (``7**depth`` leaf products; clamped to the plan's recursion
    depth at compile time).  ``workers`` is a concurrency *hint* used to
    size pooled per-worker scratch; the executing pool's size is set by the
    owning session.  ``workers=None`` defers to the pool.
    """

    kind: str = "sequential"
    depth: int = 0
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "tasks"):
            raise ValueError(
                f"schedule kind must be sequential|tasks, got {self.kind!r}"
            )
        if self.kind == "tasks" and self.depth < 1:
            raise ValueError(f"tasks schedule needs depth >= 1, got {self.depth}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @classmethod
    def sequential(cls) -> "Schedule":
        return cls(kind="sequential")

    @classmethod
    def tasks(cls, depth: int = 1, workers: int | None = None) -> "Schedule":
        return cls(kind="tasks", depth=depth, workers=workers)

    @classmethod
    def coerce(cls, value, default: "Schedule | None" = None) -> "Schedule":
        """Normalise a schedule argument.

        Accepts a :class:`Schedule`, ``None`` (the ``default``, or
        sequential), or the string forms ``"sequential"``, ``"tasks"``,
        ``"tasks:D"`` and ``"tasks:DxW"`` (e.g. ``"tasks:2x8"``).
        """
        if value is None:
            return default if default is not None else cls.sequential()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            name = value.strip().lower()
            if name == "sequential":
                return cls.sequential()
            if name == "tasks":
                return cls.tasks()
            if name.startswith("tasks:"):
                spec = name[len("tasks:"):]
                try:
                    if "x" in spec:
                        d, w = spec.split("x", 1)
                        return cls.tasks(depth=int(d), workers=int(w))
                    return cls.tasks(depth=int(spec))
                except ValueError:
                    pass
        raise ValueError(
            f"cannot interpret {value!r} as a schedule; expected a Schedule, "
            "'sequential', 'tasks', 'tasks:D', or 'tasks:DxW'"
        )

    @property
    def parallel(self) -> bool:
        return self.kind == "tasks"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "sequential":
            return "Schedule.sequential()"
        w = "" if self.workers is None else f", workers={self.workers}"
        return f"Schedule.tasks(depth={self.depth}{w})"


class Task:
    """One node of a :class:`TaskGraph`: a nullary callable plus edges."""

    __slots__ = ("fn", "index", "label", "succs", "n_deps", "_pending")

    def __init__(self, fn, index: int, label: str = "") -> None:
        self.fn = fn
        self.index = index
        self.label = label
        self.succs: list[Task] = []
        self.n_deps = 0
        self._pending = 0


class TaskGraph:
    """A reusable dependency graph of tasks.

    Build with :meth:`add` (dependencies must already be in the graph, so
    construction is naturally topological and cycles are unrepresentable),
    then hand to :meth:`WorkerPool.run` as many times as desired.  The
    graph itself holds only per-run counters — the closures own (references
    to) whatever buffers they touch, so re-running allocates nothing.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.tasks: list[Task] = []
        self._roots: list[Task] = []
        #: Optional :class:`repro.observe.Tracer` receiving worker events
        #: for this graph's runs (set by the graph builder; never required).
        self.tracer = None
        # -- per-run state, reset by prepare() --
        self._unfinished = 0
        self._running = 0
        self._busy = 0.0
        self._error: BaseException | None = None
        self._failed = False
        self._done = threading.Event()

    def add(self, fn, deps=(), label: str = "") -> Task:
        """Append a task depending on the given already-added tasks."""
        task = Task(fn, index=len(self.tasks), label=label)
        for dep in deps:
            dep.succs.append(task)
            task.n_deps += 1
        self.tasks.append(task)
        if task.n_deps == 0:
            self._roots.append(task)
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def prepare(self) -> None:
        """Reset run state; called by the pool at the start of each run."""
        if not self.tasks:
            raise ValueError("cannot run an empty task graph")
        for task in self.tasks:
            task._pending = task.n_deps
        self._unfinished = len(self.tasks)
        self._running = 0
        self._busy = 0.0
        self._error = None
        self._failed = False
        self._done = threading.Event()

    def run_inline(self) -> "GraphRun":
        """Execute the whole graph on the calling thread (no pool).

        Used as the fallback when a graph is submitted from inside a worker
        (where blocking on another graph could starve the pool) and by
        tests; runs tasks in a valid topological order.
        """
        self.prepare()
        t0 = perf_counter()
        ready = list(self._roots)
        while ready:
            task = ready.pop()
            task.fn()
            for succ in task.succs:
                succ._pending -= 1
                if succ._pending == 0:
                    ready.append(succ)
            self._unfinished -= 1
        if self._unfinished:
            raise RuntimeError(
                f"task graph {self.name!r} deadlocked: "
                f"{self._unfinished} tasks never became ready"
            )
        wall = perf_counter() - t0
        return GraphRun(tasks=len(self.tasks), wall=wall, busy=wall, workers=1)


@dataclass(frozen=True)
class GraphRun:
    """Execution report of one graph run."""

    tasks: int  #: tasks executed
    wall: float  #: wall-clock seconds from submission to completion
    busy: float  #: summed task execution seconds across workers
    workers: int  #: worker threads in the executing pool

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity spent executing tasks."""
        cap = self.wall * max(1, self.workers)
        return min(1.0, self.busy / cap) if cap > 0 else 0.0


class WorkerPool:
    """Persistent work-stealing-style thread pool for task graphs.

    Each worker owns a LIFO deque; newly-ready tasks go to the deque of the
    worker that completed their last dependency (depth-first — the data is
    still warm), and idle workers steal from the opposite (FIFO) end of
    other workers' deques or take from the shared injection queue.  All
    queues share one lock: tasks here are coarse (whole-buffer ufuncs, BLAS
    leaf products), so queue traffic is a few dozen operations per
    multiply and contention is negligible.

    Multiple graphs may be in flight at once (e.g. concurrent sessions
    sharing one pool); tasks carry their graph, so bookkeeping never
    crosses streams.  Worker threads are daemons: an un-closed pool never
    blocks interpreter exit, but call :meth:`shutdown` to release the
    threads deterministically.
    """

    #: Class-level thread-local: ``_ids.pool`` is the pool whose worker the
    #: current thread is (any pool — deliberately shared across instances,
    #: so cross-pool submissions are detected too; see :meth:`run`).
    _ids = threading.local()

    def __init__(
        self, workers: int, name: str = "repro-worker", validate: bool = False
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.validate = bool(validate)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._inject: deque = deque()
        self._local: list[deque] = [deque() for _ in range(self.workers)]
        self._shutdown = False
        self.tasks_completed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,), name=f"{name}-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # -------------------------------------------------------------- running

    def run(self, graph: TaskGraph) -> GraphRun:
        """Execute ``graph`` to completion; re-raise the first task error.

        Blocks the calling thread (which must not be one of *any* pool's
        workers — those fall back to an inline run).  The guard covers
        cross-pool submissions too: a worker of pool A blocking inside
        ``B.run`` can deadlock the pair (each pool's workers all waiting on
        graphs only the other pool will execute), and ``_ids`` being a
        class-level thread-local is exactly what lets any pool recognise
        any other pool's worker thread.
        """
        if getattr(WorkerPool._ids, "pool", None) is not None:
            return graph.run_inline()
        graph.prepare()
        t0 = perf_counter()
        with self._cond:
            if self._shutdown:
                raise RuntimeError("worker pool has been shut down")
            self._inject.extend((graph, t) for t in graph._roots)
            self._cond.notify_all()
        graph._done.wait()
        wall = perf_counter() - t0
        if graph._error is not None:
            raise graph._error
        return GraphRun(
            tasks=len(graph.tasks), wall=wall, busy=graph._busy, workers=self.workers
        )

    def run_all(self, fns, name: str = "batch", tracer=None) -> GraphRun:
        """Run independent callables as a throwaway single-phase graph."""
        graph = TaskGraph(name)
        graph.tracer = tracer
        for fn in fns:
            graph.add(fn)
        return self.run(graph)

    # -------------------------------------------------------------- workers

    def _pop(self, i: int):
        """Next ``(graph, task, stolen)`` under the lock.

        Order: own deque LIFO, steal FIFO from the others, then the shared
        injection queue.  ``stolen`` records the provenance for the trace
        (only a take from *another worker's* deque counts as a steal).
        """
        own = self._local[i]
        if own:
            return (*own.pop(), False)
        for j in range(self.workers):
            other = self._local[(i + j + 1) % self.workers]
            if other:
                return (*other.popleft(), True)
        if self._inject:
            return (*self._inject.popleft(), False)
        return None

    def _purge(self, graph: TaskGraph) -> None:
        """Drop a failed graph's queued tasks (lock held by the caller)."""
        for q in (self._inject, *self._local):
            if any(g is graph for g, _ in q):
                kept = [item for item in q if item[0] is not graph]
                dropped = len(q) - len(kept)
                q.clear()
                q.extend(kept)
                graph._unfinished -= dropped

    def _worker(self, i: int) -> None:
        self._ids.pool = self
        while True:
            with self._cond:
                item = self._pop(i)
                while item is None and not self._shutdown:
                    self._cond.wait()
                    item = self._pop(i)
                if item is None:
                    return
                graph, task, stolen = item
                graph._running += 1
                cancelled = graph._failed
            err = None
            elapsed = 0.0
            tr = None if cancelled else graph.tracer
            if tr is not None and not tr.enabled:
                tr = None
            if not cancelled:
                if tr is not None:
                    tr.emit(
                        "worker_steal" if stolen else "worker_start",
                        label=task.label or graph.name,
                        worker=i,
                        task=task.index,
                    )
                t0 = perf_counter()
                try:
                    task.fn()
                except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                    err = exc
                elapsed = perf_counter() - t0
                if tr is not None:
                    tr.emit(
                        "worker_finish",
                        label=task.label or graph.name,
                        worker=i,
                        task=task.index,
                        seconds=elapsed,
                        failed=err is not None,
                    )
            with self._cond:
                self.tasks_completed += 1
                graph._busy += elapsed
                graph._running -= 1
                graph._unfinished -= 1
                if self.validate and (graph._unfinished < 0 or graph._running < 0):
                    err = err or InvariantError(
                        f"task graph {graph.name!r} accounting out of balance: "
                        f"unfinished={graph._unfinished}, "
                        f"running={graph._running} after task "
                        f"{task.index} — a task was double-queued or "
                        "double-completed"
                    )
                if err is not None and not graph._failed:
                    graph._failed = True
                    graph._error = err
                    self._purge(graph)
                if graph._failed:
                    # Cancelled: never-ready tasks are abandoned with the
                    # graph.  Release the caller only once nothing is still
                    # executing, so pooled buffers are quiescent again.
                    if graph._running == 0:
                        graph._done.set()
                else:
                    pushed = 0
                    for succ in task.succs:
                        succ._pending -= 1
                        if succ._pending == 0:
                            self._local[i].append((graph, succ))
                            pushed += 1
                    if graph._unfinished == 0:
                        graph._done.set()
                    if pushed > 1:
                        self._cond.notify(pushed - 1)

    # ------------------------------------------------------------ lifecycle

    def shutdown(self) -> None:
        """Stop the workers; cancel queued graphs and wake their callers.

        Idempotent.  Any graph with tasks still *queued* (not yet picked
        up by a worker) is failed with ``RuntimeError("worker pool has
        been shut down")`` and its caller's ``graph._done.wait()`` is
        released — without this, workers exit with the queues non-empty
        and every such caller blocks forever.  Graphs whose remaining
        tasks are already executing drain normally: workers keep popping
        their deques after the shutdown flag is set, and only exit once
        :meth:`_pop` comes up empty.
        """
        with self._cond:
            self._shutdown = True
            queued: list[TaskGraph] = []
            for q in (self._inject, *self._local):
                for g, _ in q:
                    if not g._failed and g not in queued:
                        queued.append(g)
            for g in queued:
                g._failed = True
                g._error = RuntimeError("worker pool has been shut down")
                self._purge(g)
                # With nothing executing, no worker will ever revisit this
                # graph — release the caller here.  Otherwise the last
                # in-flight task's completion path sets _done.
                if g._running == 0:
                    g._done.set()
            self._cond.notify_all()
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "shutdown" if self._shutdown else "live"
        return (
            f"WorkerPool(workers={self.workers}, {state}, "
            f"completed={self.tasks_completed})"
        )
