"""Recursion backends: one Winograd control structure, many interpretations.

The Strassen-Winograd recursion in :mod:`repro.core.winograd` is written
against this small operation vocabulary over Morton matrices.  Two backends
implement it:

* :class:`NumpyOps` — performs the arithmetic.  Because every Morton
  quadrant is a contiguous buffer, all 15 Winograd additions are single
  1-D vector operations (the paper's "single loop rather than two nested
  loops", Section 3.3), executed in place with no temporaries.
* ``TraceOps`` (in :mod:`repro.cachesim.tracegen`) — emits the memory
  address trace of exactly the same computation for the cache simulator,
  replacing ATOM in the paper's methodology.

Keeping a single recursion ensures the simulated cache behaviour belongs to
the very code being timed, not to a drifting re-implementation.
"""

from __future__ import annotations

import threading
from typing import Protocol

import numpy as np

from ..blas.kernels import (
    LeafKernel,
    get_batch_kernel,
    get_kernel,
    guarded_kernel,
)
from ..layout.matrix import MortonMatrix

__all__ = ["WinogradOps", "NumpyOps", "FUSE_CHUNK_ELEMS"]

#: Elements per chunk of a fused three-operand addition pass: 1 << 14
#: float64 values = 128 KiB, sized so the chunk intermediate stays
#: cache-resident while each full-size operand is streamed exactly once.
FUSE_CHUNK_ELEMS = 1 << 14


class WinogradOps(Protocol):
    """Operations the recursion needs; all operands are Morton matrices.

    ``add``/``sub``/``iadd``/``leaf_mult`` are the classic vocabulary every
    backend implements (including the cache-simulator trace emitter).  The
    low-memory schedules (:mod:`repro.core.winograd`, ``memory=`` other
    than ``"classic"``) additionally require the fused passes ``add3`` and
    ``sub_into``.
    """

    def add(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x + y`` (dst may alias x or y)."""

    def sub(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x - y`` (dst may alias x or y)."""

    def iadd(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst += x``."""

    def add3(
        self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix, z: MortonMatrix
    ) -> None:
        """``dst = (x + y) + z`` in one fused pass (dst may alias any operand)."""

    def sub_into(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst = x - dst`` (reversed in-place subtraction)."""

    def leaf_mult(self, a: MortonMatrix, b: MortonMatrix, dst: MortonMatrix) -> None:
        """``dst = a . b`` on leaf tiles (depth 0)."""

    # The alpha/beta-folding vocabulary (``add_scale``, ``iadd_scale``,
    # ``add3_scale``, ``accumulate``) is NumpyOps-only: the engine invokes
    # it exclusively for non-default GemmSpecs, which never reach the
    # cache-simulator backend, so TraceOps keeps the classic surface.


_fuse_scratch = threading.local()


def _fuse_chunk(dtype: np.dtype, elems: int = FUSE_CHUNK_ELEMS) -> np.ndarray:
    """Per-thread cache-sized staging chunk for fused addition passes.

    One grow-only buffer per dtype; ``elems`` may exceed the default when a
    batched pass needs at least one full batch column per chunk.
    """
    bufs = getattr(_fuse_scratch, "bufs", None)
    if bufs is None:
        bufs = _fuse_scratch.bufs = {}
    key = np.dtype(dtype).str
    buf = bufs.get(key)
    if buf is None or buf.size < elems:
        buf = bufs[key] = np.empty(max(elems, FUSE_CHUNK_ELEMS), dtype=dtype)
    return buf


def _same_size(dst: MortonMatrix, *rest: MortonMatrix) -> None:
    for m in rest:
        if m.size != dst.size:
            raise ValueError(
                f"buffer size mismatch: {dst.size} vs {m.size} "
                "(operands of a Winograd addition must be congruent)"
            )


class NumpyOps:
    """The arithmetic backend.

    ``kernel`` selects the leaf multiply (see :mod:`repro.blas.kernels`).
    ``fused_adds`` counts :meth:`add3` passes (best-effort under concurrent
    task-graph use: the increment is not atomic, so a parallel run may
    undercount; sequential schedules are exact).

    ``trace`` is an optional :class:`repro.observe.Tracer`: when set and
    enabled, every addition pass emits an ``"add"`` event and every leaf
    product a ``"leaf"`` event.  The disabled cost is one predicate check
    per operation — neither timestamps nor events are produced.
    ``validate=True`` (debug mode) wraps both leaf kernels with the
    NaN/Inf guard of :func:`repro.blas.kernels.guarded_kernel`; the
    arithmetic is untouched either way.
    """

    def __init__(
        self,
        kernel: "str | LeafKernel" = "numpy",
        trace=None,
        validate: bool = False,
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.batch_kernel = get_batch_kernel(kernel)
        if validate:
            self.kernel = guarded_kernel(self.kernel)
            self.batch_kernel = guarded_kernel(self.batch_kernel)
        self.trace = trace
        self.fused_adds = 0

    def _emit(self, label: str, dst: MortonMatrix) -> None:
        """Trace one addition pass (callers pre-check ``trace.enabled``)."""
        self.trace.emit("add", label=label, elems=int(dst.size))

    def add(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x + y`` as one flat vector operation."""
        _same_size(dst, x, y)
        np.add(x.buf, y.buf, out=dst.buf)
        tr = self.trace
        if tr is not None and tr.enabled:
            self._emit("add", dst)

    def sub(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x - y`` as one flat vector operation."""
        _same_size(dst, x, y)
        np.subtract(x.buf, y.buf, out=dst.buf)
        tr = self.trace
        if tr is not None and tr.enabled:
            self._emit("sub", dst)

    def iadd(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst += x`` in place."""
        _same_size(dst, x)
        dst.buf += x.buf
        tr = self.trace
        if tr is not None and tr.enabled:
            self._emit("iadd", dst)

    def add3(
        self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix, z: MortonMatrix
    ) -> None:
        """``dst = (x + y) + z`` streaming each operand once.

        Evaluated chunk-wise with a cache-resident intermediate, so ``dst``
        is written in a single pass instead of the 2-3 read-modify-write
        passes the unfused U-chain performs.  The association is fixed
        left-to-right — element-for-element the same operations as
        ``add(dst, x, y); iadd(dst, z)`` — so fusion never perturbs bits.
        ``dst`` may alias any operand: each chunk is staged before the
        destination slice is written.
        """
        _same_size(dst, x, y, z)
        d, xb, yb, zb = dst.buf, x.buf, y.buf, z.buf
        if d.ndim == 2:
            # Batched form: chunk along the element axis so every pass
            # covers the whole batch — chunk boundaries never change the
            # elementwise arithmetic, only its staging granularity.
            bsz, elems = d.shape
            step = max(1, FUSE_CHUNK_ELEMS // bsz)
            tmp = _fuse_chunk(d.dtype, bsz * step)
            for i in range(0, elems, step):
                j = min(i + step, elems)
                t = tmp[: bsz * (j - i)].reshape(bsz, j - i)
                np.add(xb[:, i:j], yb[:, i:j], out=t)
                np.add(t, zb[:, i:j], out=d[:, i:j])
            self.fused_adds += 1
            return
        tmp = _fuse_chunk(d.dtype)
        for i in range(0, d.size, FUSE_CHUNK_ELEMS):
            j = min(i + FUSE_CHUNK_ELEMS, d.size)
            t = tmp[: j - i]
            np.add(xb[i:j], yb[i:j], out=t)
            np.add(t, zb[i:j], out=d[i:j])
        self.fused_adds += 1

    def sub_into(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst = x - dst`` as one in-place reversed vector subtraction."""
        _same_size(dst, x)
        np.subtract(x.buf, dst.buf, out=dst.buf)

    # ------------------------------------------------ alpha/beta folding

    def add_scale(
        self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix, alpha: float
    ) -> None:
        """``dst = alpha * (x + y)`` in one streamed pass.

        The final U-adds of a recursion call this (instead of ``add``)
        when the plan's spec carries ``alpha != 1`` — the scale rides the
        pass that writes C's quadrant anyway, so alpha costs no extra
        full-matrix traffic.  Elementwise this is ``(x + y) * alpha``,
        bit-identical to computing the plain product and scaling after.
        """
        _same_size(dst, x, y)
        d, xb, yb = dst.buf, x.buf, y.buf
        np.add(xb, yb, out=d)
        np.multiply(d, alpha, out=d)
        tr = self.trace
        if tr is not None and tr.enabled:
            self._emit("add_scale", dst)

    def iadd_scale(self, dst: MortonMatrix, x: MortonMatrix, alpha: float) -> None:
        """``dst = alpha * (dst + x)`` in place (a scaled final U-add)."""
        _same_size(dst, x)
        d = dst.buf
        np.add(d, x.buf, out=d)
        np.multiply(d, alpha, out=d)
        tr = self.trace
        if tr is not None and tr.enabled:
            self._emit("iadd_scale", dst)

    def add3_scale(
        self,
        dst: MortonMatrix,
        x: MortonMatrix,
        y: MortonMatrix,
        z: MortonMatrix,
        alpha: float,
    ) -> None:
        """``dst = alpha * ((x + y) + z)``, fused and chunked like ``add3``.

        Same staging discipline as :meth:`add3` (dst may alias any
        operand; chunk boundaries never perturb bits), with the scale
        applied to each staged chunk before it lands in ``dst``.  Not
        counted in ``fused_adds`` — that counter pins the *schedule's*
        fusion structure, which is identical whatever alpha is.
        """
        _same_size(dst, x, y, z)
        d, xb, yb, zb = dst.buf, x.buf, y.buf, z.buf
        if d.ndim == 2:
            bsz, elems = d.shape
            step = max(1, FUSE_CHUNK_ELEMS // bsz)
            tmp = _fuse_chunk(d.dtype, bsz * step)
            for i in range(0, elems, step):
                j = min(i + step, elems)
                t = tmp[: bsz * (j - i)].reshape(bsz, j - i)
                np.add(xb[:, i:j], yb[:, i:j], out=t)
                np.add(t, zb[:, i:j], out=t)
                np.multiply(t, alpha, out=d[:, i:j])
            return
        tmp = _fuse_chunk(d.dtype)
        for i in range(0, d.size, FUSE_CHUNK_ELEMS):
            j = min(i + FUSE_CHUNK_ELEMS, d.size)
            t = tmp[: j - i]
            np.add(xb[i:j], yb[i:j], out=t)
            np.add(t, zb[i:j], out=t)
            np.multiply(t, alpha, out=d[i:j])

    def accumulate(self, dst: MortonMatrix, x: MortonMatrix, beta: float) -> None:
        """``dst = x + beta * dst``: fold a freshly computed product ``x``
        into a live C (the BLAS beta contract) in Morton space.

        Elementwise identical to the reference ``c *= beta; c += d``
        (multiply first, then add), so results stay bit-compatible with
        the epilogue it replaces.
        """
        _same_size(dst, x)
        d = dst.buf
        np.multiply(d, beta, out=d)
        np.add(d, x.buf, out=d)
        tr = self.trace
        if tr is not None and tr.enabled:
            tr.emit("accumulate", label="morton", elems=int(dst.size))

    # ----------------------------------------------------- leaf products

    def leaf_mult(
        self,
        a: MortonMatrix,
        b: MortonMatrix,
        dst: MortonMatrix,
        alpha: float = 1.0,
    ) -> None:
        """Multiply two leaf tiles (or stacked batches) with the kernel.

        Batched operands (anything exposing a ``batch`` axis) route to the
        batched kernel so an entire ``(B, T, T)`` leaf site is one call.
        ``alpha`` scales the freshly written tile in place — only a
        depth-0 recursion (the whole product is one leaf) pays this,
        deeper plans fold alpha into the final U-adds instead.
        """
        if getattr(a, "batch", None) is not None:
            self.batch_kernel(
                a.leaf_view(), b.leaf_view(), dst.leaf_view(), accumulate=False
            )
            if alpha != 1.0:
                dst.buf *= alpha
            return
        self.kernel(a.leaf_view(), b.leaf_view(), dst.leaf_view(), accumulate=False)
        if alpha != 1.0:
            dst.buf *= alpha
