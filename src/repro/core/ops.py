"""Recursion backends: one Winograd control structure, many interpretations.

The Strassen-Winograd recursion in :mod:`repro.core.winograd` is written
against this small operation vocabulary over Morton matrices.  Two backends
implement it:

* :class:`NumpyOps` — performs the arithmetic.  Because every Morton
  quadrant is a contiguous buffer, all 15 Winograd additions are single
  1-D vector operations (the paper's "single loop rather than two nested
  loops", Section 3.3), executed in place with no temporaries.
* ``TraceOps`` (in :mod:`repro.cachesim.tracegen`) — emits the memory
  address trace of exactly the same computation for the cache simulator,
  replacing ATOM in the paper's methodology.

Keeping a single recursion ensures the simulated cache behaviour belongs to
the very code being timed, not to a drifting re-implementation.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..blas.kernels import LeafKernel, get_kernel
from ..layout.matrix import MortonMatrix

__all__ = ["WinogradOps", "NumpyOps"]


class WinogradOps(Protocol):
    """Operations the recursion needs; all operands are Morton matrices."""

    def add(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x + y`` (dst may alias x or y)."""

    def sub(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x - y`` (dst may alias x or y)."""

    def iadd(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst += x``."""

    def leaf_mult(self, a: MortonMatrix, b: MortonMatrix, dst: MortonMatrix) -> None:
        """``dst = a . b`` on leaf tiles (depth 0)."""


def _same_size(dst: MortonMatrix, *rest: MortonMatrix) -> None:
    for m in rest:
        if m.size != dst.size:
            raise ValueError(
                f"buffer size mismatch: {dst.size} vs {m.size} "
                "(operands of a Winograd addition must be congruent)"
            )


class NumpyOps:
    """The arithmetic backend.

    ``kernel`` selects the leaf multiply (see :mod:`repro.blas.kernels`).
    """

    def __init__(self, kernel: "str | LeafKernel" = "numpy") -> None:
        self.kernel = get_kernel(kernel)

    def add(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x + y`` as one flat vector operation."""
        _same_size(dst, x, y)
        np.add(x.buf, y.buf, out=dst.buf)

    def sub(self, dst: MortonMatrix, x: MortonMatrix, y: MortonMatrix) -> None:
        """``dst = x - y`` as one flat vector operation."""
        _same_size(dst, x, y)
        np.subtract(x.buf, y.buf, out=dst.buf)

    def iadd(self, dst: MortonMatrix, x: MortonMatrix) -> None:
        """``dst += x`` in place."""
        _same_size(dst, x)
        dst.buf += x.buf

    def leaf_mult(self, a: MortonMatrix, b: MortonMatrix, dst: MortonMatrix) -> None:
        """Multiply two leaf tiles with the configured kernel."""
        self.kernel(a.leaf_view(), b.leaf_view(), dst.leaf_view(), accumulate=False)
