"""Strassen's original 1969 schedule (7 products, 18 additions).

The paper presents this form in Section 2 before switching to Winograd's
variant; we implement it as an ablation baseline so the benefit of
Winograd's common-subexpression reuse (15 vs 18 additions) can be measured
in isolation on identical Morton machinery::

    P1 = (A11+A22).(B11+B22)   P2 = (A21+A22).B11   P3 = A11.(B12-B22)
    P4 = A22.(B21-B11)         P5 = (A11+A12).B22   P6 = (A21-A11).(B11+B12)
    P7 = (A12-A22).(B21+B22)

    C11 = P1 + P4 - P5 + P7    C12 = P3 + P5
    C21 = P2 + P4              C22 = P1 + P3 - P2 + P6

Needs one more scratch buffer (Q) than the Winograd schedule because P1 is
consumed by two distant C quadrants.
"""

from __future__ import annotations

from ..layout.matrix import MortonMatrix
from .ops import NumpyOps, WinogradOps
from .winograd import _check_conformable
from .workspace import Workspace

__all__ = ["strassen_multiply"]


def strassen_multiply(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps | None = None,
    workspace: Workspace | None = None,
    alpha: float = 1.0,
) -> MortonMatrix:
    """``C = alpha . A . B`` with the original Strassen schedule.

    ``alpha`` is folded into each C quadrant's final addition, mirroring
    :func:`repro.core.winograd.winograd_multiply`; transposes and beta
    stay the caller's concern (the engine serves them through relabeled
    conversion and staged accumulation respectively).
    """
    _check_conformable(a, b, c)
    if ops is None:
        ops = NumpyOps()
    if workspace is None:
        workspace = Workspace(
            a.depth, a.tile_r, a.tile_c, b.tile_c, with_q=True
        )
    elif a.depth > 0 and workspace.at(a.depth - 1).q is None:
        raise ValueError("strassen_multiply needs a workspace built with with_q=True")
    _recurse(a, b, c, ops, workspace, alpha)
    return c


def _recurse(
    a: MortonMatrix,
    b: MortonMatrix,
    c: MortonMatrix,
    ops: WinogradOps,
    ws: Workspace,
    alpha: float = 1.0,
) -> None:
    if a.depth == 0:
        if alpha == 1.0:
            ops.leaf_mult(a, b, c)
        else:
            ops.leaf_mult(a, b, c, alpha)
        return

    a11, a12, a21, a22 = a.quadrants()
    b11, b12, b21, b22 = b.quadrants()
    c11, c12, c21, c22 = c.quadrants()
    lv = ws.at(a11.depth)
    s, t, p, q = lv.s, lv.t, lv.p, lv.q
    assert q is not None

    ops.add(s, a11, a22)
    ops.add(t, b11, b22)
    _recurse(s, t, p, ops, ws)      # P = P1
    ops.add(s, a21, a22)
    _recurse(s, b11, c21, ops, ws)  # C21 = P2
    ops.sub(t, b12, b22)
    _recurse(a11, t, c12, ops, ws)  # C12 = P3
    ops.sub(t, b21, b11)
    _recurse(a22, t, q, ops, ws)    # Q = P4

    # C11 = P1 + P4 (P5 and P7 folded in below); C22 = P1 + P3 - P2.
    ops.add(c11, p, q)
    ops.add(c22, p, c12)
    ops.sub(c22, c22, c21)
    if alpha == 1.0:
        ops.iadd(c21, q)            # C21 = P2 + P4 (final)
    else:
        # each quadrant's final addition carries alpha; every final reads
        # only staged (unscaled) values, so the scales never interact.
        ops.iadd_scale(c21, q, alpha)

    ops.add(s, a11, a12)
    _recurse(s, b22, q, ops, ws)    # Q = P5
    ops.sub(c11, c11, q)            # C11 -= P5
    if alpha == 1.0:
        ops.iadd(c12, q)            # C12 = P3 + P5 (final)
    else:
        ops.iadd_scale(c12, q, alpha)

    ops.sub(s, a21, a11)
    ops.add(t, b11, b12)
    _recurse(s, t, q, ops, ws)      # Q = P6
    if alpha == 1.0:
        ops.iadd(c22, q)            # C22 final
    else:
        ops.iadd_scale(c22, q, alpha)

    ops.sub(s, a12, a22)
    ops.add(t, b21, b22)
    _recurse(s, t, q, ops, ws)      # Q = P7
    if alpha == 1.0:
        ops.iadd(c11, q)            # C11 final
    else:
        ops.iadd_scale(c11, q, alpha)
