"""The paper's primary contribution: MODGEMM.

Morton-order Strassen-Winograd matrix multiplication with dynamic
recursion-truncation-point selection.  See :func:`repro.core.modgemm` for
the BLAS-style entry point and DESIGN.md for the architecture.
"""

from .modgemm import modgemm, modgemm_morton, PhaseTimings
from .truncation import TruncationPolicy, DEFAULT_POLICY
from .winograd import (
    winograd_multiply,
    multiply_morton,
    MEMORY_SCHEDULES,
    resolve_memory,
)
from .strassen import strassen_multiply
from .parallel import (
    parallel_multiply,
    ParallelScratch,
    TaskScratch,
    build_winograd_graph,
)
from .scheduler import Schedule, TaskGraph, WorkerPool
from .rectangular import Shape, classify, plan_panels, split_dim, PanelProduct
from .workspace import Workspace
from .ops import NumpyOps, WinogradOps

__all__ = [
    "modgemm",
    "modgemm_morton",
    "PhaseTimings",
    "TruncationPolicy",
    "DEFAULT_POLICY",
    "winograd_multiply",
    "multiply_morton",
    "MEMORY_SCHEDULES",
    "resolve_memory",
    "strassen_multiply",
    "parallel_multiply",
    "ParallelScratch",
    "TaskScratch",
    "build_winograd_graph",
    "Schedule",
    "TaskGraph",
    "WorkerPool",
    "Shape",
    "classify",
    "plan_panels",
    "split_dim",
    "PanelProduct",
    "Workspace",
    "NumpyOps",
    "WinogradOps",
]
