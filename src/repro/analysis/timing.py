"""The paper's timing protocol (Section 4), on a modern clock.

"We timed the execution ... for matrix sizes ranging from 150 to 1024 ...
For matrices less than 500 we compute the average of 10 invocations of the
algorithm to overcome limits in clock resolution. ... we execute the above
experiments three times for each matrix size, and use the minimum value
for comparison."

:class:`TimingProtocol` parameterises exactly that scheme; the defaults
match the paper.  ``time.perf_counter`` replaces ``getrusage`` — on an
otherwise idle host the min-of-trials discipline filters scheduling noise
the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingProtocol", "measure"]


@dataclass(frozen=True)
class TimingProtocol:
    """min over ``trials`` of (mean over ``reps(size)`` invocations)."""

    small_threshold: int = 500  #: sizes below this average several calls
    small_reps: int = 10
    trials: int = 3

    def reps(self, size: int) -> int:
        """Invocations per trial for a given matrix size."""
        return self.small_reps if size < self.small_threshold else 1

    def run(self, fn: Callable[[], object], size: int) -> float:
        """Best average seconds per invocation of ``fn``."""
        reps = self.reps(size)
        best = float("inf")
        for _ in range(self.trials):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            elapsed = (time.perf_counter() - t0) / reps
            best = min(best, elapsed)
        return best


#: A cheaper protocol for smoke tests and CI, same structure.
QUICK_PROTOCOL = TimingProtocol(small_threshold=0, small_reps=1, trials=1)


def measure(
    fn: Callable[[], object],
    size: int,
    protocol: TimingProtocol | None = None,
) -> float:
    """Measure ``fn`` under the paper's protocol (or a supplied one)."""
    return (protocol or TimingProtocol()).run(fn, size)
