"""Numerical-accuracy measurement for the fast multiplication variants.

The paper defers numerical analysis to Higham's treatment; for a usable
library we still verify and expose the error behaviour: Strassen-type
algorithms satisfy a normwise bound ``|C - C*| <= c(n) * u * |A| |B|``
with ``c(n)`` polynomially larger than the conventional algorithm's
(Higham, *Accuracy and Stability of Numerical Algorithms*, ch. 23).  The
helpers here quantify that growth empirically; tests assert sane margins.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_relative_error", "error_vs_reference", "higham_bound_factor"]


def max_relative_error(c: np.ndarray, ref: np.ndarray) -> float:
    """Max-norm relative error of ``c`` against reference ``ref``."""
    if c.shape != ref.shape:
        raise ValueError(f"shape mismatch: {c.shape} vs {ref.shape}")
    denom = max(1.0, float(np.max(np.abs(ref))))
    return float(np.max(np.abs(c - ref))) / denom


def error_vs_reference(
    multiply,
    m: int,
    k: int,
    n: int,
    seed: int = 0,
) -> float:
    """Measured max relative error of ``multiply(a, b)`` on random operands."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return max_relative_error(np.asarray(multiply(a, b)), a @ b)


def higham_bound_factor(n: int, truncation: int, unit: float = 2.0**-53) -> float:
    """Normwise error-bound coefficient for Strassen-Winograd (Higham 23.x).

    For recursion from size ``n`` down to leaf size ``n0``,
    ``c(n) ~ (n0^2) * (n/n0)^log2(18) - 5 n`` up to modest constants; we
    return ``c(n) * u`` as a conservative tolerance scale for tests.
    """
    if n <= truncation:
        return n * unit * 8
    ratio = n / truncation
    c = (truncation**2 + 5 * truncation) * ratio ** np.log2(18) - 5 * n
    return float(abs(c) * unit)
