"""Dependency-free ASCII rendering of tables and line charts.

The experiment CLI reproduces the paper's figures as terminal output; no
plotting stack is assumed (the environment is offline).  Charts are plain
scatter/line grids with one glyph per series, enough to see the crossovers
and anomalies the paper's figures exhibit.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["ascii_chart", "format_table"]

_GLYPHS = "ox+*#@%&"


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
) -> str:
    """Fixed-width text table with right-aligned numeric formatting."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.{precision}g}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.rjust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``{label: (xs, ys)}`` as an ASCII scatter chart."""
    if not series:
        raise ValueError("no series to plot")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        raise ValueError("series are empty")
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    for (label, (xs, ys)), glyph in zip(series.items(), _GLYPHS):
        for x, y in zip(xs, ys):
            cx = round((x - x_min) / (x_max - x_min) * (width - 1))
            cy = round((y - y_min) / (y_max - y_min) * (height - 1))
            row = height - 1 - cy
            cell = grid[row][cx]
            grid[row][cx] = glyph if cell in (" ", glyph) else "?"

    lines: list[str] = []
    if title:
        lines.append(title)
    top = f"{y_max:.4g}"
    bottom = f"{y_min:.4g}"
    margin = max(len(top), len(bottom), len(y_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top.rjust(margin)
        elif r == height - 1:
            prefix = bottom.rjust(margin)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_min:.4g}".ljust(width - 10) + f"{x_max:.4g}".rjust(10)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
