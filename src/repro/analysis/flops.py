"""Closed-form floating-point operation counts for every variant.

These formulas are the analytical twins of the instrumented recursions
(:class:`repro.cachesim.tracegen.TraceOps` tallies the same quantities by
construction); the test-suite checks they agree exactly, which pins down
both the schedule (7 products, 15 additions for Winograd; 18 for original
Strassen) and the padding arithmetic.
"""

from __future__ import annotations

from functools import lru_cache

from ..layout.padding import Tiling

__all__ = [
    "conventional_flops",
    "leaf_mult_count",
    "winograd_add_count",
    "winograd_flops",
    "strassen_original_flops",
    "dgefmm_flops",
    "dgemmw_flops",
]


def conventional_flops(m: int, k: int, n: int) -> int:
    """Multiply-add count of the conventional product (2mkn)."""
    return 2 * m * k * n


def leaf_mult_count(depth: int) -> int:
    """Number of leaf multiplications of a depth-``d`` Strassen recursion."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    return 7**depth


def winograd_add_count(depth: int, pm: int, pk: int, pn: int) -> int:
    """Element-additions of the Winograd schedule over padded dims.

    Level ``l`` (1-based from the top) runs ``7**(l-1)`` node expansions;
    each performs 4 A-shaped, 4 B-shaped and 7 C-shaped quarter-size
    additions (the minimum 15).
    """
    total = 0
    nodes = 1
    m, k, n = pm, pk, pn
    for _ in range(depth):
        m //= 2
        k //= 2
        n //= 2
        total += nodes * (4 * m * k + 4 * k * n + 7 * m * n)
        nodes *= 7
    return total


def winograd_flops(tilings: "tuple[Tiling, Tiling, Tiling]") -> int:
    """Total flops of a planned MODGEMM product (Winograd variant)."""
    tm, tk, tn = tilings
    d = tm.depth
    mults = leaf_mult_count(d) * conventional_flops(tm.tile, tk.tile, tn.tile)
    return mults + winograd_add_count(d, tm.padded, tk.padded, tn.padded)


def strassen_original_flops(tilings: "tuple[Tiling, Tiling, Tiling]") -> int:
    """Total flops of the original Strassen schedule (18 additions/level).

    Per level: 10 operand-forming additions (5 A-shaped, 5 B-shaped) and
    8 C-shaped combination additions.
    """
    tm, tk, tn = tilings
    d = tm.depth
    total = leaf_mult_count(d) * conventional_flops(tm.tile, tk.tile, tn.tile)
    nodes = 1
    m, k, n = tm.padded, tk.padded, tn.padded
    for _ in range(d):
        m //= 2
        k //= 2
        n //= 2
        total += nodes * (5 * m * k + 5 * k * n + 8 * m * n)
        nodes *= 7
    return total


@lru_cache(maxsize=4096)
def dgemmw_flops(m: int, k: int, n: int, truncation: int = 64) -> int:
    """Flops of the dynamic-overlap recursion (mirrors baselines.dgemmw).

    Overlapping ceil-half blocks mean every sub-product is
    ``ceil(m/2) x ceil(k/2) x ceil(n/2)`` — the redundant arithmetic on the
    duplicated strips is exactly the "extra computations" the paper
    attributes to this scheme.  Block copies are data movement, not flops.
    """
    if min(m, k, n) <= truncation:
        return conventional_flops(m, k, n)
    mh, kh, nh = (m + 1) // 2, (k + 1) // 2, (n + 1) // 2
    total = 7 * dgemmw_flops(mh, kh, nh, truncation)
    total += 4 * mh * kh + 4 * kh * nh + 7 * mh * nh  # the 15 additions
    return total


@lru_cache(maxsize=4096)
def dgefmm_flops(m: int, k: int, n: int, truncation: int = 64) -> int:
    """Flops of the dynamic-peeling recursion (mirrors baselines.dgefmm).

    Counts the conventional leaf products, the 15 Winograd additions per
    level, and the peeling fix-ups (rank-1 update, matrix-vector and
    vector-matrix products).
    """
    if min(m, k, n) <= truncation:
        return conventional_flops(m, k, n)
    me, ke, ne = m & ~1, k & ~1, n & ~1
    mh, kh, nh = me // 2, ke // 2, ne // 2
    total = 7 * dgefmm_flops(mh, kh, nh, truncation)
    total += 4 * mh * kh + 4 * kh * nh + 7 * mh * nh  # the 15 additions
    if k != ke:
        total += 2 * me * ne  # rank-1 fix-up
    if n != ne:
        total += 2 * me * k  # last column, matrix-vector
    if m != me:
        total += 2 * k * n  # last row, vector-matrix
    return total
