"""Hotspot profiling helper ("no optimisation without measuring").

A thin cProfile wrapper that runs a callable and returns the top hotspots
as structured rows — used by ``examples/tuning_explorer.py --profile`` to
show where a modgemm call actually spends its time on the host (leaf BLAS
calls vs Morton conversion vs recursion bookkeeping), which is the
evidence behind the host-tuned truncation defaults.

:func:`measure_peak` is the memory-side counterpart: it reports the peak
bytes a callable allocated (tracemalloc-backed; numpy array allocations
are tracked through ``PyDataMem``), the observable the memory-schedule
benchmark validates the Boyer-et-al. scratch reductions against.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from dataclasses import dataclass
from typing import Callable

__all__ = ["Hotspot", "profile_call", "hotspot_table", "measure_peak"]


def measure_peak(fn: Callable[[], object]) -> tuple[object, int]:
    """Run ``fn``; return ``(result, peak_bytes)`` allocated during the run.

    Peak bytes are tracemalloc's high-water mark of allocations made
    *while* ``fn`` runs — preallocated pools the call merely reuses do not
    count, which is exactly what a warm-session scratch comparison wants.
    If tracing is already active (e.g. nested measurement) the existing
    trace is reused via :func:`tracemalloc.reset_peak` and left running;
    otherwise tracing is started and stopped around the call.
    """
    started = not tracemalloc.is_tracing()
    if started:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if started:
            tracemalloc.stop()
    return result, max(0, peak - base)


@dataclass(frozen=True)
class Hotspot:
    """One function's aggregate cost within a profiled call."""

    function: str  #: "file:line(name)" as reported by pstats
    calls: int
    total_time: float  #: own time, excluding callees (seconds)
    cumulative: float  #: including callees (seconds)


def profile_call(fn: Callable[[], object], top: int = 10) -> list[Hotspot]:
    """Run ``fn`` under cProfile; return the ``top`` own-time hotspots."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    prof = cProfile.Profile()
    prof.enable()
    try:
        fn()
    finally:
        prof.disable()
    stats = pstats.Stats(prof)
    rows: list[Hotspot] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        label = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        rows.append(Hotspot(function=label, calls=nc, total_time=tt, cumulative=ct))
    rows.sort(key=lambda h: h.total_time, reverse=True)
    return rows[:top]


def hotspot_table(hotspots: list[Hotspot]) -> str:
    """Fixed-width rendering of :func:`profile_call` output."""
    from .plotting import format_table

    return format_table(
        ("own_s", "cum_s", "calls", "function"),
        [(h.total_time, h.cumulative, h.calls, h.function) for h in hotspots],
    )
