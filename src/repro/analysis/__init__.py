"""Measurement and analysis utilities.

* :mod:`repro.analysis.timing` — the paper's timing protocol (Section 4):
  averages of repeated invocations for small sizes, minimum of repeated
  experiments.
* :mod:`repro.analysis.flops` — closed-form operation counts for every
  algorithm variant (cross-checked against the instrumented recursions).
* :mod:`repro.analysis.accuracy` — numerical-error measurement for the
  fast algorithms.
* :mod:`repro.analysis.plotting` — ASCII rendering of the paper's figures
  for terminal output (no plotting dependencies).
"""

from .timing import TimingProtocol, measure
from .flops import (
    conventional_flops,
    winograd_flops,
    winograd_add_count,
    strassen_original_flops,
    dgefmm_flops,
    leaf_mult_count,
)
from .accuracy import max_relative_error
from .plotting import ascii_chart, format_table
from .profiling import Hotspot, profile_call, hotspot_table, measure_peak

__all__ = [
    "TimingProtocol",
    "measure",
    "conventional_flops",
    "winograd_flops",
    "winograd_add_count",
    "strassen_original_flops",
    "dgefmm_flops",
    "leaf_mult_count",
    "max_relative_error",
    "ascii_chart",
    "format_table",
    "Hotspot",
    "profile_call",
    "hotspot_table",
    "measure_peak",
]
