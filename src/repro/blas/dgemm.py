"""The Level-3 BLAS ``dgemm`` contract (paper Section 2.1).

Every multiplication entry point in this package — MODGEMM and both
baselines — computes ``C <- alpha * op(A) . op(B) + beta * C`` where
``op(X)`` is ``X`` or ``X^T``.  :class:`GemmProblem` normalises and
validates one such call; :func:`dgemm_reference` is the numpy ground truth
the test-suite measures everything against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import PlanError, ShapeError

__all__ = ["OpKind", "GemmProblem", "dgemm_reference"]


class OpKind(str, enum.Enum):
    """The BLAS ``TRANSA``/``TRANSB`` parameter (conjugation is moot for reals)."""

    NOTRANS = "n"
    TRANS = "t"

    @classmethod
    def parse(cls, value: "OpKind | str") -> "OpKind":
        if isinstance(value, OpKind):
            return value
        v = str(value).lower()
        if v in ("n", "notrans", "no"):
            return cls.NOTRANS
        if v in ("t", "trans", "c"):
            return cls.TRANS
        raise ValueError(f"unknown op {value!r}; expected 'n' or 't'")


@dataclass(frozen=True)
class GemmProblem:
    """A validated ``C <- alpha*op(A).op(B) + beta*C`` problem instance.

    ``m, k, n`` are the logical GEMM dimensions: ``op(A)`` is ``m x k``,
    ``op(B)`` is ``k x n``, ``C`` is ``m x n``.
    """

    a: np.ndarray
    b: np.ndarray
    op_a: OpKind
    op_b: OpKind
    alpha: float
    beta: float
    m: int
    k: int
    n: int

    @classmethod
    def create(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        op_a: "OpKind | str" = OpKind.NOTRANS,
        op_b: "OpKind | str" = OpKind.NOTRANS,
        alpha: float = 1.0,
        beta: float = 0.0,
        c: np.ndarray | None = None,
        dtype=None,
        trans_a: bool | None = None,
        trans_b: bool | None = None,
    ) -> "GemmProblem":
        """Validate one dgemm call.

        ``dtype`` selects the computation precision — ``float64`` (the
        default, the paper's regime) or ``float32``; operands are cast on
        the way in, so mixed inputs work at the cost of a copy.
        ``trans_a``/``trans_b`` are boolean aliases for the BLAS op
        spellings; when given they win over ``op_a``/``op_b``.
        """
        dt = np.dtype(np.float64 if dtype is None else dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"unsupported dtype {dt}; dgemm supports float64 and float32"
            )
        a = np.asarray(a, dtype=dt)
        b = np.asarray(b, dtype=dt)
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError(
                f"dgemm operands must be 2-D, got ndims {a.ndim} and {b.ndim}"
            )
        if trans_a is not None:
            op_a = OpKind.TRANS if trans_a else OpKind.NOTRANS
        if trans_b is not None:
            op_b = OpKind.TRANS if trans_b else OpKind.NOTRANS
        op_a = OpKind.parse(op_a)
        op_b = OpKind.parse(op_b)
        m, k = a.shape if op_a is OpKind.NOTRANS else a.shape[::-1]
        kb, n = b.shape if op_b is OpKind.NOTRANS else b.shape[::-1]
        if k != kb:
            raise ShapeError(
                f"inner dimensions disagree: op(A) is {m}x{k}, op(B) is {kb}x{n}"
            )
        if c is not None and c.shape != (m, n):
            raise ShapeError(f"C has shape {c.shape}, expected {(m, n)}")
        if c is not None and (
            np.may_share_memory(c, a) or np.may_share_memory(c, b)
        ):
            # The engine writes C while A/B are still live (staged U-adds,
            # Morton conversions); an aliased output would corrupt them.
            raise ShapeError(
                "the C operand must not share memory with A or B"
            )
        if beta != 0.0 and c is None:
            raise ValueError("beta != 0 requires an existing C operand")
        if beta != 0.0 and c is not None and c.dtype != dt:
            raise PlanError(
                f"C dtype {c.dtype} != computation dtype {dt}: a beta "
                "accumulate would silently upcast and break bit-identity; "
                "cast C explicitly"
            )
        return cls(
            a=a, b=b, op_a=op_a, op_b=op_b,
            alpha=float(alpha), beta=float(beta), m=m, k=k, n=n,
        )

    @property
    def op_a_view(self) -> np.ndarray:
        """``op(A)`` as a (possibly transposed) view — no copy."""
        return self.a if self.op_a is OpKind.NOTRANS else self.a.T

    @property
    def op_b_view(self) -> np.ndarray:
        return self.b if self.op_b is OpKind.NOTRANS else self.b.T

    def apply_scaling(self, d: np.ndarray, c: np.ndarray | None) -> np.ndarray:
        """Post-process ``D = op(A).op(B)`` into ``alpha*D + beta*C``.

        Mirrors the paper's Section 3.5: the core routine always computes
        the plain product; scaling is applied afterwards only when the
        common case ``alpha=1, beta=0`` does not hold, and ``D`` *is* the
        output array when ``beta=0``.
        """
        if self.beta == 0.0:
            if self.alpha != 1.0:
                d *= self.alpha
            return d
        assert c is not None
        c *= self.beta
        if self.alpha == 1.0:
            c += d
        else:
            c += self.alpha * d
        return c


def dgemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = OpKind.NOTRANS,
    op_b: "OpKind | str" = OpKind.NOTRANS,
) -> np.ndarray:
    """Ground-truth dgemm via ``numpy.matmul`` (conventional O(n^3))."""
    p = GemmProblem.create(a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c)
    d = p.op_a_view @ p.op_b_view
    out = c.copy() if c is not None else None
    result = p.apply_scaling(d, out)
    return result
