"""Leaf (below-truncation-point) matrix-multiplication kernels.

A significant fraction of the Strassen-Winograd computation happens in the
routine that multiplies tiles once the recursion truncates (Section 3.3),
so the kernel is pluggable:

* ``"numpy"`` — :func:`leaf_matmul`, delegating to ``numpy.matmul`` (the
  host BLAS).  This is the production kernel; the paper's hand-tuned C
  kernel plays the same role (see DESIGN.md, substitutions).
* ``"blocked"`` — :func:`blocked_matmul`, a register-blocking-style
  two-level loop nest in pure numpy.  Orders of magnitude slower, but its
  access pattern is exactly the one the trace generators model, so it
  documents and cross-checks the cache-simulation substrate.
* ``"naive"`` — :func:`naive_matmul`, the textbook triple loop (tests only).
* ``"mixed"`` — :func:`mixed_matmul`, float32-storage operands multiplied
  with float64 accumulation (half the memory traffic of a float64 run,
  float64 rounding inside each leaf product).
* ``"numba"`` — a JIT-compiled loop-nest tile kernel when :mod:`numba`
  is importable; otherwise a documented alias of :func:`leaf_matmul`, so
  ``kernel="numba"`` degrades to the BLAS path instead of failing.

Further backends plug in through :func:`register_kernel`; ``kernel=``
names on sessions, batches, and the task scheduler all resolve through
the same :data:`KERNELS` registry via :func:`get_kernel`.

All kernels have the same signature::

    kernel(a, b, out, accumulate=False)

with 2-D array views ``a (m,k)``, ``b (k,n)``, ``out (m,n)``; ``accumulate``
adds into ``out`` instead of overwriting.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Protocol

import numpy as np

from ..errors import KernelError, ShapeError

__all__ = [
    "LeafKernel",
    "leaf_matmul",
    "leaf_matmul_batch",
    "blocked_matmul",
    "naive_matmul",
    "mixed_matmul",
    "HAVE_NUMBA",
    "KERNELS",
    "register_kernel",
    "get_kernel",
    "get_batch_kernel",
    "guarded_kernel",
    "get_accumulate_cap",
    "set_accumulate_cap",
]


class LeafKernel(Protocol):
    """Callable signature every leaf kernel satisfies."""

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None: ...


_acc_scratch = threading.local()

#: Default cap on the accumulate-staging buffer a thread may keep pinned:
#: 1 << 20 float64 elements = 8 MiB.  Bigger requests get a transient
#: buffer so long-lived worker threads don't hold the largest tile ever
#: staged.  Override with the ``REPRO_ACCUM_CAP`` environment variable
#: (read once at import) or :func:`set_accumulate_cap` at runtime.
_ACC_SCRATCH_MAX_ELEMS = 1 << 20


def _env_accumulate_cap() -> int:
    raw = os.environ.get("REPRO_ACCUM_CAP", "").strip()
    if not raw:
        return _ACC_SCRATCH_MAX_ELEMS
    try:
        cap = int(raw)
    except ValueError:
        raise KernelError(
            f"REPRO_ACCUM_CAP must be a non-negative integer, got {raw!r}"
        ) from None
    if cap < 0:
        raise KernelError(
            f"REPRO_ACCUM_CAP must be a non-negative integer, got {raw!r}"
        )
    return cap


_acc_cap = _env_accumulate_cap()


def get_accumulate_cap() -> int:
    """Current accumulate-scratch cap, in float64 elements."""
    return _acc_cap


def set_accumulate_cap(n_elems: int) -> int:
    """Set the accumulate-scratch cap; returns the previous value.

    Requests at or below the cap are served from a grow-only per-thread
    buffer; requests above it allocate a transient buffer per call (the
    allocation is freed as soon as the leaf product returns, trading
    allocator traffic for a bounded resident footprint).  A cap of 0
    makes every accumulate staging transient.
    """
    global _acc_cap
    if not isinstance(n_elems, int) or isinstance(n_elems, bool) or n_elems < 0:
        raise KernelError(
            f"accumulate cap must be a non-negative int, got {n_elems!r}"
        )
    prev = _acc_cap
    _acc_cap = n_elems
    return prev


def _accumulate_scratch(n_elems: int) -> np.ndarray:
    """Per-thread staging buffer for the accumulate path, bounded in size.

    Grows on demand up to :func:`get_accumulate_cap`; requests above the
    cap are served by a throwaway allocation and never cached.
    """
    if n_elems > _acc_cap:
        return np.empty(n_elems, dtype=np.float64)
    buf = getattr(_acc_scratch, "buf", None)
    if buf is not None and buf.size > max(_acc_cap, 4096):
        buf = None  # cap was lowered since this thread last staged
    if buf is None or buf.size < n_elems:
        buf = np.empty(max(n_elems, 4096), dtype=np.float64)
        _acc_scratch.buf = buf
    return buf


def leaf_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """BLAS-backed kernel: ``out (+)= a @ b``.

    ``numpy.matmul`` with an ``out=`` argument requires a C-contiguous
    destination; Morton leaf tiles are Fortran-order views, so we instead
    compute ``(b.T @ a.T)`` into ``out.T`` — the same product, with the
    transposed destination C-contiguous exactly when ``out`` is
    F-contiguous.  Falls back to a temporary for exotic strides.

    The accumulate path stages the product in a per-thread grow-only
    scratch and adds it in place, so hot accumulate leaves (panelled
    products, peeling baselines) stop allocating a temporary per call.
    """
    same_dtype = a.dtype == b.dtype == out.dtype
    if accumulate:
        ot = out.T
        if same_dtype and out.dtype == np.float64 and (
            ot.flags.c_contiguous or out.flags.c_contiguous
        ):
            m, n = out.shape
            tmp = _accumulate_scratch(m * n)
            if ot.flags.c_contiguous:
                t2 = tmp[: m * n].reshape(n, m)
                np.matmul(b.T, a.T, out=t2)
                np.add(ot, t2, out=ot)
            else:
                t2 = tmp[: m * n].reshape(m, n)
                np.matmul(a, b, out=t2)
                np.add(out, t2, out=out)
        else:
            out += a @ b
        return
    ot = out.T
    if ot.flags.c_contiguous and same_dtype:
        np.matmul(b.T, a.T, out=ot)
    elif out.flags.c_contiguous and same_dtype:
        np.matmul(a, b, out=out)
    else:
        out[...] = a @ b


def blocked_matmul(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    accumulate: bool = False,
    block: int = 8,
) -> None:
    """Two-level blocked j-k-i loop nest (column-major friendly).

    The loop order walks ``out`` and ``a`` down columns — the layout of
    Morton leaf tiles — in ``block``-wide panels.  This mirrors the access
    pattern of :func:`repro.cachesim.tracegen.matmul_trace`, which is the
    instrumented twin of this kernel.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or out.shape != (m, n):
        raise ShapeError(f"shape mismatch: a {a.shape}, b {b.shape}, out {out.shape}")
    if not accumulate:
        out[...] = 0.0
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            # (m x kb) @ (kb x jb) panel update, vectorised over rows.
            out[:, j0:j1] += a[:, k0:k1] @ b[k0:k1, j0:j1]


def naive_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Textbook i-j-k triple loop.  For correctness tests on tiny inputs only."""
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or out.shape != (m, n):
        raise ShapeError(f"shape mismatch: a {a.shape}, b {b.shape}, out {out.shape}")
    if not accumulate:
        out[...] = 0.0
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] += acc


def leaf_matmul_batch(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Batched BLAS kernel over stacks of *transposed* leaf tiles.

    Operands are the ``(batch, tile_c, tile_r)`` views that
    ``BatchMortonMatrix.leaf_view`` exposes: slice ``i`` of each stack is
    item ``i``'s tile transposed, in C order.  ``matmul(b, a)`` therefore
    computes ``(B_i.T @ A_i.T) = (A_i @ B_i).T`` slice-wise into the
    transposed destination — the batched form of :func:`leaf_matmul`'s
    contiguity trick, and (empirically and by BLAS dispatch) bit-identical
    to the per-item 2-D products.
    """
    if accumulate:
        tmp = np.empty(out.shape, dtype=out.dtype)
        np.matmul(b, a, out=tmp)
        np.add(out, tmp, out=out)
        return
    np.matmul(b, a, out=out)


def mixed_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Mixed-precision kernel: float32 storage, float64 accumulation.

    Operands (typically float32 leaf tiles, half the memory traffic of a
    float64 run) are widened to float64 for the product, so every
    within-leaf accumulation rounds in float64; only the final store back
    to ``out`` rounds to the storage dtype.  On float64 inputs the widen
    is a no-op view and the kernel matches :func:`leaf_matmul`'s
    fallback arithmetic exactly.
    """
    a64 = a.astype(np.float64, copy=False)
    b64 = b.astype(np.float64, copy=False)
    prod = np.matmul(a64, b64)
    if accumulate:
        np.add(out, prod, out=out, casting="same_kind")
    else:
        out[...] = prod


def _mixed_matmul_batch(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Batched :func:`mixed_matmul` over stacks of transposed leaf tiles.

    Same stacked-transpose convention as :func:`leaf_matmul_batch`:
    ``matmul(b, a)`` computes each item's transposed product directly
    into the transposed destination stack, here via float64 widening.
    """
    a64 = a.astype(np.float64, copy=False)
    b64 = b.astype(np.float64, copy=False)
    prod = np.matmul(b64, a64)
    if accumulate:
        np.add(out, prod, out=out, casting="same_kind")
    else:
        out[...] = prod


try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: True when the optional :mod:`numba` JIT backend is importable.
HAVE_NUMBA = _numba is not None

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True)
    def _numba_core(a, b, out, accumulate):
        m, k = a.shape
        n = b.shape[1]
        for j in range(n):
            for i in range(m):
                acc = 0.0
                for p in range(k):
                    acc += a[i, p] * b[p, j]
                if accumulate:
                    out[i, j] += acc
                else:
                    out[i, j] = acc

    def numba_matmul(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None:
        """JIT-compiled j-i-k loop nest (column-major friendly) tile kernel."""
        _numba_core(a, b, out, accumulate)

else:
    # Without numba the name degrades to the BLAS path: ``kernel="numba"``
    # stays valid everywhere, it just selects leaf_matmul's arithmetic.
    numba_matmul = leaf_matmul


def _loop_batch(kernel: LeafKernel) -> Callable:
    """Per-item fallback: run a 2-D kernel over each slice of the stacks.

    Slice ``i`` of a stack is the C-order transpose of item ``i``'s tile,
    so ``stack[i].T`` recovers the F-order 2-D view the kernel expects.
    """

    def run(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None:
        for i in range(out.shape[0]):
            kernel(a[i].T, b[i].T, out[i].T, accumulate=accumulate)

    return run


KERNELS: dict[str, Callable] = {
    "numpy": leaf_matmul,
    "blocked": blocked_matmul,
    "naive": naive_matmul,
    "mixed": mixed_matmul,
    "numba": numba_matmul,
}

#: Dedicated batched implementations, keyed by the 2-D impl *identity*
#: (PlanKey compares kernels by identity, so impls must be stable
#: module-level callables).  Kernels absent here batch through
#: :func:`_loop_batch`.
BATCH_IMPLS: dict[Callable, Callable] = {
    leaf_matmul: leaf_matmul_batch,
    mixed_matmul: _mixed_matmul_batch,
}


def register_kernel(
    name: str,
    impl: LeafKernel,
    batch_impl: "Callable | None" = None,
    *,
    replace: bool = False,
) -> LeafKernel:
    """Register a leaf-kernel backend under ``name``; returns ``impl``.

    Once registered the backend is selectable uniformly through
    ``kernel=name`` on :class:`~repro.engine.GemmSession`, batched
    multiplies, and the ``tasks:`` scheduler — everything funnels through
    :func:`get_kernel`.  ``impl`` must follow the module's kernel
    contract (``impl(a, b, out, accumulate=False)`` over 2-D views).
    ``batch_impl``, when given, handles the stacked-transposed batch form
    (see :func:`leaf_matmul_batch`); otherwise the backend batches via a
    per-item loop with identical arithmetic.  Re-registering an existing
    name requires ``replace=True``.
    """
    if not isinstance(name, str) or not name:
        raise KernelError(f"kernel name must be a non-empty str, got {name!r}")
    if not callable(impl):
        raise KernelError(f"kernel impl for {name!r} must be callable")
    if batch_impl is not None and not callable(batch_impl):
        raise KernelError(f"batch_impl for {name!r} must be callable or None")
    if name in KERNELS and not replace:
        raise KernelError(
            f"kernel {name!r} is already registered; pass replace=True "
            "to override"
        )
    KERNELS[name] = impl
    if batch_impl is not None:
        BATCH_IMPLS[impl] = batch_impl
    return impl


def get_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Resolve a kernel by name or pass a callable through.

    Unknown names raise :class:`~repro.errors.KernelError` listing every
    registered backend, including ones added via :func:`register_kernel`.
    """
    if callable(kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except (KeyError, TypeError):
        raise KernelError(
            f"unknown kernel {kernel!r}; registered backends: "
            f"{sorted(KERNELS)}"
        ) from None


def get_batch_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Resolve the batched (stacked-leaf) form of a kernel.

    Backends with a dedicated batch implementation in :data:`BATCH_IMPLS`
    (the production ``"numpy"`` kernel maps to :func:`leaf_matmul_batch` —
    one batched ``matmul`` per leaf site) use it; every other kernel —
    including user callables — gets a per-item loop wrapper, preserving
    its exact arithmetic at leaf granularity.
    """
    resolved = get_kernel(kernel)
    batched = BATCH_IMPLS.get(resolved)
    if batched is not None:
        return batched
    return _loop_batch(resolved)


def guarded_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Wrap a kernel with a NaN/Inf guard on its output (validation mode).

    ``GemmSession(debug=True)`` routes every leaf product — single-tile
    and batched — through this wrapper, so a non-finite value is reported
    at the leaf that produced it (:class:`repro.errors.InvariantError`
    with the tile shape) instead of surfacing, untraceably, after several
    U-chain additions have smeared it across the output.  The guard never
    changes the arithmetic: it runs the wrapped kernel unmodified and
    only *reads* the result.
    """
    from ..observe.validate import check_finite  # deferred: avoid cycle

    base = get_kernel(kernel)

    def guarded(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None:
        base(a, b, out, accumulate=accumulate)
        check_finite(out, label=getattr(base, "__name__", "kernel"))

    guarded.__wrapped__ = base
    guarded.__name__ = f"guarded[{getattr(base, '__name__', 'kernel')}]"
    return guarded
