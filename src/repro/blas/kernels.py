"""Leaf (below-truncation-point) matrix-multiplication kernels.

A significant fraction of the Strassen-Winograd computation happens in the
routine that multiplies tiles once the recursion truncates (Section 3.3),
so the kernel is pluggable:

* ``"numpy"`` — :func:`leaf_matmul`, delegating to ``numpy.matmul`` (the
  host BLAS).  This is the production kernel; the paper's hand-tuned C
  kernel plays the same role (see DESIGN.md, substitutions).
* ``"blocked"`` — :func:`blocked_matmul`, a register-blocking-style
  two-level loop nest in pure numpy.  Orders of magnitude slower, but its
  access pattern is exactly the one the trace generators model, so it
  documents and cross-checks the cache-simulation substrate.
* ``"naive"`` — :func:`naive_matmul`, the textbook triple loop (tests only).

All kernels have the same signature::

    kernel(a, b, out, accumulate=False)

with 2-D array views ``a (m,k)``, ``b (k,n)``, ``out (m,n)``; ``accumulate``
adds into ``out`` instead of overwriting.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol

import numpy as np

from ..errors import KernelError, ShapeError

__all__ = [
    "LeafKernel",
    "leaf_matmul",
    "leaf_matmul_batch",
    "blocked_matmul",
    "naive_matmul",
    "KERNELS",
    "get_kernel",
    "get_batch_kernel",
    "guarded_kernel",
]


class LeafKernel(Protocol):
    """Callable signature every leaf kernel satisfies."""

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None: ...


_acc_scratch = threading.local()

#: Largest accumulate-staging buffer a thread may keep pinned: 1 << 20
#: float64 elements = 8 MiB.  Bigger requests get a transient buffer so
#: long-lived worker threads don't hold the largest tile ever staged.
_ACC_SCRATCH_MAX_ELEMS = 1 << 20


def _accumulate_scratch(n_elems: int) -> np.ndarray:
    """Per-thread staging buffer for the accumulate path, bounded in size.

    Grows on demand up to :data:`_ACC_SCRATCH_MAX_ELEMS`; requests above
    the cap are served by a throwaway allocation and never cached.
    """
    if n_elems > _ACC_SCRATCH_MAX_ELEMS:
        return np.empty(n_elems, dtype=np.float64)
    buf = getattr(_acc_scratch, "buf", None)
    if buf is None or buf.size < n_elems:
        buf = np.empty(max(n_elems, 4096), dtype=np.float64)
        _acc_scratch.buf = buf
    return buf


def leaf_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """BLAS-backed kernel: ``out (+)= a @ b``.

    ``numpy.matmul`` with an ``out=`` argument requires a C-contiguous
    destination; Morton leaf tiles are Fortran-order views, so we instead
    compute ``(b.T @ a.T)`` into ``out.T`` — the same product, with the
    transposed destination C-contiguous exactly when ``out`` is
    F-contiguous.  Falls back to a temporary for exotic strides.

    The accumulate path stages the product in a per-thread grow-only
    scratch and adds it in place, so hot accumulate leaves (panelled
    products, peeling baselines) stop allocating a temporary per call.
    """
    same_dtype = a.dtype == b.dtype == out.dtype
    if accumulate:
        ot = out.T
        if same_dtype and out.dtype == np.float64 and (
            ot.flags.c_contiguous or out.flags.c_contiguous
        ):
            m, n = out.shape
            tmp = _accumulate_scratch(m * n)
            if ot.flags.c_contiguous:
                t2 = tmp[: m * n].reshape(n, m)
                np.matmul(b.T, a.T, out=t2)
                np.add(ot, t2, out=ot)
            else:
                t2 = tmp[: m * n].reshape(m, n)
                np.matmul(a, b, out=t2)
                np.add(out, t2, out=out)
        else:
            out += a @ b
        return
    ot = out.T
    if ot.flags.c_contiguous and same_dtype:
        np.matmul(b.T, a.T, out=ot)
    elif out.flags.c_contiguous and same_dtype:
        np.matmul(a, b, out=out)
    else:
        out[...] = a @ b


def blocked_matmul(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    accumulate: bool = False,
    block: int = 8,
) -> None:
    """Two-level blocked j-k-i loop nest (column-major friendly).

    The loop order walks ``out`` and ``a`` down columns — the layout of
    Morton leaf tiles — in ``block``-wide panels.  This mirrors the access
    pattern of :func:`repro.cachesim.tracegen.matmul_trace`, which is the
    instrumented twin of this kernel.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or out.shape != (m, n):
        raise ShapeError(f"shape mismatch: a {a.shape}, b {b.shape}, out {out.shape}")
    if not accumulate:
        out[...] = 0.0
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            # (m x kb) @ (kb x jb) panel update, vectorised over rows.
            out[:, j0:j1] += a[:, k0:k1] @ b[k0:k1, j0:j1]


def naive_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Textbook i-j-k triple loop.  For correctness tests on tiny inputs only."""
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or out.shape != (m, n):
        raise ShapeError(f"shape mismatch: a {a.shape}, b {b.shape}, out {out.shape}")
    if not accumulate:
        out[...] = 0.0
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] += acc


def leaf_matmul_batch(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
) -> None:
    """Batched BLAS kernel over stacks of *transposed* leaf tiles.

    Operands are the ``(batch, tile_c, tile_r)`` views that
    ``BatchMortonMatrix.leaf_view`` exposes: slice ``i`` of each stack is
    item ``i``'s tile transposed, in C order.  ``matmul(b, a)`` therefore
    computes ``(B_i.T @ A_i.T) = (A_i @ B_i).T`` slice-wise into the
    transposed destination — the batched form of :func:`leaf_matmul`'s
    contiguity trick, and (empirically and by BLAS dispatch) bit-identical
    to the per-item 2-D products.
    """
    if accumulate:
        tmp = np.empty(out.shape, dtype=out.dtype)
        np.matmul(b, a, out=tmp)
        np.add(out, tmp, out=out)
        return
    np.matmul(b, a, out=out)


def _loop_batch(kernel: LeafKernel) -> Callable:
    """Per-item fallback: run a 2-D kernel over each slice of the stacks.

    Slice ``i`` of a stack is the C-order transpose of item ``i``'s tile,
    so ``stack[i].T`` recovers the F-order 2-D view the kernel expects.
    """

    def run(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None:
        for i in range(out.shape[0]):
            kernel(a[i].T, b[i].T, out[i].T, accumulate=accumulate)

    return run


KERNELS: dict[str, Callable] = {
    "numpy": leaf_matmul,
    "blocked": blocked_matmul,
    "naive": naive_matmul,
}


def get_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Resolve a kernel by name or pass a callable through."""
    if callable(kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except (KeyError, TypeError):
        raise KernelError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None


def get_batch_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Resolve the batched (stacked-leaf) form of a kernel.

    The production ``"numpy"`` kernel maps to :func:`leaf_matmul_batch`
    (one batched ``matmul`` per leaf site); every other kernel — including
    user callables — gets a per-item loop wrapper, preserving its exact
    arithmetic at leaf granularity.
    """
    resolved = get_kernel(kernel)
    if resolved is leaf_matmul:
        return leaf_matmul_batch
    return _loop_batch(resolved)


def guarded_kernel(kernel: "str | LeafKernel") -> LeafKernel:
    """Wrap a kernel with a NaN/Inf guard on its output (validation mode).

    ``GemmSession(debug=True)`` routes every leaf product — single-tile
    and batched — through this wrapper, so a non-finite value is reported
    at the leaf that produced it (:class:`repro.errors.InvariantError`
    with the tile shape) instead of surfacing, untraceably, after several
    U-chain additions have smeared it across the output.  The guard never
    changes the arithmetic: it runs the wrapped kernel unmodified and
    only *reads* the result.
    """
    from ..observe.validate import check_finite  # deferred: avoid cycle

    base = get_kernel(kernel)

    def guarded(
        a: np.ndarray, b: np.ndarray, out: np.ndarray, accumulate: bool = False
    ) -> None:
        base(a, b, out, accumulate=accumulate)
        check_finite(out, label=getattr(base, "__name__", "kernel"))

    guarded.__wrapped__ = base
    guarded.__name__ = f"guarded[{getattr(base, '__name__', 'kernel')}]"
    return guarded
