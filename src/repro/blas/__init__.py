"""Level-3 BLAS substrate: the `dgemm` interface contract and leaf kernels.

The paper's implementation "follows the same calling conventions as the
dgemm subroutine in the Level 3 BLAS library" (Section 2.1):
``C <- alpha * op(A) . op(B) + beta * C`` with column-major operands and
explicit leading dimensions.  :mod:`repro.blas.dgemm` expresses and
validates that contract; :mod:`repro.blas.kernels` provides the conventional
matrix-multiplication kernels used below the recursion truncation point.
"""

from .dgemm import GemmProblem, OpKind, dgemm_reference
from .kernels import (
    leaf_matmul,
    blocked_matmul,
    naive_matmul,
    mixed_matmul,
    HAVE_NUMBA,
    KERNELS,
    register_kernel,
    get_kernel,
    get_batch_kernel,
    get_accumulate_cap,
    set_accumulate_cap,
)

__all__ = [
    "GemmProblem",
    "OpKind",
    "dgemm_reference",
    "leaf_matmul",
    "blocked_matmul",
    "naive_matmul",
    "mixed_matmul",
    "HAVE_NUMBA",
    "KERNELS",
    "register_kernel",
    "get_kernel",
    "get_batch_kernel",
    "get_accumulate_cap",
    "set_accumulate_cap",
]
