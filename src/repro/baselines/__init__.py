"""The competing implementations the paper evaluates against (Section 4).

* :func:`dgefmm` — Strassen-Winograd with *dynamic peeling* of odd
  rows/columns (Huss-Lederman, Jacobson, Johnson, Tsao, Turnbull, SC'96),
  fixed recursion truncation point 64, column-major storage throughout.
* :func:`dgemmw` — Strassen-Winograd with *dynamic overlap* (Douglas,
  Heroux, Slishman, Smith, J. Comp. Phys. 1994): odd dimensions split into
  overlapping ceil-half blocks.
* :mod:`repro.baselines.conventional` — the O(n^3) kernels every Strassen
  variant truncates into, plus the plain dgemm used for ground truth.
"""

from .conventional import conventional_gemm, tiled_gemm
from .dgefmm import dgefmm, peeled_multiply
from .dgemmw import dgemmw, overlap_multiply

__all__ = [
    "conventional_gemm",
    "tiled_gemm",
    "dgefmm",
    "peeled_multiply",
    "dgemmw",
    "overlap_multiply",
]
