"""Shared argument normalisation for the baseline entry points.

The API consistency pass gives :func:`repro.dgefmm` and
:func:`repro.dgemmw` the same ``policy`` parameter forms as
:func:`repro.modgemm` (a :class:`TruncationPolicy`, an int truncation
point, or a ``"dynamic"``/``"fixed"`` string).  The baselines have no
per-dimension tile search, so a policy collapses to its scalar recursion
crossover via :meth:`TruncationPolicy.truncation_point`.

The historical ``truncation=<int>`` spelling keeps working through a
deprecation shim that warns once per call site.
"""

from __future__ import annotations

import warnings

from ..core.truncation import TruncationPolicy
from ..errors import PlanError

__all__ = ["resolve_baseline_truncation"]


def resolve_baseline_truncation(
    name: str,
    policy: "TruncationPolicy | int | str | None",
    truncation: int | None,
    default: int,
) -> int:
    """Resolve the recursion crossover from the new and deprecated spellings.

    ``policy`` wins when given; a non-None ``truncation`` emits a
    :class:`DeprecationWarning` (passing both is a :class:`PlanError`).
    Returns the scalar truncation point the recursion should stop below.
    """
    if truncation is not None:
        if policy is not None:
            raise PlanError(
                f"{name}() got both policy= and deprecated truncation=; "
                "pass only policy"
            )
        warnings.warn(
            f"{name}(truncation=...) is deprecated; use policy=<int> or "
            "policy=TruncationPolicy.fixed(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        if truncation < 1:
            raise PlanError(f"truncation must be >= 1, got {truncation}")
        return int(truncation)
    if policy is None:
        return default
    return TruncationPolicy.coerce(policy).truncation_point()
