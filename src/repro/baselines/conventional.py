"""Conventional O(n^3) matrix multiplication baselines.

:func:`conventional_gemm` is the straight dgemm every figure normalises
against conceptually (the host BLAS through numpy); :func:`tiled_gemm` is
an explicitly tiled version whose tile traffic matches the access pattern
studied in Figure 3 (submatrix multiplies with a controllable leading
dimension).
"""

from __future__ import annotations

import numpy as np

from ..blas.dgemm import GemmProblem, OpKind
from ..blas.kernels import LeafKernel, get_kernel

__all__ = ["conventional_gemm", "tiled_gemm"]


def conventional_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    op_a: "OpKind | str" = "n",
    op_b: "OpKind | str" = "n",
) -> np.ndarray:
    """Plain ``C <- alpha*op(A).op(B) + beta*C`` via the host BLAS."""
    p = GemmProblem.create(a, b, op_a=op_a, op_b=op_b, alpha=alpha, beta=beta, c=c)
    d = p.op_a_view @ p.op_b_view
    result = p.apply_scaling(d, c)
    if c is not None and result is not c:
        c[...] = result
        return c
    return result


def tiled_gemm(
    a: np.ndarray,
    b: np.ndarray,
    tile: int = 32,
    kernel: "str | LeafKernel" = "numpy",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Three-level tiled product ``out = a @ b`` with ``tile x tile`` blocks.

    The j-k-i tile order streams column panels of the output — the
    column-major-friendly order the paper's leaf kernel uses.  Used by the
    Figure 3 experiment, where the interesting quantity is the cache
    behaviour of the individual tile products, and as a slow-but-honest
    reference for the cache-trace generators.
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {a.shape} x {b.shape}")
    kern = get_kernel(kernel)
    if out is None:
        out = np.zeros((m, n), dtype=np.float64, order="F")
    else:
        if out.shape != (m, n):
            raise ValueError(f"out shape {out.shape} != {(m, n)}")
        out[...] = 0.0
    for j0 in range(0, n, tile):
        j1 = min(j0 + tile, n)
        for k0 in range(0, k, tile):
            k1 = min(k0 + tile, k)
            for i0 in range(0, m, tile):
                i1 = min(i0 + tile, m)
                kern(
                    a[i0:i1, k0:k1], b[k0:k1, j0:j1], out[i0:i1, j0:j1],
                    accumulate=True,
                )
    return out
